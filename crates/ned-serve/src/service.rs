//! The threaded service: bounded queue, admission control, graceful drain.
//!
//! One [`Service`] owns N worker threads fed from a single
//! `mpsc::sync_channel` whose buffer *is* the bounded request queue.
//! [`Service::submit`] uses `try_send`: when the buffer is full the request
//! is rejected at the door with [`ServeError::QueueFull`] — admission
//! control by construction, with no unbounded buffering anywhere.
//!
//! Every accepted request is answered exactly once on its own reply
//! channel ([`Ticket`]): annotated (possibly degraded per the deadline
//! plan), shed with a typed reason, or failed by an isolated handler
//! panic. The conservation laws `offered == accepted + rejected` and
//! `accepted == ok + degraded + failed` hold exactly once the service has
//! drained; [`ServeStats::check_conservation`] asserts them.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use ned_aida::{remaining_ns, Annotation, DeadlinePolicy};
use ned_core::{
    panic_message, DegradationLevel, RequestId, ServeError, ServeRequest, ServeResponse,
    ShedReason,
};
use ned_obs::{Clock, Metrics};

use crate::handler::AnnotateHandler;
use crate::obs::ServeObs;

/// The service's response payload: accepted annotations.
pub type AnnotateResponse = ServeResponse<Vec<Annotation>>;

/// Configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Bounded queue capacity (≥ 1); submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Deadline applied to requests that carry none of their own.
    pub default_deadline_ms: Option<u64>,
    /// Deadline → degradation-plan translation.
    pub policy: DeadlinePolicy,
    /// When true, requests whose deadline already expired in the queue are
    /// shed with [`ShedReason::DeadlineExpired`] instead of being served
    /// prior-only.
    pub shed_expired: bool,
    /// The clock all queue-wait/latency/deadline arithmetic runs on. Tests
    /// and the virtual-time harness pass a manual clock.
    pub clock: Clock,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            default_deadline_ms: None,
            policy: DeadlinePolicy::default(),
            shed_expired: false,
            clock: Clock::system(),
        }
    }
}

impl ServiceConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("workers must be >= 1".to_string());
        }
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be >= 1".to_string());
        }
        self.policy.validate()
    }
}

/// Always-on accounting (independent of whether metrics are enabled).
#[derive(Debug, Default)]
struct Tallies {
    submitted: AtomicU64,
    accepted: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_shutdown: AtomicU64,
    shed_drain: AtomicU64,
    shed_deadline: AtomicU64,
    completed_ok: AtomicU64,
    completed_degraded: AtomicU64,
    panicked: AtomicU64,
}

/// Point-in-time copy of the service's accounting.
///
/// Shed requests count as a flavor of `failed` (the caller got a typed
/// error, not annotations), so the conservation laws close exactly:
/// `offered() == accepted + rejected()` always, and once the service has
/// drained, `accepted == completed_ok + completed_degraded + failed()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests offered (accepted or not).
    pub submitted: u64,
    /// Requests admitted into the queue.
    pub accepted: u64,
    /// Rejected at admission: queue full.
    pub rejected_queue_full: u64,
    /// Rejected at admission: shutting down.
    pub rejected_shutdown: u64,
    /// Accepted but shed during the shutdown drain.
    pub shed_drain: u64,
    /// Accepted but shed because the deadline expired in queue.
    pub shed_deadline: u64,
    /// Completed at full fidelity.
    pub completed_ok: u64,
    /// Completed on a degraded rung.
    pub completed_degraded: u64,
    /// Handler panics (isolated to their request).
    pub panicked: u64,
    /// High-water mark of the queue depth.
    pub queue_depth_peak: u64,
}

impl ServeStats {
    /// Requests offered: alias of `submitted`.
    pub fn offered(&self) -> u64 {
        self.submitted
    }

    /// Admission-control rejections (never entered the queue).
    pub fn rejected(&self) -> u64 {
        self.rejected_queue_full + self.rejected_shutdown
    }

    /// Accepted requests answered with a typed `Shedded` error.
    pub fn shedded(&self) -> u64 {
        self.shed_drain + self.shed_deadline
    }

    /// Accepted requests that produced no annotations: panics plus sheds.
    pub fn failed(&self) -> u64 {
        self.panicked + self.shedded()
    }

    /// Accepted requests answered so far.
    pub fn answered(&self) -> u64 {
        self.completed_ok + self.completed_degraded + self.failed()
    }

    /// Checks the conservation laws; exact once the service has drained.
    pub fn check_conservation(&self) -> Result<(), String> {
        if self.submitted != self.accepted + self.rejected() {
            return Err(format!(
                "offered ({}) != accepted ({}) + rejected ({})",
                self.submitted,
                self.accepted,
                self.rejected()
            ));
        }
        if self.accepted != self.answered() {
            return Err(format!(
                "accepted ({}) != ok ({}) + degraded ({}) + failed ({})",
                self.accepted,
                self.completed_ok,
                self.completed_degraded,
                self.failed()
            ));
        }
        Ok(())
    }
}

#[derive(Debug)]
struct Shared {
    draining: AtomicBool,
    /// Signed on purpose: a worker can dequeue a job (and decrement) before
    /// the submitter's increment lands, so the counter transiently dips
    /// below zero; readings clamp at zero via [`clamp_depth`].
    depth: AtomicI64,
    peak: AtomicU64,
    tallies: Tallies,
    obs: ServeObs,
}

impl Shared {
    fn new(obs: ServeObs) -> Self {
        Shared {
            draining: AtomicBool::new(false),
            depth: AtomicI64::new(0),
            peak: AtomicU64::new(0),
            tallies: Tallies::default(),
            obs,
        }
    }

    fn stats(&self) -> ServeStats {
        let t = &self.tallies;
        ServeStats {
            submitted: t.submitted.load(Ordering::Relaxed),
            accepted: t.accepted.load(Ordering::Relaxed),
            rejected_queue_full: t.rejected_queue_full.load(Ordering::Relaxed),
            rejected_shutdown: t.rejected_shutdown.load(Ordering::Relaxed),
            shed_drain: t.shed_drain.load(Ordering::Relaxed),
            shed_deadline: t.shed_deadline.load(Ordering::Relaxed),
            completed_ok: t.completed_ok.load(Ordering::Relaxed),
            completed_degraded: t.completed_degraded.load(Ordering::Relaxed),
            panicked: t.panicked.load(Ordering::Relaxed),
            queue_depth_peak: self.peak.load(Ordering::Relaxed),
        }
    }
}

/// A queue-depth reading for the gauges: negative transients (worker
/// decremented before the submitter incremented) read as zero.
fn clamp_depth(v: i64) -> u64 {
    u64::try_from(v).unwrap_or(0)
}

/// One queued unit of work: the request, its submission instant, and the
/// reply channel its [`Ticket`] holds the other end of.
#[derive(Debug)]
struct Job {
    request: ServeRequest,
    submitted_ns: u64,
    reply: mpsc::Sender<AnnotateResponse>,
}

/// The caller's handle on one accepted request.
#[derive(Debug)]
pub struct Ticket {
    id: RequestId,
    rx: mpsc::Receiver<AnnotateResponse>,
}

impl Ticket {
    /// The request this ticket answers for.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Blocks until the service answers. Every accepted request is answered
    /// exactly once; if the service somehow dies first, a typed
    /// [`ServeError::ChannelClosed`] response is synthesized.
    pub fn wait(self) -> AnnotateResponse {
        match self.rx.recv() {
            Ok(response) => response,
            Err(_) => ServeResponse {
                id: self.id,
                result: Err(ServeError::ChannelClosed),
                degradation: DegradationLevel::None,
                queue_wait_ns: 0,
                latency_ns: 0,
            },
        }
    }
}

/// The long-running in-process annotation service.
///
/// Dropping the service performs the same graceful drain as
/// [`Service::shutdown`] (which additionally returns final stats).
#[derive(Debug)]
pub struct Service {
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
    capacity: usize,
    clock: Clock,
}

struct WorkerContext<H> {
    rx: Arc<Mutex<Receiver<Job>>>,
    handler: Arc<H>,
    shared: Arc<Shared>,
    policy: DeadlinePolicy,
    default_deadline_ms: Option<u64>,
    shed_expired: bool,
    clock: Clock,
}

impl<H> std::fmt::Debug for WorkerContext<H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerContext").finish_non_exhaustive()
    }
}

impl<H> Clone for WorkerContext<H> {
    fn clone(&self) -> Self {
        WorkerContext {
            rx: Arc::clone(&self.rx),
            handler: Arc::clone(&self.handler),
            shared: Arc::clone(&self.shared),
            policy: self.policy,
            default_deadline_ms: self.default_deadline_ms,
            shed_expired: self.shed_expired,
            clock: self.clock.clone(),
        }
    }
}

impl Service {
    /// Starts the worker threads and returns the running service. Serving
    /// counters are registered against `metrics` (pass
    /// [`Metrics::disabled`] to opt out).
    pub fn start<H: AnnotateHandler + 'static>(
        handler: H,
        config: ServiceConfig,
        metrics: &Metrics,
    ) -> Result<Self, String> {
        config.validate()?;
        let shared = Arc::new(Shared::new(ServeObs::new(metrics)));
        let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_capacity);
        let context = WorkerContext {
            rx: Arc::new(Mutex::new(rx)),
            handler: Arc::new(handler),
            shared: Arc::clone(&shared),
            policy: config.policy,
            default_deadline_ms: config.default_deadline_ms,
            shed_expired: config.shed_expired,
            clock: config.clock.clone(),
        };
        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let context = context.clone();
            let handle = std::thread::Builder::new()
                .name(format!("ned-serve-{i}"))
                .spawn(move || worker_loop(context))
                .map_err(|e| format!("failed to spawn worker {i}: {e}"))?;
            workers.push(handle);
        }
        Ok(Service { tx: Some(tx), workers, shared, capacity: config.queue_capacity, clock: config.clock })
    }

    /// The configured queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.capacity
    }

    /// Offers a request. Accepted requests return a [`Ticket`]; a full
    /// queue or a draining service rejects with a typed error and buffers
    /// nothing.
    pub fn submit(&self, request: ServeRequest) -> Result<Ticket, ServeError> {
        let shared = &self.shared;
        shared.tallies.submitted.fetch_add(1, Ordering::Relaxed);
        shared.obs.submitted.inc();
        if shared.draining.load(Ordering::Acquire) {
            shared.tallies.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
            shared.obs.rejected_shutdown.inc();
            return Err(ServeError::ShuttingDown);
        }
        let Some(tx) = self.tx.as_ref() else {
            shared.tallies.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
            shared.obs.rejected_shutdown.inc();
            return Err(ServeError::ShuttingDown);
        };
        let id = request.id;
        let (reply_tx, reply_rx) = mpsc::channel();
        let job = Job { request, submitted_ns: self.clock.now_nanos(), reply: reply_tx };
        match tx.try_send(job) {
            Ok(()) => {
                let depth = clamp_depth(shared.depth.fetch_add(1, Ordering::AcqRel) + 1);
                shared.obs.queue_depth.set(depth);
                let peak = shared.peak.fetch_max(depth, Ordering::AcqRel).max(depth);
                shared.obs.queue_depth_peak.set(peak);
                shared.tallies.accepted.fetch_add(1, Ordering::Relaxed);
                shared.obs.accepted.inc();
                Ok(Ticket { id, rx: reply_rx })
            }
            Err(TrySendError::Full(_)) => {
                shared.tallies.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
                shared.obs.rejected_queue_full.inc();
                Err(ServeError::QueueFull { capacity: self.capacity })
            }
            Err(TrySendError::Disconnected(_)) => Err(ServeError::ChannelClosed),
        }
    }

    /// Convenience: submit and block for the answer. Rejections come back
    /// as a response envelope with the typed error.
    pub fn submit_wait(&self, request: ServeRequest) -> AnnotateResponse {
        let id = request.id;
        match self.submit(request) {
            Ok(ticket) => ticket.wait(),
            Err(err) => ServeResponse {
                id,
                result: Err(err),
                degradation: DegradationLevel::None,
                queue_wait_ns: 0,
                latency_ns: 0,
            },
        }
    }

    /// Current accounting snapshot.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }

    /// True once a drain has begun (all further submissions are rejected).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }

    /// Stops admission without blocking: every subsequent submission is
    /// rejected with [`ServeError::ShuttingDown`], the in-flight request on
    /// each worker finishes, and still-queued requests are shed with
    /// [`ShedReason::Drain`] as workers reach them. Call
    /// [`Service::shutdown`] afterwards to wait for the drain to finish and
    /// collect the final accounting — this split lets a deployment fail its
    /// health check (stop admitting) before it stops serving.
    pub fn stop_admission(&self) {
        self.shared.draining.store(true, Ordering::Release);
    }

    /// Graceful drain: stops admission, answers every already-accepted
    /// request exactly once (in-flight requests finish; still-queued ones
    /// are shed with [`ShedReason::Drain`]), joins the workers, and returns
    /// the final accounting.
    pub fn shutdown(mut self) -> ServeStats {
        self.begin_drain();
        self.shared.stats()
    }

    fn begin_drain(&mut self) {
        self.shared.draining.store(true, Ordering::Release);
        // Dropping our sender disconnects the channel once the buffer is
        // empty, which is what terminates the worker loops.
        self.tx = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.shared.obs.queue_depth.set(0);
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.begin_drain();
    }
}

// ned-lint: entry
fn worker_loop<H: AnnotateHandler>(context: WorkerContext<H>) {
    loop {
        // Hold the receiver lock only for the dequeue itself so other
        // workers can pick up requests while this one annotates.
        let job = {
            let guard = context.rx.lock().unwrap_or_else(|e| e.into_inner());
            match guard.recv() {
                Ok(job) => job,
                Err(_) => break,
            }
        };
        let shared = &context.shared;
        let dequeued_ns = context.clock.now_nanos();
        let depth = clamp_depth(shared.depth.fetch_sub(1, Ordering::AcqRel) - 1);
        shared.obs.queue_depth.set(depth);
        let Job { request, submitted_ns, reply } = job;
        let queue_wait_ns = dequeued_ns.saturating_sub(submitted_ns);
        shared.obs.queue_wait_ns.observe(queue_wait_ns);

        if shared.draining.load(Ordering::Acquire) {
            shared.tallies.shed_drain.fetch_add(1, Ordering::Relaxed);
            shared.obs.shed_drain.inc();
            respond(
                shared,
                &reply,
                shed_response(request.id, ShedReason::Drain, queue_wait_ns, &context.clock, submitted_ns),
            );
            continue;
        }

        let deadline_ms = request.deadline_ms.or(context.default_deadline_ms);
        let remaining = remaining_ns(deadline_ms, submitted_ns, dequeued_ns);
        if context.shed_expired && remaining == Some(0) {
            shared.tallies.shed_deadline.fetch_add(1, Ordering::Relaxed);
            shared.obs.shed_deadline.inc();
            respond(
                shared,
                &reply,
                shed_response(
                    request.id,
                    ShedReason::DeadlineExpired,
                    queue_wait_ns,
                    &context.clock,
                    submitted_ns,
                ),
            );
            continue;
        }

        let plan = context.policy.plan(remaining);
        // Isolate handler faults to this request: the worker survives and
        // the caller gets a typed WorkerPanic.
        let outcome = catch_unwind(AssertUnwindSafe(|| context.handler.handle(&request, &plan)));
        let latency_ns = context.clock.now_nanos().saturating_sub(submitted_ns);
        let response = match outcome {
            Ok(output) => {
                let degradation = output.degradation.max(plan.floor());
                if degradation.is_degraded() {
                    shared.tallies.completed_degraded.fetch_add(1, Ordering::Relaxed);
                } else {
                    shared.tallies.completed_ok.fetch_add(1, Ordering::Relaxed);
                }
                shared.obs.record_completion(degradation);
                ServeResponse {
                    id: request.id,
                    result: Ok(output.annotations),
                    degradation,
                    queue_wait_ns,
                    latency_ns,
                }
            }
            Err(payload) => {
                shared.tallies.panicked.fetch_add(1, Ordering::Relaxed);
                shared.obs.failed.inc();
                ServeResponse {
                    id: request.id,
                    result: Err(ServeError::WorkerPanic {
                        message: panic_message(payload.as_ref()),
                    }),
                    degradation: DegradationLevel::None,
                    queue_wait_ns,
                    latency_ns,
                }
            }
        };
        respond(shared, &reply, response);
    }
}

fn shed_response(
    id: RequestId,
    reason: ShedReason,
    queue_wait_ns: u64,
    clock: &Clock,
    submitted_ns: u64,
) -> AnnotateResponse {
    ServeResponse {
        id,
        result: Err(ServeError::Shedded { reason }),
        degradation: DegradationLevel::None,
        queue_wait_ns,
        latency_ns: clock.now_nanos().saturating_sub(submitted_ns),
    }
}

fn respond(shared: &Shared, reply: &mpsc::Sender<AnnotateResponse>, response: AnnotateResponse) {
    shared.obs.latency_ns.observe(response.latency_ns);
    // The caller may have dropped its ticket; the answer is still counted.
    let _ = reply.send(response);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handler::{FnHandler, HandlerOutput};
    use ned_aida::DeadlinePlan;

    fn echo_service(workers: usize, capacity: usize) -> Service {
        let handler = FnHandler::new(|_req: &ServeRequest, plan: &DeadlinePlan| HandlerOutput {
            annotations: Vec::new(),
            degradation: plan.floor(),
        });
        let config = ServiceConfig {
            workers,
            queue_capacity: capacity,
            clock: Clock::Null,
            ..ServiceConfig::default()
        };
        Service::start(handler, config, &Metrics::disabled()).expect("service starts")
    }

    #[test]
    fn requests_round_trip() {
        let service = echo_service(2, 8);
        let tickets: Vec<Ticket> = (0..10)
            .map(|i| loop {
                match service.submit(ServeRequest::new(i, "doc")) {
                    Ok(t) => break t,
                    Err(ServeError::QueueFull { .. }) => std::thread::yield_now(),
                    Err(e) => panic!("unexpected rejection: {e}"),
                }
            })
            .collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let response = ticket.wait();
            assert_eq!(response.id, RequestId(i as u64));
            assert!(response.is_ok());
            assert_eq!(response.degradation, DegradationLevel::None);
        }
        let stats = service.shutdown();
        stats.check_conservation().expect("conservation holds");
        assert_eq!(stats.accepted, 10);
        assert_eq!(stats.completed_ok, 10);
    }

    #[test]
    fn depth_accounting_survives_submit_dequeue_races() {
        // Regression: a worker can dequeue a job (and decrement the depth
        // counter) before the submitter's increment lands. The signed
        // counter must absorb the transient dip — the old unsigned counter
        // wrapped to usize::MAX and overflowed on the next increment.
        let service = echo_service(2, 1);
        let mut accepted = 0u64;
        for i in 0..2_000u64 {
            match service.submit(ServeRequest::new(i, "doc")) {
                Ok(t) => {
                    accepted += 1;
                    assert!(t.wait().is_ok());
                }
                Err(ServeError::QueueFull { .. }) => {}
                Err(e) => panic!("unexpected rejection: {e}"),
            }
        }
        let stats = service.shutdown();
        stats.check_conservation().expect("conservation holds");
        assert_eq!(stats.completed_ok, accepted);
        // The peak may count a job a worker has dequeued but not yet
        // accounted (hence the workers slack); it must never explode.
        assert!(stats.queue_depth_peak <= 1 + 2, "peak {}", stats.queue_depth_peak);
    }

    #[test]
    fn draining_service_rejects_new_requests() {
        let mut service = echo_service(1, 4);
        service.begin_drain();
        let err = service.submit(ServeRequest::new(1, "late")).expect_err("rejected");
        assert_eq!(err, ServeError::ShuttingDown);
        let stats = service.shutdown();
        assert_eq!(stats.rejected_shutdown, 1);
        stats.check_conservation().expect("conservation holds");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(ServiceConfig { workers: 0, ..ServiceConfig::default() }.validate().is_err());
        assert!(
            ServiceConfig { queue_capacity: 0, ..ServiceConfig::default() }
                .validate()
                .is_err()
        );
        assert!(ServiceConfig::default().validate().is_ok());
    }

    #[test]
    fn stats_offered_splits_into_accepted_and_rejected() {
        let stats = ServeStats {
            submitted: 10,
            accepted: 7,
            rejected_queue_full: 2,
            rejected_shutdown: 1,
            shed_drain: 1,
            shed_deadline: 0,
            completed_ok: 4,
            completed_degraded: 1,
            panicked: 1,
            queue_depth_peak: 5,
        };
        assert_eq!(stats.rejected(), 3);
        assert_eq!(stats.shedded(), 1);
        assert_eq!(stats.failed(), 2);
        stats.check_conservation().expect("books balance");
        let broken = ServeStats { accepted: 8, ..stats };
        assert!(broken.check_conservation().is_err());
    }
}
