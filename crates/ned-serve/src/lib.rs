#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! `ned-serve`: an overload-robust, in-process annotation service.
//!
//! The pipeline so far answers "annotate this document"; a long-running
//! deployment must also answer "annotate this document *while a thousand
//! others are in flight and the caller needs an answer in 40 ms*". This
//! crate adds that serving discipline without any network machinery: a
//! [`Service`] struct driven by worker threads over `std::sync::mpsc`.
//!
//! Robustness properties, by construction:
//!
//! - **Bounded queue + admission control.** Submissions beyond the queue
//!   capacity are rejected *at the door* with a typed
//!   [`ServeError::QueueFull`] — the service never buffers unboundedly, so
//!   overload cannot grow memory and the caller learns immediately that it
//!   must back off.
//! - **Deadlines degrade, they don't time out.** A request's remaining
//!   deadline at dequeue time is translated by a [`DeadlinePolicy`] into a
//!   solver wall budget or a cheaper rung of the feature ladder
//!   (joint → no-coherence → prior-only), so an overloaded service returns
//!   *worse answers*, not *no answers*.
//! - **Deterministic shedding accounting.** Every admitted request is
//!   answered exactly once; shed, degraded, and rejected counts are
//!   surfaced through `ned-obs` counters and satisfy
//!   `offered == accepted + rejected` and
//!   `accepted == ok + degraded + failed` exactly.
//! - **Graceful drain.** Shutdown stops admission, lets in-flight requests
//!   finish, and answers still-queued requests with a typed
//!   [`ServeError::Shedded`] result instead of dropping them.
//! - **Per-request isolation.** A panicking handler fails *that request*
//!   ([`ServeError::WorkerPanic`]); the worker thread survives.
//!
//! The [`sim`] module re-implements the same admission/shedding policy as a
//! single-threaded discrete-event simulator over virtual time, so the load
//! harness (`bench_serving`) can run open-loop arrival sweeps that are
//! bit-identical across invocations.

pub mod handler;
pub mod obs;
pub mod service;
pub mod sim;

pub use handler::{AidaHandler, AnnotateHandler, EpochHandler, FnHandler, HandlerOutput};
pub use ned_aida::{DeadlinePlan, DeadlinePolicy};
pub use ned_core::{
    DegradationLevel, RequestId, ServeError, ServeRequest, ServeResponse, ShedReason,
};
pub use obs::ServeObs;
pub use service::{
    AnnotateResponse, Service, ServiceConfig, ServeStats, Ticket,
};
pub use sim::{run_open_loop, OpenLoopConfig, SimOutcome, SimReport, SimStatus};
