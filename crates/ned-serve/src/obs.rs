//! Pre-resolved `ned-obs` handles for the serving counters.
//!
//! Handles are resolved once at service construction, so the per-request
//! hot path pays one atomic add per event (or one branch when metrics are
//! disabled). Names live in [`ned_obs::names`] next to every other
//! subsystem's.

use ned_obs::names;
use ned_obs::{Counter, Gauge, Histogram, Metrics, DURATION_BOUNDS_NS};

/// Pre-resolved handles for every serving metric.
#[derive(Debug, Clone, Default)]
pub struct ServeObs {
    /// Requests offered (accepted or not).
    pub submitted: Counter,
    /// Requests admitted into the queue.
    pub accepted: Counter,
    /// Admission rejections: queue full.
    pub rejected_queue_full: Counter,
    /// Admission rejections: shutting down.
    pub rejected_shutdown: Counter,
    /// Accepted requests shed during the shutdown drain.
    pub shed_drain: Counter,
    /// Accepted requests shed because their deadline expired in queue.
    pub shed_deadline: Counter,
    /// Completed at full fidelity.
    pub completed_ok: Counter,
    /// Completed on a degraded rung.
    pub completed_degraded: Counter,
    /// Handler panicked (isolated).
    pub failed: Counter,
    /// Served with coherence disabled.
    pub degraded_no_coherence: Counter,
    /// Served by the prior alone.
    pub degraded_prior_only: Counter,
    /// Current queue depth.
    pub queue_depth: Gauge,
    /// High-water mark of the queue depth.
    pub queue_depth_peak: Gauge,
    /// End-to-end latency histogram (ns).
    pub latency_ns: Histogram,
    /// Queue-wait histogram (ns).
    pub queue_wait_ns: Histogram,
}

impl ServeObs {
    /// Resolves all handles against `metrics` (registering names on first
    /// use). With a disabled registry every handle is a no-op.
    pub fn new(metrics: &Metrics) -> Self {
        ServeObs {
            submitted: metrics.counter(names::SERVE_SUBMITTED),
            accepted: metrics.counter(names::SERVE_ACCEPTED),
            rejected_queue_full: metrics.counter(names::SERVE_REJECTED_QUEUE_FULL),
            rejected_shutdown: metrics.counter(names::SERVE_REJECTED_SHUTDOWN),
            shed_drain: metrics.counter(names::SERVE_SHED_DRAIN),
            shed_deadline: metrics.counter(names::SERVE_SHED_DEADLINE),
            completed_ok: metrics.counter(names::SERVE_COMPLETED_OK),
            completed_degraded: metrics.counter(names::SERVE_COMPLETED_DEGRADED),
            failed: metrics.counter(names::SERVE_FAILED),
            degraded_no_coherence: metrics.counter(names::SERVE_DEGRADED_NO_COHERENCE),
            degraded_prior_only: metrics.counter(names::SERVE_DEGRADED_PRIOR_ONLY),
            queue_depth: metrics.gauge(names::SERVE_QUEUE_DEPTH),
            queue_depth_peak: metrics.gauge(names::SERVE_QUEUE_DEPTH_PEAK),
            latency_ns: metrics.histogram(names::SERVE_LATENCY_NS, DURATION_BOUNDS_NS),
            queue_wait_ns: metrics.histogram(names::SERVE_QUEUE_WAIT_NS, DURATION_BOUNDS_NS),
        }
    }

    /// All-disabled handles (the `Default`).
    pub fn disabled() -> Self {
        ServeObs::default()
    }

    /// Records one completion-side outcome given the reported degradation
    /// level, keeping `ok + degraded` consistent with the level counters.
    pub fn record_completion(&self, level: ned_core::DegradationLevel) {
        use ned_core::DegradationLevel as L;
        match level {
            L::None => self.completed_ok.inc(),
            L::NoCoherence => {
                self.completed_degraded.inc();
                self.degraded_no_coherence.inc();
            }
            L::PriorOnly => {
                self.completed_degraded.inc();
                self.degraded_prior_only.inc();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ned_core::DegradationLevel;

    #[test]
    fn handles_resolve_and_count() {
        let m = Metrics::new();
        let obs = ServeObs::new(&m);
        obs.submitted.inc();
        obs.accepted.inc();
        obs.record_completion(DegradationLevel::None);
        obs.record_completion(DegradationLevel::NoCoherence);
        obs.record_completion(DegradationLevel::PriorOnly);
        let snap = m.snapshot();
        assert_eq!(snap.counter(names::SERVE_SUBMITTED), 1);
        assert_eq!(snap.counter(names::SERVE_COMPLETED_OK), 1);
        assert_eq!(snap.counter(names::SERVE_COMPLETED_DEGRADED), 2);
        assert_eq!(snap.counter(names::SERVE_DEGRADED_NO_COHERENCE), 1);
        assert_eq!(snap.counter(names::SERVE_DEGRADED_PRIOR_ONLY), 1);
    }

    #[test]
    fn disabled_obs_is_inert() {
        let obs = ServeObs::disabled();
        obs.submitted.inc();
        obs.record_completion(DegradationLevel::PriorOnly);
        assert_eq!(obs.submitted.value(), 0);
        assert_eq!(obs.completed_degraded.value(), 0);
    }
}
