//! Deterministic virtual-time model of the service, for open-loop load.
//!
//! An open-loop generator offers requests at a fixed arrival rate whether
//! or not the service keeps up — the regime where overload actually
//! happens. Running that against the threaded [`crate::Service`] on wall
//! time is inherently racy, so the load harness's *virtual-time* mode uses
//! this single-threaded discrete-event simulator instead: the same
//! admission policy (bounded FIFO queue, reject at capacity), the same
//! deadline ladder ([`DeadlinePolicy`]), the same accounting — but time is
//! an integer the simulator advances, and service cost comes from a
//! caller-supplied deterministic cost model. Two runs over the same inputs
//! produce byte-identical [`SimReport`]s.
//!
//! The handler still *really runs* (annotations are produced by the real
//! pipeline); only elapsed time is modeled. The simulator advances the
//! shared [`ManualClock`] to each request's virtual start instant, so
//! solver wall budgets observe virtual time and the plan ladder behaves as
//! it would under the threaded service.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};

use ned_aida::{remaining_ns, DeadlinePlan, DeadlinePolicy};
use ned_core::{DegradationLevel, RequestId, ServeRequest};
use ned_obs::ManualClock;

use crate::handler::AnnotateHandler;
use crate::obs::ServeObs;

/// Configuration of one open-loop virtual-time run.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Simulated worker slots (≥ 1).
    pub workers: usize,
    /// Bounded queue capacity (≥ 1).
    pub queue_capacity: usize,
    /// Fixed inter-arrival gap, nanoseconds of virtual time (≥ 1).
    pub arrival_interval_ns: u64,
    /// Deadline applied to requests that carry none of their own.
    pub default_deadline_ms: Option<u64>,
    /// Deadline → degradation-plan translation.
    pub policy: DeadlinePolicy,
    /// Shed (rather than serve prior-only) requests whose deadline expired
    /// while queued.
    pub shed_expired: bool,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            workers: 2,
            queue_capacity: 64,
            arrival_interval_ns: 1_000_000,
            default_deadline_ms: None,
            policy: DeadlinePolicy::default(),
            shed_expired: false,
        }
    }
}

impl OpenLoopConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("workers must be >= 1".to_string());
        }
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be >= 1".to_string());
        }
        if self.arrival_interval_ns == 0 {
            return Err("arrival_interval_ns must be >= 1".to_string());
        }
        self.policy.validate()
    }
}

/// How one simulated request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimStatus {
    /// Completed at full fidelity.
    Ok,
    /// Completed on a degraded rung.
    Degraded,
    /// Rejected at admission (queue full).
    Rejected,
    /// Shed after admission (deadline expired in queue).
    Shed,
    /// Handler panicked (isolated).
    Failed,
}

impl SimStatus {
    /// Stable label for reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            SimStatus::Ok => "ok",
            SimStatus::Degraded => "degraded",
            SimStatus::Rejected => "rejected",
            SimStatus::Shed => "shed",
            SimStatus::Failed => "failed",
        }
    }
}

/// The fate of one simulated request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOutcome {
    /// The request id.
    pub id: RequestId,
    /// How it ended.
    pub status: SimStatus,
    /// Reported degradation rung (meaningful for completed requests).
    pub degradation: DegradationLevel,
    /// Virtual arrival instant, nanoseconds.
    pub arrival_ns: u64,
    /// Virtual time spent queued, nanoseconds (0 for rejections).
    pub queue_wait_ns: u64,
    /// Virtual submit → answer latency, nanoseconds (0 for rejections).
    pub latency_ns: u64,
}

/// Everything one open-loop run produced. Two runs over identical inputs
/// compare equal with `==` — the load harness's determinism check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// Per-request outcomes, in request order.
    pub outcomes: Vec<SimOutcome>,
    /// High-water mark of the simulated queue depth.
    pub queue_depth_peak: u64,
    /// Virtual instant the last accepted request finished.
    pub makespan_ns: u64,
}

impl SimReport {
    /// Requests offered.
    pub fn offered(&self) -> u64 {
        as_u64(self.outcomes.len())
    }

    /// Outcomes with the given status.
    pub fn count(&self, status: SimStatus) -> u64 {
        as_u64(self.outcomes.iter().filter(|o| o.status == status).count())
    }

    /// Requests admitted into the queue.
    pub fn accepted(&self) -> u64 {
        self.offered() - self.count(SimStatus::Rejected)
    }

    /// Latencies of answered (non-rejected) requests, in request order.
    pub fn answered_latencies_ns(&self) -> Vec<u64> {
        self.outcomes
            .iter()
            .filter(|o| o.status != SimStatus::Rejected)
            .map(|o| o.latency_ns)
            .collect()
    }

    /// Checks `offered == accepted + rejected` and
    /// `accepted == ok + degraded + failed` (sheds and panics both count
    /// as failed, as in [`crate::ServeStats`]).
    pub fn check_conservation(&self) -> Result<(), String> {
        let offered = self.offered();
        let accepted = self.accepted();
        let rejected = self.count(SimStatus::Rejected);
        if offered != accepted + rejected {
            return Err(format!("offered ({offered}) != accepted ({accepted}) + rejected ({rejected})"));
        }
        let answered = self.count(SimStatus::Ok)
            + self.count(SimStatus::Degraded)
            + self.count(SimStatus::Shed)
            + self.count(SimStatus::Failed);
        if accepted != answered {
            return Err(format!("accepted ({accepted}) != answered ({answered})"));
        }
        Ok(())
    }
}

fn as_u64(v: usize) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

#[derive(Debug, Clone, Copy)]
struct Queued {
    index: usize,
    arrival_ns: u64,
}

struct Sim<'a> {
    handler: &'a dyn AnnotateHandler,
    hand: &'a ManualClock,
    requests: &'a [ServeRequest],
    config: &'a OpenLoopConfig,
    cost_ns: &'a dyn Fn(&ServeRequest, &DeadlinePlan) -> u64,
    obs: &'a ServeObs,
    workers_free: Vec<u64>,
    queue: VecDeque<Queued>,
    outcomes: Vec<Option<SimOutcome>>,
    peak_depth: usize,
    makespan_ns: u64,
}

impl std::fmt::Debug for Sim<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim").finish_non_exhaustive()
    }
}

impl Sim<'_> {
    /// Starts every queued request whose worker slot frees up by virtual
    /// instant `until_ns`, FIFO, ties broken by lowest worker index.
    fn drain_until(&mut self, until_ns: u64) {
        while let Some(&front) = self.queue.front() {
            let Some((worker, free_ns)) = self
                .workers_free
                .iter()
                .copied()
                .enumerate()
                .min_by_key(|&(index, free)| (free, index))
            else {
                return; // unreachable: workers >= 1 is validated
            };
            if free_ns > until_ns {
                return;
            }
            self.queue.pop_front();
            self.obs.queue_depth.set(as_u64(self.queue.len()));
            let start_ns = free_ns.max(front.arrival_ns);
            self.run_one(front, start_ns, worker);
        }
    }

    fn run_one(&mut self, queued: Queued, start_ns: u64, worker: usize) {
        let Some(request) = self.requests.get(queued.index) else {
            return; // unreachable: indices come from enumerate()
        };
        // Solver wall budgets and metric spans observe virtual time.
        self.hand.advance_to_nanos(start_ns);
        let queue_wait_ns = start_ns - queued.arrival_ns;
        self.obs.queue_wait_ns.observe(queue_wait_ns);
        let deadline_ms = request.deadline_ms.or(self.config.default_deadline_ms);
        let remaining = remaining_ns(deadline_ms, queued.arrival_ns, start_ns);

        if self.config.shed_expired && remaining == Some(0) {
            self.obs.shed_deadline.inc();
            self.obs.latency_ns.observe(queue_wait_ns);
            self.record(queued.index, SimOutcome {
                id: request.id,
                status: SimStatus::Shed,
                degradation: DegradationLevel::None,
                arrival_ns: queued.arrival_ns,
                queue_wait_ns,
                latency_ns: queue_wait_ns,
            });
            return; // shed before occupying the worker slot
        }

        let plan = self.config.policy.plan(remaining);
        let outcome = catch_unwind(AssertUnwindSafe(|| self.handler.handle(request, &plan)));
        let cost = (self.cost_ns)(request, &plan);
        let finish_ns = start_ns.saturating_add(cost);
        if let Some(slot) = self.workers_free.get_mut(worker) {
            *slot = finish_ns;
        }
        self.makespan_ns = self.makespan_ns.max(finish_ns);
        let latency_ns = finish_ns - queued.arrival_ns;
        self.obs.latency_ns.observe(latency_ns);
        let sim = match outcome {
            Ok(output) => {
                let degradation = output.degradation.max(plan.floor());
                self.obs.record_completion(degradation);
                SimOutcome {
                    id: request.id,
                    status: if degradation.is_degraded() {
                        SimStatus::Degraded
                    } else {
                        SimStatus::Ok
                    },
                    degradation,
                    arrival_ns: queued.arrival_ns,
                    queue_wait_ns,
                    latency_ns,
                }
            }
            Err(_) => {
                self.obs.failed.inc();
                SimOutcome {
                    id: request.id,
                    status: SimStatus::Failed,
                    degradation: DegradationLevel::None,
                    arrival_ns: queued.arrival_ns,
                    queue_wait_ns,
                    latency_ns,
                }
            }
        };
        self.record(queued.index, sim);
    }

    fn record(&mut self, index: usize, outcome: SimOutcome) {
        if let Some(slot) = self.outcomes.get_mut(index) {
            *slot = Some(outcome);
        }
    }
}

/// Runs one open-loop sweep: request `i` arrives at virtual instant
/// `i * arrival_interval_ns`; admission, queueing, deadline planning, and
/// completion all happen in virtual time. `hand` must be the manual hand
/// behind the handler's clock (so solver budgets see the same timeline);
/// `cost_ns(request, plan)` models how long the annotation occupies a
/// worker slot.
///
/// The run is fully deterministic: same inputs → `==`-equal report.
pub fn run_open_loop(
    handler: &dyn AnnotateHandler,
    hand: &ManualClock,
    requests: &[ServeRequest],
    config: &OpenLoopConfig,
    cost_ns: &dyn Fn(&ServeRequest, &DeadlinePlan) -> u64,
    obs: &ServeObs,
) -> Result<SimReport, String> {
    config.validate()?;
    let mut sim = Sim {
        handler,
        hand,
        requests,
        config,
        cost_ns,
        obs,
        workers_free: vec![0; config.workers],
        queue: VecDeque::new(),
        outcomes: vec![None; requests.len()],
        peak_depth: 0,
        makespan_ns: 0,
    };
    for (index, request) in requests.iter().enumerate() {
        let arrival_ns = as_u64(index).saturating_mul(config.arrival_interval_ns);
        sim.hand.advance_to_nanos(arrival_ns);
        sim.drain_until(arrival_ns);
        sim.obs.submitted.inc();
        if sim.queue.len() >= config.queue_capacity {
            sim.obs.rejected_queue_full.inc();
            sim.record(index, SimOutcome {
                id: request.id,
                status: SimStatus::Rejected,
                degradation: DegradationLevel::None,
                arrival_ns,
                queue_wait_ns: 0,
                latency_ns: 0,
            });
            continue;
        }
        sim.obs.accepted.inc();
        sim.queue.push_back(Queued { index, arrival_ns });
        sim.peak_depth = sim.peak_depth.max(sim.queue.len());
        sim.obs.queue_depth.set(as_u64(sim.queue.len()));
        sim.obs.queue_depth_peak.set(as_u64(sim.peak_depth));
    }
    // Graceful completion: every accepted request finishes.
    sim.drain_until(u64::MAX);
    let outcomes: Vec<SimOutcome> = sim.outcomes.iter().filter_map(|o| *o).collect();
    if outcomes.len() != requests.len() {
        return Err(format!(
            "simulator lost requests: {} outcomes for {} requests",
            outcomes.len(),
            requests.len()
        ));
    }
    Ok(SimReport {
        outcomes,
        queue_depth_peak: as_u64(sim.peak_depth),
        makespan_ns: sim.makespan_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handler::{FnHandler, HandlerOutput};
    use ned_obs::Clock;

    fn echo() -> impl AnnotateHandler {
        FnHandler::new(|_req: &ServeRequest, plan: &DeadlinePlan| HandlerOutput {
            annotations: Vec::new(),
            degradation: plan.floor(),
        })
    }

    fn requests(n: u64) -> Vec<ServeRequest> {
        (0..n).map(|i| ServeRequest::new(i, "doc")).collect()
    }

    #[test]
    fn underload_completes_everything_at_full_fidelity() {
        let (_clock, hand) = Clock::manual();
        let config = OpenLoopConfig {
            workers: 2,
            queue_capacity: 8,
            arrival_interval_ns: 1_000,
            ..OpenLoopConfig::default()
        };
        // Cost 500ns per request, capacity 2 workers × 1 req/1000ns each.
        let report = run_open_loop(
            &echo(),
            &hand,
            &requests(50),
            &config,
            &|_, _| 500,
            &ServeObs::disabled(),
        )
        .expect("run");
        assert_eq!(report.count(SimStatus::Ok), 50);
        assert_eq!(report.count(SimStatus::Rejected), 0);
        report.check_conservation().expect("books balance");
    }

    #[test]
    fn sustained_overload_rejects_at_the_door_with_bounded_queue() {
        let (_clock, hand) = Clock::manual();
        let config = OpenLoopConfig {
            workers: 1,
            queue_capacity: 4,
            arrival_interval_ns: 1_000,
            ..OpenLoopConfig::default()
        };
        // 4× overload: each request costs 4 arrival intervals.
        let report = run_open_loop(
            &echo(),
            &hand,
            &requests(100),
            &config,
            &|_, _| 4_000,
            &ServeObs::disabled(),
        )
        .expect("run");
        assert!(report.count(SimStatus::Rejected) > 0, "overload must shed at admission");
        assert!(report.queue_depth_peak <= 4, "queue never exceeds capacity");
        assert_eq!(report.accepted() + report.count(SimStatus::Rejected), 100);
        report.check_conservation().expect("books balance");
    }

    #[test]
    fn queued_requests_degrade_as_deadlines_burn_down() {
        let (_clock, hand) = Clock::manual();
        let config = OpenLoopConfig {
            workers: 1,
            queue_capacity: 16,
            arrival_interval_ns: 1_000_000, // 1 ms
            default_deadline_ms: Some(8),
            ..OpenLoopConfig::default()
        };
        // 3× overload: queue grows, so later requests see less remaining
        // deadline and step down the ladder.
        let report = run_open_loop(
            &echo(),
            &hand,
            &requests(12),
            &config,
            &|_, _| 3_000_000,
            &ServeObs::disabled(),
        )
        .expect("run");
        let statuses: Vec<SimStatus> = report.outcomes.iter().map(|o| o.status).collect();
        assert_eq!(statuses.first(), Some(&SimStatus::Ok), "first request unhurried");
        assert!(report.count(SimStatus::Degraded) > 0, "burned-down deadlines degrade");
        let rungs: Vec<DegradationLevel> =
            report.outcomes.iter().map(|o| o.degradation).collect();
        assert!(
            rungs.contains(&DegradationLevel::PriorOnly),
            "deep queue reaches prior-only: {rungs:?}"
        );
        report.check_conservation().expect("books balance");
    }

    #[test]
    fn shed_expired_policy_sheds_instead_of_serving_prior_only() {
        let (_clock, hand) = Clock::manual();
        let config = OpenLoopConfig {
            workers: 1,
            queue_capacity: 16,
            arrival_interval_ns: 1_000_000,
            default_deadline_ms: Some(2),
            shed_expired: true,
            ..OpenLoopConfig::default()
        };
        let report = run_open_loop(
            &echo(),
            &hand,
            &requests(10),
            &config,
            &|_, _| 5_000_000,
            &ServeObs::disabled(),
        )
        .expect("run");
        assert!(report.count(SimStatus::Shed) > 0, "expired requests are shed");
        report.check_conservation().expect("books balance");
    }

    #[test]
    fn identical_inputs_produce_identical_reports() {
        let config = OpenLoopConfig {
            workers: 2,
            queue_capacity: 3,
            arrival_interval_ns: 1_000,
            default_deadline_ms: Some(1),
            ..OpenLoopConfig::default()
        };
        let run = || {
            let (_clock, hand) = Clock::manual();
            run_open_loop(
                &echo(),
                &hand,
                &requests(200),
                &config,
                &|req, plan| 1_500 + (req.id.0 % 7) * 300 + u64::from(matches!(plan, DeadlinePlan::PriorOnly)),
                &ServeObs::disabled(),
            )
            .expect("run")
        };
        assert_eq!(run(), run(), "virtual-time runs are bit-identical");
    }

    #[test]
    fn panicking_handler_is_isolated_and_counted() {
        let handler = FnHandler::new(|req: &ServeRequest, _plan: &DeadlinePlan| {
            assert!(req.id.0 != 3, "poison document");
            HandlerOutput::default()
        });
        let (_clock, hand) = Clock::manual();
        let config = OpenLoopConfig {
            workers: 1,
            queue_capacity: 8,
            arrival_interval_ns: 1_000,
            ..OpenLoopConfig::default()
        };
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let report = run_open_loop(
            &handler,
            &hand,
            &requests(6),
            &config,
            &|_, _| 100,
            &ServeObs::disabled(),
        )
        .expect("run");
        std::panic::set_hook(prev);
        assert_eq!(report.count(SimStatus::Failed), 1);
        assert_eq!(report.count(SimStatus::Ok), 5);
        report.check_conservation().expect("books balance");
    }
}
