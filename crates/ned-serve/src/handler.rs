//! Request handlers: the work a service worker performs per request.
//!
//! The service is generic over an [`AnnotateHandler`] so robustness tests
//! can drive it with synthetic handlers ([`FnHandler`]) while production
//! uses [`AidaHandler`], which runs the real pipeline with the per-request
//! deadline plan applied.

use ned_aida::{
    AidaConfig, Annotation, DeadlinePlan, Disambiguator, JointConfig, NedMethod,
};
use ned_core::{DegradationLevel, NedError, ServeRequest};
use ned_kb::KbView;
use ned_obs::{Clock, Metrics};
use ned_relatedness::Relatedness;
use ned_text::{tokenize, Recognizer};

/// What a handler produced for one request.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HandlerOutput {
    /// The accepted annotations.
    pub annotations: Vec<Annotation>,
    /// The degradation level the *pipeline* reported (the service combines
    /// it with the deadline plan's floor).
    pub degradation: DegradationLevel,
}

/// The per-request work function of a service worker.
///
/// Implementations receive the request and the deadline plan chosen at
/// dequeue time; they must not block indefinitely (the plan is the
/// mechanism for bounding work) and may panic — the service isolates the
/// fault to the request.
pub trait AnnotateHandler: Send + Sync {
    /// Annotates one request under the given plan.
    fn handle(&self, request: &ServeRequest, plan: &DeadlinePlan) -> HandlerOutput;
}

/// The production handler: the full AIDA pipeline with a shared
/// gazetteer-backed recognizer and a per-request disambiguator carrying the
/// plan-adjusted configuration.
///
/// The recognizer is expensive to build (it walks the whole dictionary) and
/// is built once; the disambiguator is cheap to construct over cloned
/// handles (`Arc<FrozenKb>`, `Arc<CachedRelatedness>`), which is exactly
/// what lets each request run under its own wall budget and feature rung.
pub struct AidaHandler<K, R> {
    kb: K,
    relatedness: R,
    base: AidaConfig,
    joint: JointConfig,
    recognizer: Recognizer,
    metrics: Metrics,
    clock: Clock,
}

// Manual Debug: `R` need not be Debug.
impl<K, R> std::fmt::Debug for AidaHandler<K, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AidaHandler")
            .field("base", &self.base)
            .field("joint", &self.joint)
            .finish_non_exhaustive()
    }
}

impl<K: KbView + Clone, R: Relatedness + Clone> AidaHandler<K, R> {
    /// Builds a handler over shared knowledge-base and relatedness handles.
    /// Validates `base` up front so per-request construction cannot fail.
    pub fn try_new(
        kb: K,
        relatedness: R,
        base: AidaConfig,
        joint: JointConfig,
    ) -> Result<Self, NedError> {
        base.validate()
            .map_err(|message| NedError::Config { what: "AidaConfig", message })?;
        let recognizer = joint.build_recognizer(&kb);
        Ok(AidaHandler {
            kb,
            relatedness,
            base,
            joint,
            recognizer,
            metrics: Metrics::disabled(),
            clock: Clock::system(),
        })
    }

    /// Records pipeline metrics into `metrics` (builder style).
    #[must_use]
    pub fn with_metrics(mut self, metrics: &Metrics) -> Self {
        self.metrics = metrics.clone();
        self
    }

    /// Overrides the clock per-request solvers budget against (builder
    /// style). The virtual-time load harness passes a manual clock here.
    #[must_use]
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// The base (undegraded) configuration.
    pub fn base_config(&self) -> &AidaConfig {
        &self.base
    }
}

impl<K, R> AnnotateHandler for AidaHandler<K, R>
where
    K: KbView + Clone + Send + Sync,
    R: Relatedness + Clone + Send + Sync,
{
    fn handle(&self, request: &ServeRequest, plan: &DeadlinePlan) -> HandlerOutput {
        let tokens = tokenize(&request.text);
        let mentions = self.recognizer.recognize(&tokens);
        if mentions.is_empty() {
            return HandlerOutput { annotations: Vec::new(), degradation: plan.floor() };
        }
        let config = plan.apply(&self.base);
        // `base` validated at construction and `DeadlinePlan::apply`
        // preserves validity, so this cannot fail at runtime; the fallback
        // answers with no annotations at the plan's floor rather than
        // panicking a worker.
        let Ok(disambiguator) = Disambiguator::try_new(
            self.kb.clone(),
            self.relatedness.clone(),
            config,
        ) else {
            return HandlerOutput { annotations: Vec::new(), degradation: plan.floor() };
        };
        let disambiguator =
            disambiguator.with_metrics(&self.metrics).with_clock(self.clock.clone());
        let result = disambiguator.disambiguate(&tokens, &mentions);
        let degradation = result.degradation.max(plan.floor());
        let annotations = mentions
            .into_iter()
            .zip(result.assignments)
            .filter_map(|(mention, assignment)| self.joint.accept(mention, assignment))
            .collect();
        HandlerOutput { annotations, degradation }
    }
}

/// A closure-backed handler for tests and synthetic load models.
pub struct FnHandler<F>(F);

impl<F> std::fmt::Debug for FnHandler<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnHandler").finish_non_exhaustive()
    }
}

impl<F> FnHandler<F>
where
    F: Fn(&ServeRequest, &DeadlinePlan) -> HandlerOutput + Send + Sync,
{
    /// Wraps a closure as a handler.
    pub fn new(f: F) -> Self {
        FnHandler(f)
    }
}

impl<F> AnnotateHandler for FnHandler<F>
where
    F: Fn(&ServeRequest, &DeadlinePlan) -> HandlerOutput + Send + Sync,
{
    fn handle(&self, request: &ServeRequest, plan: &DeadlinePlan) -> HandlerOutput {
        (self.0)(request, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_handler_passes_through() {
        let h = FnHandler::new(|_req: &ServeRequest, plan: &DeadlinePlan| HandlerOutput {
            annotations: Vec::new(),
            degradation: plan.floor(),
        });
        let out = h.handle(&ServeRequest::new(1, "x"), &DeadlinePlan::PriorOnly);
        assert_eq!(out.degradation, DegradationLevel::PriorOnly);
        assert!(out.annotations.is_empty());
    }
}
