//! Request handlers: the work a service worker performs per request.
//!
//! The service is generic over an [`AnnotateHandler`] so robustness tests
//! can drive it with synthetic handlers ([`FnHandler`]) while production
//! uses [`AidaHandler`], which runs the real pipeline with the per-request
//! deadline plan applied.

use std::sync::{Arc, Mutex, RwLock};

use ned_aida::{
    AidaConfig, Annotation, DeadlinePlan, Disambiguator, JointConfig, NedMethod,
};
use ned_core::{DegradationLevel, NedError, ServeRequest};
use ned_kb::{KbEpoch, KbHandle, KbView};
use ned_obs::{Clock, Metrics};
use ned_relatedness::Relatedness;
use ned_text::{tokenize, Recognizer};

/// What a handler produced for one request.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HandlerOutput {
    /// The accepted annotations.
    pub annotations: Vec<Annotation>,
    /// The degradation level the *pipeline* reported (the service combines
    /// it with the deadline plan's floor).
    pub degradation: DegradationLevel,
}

/// The per-request work function of a service worker.
///
/// Implementations receive the request and the deadline plan chosen at
/// dequeue time; they must not block indefinitely (the plan is the
/// mechanism for bounding work) and may panic — the service isolates the
/// fault to the request.
pub trait AnnotateHandler: Send + Sync {
    /// Annotates one request under the given plan.
    fn handle(&self, request: &ServeRequest, plan: &DeadlinePlan) -> HandlerOutput;
}

/// The production handler: the full AIDA pipeline with a shared
/// gazetteer-backed recognizer and a per-request disambiguator carrying the
/// plan-adjusted configuration.
///
/// The recognizer is expensive to build (it walks the whole dictionary) and
/// is built once; the disambiguator is cheap to construct over cloned
/// handles (`Arc<FrozenKb>`, `Arc<CachedRelatedness>`), which is exactly
/// what lets each request run under its own wall budget and feature rung.
pub struct AidaHandler<K, R> {
    kb: K,
    relatedness: R,
    base: AidaConfig,
    joint: JointConfig,
    recognizer: Recognizer,
    metrics: Metrics,
    clock: Clock,
}

// Manual Debug: `R` need not be Debug.
impl<K, R> std::fmt::Debug for AidaHandler<K, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AidaHandler")
            .field("base", &self.base)
            .field("joint", &self.joint)
            .finish_non_exhaustive()
    }
}

impl<K: KbView + Clone, R: Relatedness + Clone> AidaHandler<K, R> {
    /// Builds a handler over shared knowledge-base and relatedness handles.
    /// Validates `base` up front so per-request construction cannot fail.
    pub fn try_new(
        kb: K,
        relatedness: R,
        base: AidaConfig,
        joint: JointConfig,
    ) -> Result<Self, NedError> {
        base.validate()
            .map_err(|message| NedError::Config { what: "AidaConfig", message })?;
        let recognizer = joint.build_recognizer(&kb);
        Ok(AidaHandler {
            kb,
            relatedness,
            base,
            joint,
            recognizer,
            metrics: Metrics::disabled(),
            clock: Clock::system(),
        })
    }

    /// Records pipeline metrics into `metrics` (builder style).
    #[must_use]
    pub fn with_metrics(mut self, metrics: &Metrics) -> Self {
        self.metrics = metrics.clone();
        self
    }

    /// Overrides the clock per-request solvers budget against (builder
    /// style). The virtual-time load harness passes a manual clock here.
    #[must_use]
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// The base (undegraded) configuration.
    pub fn base_config(&self) -> &AidaConfig {
        &self.base
    }
}

impl<K, R> AnnotateHandler for AidaHandler<K, R>
where
    K: KbView + Clone + Send + Sync,
    R: Relatedness + Clone + Send + Sync,
{
    fn handle(&self, request: &ServeRequest, plan: &DeadlinePlan) -> HandlerOutput {
        let tokens = tokenize(&request.text);
        let mentions = self.recognizer.recognize(&tokens);
        if mentions.is_empty() {
            return HandlerOutput { annotations: Vec::new(), degradation: plan.floor() };
        }
        let config = plan.apply(&self.base);
        // `base` validated at construction and `DeadlinePlan::apply`
        // preserves validity, so this cannot fail at runtime; the fallback
        // answers with no annotations at the plan's floor rather than
        // panicking a worker.
        let Ok(disambiguator) = Disambiguator::try_new(
            self.kb.clone(),
            self.relatedness.clone(),
            config,
        ) else {
            return HandlerOutput { annotations: Vec::new(), degradation: plan.floor() };
        };
        let disambiguator =
            disambiguator.with_metrics(&self.metrics).with_clock(self.clock.clone());
        let result = disambiguator.disambiguate(&tokens, &mentions);
        let degradation = result.degradation.max(plan.floor());
        let annotations = mentions
            .into_iter()
            .zip(result.assignments)
            .filter_map(|(mention, assignment)| self.joint.accept(mention, assignment))
            .collect();
        HandlerOutput { annotations, degradation }
    }
}

/// A handler that follows a [`KbHandle`]'s epoch swaps between requests.
///
/// The incremental KB publishes promotions by swapping the epoch behind a
/// [`KbHandle`]; serving workers must pick the new epoch up *between*
/// requests without ever blocking on the rebuild. `EpochHandler` wraps a
/// build closure (epoch → inner handler, e.g. an [`AidaHandler`] over
/// `Arc<KbEpoch>`) and re-runs it lazily when the handle's generation
/// moves:
///
/// - **Fast path** (no swap since last request): one atomic generation
///   load plus a briefly-held read lock to clone the cached handler `Arc`.
/// - **On a swap**: exactly one worker wins the rebuild mutex (`try_lock`)
///   and constructs the new handler *outside* all locks — recognizer
///   construction walks the whole dictionary, so this can be milliseconds —
///   then stores it under a pointer-store-only write lock. Every other
///   worker keeps serving the previous epoch's handler until the store
///   lands. Workers never wait on a rebuild.
///
/// The build closure receives the new generation too, so callers can tag
/// epoch-dependent caches (e.g.
/// `ned_relatedness::CachedRelatedness::advance_generation`) before scoring
/// against the new KB.
pub struct EpochHandler<H, F> {
    handle: Arc<KbHandle>,
    build: F,
    current: RwLock<(u64, Arc<H>)>,
    /// Owned (via `try_lock`) by the one worker rebuilding after a swap.
    rebuilding: Mutex<()>,
}

impl<H, F> std::fmt::Debug for EpochHandler<H, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let generation = self
            .current
            .read()
            .map(|guard| guard.0)
            .unwrap_or_else(|e| e.into_inner().0);
        f.debug_struct("EpochHandler")
            .field("generation", &generation)
            .finish_non_exhaustive()
    }
}

impl<H, F> EpochHandler<H, F>
where
    F: Fn(u64, &Arc<KbEpoch>) -> H,
{
    /// Builds the initial inner handler from the handle's current epoch.
    pub fn new(handle: Arc<KbHandle>, build: F) -> Self {
        let (generation, epoch) = handle.current();
        let inner = Arc::new(build(generation, &epoch));
        EpochHandler {
            handle,
            build,
            current: RwLock::new((generation, inner)),
            rebuilding: Mutex::new(()),
        }
    }

    /// The KB generation the cached inner handler was built against.
    pub fn generation(&self) -> u64 {
        self.current.read().map(|g| g.0).unwrap_or_else(|e| e.into_inner().0)
    }

    /// Returns the inner handler for the freshest observable epoch,
    /// rebuilding it first if this worker wins the rebuild race. Never
    /// blocks on a rebuild: losers serve the previous epoch's handler.
    fn pin(&self) -> Arc<H> {
        let target = self.handle.generation();
        let (pinned_generation, pinned) = {
            let guard = self.current.read().unwrap_or_else(|e| e.into_inner());
            (guard.0, Arc::clone(&guard.1))
        };
        if pinned_generation == target {
            return pinned;
        }
        if let Ok(_rebuild) = self.rebuilding.try_lock() {
            if let Some((generation, epoch)) = self.handle.try_current() {
                // Construct outside every lock — this is the expensive part.
                let fresh = Arc::new((self.build)(generation, &epoch));
                let mut guard = self.current.write().unwrap_or_else(|e| e.into_inner());
                *guard = (generation, Arc::clone(&fresh));
                return fresh;
            }
        }
        // A peer is rebuilding (or the writer is mid-swap): stale is fine,
        // the next request will observe the fresh handler.
        pinned
    }
}

impl<H, F> AnnotateHandler for EpochHandler<H, F>
where
    H: AnnotateHandler,
    F: Fn(u64, &Arc<KbEpoch>) -> H + Send + Sync,
{
    fn handle(&self, request: &ServeRequest, plan: &DeadlinePlan) -> HandlerOutput {
        self.pin().handle(request, plan)
    }
}

/// A closure-backed handler for tests and synthetic load models.
pub struct FnHandler<F>(F);

impl<F> std::fmt::Debug for FnHandler<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnHandler").finish_non_exhaustive()
    }
}

impl<F> FnHandler<F>
where
    F: Fn(&ServeRequest, &DeadlinePlan) -> HandlerOutput + Send + Sync,
{
    /// Wraps a closure as a handler.
    pub fn new(f: F) -> Self {
        FnHandler(f)
    }
}

impl<F> AnnotateHandler for FnHandler<F>
where
    F: Fn(&ServeRequest, &DeadlinePlan) -> HandlerOutput + Send + Sync,
{
    fn handle(&self, request: &ServeRequest, plan: &DeadlinePlan) -> HandlerOutput {
        (self.0)(request, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    use ned_kb::{DeltaKb, EntityKind, FrozenKb, KbBuilder, KbMutation};

    fn frozen() -> Arc<FrozenKb> {
        let mut builder = KbBuilder::new();
        let page = builder.add_entity("Jimmy Page", EntityKind::Person);
        builder.add_name(page, "Page", 5);
        builder.add_keyphrase(page, "led zeppelin guitarist", 3);
        Arc::new(FrozenKb::freeze(&builder.build()))
    }

    /// An inner handler that answers with the entity count of the epoch it
    /// was built over, so tests can see which epoch served a request.
    struct EpochProbe {
        entities: usize,
    }
    impl AnnotateHandler for EpochProbe {
        fn handle(&self, _request: &ServeRequest, plan: &DeadlinePlan) -> HandlerOutput {
            HandlerOutput { annotations: Vec::new(), degradation: plan.floor() }
        }
    }

    #[test]
    fn epoch_handler_rebuilds_once_per_swap() {
        let base = frozen();
        let handle = Arc::new(KbHandle::new(KbEpoch::Frozen(Arc::clone(&base))));
        let builds = AtomicUsize::new(0);
        let handler = EpochHandler::new(Arc::clone(&handle), |_generation, epoch| {
            builds.fetch_add(1, Ordering::SeqCst);
            EpochProbe { entities: epoch.entity_count() }
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1);
        assert_eq!(handler.generation(), 0);
        let n0 = handler.pin().entities;

        // No swap: repeated requests reuse the cached handler.
        handler.handle(&ServeRequest::new(1, "x"), &DeadlinePlan::Full);
        handler.handle(&ServeRequest::new(2, "x"), &DeadlinePlan::Full);
        assert_eq!(builds.load(Ordering::SeqCst), 1);

        // Promote an entity and swap: the next pin rebuilds exactly once.
        let delta = DeltaKb::build(
            Arc::clone(&base),
            vec![KbMutation::AddEntity {
                canonical_name: "Prism (emerging)".into(),
                kind: EntityKind::Other,
            }],
        )
        .unwrap();
        handle.swap(KbEpoch::Delta(Arc::new(delta)));
        assert_eq!(handler.pin().entities, n0 + 1);
        assert_eq!(builds.load(Ordering::SeqCst), 2);
        assert_eq!(handler.generation(), 1);
        handler.handle(&ServeRequest::new(3, "x"), &DeadlinePlan::Full);
        assert_eq!(builds.load(Ordering::SeqCst), 2, "one rebuild per swap");
    }

    #[test]
    fn epoch_handler_serves_stale_instead_of_waiting_on_a_rebuild() {
        let base = frozen();
        let handle = Arc::new(KbHandle::new(KbEpoch::Frozen(Arc::clone(&base))));
        let handler = EpochHandler::new(Arc::clone(&handle), |_generation, epoch| {
            EpochProbe { entities: epoch.entity_count() }
        });
        let n0 = handler.pin().entities;
        handle.swap(KbEpoch::Frozen(Arc::clone(&base)));
        // A peer worker is mid-rebuild: this worker must not wait for it.
        let _rebuild_in_progress = handler.rebuilding.lock().unwrap();
        assert_eq!(handler.pin().entities, n0, "stale epoch served");
        assert_eq!(handler.generation(), 0, "not rebuilt while peer holds the lock");
        drop(_rebuild_in_progress);
        handler.pin();
        assert_eq!(handler.generation(), 1, "rebuilds once the peer finishes");
    }

    #[test]
    fn epoch_handler_wraps_the_real_pipeline() {
        use ned_relatedness::{CachedRelatedness, MilneWitten};

        let base = frozen();
        let handle = Arc::new(KbHandle::new(KbEpoch::Frozen(Arc::clone(&base))));
        let handler = EpochHandler::new(Arc::clone(&handle), |_generation, epoch| {
            let kb = Arc::clone(epoch);
            let relatedness =
                Arc::new(CachedRelatedness::new(MilneWitten::new(Arc::clone(epoch))));
            AidaHandler::try_new(
                kb,
                relatedness,
                AidaConfig::default(),
                JointConfig::default(),
            )
            .expect("valid config")
        });
        let out =
            handler.handle(&ServeRequest::new(1, "Page played guitar."), &DeadlinePlan::Full);
        let linked_before: Vec<_> =
            out.annotations.iter().map(|a| a.entity).collect();

        // Promote an alias for a brand-new entity and swap; the handler
        // must annotate with the new epoch's dictionary.
        let delta = DeltaKb::build(
            Arc::clone(&base),
            vec![
                KbMutation::AddEntity {
                    canonical_name: "Prism (emerging)".into(),
                    kind: EntityKind::Other,
                },
                KbMutation::AddKeyphrase {
                    entity: "Prism (emerging)".into(),
                    surface: "secret surveillance program".into(),
                    count: 3,
                },
                KbMutation::AddDictionarySurface {
                    entity: "Prism (emerging)".into(),
                    surface: "Prism".into(),
                    count: 4,
                },
            ],
        )
        .unwrap();
        let promoted = delta.entity_by_name("Prism (emerging)").unwrap();
        handle.swap(KbEpoch::Delta(Arc::new(delta)));

        let out = handler
            .handle(&ServeRequest::new(2, "Prism tracked calls."), &DeadlinePlan::Full);
        assert!(
            out.annotations.iter().any(|a| a.entity == promoted),
            "promoted entity is annotatable after the swap: {:?}",
            out.annotations
        );
        assert!(!linked_before.contains(&promoted));
    }

    #[test]
    fn epoch_swap_invalidates_a_bounded_cache_shared_across_rebuilds() {
        use ned_kb::{EntityId, KbView};
        use ned_obs::Metrics;
        use ned_relatedness::{CacheConfig, CachedRelatedness, MilneWitten};

        // A measure that always reads the handle's *current* epoch, like a
        // serving worker does between requests. The bounded cache in front
        // of it survives epoch swaps; only `advance_generation` (called by
        // the rebuild closure, mirroring a production epoch handler) may
        // drop its memoized scores.
        struct LiveMw {
            handle: Arc<KbHandle>,
        }
        impl Relatedness for LiveMw {
            fn name(&self) -> &'static str {
                "live-mw"
            }
            fn relatedness(&self, a: EntityId, b: EntityId) -> f64 {
                let (_, epoch) = self.handle.current();
                MilneWitten::new(epoch).relatedness(a, b)
            }
        }

        // a and b share both of their in-linkers, so MW(a, b) is maximal
        // until a promoted entity links to only one of them.
        let mut builder = KbBuilder::new();
        let a = builder.add_entity("A", EntityKind::Other);
        let b = builder.add_entity("B", EntityKind::Other);
        let x = builder.add_entity("X", EntityKind::Other);
        let y = builder.add_entity("Y", EntityKind::Other);
        builder.add_entity("C", EntityKind::Other);
        builder.add_link(x, a);
        builder.add_link(x, b);
        builder.add_link(y, a);
        builder.add_link(y, b);
        let base = Arc::new(FrozenKb::freeze(&builder.build()));

        let handle = Arc::new(KbHandle::new(KbEpoch::Frozen(Arc::clone(&base))));
        let metrics = Metrics::new();
        // Bounded tight: generation invalidation must compose with the
        // eviction books (dropped entries count as evictions, conservation
        // stays exact).
        let cache = Arc::new(CachedRelatedness::with_config(
            LiveMw { handle: Arc::clone(&handle) },
            &metrics,
            CacheConfig::bounded(64 * ned_relatedness::ENTRY_BYTES),
        ));
        let shared = Arc::clone(&cache);
        let handler = EpochHandler::new(Arc::clone(&handle), move |generation, epoch| {
            shared.advance_generation(generation);
            EpochProbe { entities: epoch.entity_count() }
        });

        let before = cache.relatedness(a, b);
        assert!(!cache.cache().is_empty(), "the score was memoized");
        assert_eq!(before.to_bits(), cache.relatedness(a, b).to_bits(), "served from cache");

        let delta = DeltaKb::build(
            Arc::clone(&base),
            vec![
                KbMutation::AddEntity {
                    canonical_name: "Prism (emerging)".into(),
                    kind: EntityKind::Other,
                },
                KbMutation::AddLink { src: "Prism (emerging)".into(), dst: "A".into() },
            ],
        )
        .unwrap();
        let expected = MilneWitten::new(&delta).relatedness(a, b);
        assert_ne!(expected.to_bits(), before.to_bits(), "promotion changes the score");
        handle.swap(KbEpoch::Delta(Arc::new(delta)));

        // The next request pins the fresh epoch; the rebuild closure runs
        // `advance_generation`, so the stale memoized score is gone.
        handler.handle(&ServeRequest::new(1, "x"), &DeadlinePlan::Full);
        assert_eq!(
            cache.relatedness(a, b).to_bits(),
            expected.to_bits(),
            "post-swap lookups must see the promoted entity's effect"
        );
        // Conservation holds across the swap: the generation drop counted
        // its entries as evictions.
        let pc = cache.cache();
        assert!(pc.evictions() > 0, "the generation drop is accounted as evictions");
        assert_eq!(pc.inserts(), pc.evictions() + pc.len() as u64);
        assert_eq!(
            pc.misses(),
            pc.inserts() + pc.admit_rejected() + pc.stale_discards()
        );
    }

    #[test]
    fn fn_handler_passes_through() {
        let h = FnHandler::new(|_req: &ServeRequest, plan: &DeadlinePlan| HandlerOutput {
            annotations: Vec::new(),
            degradation: plan.floor(),
        });
        let out = h.handle(&ServeRequest::new(1, "x"), &DeadlinePlan::PriorOnly);
        assert_eq!(out.degradation, DegradationLevel::PriorOnly);
        assert!(out.annotations.is_empty());
    }
}
