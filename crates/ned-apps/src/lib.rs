#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! Applications built on the disambiguation stack (Chapter 6).
//!
//! - [`search`]: entity-centric search over "strings, things, and cats" —
//!   documents are indexed by their words (*strings*), the canonical
//!   entities a disambiguator found in them (*things*), and the semantic
//!   classes of those entities (*cats*), so queries can mix all three
//!   (§6.1).
//! - [`analytics`]: entity-level news analytics — per-entity mention time
//!   series, entity co-occurrence mining, trend detection, and emerging-
//!   name tracking over a disambiguated news stream (§6.2).

pub mod analytics;
pub mod search;

pub use analytics::NewsAnalytics;
pub use search::{EntityIndex, Query, SearchHit};
