//! Entity-centric search: strings, things, and cats (§6.1).
//!
//! Documents are indexed along three dimensions:
//! - **strings**: their (non-stopword) words, scored tf·idf;
//! - **things**: the canonical entities a disambiguator assigned to their
//!   mentions — a query for the entity `Kashmir (song)` matches documents
//!   about the song regardless of the surface form used;
//! - **cats**: the semantic classes of those entities, so "all documents
//!   mentioning a *location* called Kashmir" is expressible.
//!
//! Scoring sums idf-weighted string matches with entity and category match
//! boosts; all query dimensions are conjunctive filters when marked
//! required.

use std::collections::HashMap;

use ned_kb::fx::FxHashMap;
use ned_kb::{EntityId, EntityKind, KbView};
use ned_obs::{names, Counter, Metrics};
use ned_text::stopwords::is_stopword;
use ned_text::{Token, TokenKind};

/// A search query mixing the three dimensions.
#[derive(Debug, Clone, Default)]
pub struct Query {
    /// Words that should occur ("strings").
    pub terms: Vec<String>,
    /// Entities that must have been disambiguated in the document
    /// ("things").
    pub entities: Vec<EntityId>,
    /// Entity classes at least one disambiguated entity must carry
    /// ("cats").
    pub kinds: Vec<EntityKind>,
}

impl Query {
    /// A pure string query.
    pub fn strings(terms: &[&str]) -> Self {
        Query { terms: terms.iter().map(|s| s.to_string()).collect(), ..Default::default() }
    }

    /// A pure entity query.
    pub fn things(entities: &[EntityId]) -> Self {
        Query { entities: entities.to_vec(), ..Default::default() }
    }
}

/// One ranked result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// The document id given at indexing time.
    pub doc_id: String,
    /// Relevance score.
    pub score: f64,
}

#[derive(Debug, Default)]
struct DocRecord {
    id: String,
    /// Term frequencies over lowercased non-stopword words.
    term_freqs: FxHashMap<String, u32>,
    /// Disambiguated entity mention counts.
    entity_freqs: FxHashMap<EntityId, u32>,
    token_count: usize,
}

/// An entity suggestion for query auto-completion (§6.1.3).
#[derive(Debug, Clone, PartialEq)]
pub struct Suggestion {
    /// The suggested entity.
    pub entity: EntityId,
    /// Canonical display name.
    pub name: String,
    /// How many indexed documents mention the entity.
    pub document_count: u32,
}

/// The index over disambiguated documents.
///
/// Generic over the KB handle: pass `&KnowledgeBase` for the classic
/// borrowed style or (a clone of) an `Arc<FrozenKb>` for a fully owned
/// index that can move across threads.
pub struct EntityIndex<K> {
    kb: K,
    docs: Vec<DocRecord>,
    /// term → document indexes (for df).
    term_df: HashMap<String, u32>,
    queries: Counter,
    docs_returned: Counter,
}

// Manual Debug: the KB handle and per-document term maps would dump the
// whole collection.
impl<K> std::fmt::Debug for EntityIndex<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EntityIndex")
            .field("docs", &self.docs.len())
            .field("distinct_terms", &self.term_df.len())
            .finish_non_exhaustive()
    }
}

impl<K: KbView> EntityIndex<K> {
    /// Creates an empty index over `kb`.
    pub fn new(kb: K) -> Self {
        EntityIndex {
            kb,
            docs: Vec::new(),
            term_df: HashMap::new(),
            queries: Counter::disabled(),
            docs_returned: Counter::disabled(),
        }
    }

    /// Records query/result counters into `metrics` (builder style).
    #[must_use]
    pub fn with_metrics(mut self, metrics: &Metrics) -> Self {
        self.queries = metrics.counter(names::SEARCH_QUERIES);
        self.docs_returned = metrics.counter(names::SEARCH_DOCS_RETURNED);
        self
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Indexes one document: its tokens plus the labels a disambiguator
    /// produced for its mentions (`None` labels — out-of-KB — are skipped).
    pub fn add_document(
        &mut self,
        doc_id: impl Into<String>,
        tokens: &[Token],
        labels: &[Option<EntityId>],
    ) {
        let mut record = DocRecord { id: doc_id.into(), token_count: tokens.len(), ..Default::default() };
        for t in tokens {
            if t.kind != TokenKind::Word || is_stopword(&t.text) {
                continue;
            }
            *record.term_freqs.entry(t.lower()).or_insert(0) += 1;
        }
        for term in record.term_freqs.keys() {
            *self.term_df.entry(term.clone()).or_insert(0) += 1;
        }
        for label in labels.iter().flatten() {
            *record.entity_freqs.entry(*label).or_insert(0) += 1;
        }
        self.docs.push(record);
    }

    /// Inverse document frequency of a term in the indexed collection.
    fn idf(&self, term: &str) -> f64 {
        let df = self.term_df.get(term).copied().unwrap_or(0);
        if df == 0 {
            return 0.0;
        }
        ((self.docs.len() as f64 + 1.0) / (df as f64)).ln()
    }

    /// Entity auto-completion: the `k` indexed entities whose canonical
    /// name or any dictionary surface starts with `prefix`
    /// (case-insensitively), ranked by how many documents mention them —
    /// the search application's query-completion use case (§6.1.3).
    pub fn suggest(&self, prefix: &str, k: usize) -> Vec<Suggestion> {
        if prefix.is_empty() {
            return Vec::new();
        }
        let prefix = prefix.to_lowercase();
        // Document counts per entity across the index.
        let mut doc_counts: FxHashMap<EntityId, u32> = FxHashMap::default();
        for doc in &self.docs {
            for &e in doc.entity_freqs.keys() {
                *doc_counts.entry(e).or_insert(0) += 1;
            }
        }
        // Candidate entities by name prefix (canonical names + surfaces).
        let mut matched: FxHashMap<EntityId, ()> = FxHashMap::default();
        for (surface, cands) in self.kb.dictionary().iter() {
            if surface.to_lowercase().starts_with(&prefix) {
                for c in cands {
                    matched.insert(c.entity, ());
                }
            }
        }
        let mut out: Vec<Suggestion> = matched
            .into_keys()
            .filter_map(|e| {
                let count = doc_counts.get(&e).copied().unwrap_or(0);
                (count > 0).then(|| Suggestion {
                    entity: e,
                    name: self.kb.entity(e).canonical_name.clone(),
                    document_count: count,
                })
            })
            .collect();
        out.sort_by(|a, b| b.document_count.cmp(&a.document_count).then(a.name.cmp(&b.name)));
        out.truncate(k);
        out
    }

    /// Runs a query, returning the top `k` hits by descending score.
    ///
    /// Entity and kind constraints are conjunctive filters; string terms
    /// contribute tf·idf scores (documents matching no term at all still
    /// qualify if entity/kind constraints matched).
    pub fn search(&self, query: &Query, k: usize) -> Vec<SearchHit> {
        self.queries.inc();
        let mut hits: Vec<SearchHit> = self
            .docs
            .iter()
            .filter_map(|doc| {
                // Things: every requested entity must be present.
                if !query.entities.iter().all(|e| doc.entity_freqs.contains_key(e)) {
                    return None;
                }
                // Cats: at least one entity of each requested kind.
                for kind in &query.kinds {
                    let any = doc
                        .entity_freqs
                        .keys()
                        .any(|&e| self.kb.entity(e).kind == *kind);
                    if !any {
                        return None;
                    }
                }
                let mut score = 0.0;
                let mut matched_any_term = query.terms.is_empty();
                for term in &query.terms {
                    let term = term.to_lowercase();
                    if let Some(&tf) = doc.term_freqs.get(&term) {
                        matched_any_term = true;
                        let norm = (doc.token_count.max(1)) as f64;
                        score += (1.0 + f64::from(tf).ln()) * self.idf(&term)
                            / norm.ln().max(1.0);
                    }
                }
                if !matched_any_term && query.entities.is_empty() && query.kinds.is_empty() {
                    return None;
                }
                if !matched_any_term {
                    // Pure entity/kind query: score by entity mention mass.
                    score = 0.0;
                }
                // Entity boost: mentions of requested entities.
                for e in &query.entities {
                    let freq = doc.entity_freqs.get(e).copied().unwrap_or(0);
                    score += 2.0 * f64::from(freq);
                }
                (score > 0.0 || !query.entities.is_empty() || !query.kinds.is_empty())
                    .then(|| SearchHit { doc_id: doc.id.clone(), score })
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score.total_cmp(&a.score).then(a.doc_id.cmp(&b.doc_id))
        });
        hits.truncate(k);
        self.docs_returned.add(hits.len() as u64);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ned_kb::{EntityKind, KbBuilder, KnowledgeBase};
    use ned_text::tokenize;

    fn kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        let song = b.add_entity("Kashmir (song)", EntityKind::Work);
        let region = b.add_entity("Kashmir (region)", EntityKind::Location);
        b.add_name(song, "Kashmir", 1);
        b.add_name(region, "Kashmir", 1);
        b.build()
    }

    fn index(kb: &KnowledgeBase) -> EntityIndex<&KnowledgeBase> {
        let song = kb.entity_by_name("Kashmir (song)").unwrap();
        let region = kb.entity_by_name("Kashmir (region)").unwrap();
        let mut idx = EntityIndex::new(kb);
        let t1 = tokenize("the band performed Kashmir live with heavy guitars");
        idx.add_document("music-doc", &t1, &[Some(song)]);
        let t2 = tokenize("tensions rose in the Kashmir valley region today");
        idx.add_document("news-doc", &t2, &[Some(region)]);
        let t3 = tokenize("a travel guide without any entities mentioning guitars");
        idx.add_document("other-doc", &t3, &[None]);
        idx
    }

    #[test]
    fn string_query_ranks_by_tfidf() {
        let kb = kb();
        let idx = index(&kb);
        let hits = idx.search(&Query::strings(&["guitars"]), 10);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().any(|h| h.doc_id == "music-doc"));
    }

    #[test]
    fn thing_query_disambiguates_the_surface() {
        let kb = kb();
        let idx = index(&kb);
        // Both documents contain the word "Kashmir", but only one contains
        // the *song* entity.
        let song = kb.entity_by_name("Kashmir (song)").unwrap();
        let hits = idx.search(&Query::things(&[song]), 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc_id, "music-doc");
    }

    #[test]
    fn cat_query_filters_by_kind() {
        let kb = kb();
        let idx = index(&kb);
        let hits = idx.search(
            &Query { kinds: vec![EntityKind::Location], ..Default::default() },
            10,
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc_id, "news-doc");
    }

    #[test]
    fn combined_query_is_conjunctive() {
        let kb = kb();
        let idx = index(&kb);
        let song = kb.entity_by_name("Kashmir (song)").unwrap();
        let q = Query {
            terms: vec!["guitars".into()],
            entities: vec![song],
            kinds: vec![],
        };
        let hits = idx.search(&q, 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc_id, "music-doc");
        // Conflicting constraints match nothing.
        let q = Query { entities: vec![song], kinds: vec![EntityKind::Location], ..Default::default() };
        assert!(idx.search(&q, 10).is_empty());
    }

    #[test]
    fn suggestions_complete_prefixes() {
        let kb = kb();
        let idx = index(&kb);
        // "Kash" completes to both Kashmir senses, but only the mentioned
        // ones are suggested, ranked by document count.
        let suggestions = idx.suggest("Kash", 10);
        assert_eq!(suggestions.len(), 2, "{suggestions:?}");
        for s in &suggestions {
            assert!(s.name.starts_with("Kashmir"));
            assert_eq!(s.document_count, 1);
        }
        // Case-insensitive; empty prefix suggests nothing.
        assert_eq!(idx.suggest("kashm", 10).len(), 2);
        assert!(idx.suggest("", 10).is_empty());
        assert!(idx.suggest("Zzz", 10).is_empty());
        // Truncation.
        assert_eq!(idx.suggest("Kash", 1).len(), 1);
    }

    #[test]
    fn empty_query_matches_nothing() {
        let kb = kb();
        let idx = index(&kb);
        assert!(idx.search(&Query::default(), 10).is_empty());
    }

    #[test]
    fn query_counters_accumulate() {
        use ned_obs::{names, Metrics};
        let kb = kb();
        let metrics = Metrics::new();
        let song = kb.entity_by_name("Kashmir (song)").unwrap();
        let idx = {
            let mut idx = EntityIndex::new(&kb).with_metrics(&metrics);
            let t1 = tokenize("the band performed Kashmir live with heavy guitars");
            idx.add_document("music-doc", &t1, &[Some(song)]);
            idx
        };
        idx.search(&Query::strings(&["guitars"]), 10);
        idx.search(&Query::strings(&["nothing-matches-this"]), 10);
        assert_eq!(metrics.counter_value(names::SEARCH_QUERIES), 2);
        assert_eq!(metrics.counter_value(names::SEARCH_DOCS_RETURNED), 1);
    }

    #[test]
    fn top_k_truncation() {
        let kb = kb();
        let idx = index(&kb);
        let hits = idx.search(&Query::strings(&["guitars"]), 1);
        assert_eq!(hits.len(), 1);
    }
}
