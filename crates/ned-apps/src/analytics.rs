//! Entity-level news analytics (§6.2).
//!
//! Consumes a disambiguated, timestamped document stream and supports the
//! use cases of the thesis' analytics system: entity mention time series,
//! entity co-occurrence mining, per-day trend detection, and tracking of
//! emerging (out-of-KB) names.

use std::collections::HashMap;

use ned_kb::fx::FxHashMap;
use ned_kb::EntityId;
use ned_obs::{names, Counter, Metrics};

/// Aggregated analytics state over a stream of disambiguated documents.
#[derive(Debug, Default)]
pub struct NewsAnalytics {
    /// entity → (day → mention count).
    timelines: FxHashMap<EntityId, HashMap<u32, u32>>,
    /// Unordered entity co-occurrence (same document) counts.
    cooccurrence: FxHashMap<(EntityId, EntityId), u32>,
    /// day → (emerging surface → count).
    emerging: HashMap<u32, HashMap<String, u32>>,
    /// Days observed.
    days: Vec<u32>,
    /// Total documents consumed.
    doc_count: usize,
    docs_indexed: Counter,
    mentions_indexed: Counter,
}

impl NewsAnalytics {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records ingestion counters into `metrics` (builder style).
    #[must_use]
    pub fn with_metrics(mut self, metrics: &Metrics) -> Self {
        self.docs_indexed = metrics.counter(names::ANALYTICS_DOCS_INDEXED);
        self.mentions_indexed = metrics.counter(names::ANALYTICS_MENTIONS_INDEXED);
        self
    }

    /// Number of documents consumed.
    pub fn doc_count(&self) -> usize {
        self.doc_count
    }

    /// Feeds one disambiguated document: its day stamp plus, per mention,
    /// the surface and the label (`None` = emerging).
    pub fn add_document(&mut self, day: u32, mentions: &[(String, Option<EntityId>)]) {
        self.doc_count += 1;
        self.docs_indexed.inc();
        self.mentions_indexed.add(mentions.len() as u64);
        if !self.days.contains(&day) {
            self.days.push(day);
            self.days.sort_unstable();
        }
        let mut doc_entities: Vec<EntityId> = Vec::new();
        for (surface, label) in mentions {
            match label {
                Some(e) => {
                    *self.timelines.entry(*e).or_default().entry(day).or_insert(0) += 1;
                    doc_entities.push(*e);
                }
                None => {
                    *self
                        .emerging
                        .entry(day)
                        .or_default()
                        .entry(surface.clone())
                        .or_insert(0) += 1;
                }
            }
        }
        doc_entities.sort_unstable();
        doc_entities.dedup();
        for (i, &a) in doc_entities.iter().enumerate() {
            for &b in &doc_entities[i + 1..] {
                *self.cooccurrence.entry((a, b)).or_insert(0) += 1;
            }
        }
    }

    /// Mention counts of `entity` per day, sorted by day.
    pub fn timeline(&self, entity: EntityId) -> Vec<(u32, u32)> {
        let mut t: Vec<(u32, u32)> = self
            .timelines
            .get(&entity)
            .map(|m| m.iter().map(|(&d, &c)| (d, c)).collect())
            .unwrap_or_default();
        t.sort_unstable();
        t
    }

    /// Total mentions of `entity`.
    pub fn total_mentions(&self, entity: EntityId) -> u32 {
        self.timelines.get(&entity).map(|m| m.values().sum()).unwrap_or(0)
    }

    /// The `k` entities most frequently co-occurring with `entity`.
    pub fn co_occurring(&self, entity: EntityId, k: usize) -> Vec<(EntityId, u32)> {
        let mut partners: Vec<(EntityId, u32)> = self
            .cooccurrence
            .iter()
            .filter_map(|(&(a, b), &c)| {
                if a == entity {
                    Some((b, c))
                } else if b == entity {
                    Some((a, c))
                } else {
                    None
                }
            })
            .collect();
        partners.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        partners.truncate(k);
        partners
    }

    /// Entities trending on `day`: mention count at least `factor` times
    /// their mean daily count over all observed days, requiring a minimum
    /// of `min_mentions` on the day. Sorted by descending lift.
    pub fn trending(&self, day: u32, factor: f64, min_mentions: u32) -> Vec<(EntityId, f64)> {
        let n_days = self.days.len().max(1) as f64;
        let mut out: Vec<(EntityId, f64)> = self
            .timelines
            .iter()
            .filter_map(|(&e, per_day)| {
                let today = per_day.get(&day).copied().unwrap_or(0);
                if today < min_mentions {
                    return None;
                }
                let mean = per_day.values().sum::<u32>() as f64 / n_days;
                let lift = f64::from(today) / mean.max(f64::MIN_POSITIVE);
                (lift >= factor).then_some((e, lift))
            })
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Emerging (out-of-KB) surfaces observed on `day` with counts, sorted
    /// by descending count — the feed a KB maintainer would review for
    /// promotion (§5.6).
    pub fn emerging_names(&self, day: u32) -> Vec<(String, u32)> {
        let mut names: Vec<(String, u32)> = self
            .emerging
            .get(&day)
            .map(|m| m.iter().map(|(n, &c)| (n.clone(), c)).collect())
            .unwrap_or_default();
        names.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    fn m(surface: &str, label: Option<EntityId>) -> (String, Option<EntityId>) {
        (surface.to_string(), label)
    }

    fn analytics() -> NewsAnalytics {
        let mut a = NewsAnalytics::new();
        // Day 0: quiet.
        a.add_document(0, &[m("Alpha", Some(e(1))), m("Beta", Some(e(2)))]);
        a.add_document(0, &[m("Alpha", Some(e(1)))]);
        // Day 1: entity 3 bursts; an emerging name appears.
        a.add_document(1, &[m("Gamma", Some(e(3))), m("Alpha", Some(e(1)))]);
        a.add_document(1, &[m("Gamma", Some(e(3))), m("Gamma", Some(e(3)))]);
        a.add_document(1, &[m("Prism", None), m("Gamma", Some(e(3)))]);
        a
    }

    #[test]
    fn timelines_accumulate() {
        let a = analytics();
        assert_eq!(a.timeline(e(1)), vec![(0, 2), (1, 1)]);
        assert_eq!(a.total_mentions(e(3)), 4);
        assert!(a.timeline(e(99)).is_empty());
        assert_eq!(a.doc_count(), 5);
    }

    #[test]
    fn co_occurrence_counts_document_pairs() {
        let a = analytics();
        let partners = a.co_occurring(e(1), 10);
        assert!(partners.contains(&(e(2), 1)));
        assert!(partners.contains(&(e(3), 1)));
        // Repeated mentions in one document count once per pair.
        let g = a.co_occurring(e(3), 10);
        assert_eq!(g.iter().find(|&&(p, _)| p == e(1)).map(|&(_, c)| c), Some(1));
    }

    #[test]
    fn trending_detects_bursts() {
        let a = analytics();
        let trends = a.trending(1, 1.5, 2);
        assert!(trends.iter().any(|&(ent, _)| ent == e(3)), "{trends:?}");
        // Entity 1 is flat and must not trend.
        assert!(!trends.iter().any(|&(ent, _)| ent == e(1)));
    }

    #[test]
    fn emerging_names_are_tracked_per_day() {
        let a = analytics();
        assert_eq!(a.emerging_names(1), vec![("Prism".to_string(), 1)]);
        assert!(a.emerging_names(0).is_empty());
    }

    #[test]
    fn ingestion_counters_accumulate() {
        use ned_obs::{names, Metrics};
        let metrics = Metrics::new();
        let mut a = NewsAnalytics::new().with_metrics(&metrics);
        a.add_document(0, &[m("Alpha", Some(e(1))), m("Prism", None)]);
        a.add_document(1, &[m("Beta", Some(e(2)))]);
        assert_eq!(metrics.counter_value(names::ANALYTICS_DOCS_INDEXED), 2);
        assert_eq!(metrics.counter_value(names::ANALYTICS_MENTIONS_INDEXED), 3);
    }

    #[test]
    fn empty_state() {
        let a = NewsAnalytics::new();
        assert_eq!(a.doc_count(), 0);
        assert!(a.trending(0, 1.0, 1).is_empty());
        assert!(a.co_occurring(e(1), 5).is_empty());
    }
}
