//! String interning for keywords and keyphrases.
//!
//! Keyphrases (§4.3.1) are sequences of keywords; both are interned so that
//! all downstream computation works on dense `u32` ids. Interning is
//! case-insensitive for keywords: "Guitarist" and "guitarist" are the same
//! keyword, matching how the paper compares keyphrase tokens against input
//! text tokens.

use ned_core::NedError;
use serde::{Deserialize, Serialize};

use crate::fx::FxHashMap;
use crate::ids::{PhraseId, WordId};

/// Interner for single keywords.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct WordInterner {
    words: Vec<String>,
    #[serde(skip)]
    index: FxHashMap<String, WordId>,
}

impl WordInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `word` (lowercased) and returns its id.
    pub fn intern(&mut self, word: &str) -> WordId {
        let key = word.to_lowercase();
        if let Some(&id) = self.index.get(&key) {
            return id;
        }
        let id = WordId::from_index(self.words.len());
        self.words.push(key.clone());
        self.index.insert(key, id);
        id
    }

    /// Looks up an already-interned word without inserting.
    pub fn get(&self, word: &str) -> Option<WordId> {
        let key = word.to_lowercase();
        self.index.get(&key).copied()
    }

    /// Returns the lowercased text of an interned word, or `""` for an id
    /// this interner never issued (total — use [`WordInterner::try_text`]
    /// to surface unknown ids as errors).
    pub fn text(&self, id: WordId) -> &str {
        self.words.get(id.index()).map_or("", String::as_str)
    }

    /// Returns the lowercased text of an interned word, reporting an id
    /// this interner never issued as [`NedError::Lookup`].
    pub fn try_text(&self, id: WordId) -> Result<&str, NedError> {
        self.words.get(id.index()).map(String::as_str).ok_or_else(|| NedError::Lookup {
            what: "word id",
            key: id.index().to_string(),
        })
    }

    /// Number of distinct words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if no words are interned.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Rebuilds the lookup index after deserialization.
    pub(crate) fn rebuild_index(&mut self) {
        self.index = self
            .words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), WordId::from_index(i)))
            .collect();
    }

    /// Reconstructs an interner from already-lowercased words in id order
    /// (the thaw path of [`crate::delta`]): word `i` keeps id `i`.
    pub(crate) fn from_words(words: Vec<String>) -> Self {
        let mut interner = WordInterner { words, index: FxHashMap::default() };
        interner.rebuild_index();
        interner
    }
}

/// Interner for keyphrases (word-id sequences).
///
/// Two phrases with the same word sequence share a [`PhraseId`]; the original
/// surface string of the first occurrence is kept for display.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct PhraseInterner {
    phrases: Vec<Vec<WordId>>,
    surfaces: Vec<String>,
    #[serde(skip)]
    index: FxHashMap<Vec<WordId>, PhraseId>,
}

impl PhraseInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a phrase given as a surface string; words are split on
    /// whitespace and interned through `words`.
    pub fn intern(&mut self, surface: &str, words: &mut WordInterner) -> PhraseId {
        let word_ids: Vec<WordId> = surface.split_whitespace().map(|w| words.intern(w)).collect();
        assert!(!word_ids.is_empty(), "keyphrase must contain at least one word");
        if let Some(&id) = self.index.get(&word_ids) {
            return id;
        }
        let id = PhraseId::from_index(self.phrases.len());
        self.index.insert(word_ids.clone(), id);
        self.phrases.push(word_ids);
        self.surfaces.push(surface.to_string());
        id
    }

    /// Looks up a phrase without inserting.
    pub fn get(&self, surface: &str, words: &WordInterner) -> Option<PhraseId> {
        let word_ids: Option<Vec<WordId>> =
            surface.split_whitespace().map(|w| words.get(w)).collect();
        self.index.get(&word_ids?).copied()
    }

    /// Word-id sequence of the phrase, or `&[]` for an id this interner
    /// never issued (total — use [`PhraseInterner::try_words`] to surface
    /// unknown ids as errors).
    pub fn words(&self, id: PhraseId) -> &[WordId] {
        self.phrases.get(id.index()).map_or(&[], Vec::as_slice)
    }

    /// Word-id sequence of the phrase, reporting an id this interner never
    /// issued as [`NedError::Lookup`].
    pub fn try_words(&self, id: PhraseId) -> Result<&[WordId], NedError> {
        self.phrases.get(id.index()).map(Vec::as_slice).ok_or_else(|| NedError::Lookup {
            what: "phrase id",
            key: id.index().to_string(),
        })
    }

    /// Original surface text of the phrase, or `""` for an id this
    /// interner never issued (total — use [`PhraseInterner::try_surface`]
    /// to surface unknown ids as errors).
    pub fn surface(&self, id: PhraseId) -> &str {
        self.surfaces.get(id.index()).map_or("", String::as_str)
    }

    /// Original surface text of the phrase, reporting an id this interner
    /// never issued as [`NedError::Lookup`].
    pub fn try_surface(&self, id: PhraseId) -> Result<&str, NedError> {
        self.surfaces.get(id.index()).map(String::as_str).ok_or_else(|| NedError::Lookup {
            what: "phrase id",
            key: id.index().to_string(),
        })
    }

    /// Number of distinct phrases.
    pub fn len(&self) -> usize {
        self.phrases.len()
    }

    /// True if no phrases are interned.
    pub fn is_empty(&self) -> bool {
        self.phrases.is_empty()
    }

    /// Rebuilds the lookup index after deserialization.
    pub(crate) fn rebuild_index(&mut self) {
        self.index = self
            .phrases
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), PhraseId::from_index(i)))
            .collect();
    }

    /// Reconstructs an interner from parallel phrase/surface rows in id
    /// order (the thaw path of [`crate::delta`]): phrase `i` keeps id `i`.
    pub(crate) fn from_parts(phrases: Vec<Vec<WordId>>, surfaces: Vec<String>) -> Self {
        let mut interner = PhraseInterner { phrases, surfaces, index: FxHashMap::default() };
        interner.rebuild_index();
        interner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_interning_is_case_insensitive() {
        let mut w = WordInterner::new();
        let a = w.intern("Guitarist");
        let b = w.intern("guitarist");
        assert_eq!(a, b);
        assert_eq!(w.text(a), "guitarist");
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn distinct_words_get_distinct_ids() {
        let mut w = WordInterner::new();
        assert_ne!(w.intern("rock"), w.intern("guitarist"));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn phrase_interning_dedupes_by_word_sequence() {
        let mut w = WordInterner::new();
        let mut p = PhraseInterner::new();
        let a = p.intern("English rock guitarist", &mut w);
        let b = p.intern("english ROCK guitarist", &mut w);
        assert_eq!(a, b);
        assert_eq!(p.words(a).len(), 3);
        assert_eq!(p.surface(a), "English rock guitarist");
    }

    #[test]
    fn phrase_get_without_insert() {
        let mut w = WordInterner::new();
        let mut p = PhraseInterner::new();
        let id = p.intern("hard rock", &mut w);
        assert_eq!(p.get("hard rock", &w), Some(id));
        assert_eq!(p.get("soft rock", &w), None);
        assert_eq!(p.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn empty_phrase_panics() {
        let mut w = WordInterner::new();
        let mut p = PhraseInterner::new();
        p.intern("   ", &mut w);
    }

    #[test]
    fn accessors_are_total_on_unknown_ids() {
        let mut w = WordInterner::new();
        let mut p = PhraseInterner::new();
        w.intern("rock");
        p.intern("hard rock", &mut w);
        let bad_word = WordId::from_index(99);
        let bad_phrase = PhraseId::from_index(99);
        assert_eq!(w.text(bad_word), "");
        assert_eq!(p.words(bad_phrase), &[] as &[WordId]);
        assert_eq!(p.surface(bad_phrase), "");
    }

    #[test]
    fn try_accessors_report_typed_lookup_errors() {
        let mut w = WordInterner::new();
        let mut p = PhraseInterner::new();
        let wid = w.intern("rock");
        let pid = p.intern("hard rock", &mut w);
        assert_eq!(w.try_text(wid).unwrap(), "rock");
        assert_eq!(p.try_words(pid).unwrap().len(), 2);
        assert_eq!(p.try_surface(pid).unwrap(), "hard rock");
        let err = w.try_text(WordId::from_index(99)).unwrap_err();
        assert!(matches!(err, NedError::Lookup { what: "word id", .. }), "{err}");
        let err = p.try_words(PhraseId::from_index(99)).unwrap_err();
        assert!(matches!(err, NedError::Lookup { what: "phrase id", .. }), "{err}");
        let err = p.try_surface(PhraseId::from_index(99)).unwrap_err();
        assert!(err.to_string().contains("phrase id"), "{err}");
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut w = WordInterner::new();
        let mut p = PhraseInterner::new();
        let id = p.intern("session guitarist", &mut w);
        let mut w2 = w.clone();
        let mut p2 = p.clone();
        w2.rebuild_index();
        p2.rebuild_index();
        assert_eq!(w2.get("session"), w.get("session"));
        assert_eq!(p2.get("session guitarist", &w2), Some(id));
    }
}
