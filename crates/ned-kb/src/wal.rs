//! Append-only write-ahead log of [`KbMutation`] records.
//!
//! The WAL is the durability half of the incremental KB (DESIGN.md §15):
//! every mutation the emerging-entity loop wants to make is appended here
//! *before* it is folded into a [`crate::delta::DeltaKb`] overlay, so a
//! crash between promotion and compaction loses nothing — reopening the
//! log replays the surviving prefix into the same overlay.
//!
//! ## Format
//!
//! The file shares the framing discipline of snapshot v3
//! ([`crate::snapshot`]):
//!
//! ```text
//! header: magic "AIDAWL" (6) + format version u16 LE (2)
//! frame:  tag u8 (1) + body length u64 LE (8) + FNV-1a checksum u64 LE (8)
//! body:   codec-encoded { seq: u64, mutation: KbMutation }
//! ```
//!
//! Records carry explicit sequence numbers so replay is **idempotent**: a
//! crash between a write and its acknowledgement may duplicate an append,
//! and replay skips any record whose sequence number it has already passed.
//!
//! ## Recovery contract
//!
//! - A **torn tail** (truncated header, prelude, or body at end-of-file) is
//!   not an error: replay recovers every complete record before it and
//!   [`Wal::open`] truncates the file back to that valid prefix.
//! - A **checksum mismatch**, **unknown frame tag**, **sequence gap**, or
//!   **undecodable body** anywhere is unrecoverable corruption and yields
//!   the matching typed [`WalError`] — never a panic, never silently wrong
//!   mutations.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ned_core::{NedError, WalError};
use ned_obs::{names, Metrics};
use serde::{Deserialize, Serialize};

use crate::mutation::{KbMutation, WireMutation};
use crate::snapshot::{decode, encode, fnv1a};

/// Magic bytes identifying a knowledge-base WAL.
const MAGIC: &[u8; 6] = b"AIDAWL";

/// Current WAL format version.
pub const WAL_FORMAT_VERSION: u16 = 1;

/// Header layout: magic (6) + version u16 (2), little-endian.
const HEADER_LEN: usize = 8;

/// Frame prelude: tag u8 (1) + body length u64 (8) + FNV-1a checksum u64
/// (8), little-endian — the same shape as a snapshot v3 section frame.
const FRAME_PRELUDE_LEN: usize = 17;

/// The only frame tag of format version 1: one mutation record.
const TAG_RECORD: u8 = 1;

/// One framed WAL body: a sequence number plus the mutation it carries
/// (in its flat wire form).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct WalRecord {
    seq: u64,
    mutation: WireMutation,
}

/// Outcome of replaying a WAL byte stream.
#[derive(Debug, Clone, Default)]
pub struct WalReplay {
    /// The recovered mutations, in sequence order, deduplicated.
    pub mutations: Vec<KbMutation>,
    /// Complete records observed (including skipped duplicates).
    pub records: u64,
    /// Duplicate appends skipped by sequence number (crash-recovery
    /// idempotence).
    pub duplicates_skipped: u64,
    /// Length in bytes of the valid prefix (header + complete records).
    pub valid_len: u64,
    /// Bytes of torn tail discarded after the valid prefix (0 for a clean
    /// log).
    pub torn_tail_bytes: u64,
}

impl WalReplay {
    /// Sequence number the next append should carry.
    pub fn next_seq(&self) -> u64 {
        self.mutations.len() as u64
    }

    /// True when a torn tail was discarded during recovery.
    pub fn recovered_torn_tail(&self) -> bool {
        self.torn_tail_bytes > 0
    }
}

/// The 8-byte header a fresh WAL starts with.
fn header_bytes() -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..6].copy_from_slice(MAGIC); // ned-lint: allow(p1) — fixed-size buffer, constant bounds
    h[6..8].copy_from_slice(&WAL_FORMAT_VERSION.to_le_bytes()); // ned-lint: allow(p1) — fixed-size buffer, constant bounds
    h
}

/// Replays a WAL byte stream into its mutation sequence.
///
/// Pure over the bytes: no file is touched, which is what the
/// fault-injection suite drives. See the module docs for the recovery
/// contract (torn tail → recovered prefix; corruption → typed error).
// ned-lint: entry — WAL replay is a recovery root, reachable from any
// binary that opens a log rather than only via the serving/bench mains.
pub fn replay(bytes: &[u8]) -> Result<WalReplay, NedError> {
    let mut out = WalReplay::default();
    if bytes.is_empty() {
        // A file that never got its header written: a fresh log.
        return Ok(out);
    }
    let header = header_bytes();
    if bytes.len() < HEADER_LEN {
        // Shorter than the header: a torn header write if the bytes agree
        // with the header prefix, some other file if they do not.
        if header.starts_with(bytes) {
            out.torn_tail_bytes = bytes.len() as u64;
            return Ok(out);
        }
        return Err(WalError::BadMagic.into());
    }
    if !bytes.starts_with(MAGIC) {
        return Err(WalError::BadMagic.into());
    }
    // ned-lint: allow(p1) — length checked ≥ HEADER_LEN above
    let version = u16::from_le_bytes([bytes[6], bytes[7]]);
    if version != WAL_FORMAT_VERSION {
        return Err(WalError::UnsupportedVersion {
            found: version,
            supported: WAL_FORMAT_VERSION,
        }
        .into());
    }

    let mut pos = HEADER_LEN;
    out.valid_len = pos as u64;
    let mut next_seq = 0u64;
    while pos < bytes.len() {
        let rest = bytes.get(pos..).unwrap_or(&[]);
        if rest.len() < FRAME_PRELUDE_LEN {
            // Torn prelude at end-of-file: recover the prefix.
            break;
        }
        let Some(&tag) = rest.first() else { break };
        if tag != TAG_RECORD {
            return Err(WalError::UnknownFrameTag { tag }.into());
        }
        let mut len_bytes = [0u8; 8];
        len_bytes.copy_from_slice(&rest[1..9]); // ned-lint: allow(p1) — length checked ≥ FRAME_PRELUDE_LEN above
        let body_len = u64::from_le_bytes(len_bytes) as usize;
        let mut sum_bytes = [0u8; 8];
        sum_bytes.copy_from_slice(&rest[9..17]); // ned-lint: allow(p1) — length checked ≥ FRAME_PRELUDE_LEN above
        let expected_sum = u64::from_le_bytes(sum_bytes);
        let body_start = FRAME_PRELUDE_LEN;
        let Some(body_end) = body_start.checked_add(body_len) else {
            // A length this absurd cannot be a real frame; with the file
            // ending inside it, it is indistinguishable from a torn write.
            break;
        };
        if rest.len() < body_end {
            // Torn body at end-of-file: recover the prefix.
            break;
        }
        let body = &rest[body_start..body_end]; // ned-lint: allow(p1) — bounds checked above
        let actual_sum = fnv1a(body);
        if actual_sum != expected_sum {
            return Err(WalError::ChecksumMismatch {
                offset: pos as u64,
                expected: expected_sum,
                actual: actual_sum,
            }
            .into());
        }
        let record: WalRecord = decode(body).map_err(|e| WalError::Codec {
            offset: pos as u64,
            message: e.to_string(),
        })?;
        out.records += 1;
        match record.seq.cmp(&next_seq) {
            std::cmp::Ordering::Less => out.duplicates_skipped += 1,
            std::cmp::Ordering::Equal => {
                out.mutations.push(KbMutation::from(record.mutation));
                next_seq += 1;
            }
            std::cmp::Ordering::Greater => {
                return Err(WalError::SequenceGap { expected: next_seq, found: record.seq }
                    .into());
            }
        }
        pos = match pos.checked_add(body_end) {
            Some(p) => p,
            None => break,
        };
        out.valid_len = pos as u64;
    }
    out.torn_tail_bytes = bytes.len() as u64 - out.valid_len;
    Ok(out)
}

/// Encodes one record into its framed byte form.
fn frame_record(seq: u64, mutation: &KbMutation) -> Result<Vec<u8>, NedError> {
    let body = encode(&WalRecord { seq, mutation: WireMutation::from(mutation) })
        .map_err(|e| WalError::Codec { offset: 0, message: e.to_string() })?;
    let mut frame = Vec::with_capacity(FRAME_PRELUDE_LEN + body.len());
    frame.push(TAG_RECORD);
    frame.extend_from_slice(&(body.len() as u64).to_le_bytes());
    frame.extend_from_slice(&fnv1a(&body).to_le_bytes());
    frame.extend_from_slice(&body);
    Ok(frame)
}

/// An open, appendable write-ahead log.
///
/// [`Wal::open`] replays (and, after a crash, repairs) the existing file;
/// [`Wal::append`] frames and flushes one mutation. Metered through
/// `ned-obs` when constructed with [`Wal::open_observed`]:
/// `kb_wal_records` counts records appended *and* replayed,
/// `kb_wal_replays` counts replay passes.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    next_seq: u64,
    metrics: Metrics,
}

impl Wal {
    /// Opens (creating if absent) the WAL at `path`, replaying any existing
    /// records. A torn tail from a previous crash is truncated away so the
    /// next append lands on a clean frame boundary. Returns the open log
    /// and the replay outcome.
    pub fn open(path: impl AsRef<Path>) -> Result<(Wal, WalReplay), NedError> {
        Self::open_observed(path, &Metrics::disabled())
    }

    /// [`Wal::open`], metered: bumps `kb_wal_replays` once and
    /// `kb_wal_records` by the number of records replayed.
    pub fn open_observed(
        path: impl AsRef<Path>,
        metrics: &Metrics,
    ) -> Result<(Wal, WalReplay), NedError> {
        let path = path.as_ref().to_path_buf();
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(NedError::io(format!("reading WAL {}", path.display()), e)),
        };
        let replay = replay(&bytes)?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| NedError::io(format!("opening WAL {}", path.display()), e))?;
        if replay.valid_len < HEADER_LEN as u64 {
            // Fresh (or torn-header) log: start it over with a clean header.
            file.set_len(0)
                .and_then(|()| file.write_all(&header_bytes()))
                .map_err(|e| NedError::io(format!("initializing WAL {}", path.display()), e))?;
        } else if replay.recovered_torn_tail() {
            file.set_len(replay.valid_len)
                .map_err(|e| NedError::io(format!("repairing WAL {}", path.display()), e))?;
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| NedError::io(format!("seeking WAL {}", path.display()), e))?;
        metrics.counter(names::KB_WAL_REPLAYS).inc();
        metrics.counter(names::KB_WAL_RECORDS).add(replay.records);
        let wal =
            Wal { file, path, next_seq: replay.next_seq(), metrics: metrics.clone() };
        Ok((wal, replay))
    }

    /// Appends one mutation, flushing it to the OS before returning.
    /// Returns the record's sequence number.
    pub fn append(&mut self, mutation: &KbMutation) -> Result<u64, NedError> {
        let seq = self.next_seq;
        let frame = frame_record(seq, mutation)?;
        self.file
            .write_all(&frame)
            .and_then(|()| self.file.flush())
            .map_err(|e| NedError::io(format!("appending to WAL {}", self.path.display()), e))?;
        self.next_seq += 1;
        self.metrics.counter(names::KB_WAL_RECORDS).inc();
        Ok(seq)
    }

    /// Sequence number the next append will carry (= records applied so
    /// far).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The file path this log writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::EntityKind;

    fn sample_mutations() -> Vec<KbMutation> {
        vec![
            KbMutation::AddEntity { canonical_name: "Prism (program)".into(), kind: EntityKind::Other },
            KbMutation::AddDictionarySurface {
                entity: "Prism (program)".into(),
                surface: "PRISM".into(),
                count: 4,
            },
            KbMutation::AddKeyphrase {
                entity: "Prism (program)".into(),
                surface: "mass surveillance".into(),
                count: 2,
            },
        ]
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ned-kb-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn append_then_reopen_replays_in_order() {
        let path = temp_path("roundtrip.wal");
        let _ = std::fs::remove_file(&path);
        let muts = sample_mutations();
        {
            let (mut wal, replay) = Wal::open(&path).unwrap();
            assert_eq!(replay.records, 0);
            for (i, m) in muts.iter().enumerate() {
                assert_eq!(wal.append(m).unwrap(), i as u64);
            }
        }
        let (wal, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.mutations, muts);
        assert_eq!(replay.records, 3);
        assert_eq!(replay.duplicates_skipped, 0);
        assert!(!replay.recovered_torn_tail());
        assert_eq!(wal.next_seq(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_recovered_and_truncated() {
        let path = temp_path("torn.wal");
        let _ = std::fs::remove_file(&path);
        let muts = sample_mutations();
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            for m in &muts {
                wal.append(m).unwrap();
            }
        }
        let full = std::fs::read(&path).unwrap();
        // Cut the file mid-way through the last frame.
        let cut = full.len() - 5;
        std::fs::write(&path, &full[..cut]).unwrap();
        let (mut wal, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.mutations, muts[..2]);
        assert!(replay.recovered_torn_tail());
        assert_eq!(wal.next_seq(), 2);
        // The torn bytes are gone: a fresh append must produce a clean log.
        wal.append(&muts[2]).unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.mutations, muts);
        assert!(!replay.recovered_torn_tail());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flip_in_body_yields_checksum_error() {
        let path = temp_path("flip.wal");
        let _ = std::fs::remove_file(&path);
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            for m in sample_mutations() {
                wal.append(&m).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit inside the first record body (past header+prelude).
        let pos = HEADER_LEN + FRAME_PRELUDE_LEN + 2;
        bytes[pos] ^= 0x20;
        let err = replay(&bytes).unwrap_err();
        assert!(
            matches!(err, NedError::Wal(WalError::ChecksumMismatch { .. })),
            "got {err}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duplicate_appends_replay_idempotently() {
        let muts = sample_mutations();
        let mut bytes = header_bytes().to_vec();
        // Record 0, record 1, then record 1 again (crash between write and
        // ack), then record 2.
        bytes.extend_from_slice(&frame_record(0, &muts[0]).unwrap());
        bytes.extend_from_slice(&frame_record(1, &muts[1]).unwrap());
        bytes.extend_from_slice(&frame_record(1, &muts[1]).unwrap());
        bytes.extend_from_slice(&frame_record(2, &muts[2]).unwrap());
        let replay = replay(&bytes).unwrap();
        assert_eq!(replay.mutations, muts);
        assert_eq!(replay.records, 4);
        assert_eq!(replay.duplicates_skipped, 1);
    }

    #[test]
    fn sequence_gap_is_a_hard_error() {
        let muts = sample_mutations();
        let mut bytes = header_bytes().to_vec();
        bytes.extend_from_slice(&frame_record(0, &muts[0]).unwrap());
        bytes.extend_from_slice(&frame_record(2, &muts[2]).unwrap());
        let err = replay(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                NedError::Wal(WalError::SequenceGap { expected: 1, found: 2 })
            ),
            "got {err}"
        );
    }

    #[test]
    fn wrong_magic_and_version_are_typed() {
        let err = replay(b"SNAPSHOT????????").unwrap_err();
        assert!(matches!(err, NedError::Wal(WalError::BadMagic)), "got {err}");
        let mut bytes = header_bytes().to_vec();
        bytes[6..8].copy_from_slice(&9u16.to_le_bytes());
        let err = replay(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                NedError::Wal(WalError::UnsupportedVersion { found: 9, supported: 1 })
            ),
            "got {err}"
        );
        let mut bytes = header_bytes().to_vec();
        bytes.push(0x42);
        bytes.extend_from_slice(&[0u8; FRAME_PRELUDE_LEN]);
        let err = replay(&bytes).unwrap_err();
        assert!(
            matches!(err, NedError::Wal(WalError::UnknownFrameTag { tag: 0x42 })),
            "got {err}"
        );
    }

    #[test]
    fn empty_and_torn_header_recover_to_fresh_log() {
        assert_eq!(replay(&[]).unwrap().mutations.len(), 0);
        let torn = &header_bytes()[..3];
        let r = replay(torn).unwrap();
        assert!(r.mutations.is_empty());
        assert!(r.recovered_torn_tail());
    }

    #[test]
    fn open_observed_meters_replays_and_records() {
        let path = temp_path("metered.wal");
        let _ = std::fs::remove_file(&path);
        let metrics = Metrics::new();
        {
            let (mut wal, _) = Wal::open_observed(&path, &metrics).unwrap();
            for m in sample_mutations() {
                wal.append(&m).unwrap();
            }
        }
        assert_eq!(metrics.counter_value(names::KB_WAL_REPLAYS), 1);
        assert_eq!(metrics.counter_value(names::KB_WAL_RECORDS), 3);
        let (_, _) = Wal::open_observed(&path, &metrics).unwrap();
        assert_eq!(metrics.counter_value(names::KB_WAL_REPLAYS), 2);
        // 3 appended + 3 replayed.
        assert_eq!(metrics.counter_value(names::KB_WAL_RECORDS), 6);
        std::fs::remove_file(&path).unwrap();
    }
}
