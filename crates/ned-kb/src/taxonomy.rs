//! A YAGO-style type taxonomy (§2.3.3).
//!
//! YAGO's key design choice is a clean separation between individual
//! entities and *classes*, with a WordNet-like taxonomic backbone: every
//! entity is an instance of one or more types, and types form a
//! subclass-of DAG ("songwriters are musicians, musicians are humans").
//! The taxonomy powers named-entity classification (§2.4.4) and type-aware
//! retrieval ("cats" in the Chapter-6 search application).

use serde::{Deserialize, Serialize};

use crate::entity::EntityKind;
use crate::fx::FxHashMap;
use crate::ids::EntityId;

/// Identifier of a type (class) in the taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TypeId(pub u32);

impl TypeId {
    /// Index form.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The type taxonomy: a DAG of classes plus entity → type assignments.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Taxonomy {
    names: Vec<String>,
    /// Direct super-types per type.
    supertypes: Vec<Vec<TypeId>>,
    /// Direct types per entity (indexed by entity id).
    entity_types: Vec<Vec<TypeId>>,
    #[serde(skip)]
    by_name: FxHashMap<String, TypeId>,
}

impl Taxonomy {
    /// Creates an empty taxonomy covering `n_entities` entities.
    pub fn new(n_entities: usize) -> Self {
        Taxonomy {
            names: Vec::new(),
            supertypes: Vec::new(),
            entity_types: vec![Vec::new(); n_entities],
            by_name: FxHashMap::default(),
        }
    }

    /// Registers (or returns) a type by name.
    pub fn add_type(&mut self, name: &str) -> TypeId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        assert!(self.names.len() <= u32::MAX as usize, "type id overflow");
        let id = TypeId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.supertypes.push(Vec::new());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Declares `sub` a subclass of `sup`.
    ///
    /// # Panics
    /// Panics if the edge would create a cycle (the taxonomy is a DAG).
    pub fn add_subclass(&mut self, sub: TypeId, sup: TypeId) {
        assert!(sub != sup, "a type cannot subclass itself");
        assert!(
            !self.is_subtype_of(sup, sub),
            "subclass edge {} → {} would create a cycle",
            self.name(sub),
            self.name(sup)
        );
        if !self.supertypes[sub.index()].contains(&sup) {
            self.supertypes[sub.index()].push(sup);
        }
    }

    /// Assigns a (direct) type to an entity.
    pub fn assign(&mut self, entity: EntityId, ty: TypeId) {
        let slot = &mut self.entity_types[entity.index()];
        if !slot.contains(&ty) {
            slot.push(ty);
        }
    }

    /// Type name.
    pub fn name(&self, ty: TypeId) -> &str {
        &self.names[ty.index()]
    }

    /// Looks up a type by name.
    pub fn type_by_name(&self, name: &str) -> Option<TypeId> {
        self.by_name.get(name).copied()
    }

    /// Number of types.
    pub fn type_count(&self) -> usize {
        self.names.len()
    }

    /// Direct types of an entity.
    pub fn direct_types(&self, entity: EntityId) -> &[TypeId] {
        &self.entity_types[entity.index()]
    }

    /// All types of an entity, including transitive super-types, sorted.
    pub fn all_types(&self, entity: EntityId) -> Vec<TypeId> {
        let mut out = Vec::new();
        let mut stack: Vec<TypeId> = self.direct_types(entity).to_vec();
        while let Some(t) = stack.pop() {
            if out.contains(&t) {
                continue;
            }
            out.push(t);
            stack.extend(self.supertypes[t.index()].iter().copied());
        }
        out.sort_unstable();
        out
    }

    /// True when `sub` is (transitively) a subtype of `sup`, or equal.
    pub fn is_subtype_of(&self, sub: TypeId, sup: TypeId) -> bool {
        if sub == sup {
            return true;
        }
        let mut stack = vec![sub];
        let mut seen = vec![false; self.names.len()];
        while let Some(t) = stack.pop() {
            if t == sup {
                return true;
            }
            if std::mem::replace(&mut seen[t.index()], true) {
                continue;
            }
            stack.extend(self.supertypes[t.index()].iter().copied());
        }
        false
    }

    /// True when the entity is an instance of `ty` (directly or through the
    /// hierarchy).
    pub fn is_instance_of(&self, entity: EntityId, ty: TypeId) -> bool {
        self.direct_types(entity).iter().any(|&t| self.is_subtype_of(t, ty))
    }

    /// Rebuilds the name index after deserialization.
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), TypeId(i as u32)))
            .collect();
    }

    /// Builds the canonical coarse taxonomy over the [`EntityKind`]s of a
    /// repository: `entity` at the root, one class per kind beneath it.
    pub fn coarse_from_kinds<'a>(
        kinds: impl IntoIterator<Item = (EntityId, &'a EntityKind)>,
        n_entities: usize,
    ) -> Self {
        let mut tax = Taxonomy::new(n_entities);
        let root = tax.add_type("entity");
        let mut kind_types: FxHashMap<EntityKind, TypeId> = FxHashMap::default();
        for kind in EntityKind::ALL {
            let ty = tax.add_type(kind_name(kind));
            tax.add_subclass(ty, root);
            kind_types.insert(kind, ty);
        }
        for (e, kind) in kinds {
            tax.assign(e, kind_types[kind]);
        }
        tax
    }
}

/// Canonical class name of a coarse kind.
pub fn kind_name(kind: EntityKind) -> &'static str {
    match kind {
        EntityKind::Person => "person",
        EntityKind::Organization => "organization",
        EntityKind::Location => "location",
        EntityKind::Work => "work",
        EntityKind::Event => "event",
        EntityKind::Other => "artifact",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn music_taxonomy() -> (Taxonomy, TypeId, TypeId, TypeId, TypeId) {
        let mut t = Taxonomy::new(3);
        let person = t.add_type("person");
        let musician = t.add_type("musician");
        let songwriter = t.add_type("songwriter");
        let city = t.add_type("city");
        t.add_subclass(musician, person);
        t.add_subclass(songwriter, musician);
        (t, person, musician, songwriter, city)
    }

    #[test]
    fn subtype_transitivity() {
        let (t, person, musician, songwriter, city) = music_taxonomy();
        assert!(t.is_subtype_of(songwriter, person));
        assert!(t.is_subtype_of(songwriter, musician));
        assert!(t.is_subtype_of(musician, person));
        assert!(!t.is_subtype_of(person, songwriter));
        assert!(!t.is_subtype_of(city, person));
        assert!(t.is_subtype_of(city, city));
    }

    #[test]
    fn entity_instances_respect_hierarchy() {
        let (mut t, person, _musician, songwriter, city) = music_taxonomy();
        let dylan = EntityId(0);
        let duluth = EntityId(1);
        t.assign(dylan, songwriter);
        t.assign(duluth, city);
        assert!(t.is_instance_of(dylan, person));
        assert!(t.is_instance_of(dylan, songwriter));
        assert!(!t.is_instance_of(duluth, person));
        // all_types includes the full chain.
        let all = t.all_types(dylan);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn add_type_is_idempotent() {
        let mut t = Taxonomy::new(0);
        let a = t.add_type("person");
        let b = t.add_type("person");
        assert_eq!(a, b);
        assert_eq!(t.type_count(), 1);
        assert_eq!(t.type_by_name("person"), Some(a));
        assert_eq!(t.type_by_name("missing"), None);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycles_are_rejected() {
        let mut t = Taxonomy::new(0);
        let a = t.add_type("a");
        let b = t.add_type("b");
        t.add_subclass(a, b);
        t.add_subclass(b, a);
    }

    #[test]
    #[should_panic(expected = "subclass itself")]
    fn self_subclass_rejected() {
        let mut t = Taxonomy::new(0);
        let a = t.add_type("a");
        t.add_subclass(a, a);
    }

    #[test]
    fn coarse_taxonomy_from_kinds() {
        let kinds = [EntityKind::Person, EntityKind::Location];
        let pairs: Vec<(EntityId, &EntityKind)> =
            kinds.iter().enumerate().map(|(i, k)| (EntityId(i as u32), k)).collect();
        let t = Taxonomy::coarse_from_kinds(pairs, 2);
        let root = t.type_by_name("entity").unwrap();
        let person = t.type_by_name("person").unwrap();
        assert!(t.is_instance_of(EntityId(0), person));
        assert!(t.is_instance_of(EntityId(0), root));
        assert!(t.is_instance_of(EntityId(1), root));
        assert!(!t.is_instance_of(EntityId(1), person));
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let (mut t, person, ..) = music_taxonomy();
        t.by_name.clear();
        assert_eq!(t.type_by_name("person"), None);
        t.rebuild_index();
        assert_eq!(t.type_by_name("person"), Some(person));
    }
}
