//! Keyphrase inverted index: keyword → (entity, phrase) postings.
//!
//! The similarity computation (Eq. 3.4) gives a keyphrase a non-zero score
//! only when at least one of its words occurs in the mention context —
//! otherwise the shortest cover does not exist and the score is exactly 0.
//! Scanning all of KP(e) per candidate therefore wastes most of its time on
//! phrases that cannot match. This index inverts the keyphrase store once at
//! build time so the engine can enumerate, for a candidate entity and a set
//! of context words, exactly the phrases that share ≥ 1 word with the
//! context — an *exact* pruning, not an approximation.
//!
//! Postings are sorted by `(entity, phrase)` so one binary search yields an
//! entity's slice of a word's posting list. The index is transient (rebuilt
//! after snapshot deserialization), like the other lookup indexes.

use crate::ids::{EntityId, PhraseId, WordId};
use crate::keyphrase::{EntityPhrase, KeyphraseStore};
use crate::vocab::PhraseInterner;

/// Word → (entity, phrase) postings over a [`KeyphraseStore`].
#[derive(Debug, Default, Clone)]
pub struct KeyphraseIndex {
    /// `postings[w]` lists every (entity, phrase) whose phrase contains
    /// word `w`, sorted by (entity, phrase) and deduplicated.
    postings: Vec<Vec<(EntityId, PhraseId)>>,
}

impl KeyphraseIndex {
    /// Builds the index over all entities' keyphrase sets.
    pub fn build(store: &KeyphraseStore, phrases: &PhraseInterner, word_count: usize) -> Self {
        Self::build_raw(
            word_count,
            store.len(),
            |e| store.phrases(e),
            |p| phrases.words(p),
        )
    }

    /// Builds the index from raw accessors, so both KB representations
    /// (nested legacy stores and frozen CSR arrays) produce identical
    /// postings from the same one construction routine.
    pub(crate) fn build_raw<'x>(
        word_count: usize,
        entity_count: usize,
        phrases_of: impl Fn(EntityId) -> &'x [EntityPhrase],
        words_of: impl Fn(PhraseId) -> &'x [WordId],
    ) -> Self {
        let mut postings: Vec<Vec<(EntityId, PhraseId)>> = vec![Vec::new(); word_count];
        for ei in 0..entity_count {
            let e = EntityId::from_index(ei);
            for ep in phrases_of(e) {
                for &w in words_of(ep.phrase) {
                    // Word ids are interner-minted, so always < word_count;
                    // `get_mut` keeps the read-path build panic-free anyway.
                    if let Some(list) = postings.get_mut(w.index()) {
                        list.push((e, ep.phrase));
                    }
                }
            }
        }
        for list in &mut postings {
            list.sort_unstable();
            // A phrase repeating a word would insert its posting twice.
            list.dedup();
        }
        KeyphraseIndex { postings }
    }

    /// Number of indexed words.
    pub fn word_count(&self) -> usize {
        self.postings.len()
    }

    /// Total number of postings across all words.
    pub fn posting_count(&self) -> usize {
        self.postings.iter().map(Vec::len).sum()
    }

    /// All (entity, phrase) postings of `word`, sorted by (entity, phrase).
    pub fn postings(&self, word: WordId) -> &[(EntityId, PhraseId)] {
        self.postings.get(word.index()).map_or(&[], Vec::as_slice)
    }

    /// The postings of `word` restricted to entity `e` (a contiguous slice,
    /// found by binary search).
    pub fn entity_postings(&self, e: EntityId, word: WordId) -> &[(EntityId, PhraseId)] {
        let list = self.postings(word);
        let lo = list.partition_point(|&(pe, _)| pe < e);
        let tail = list.get(lo..).unwrap_or(&[]);
        let hi = lo + tail.partition_point(|&(pe, _)| pe == e);
        list.get(lo..hi).unwrap_or(&[])
    }

    /// The phrases of entity `e` sharing at least one word with
    /// `context_words`, sorted by phrase id and deduplicated — exactly the
    /// phrases that can score non-zero against a context containing those
    /// words. `context_words` need not be sorted or deduplicated.
    pub fn matching_phrases(&self, e: EntityId, context_words: &[WordId]) -> Vec<PhraseId> {
        self.matching_phrases_counted(e, context_words).0
    }

    /// Like [`KeyphraseIndex::matching_phrases`], but also returns the
    /// number of postings scanned (entity-scoped postings visited before
    /// deduplication) so callers can account for index work done.
    pub fn matching_phrases_counted(
        &self,
        e: EntityId,
        context_words: &[WordId],
    ) -> (Vec<PhraseId>, u64) {
        let mut out: Vec<PhraseId> = Vec::new();
        let scanned = self.matching_phrases_into(e, context_words, &mut out);
        (out, scanned)
    }

    /// [`KeyphraseIndex::matching_phrases_counted`] writing into a
    /// caller-provided buffer (cleared first) instead of allocating — the
    /// form used by the scoring hot path with its reusable scratch arena.
    /// Returns the scanned-postings count.
    pub fn matching_phrases_into(
        &self,
        e: EntityId,
        context_words: &[WordId],
        out: &mut Vec<PhraseId>,
    ) -> u64 {
        out.clear();
        for &w in context_words {
            out.extend(self.entity_postings(e, w).iter().map(|&(_, p)| p));
        }
        let scanned = out.len() as u64;
        out.sort_unstable();
        out.dedup();
        scanned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KbBuilder;
    use crate::entity::EntityKind;

    fn kb() -> crate::store::KnowledgeBase {
        let mut b = KbBuilder::new();
        let jimmy = b.add_entity("Jimmy Page", EntityKind::Person);
        let larry = b.add_entity("Larry Page", EntityKind::Person);
        b.add_keyphrase(jimmy, "hard rock", 3);
        b.add_keyphrase(jimmy, "rock guitarist", 2);
        b.add_keyphrase(larry, "search engine", 3);
        b.add_keyphrase(larry, "rock climbing", 1);
        b.build()
    }

    #[test]
    fn postings_cover_all_phrase_words() {
        let kb = kb();
        let idx = kb.keyphrase_index();
        let rock = kb.word_id("rock").unwrap();
        // "rock" occurs in three phrases across both entities.
        assert_eq!(idx.postings(rock).len(), 3);
        let engine = kb.word_id("engine").unwrap();
        assert_eq!(idx.postings(engine).len(), 1);
    }

    #[test]
    fn entity_postings_are_scoped() {
        let kb = kb();
        let idx = kb.keyphrase_index();
        let jimmy = kb.entity_by_name("Jimmy Page").unwrap();
        let larry = kb.entity_by_name("Larry Page").unwrap();
        let rock = kb.word_id("rock").unwrap();
        assert_eq!(idx.entity_postings(jimmy, rock).len(), 2);
        assert_eq!(idx.entity_postings(larry, rock).len(), 1);
        assert!(idx.entity_postings(jimmy, rock).iter().all(|&(e, _)| e == jimmy));
    }

    #[test]
    fn matching_phrases_equal_exhaustive_filter() {
        let kb = kb();
        let idx = kb.keyphrase_index();
        let jimmy = kb.entity_by_name("Jimmy Page").unwrap();
        let ctx: Vec<WordId> =
            ["rock", "search"].iter().filter_map(|w| kb.word_id(w)).collect();
        let via_index = idx.matching_phrases(jimmy, &ctx);
        let exhaustive: Vec<PhraseId> = kb
            .keyphrases(jimmy)
            .iter()
            .filter(|ep| kb.phrase_words(ep.phrase).iter().any(|w| ctx.contains(w)))
            .map(|ep| ep.phrase)
            .collect();
        assert_eq!(via_index, exhaustive);
    }

    #[test]
    fn duplicate_context_words_do_not_duplicate_phrases() {
        let kb = kb();
        let idx = kb.keyphrase_index();
        let jimmy = kb.entity_by_name("Jimmy Page").unwrap();
        let rock = kb.word_id("rock").unwrap();
        let once = idx.matching_phrases(jimmy, &[rock]);
        let twice = idx.matching_phrases(jimmy, &[rock, rock]);
        assert_eq!(once, twice);
        assert_eq!(once.len(), 2);
    }

    #[test]
    fn counted_variant_reports_prededup_scans() {
        let kb = kb();
        let idx = kb.keyphrase_index();
        let jimmy = kb.entity_by_name("Jimmy Page").unwrap();
        let rock = kb.word_id("rock").unwrap();
        let (phrases, scanned) = idx.matching_phrases_counted(jimmy, &[rock, rock]);
        assert_eq!(phrases, idx.matching_phrases(jimmy, &[rock]));
        // Two context occurrences of "rock" × two matching phrases: four
        // postings visited, deduplicated down to two phrases.
        assert_eq!(scanned, 4);
    }

    #[test]
    fn unknown_word_has_no_postings() {
        let kb = kb();
        let idx = kb.keyphrase_index();
        // An id beyond the vocabulary maps to the empty slice.
        let bogus = WordId::from_index(idx.word_count() + 7);
        assert!(idx.postings(bogus).is_empty());
    }

    #[test]
    fn empty_store_builds_empty_index() {
        let kb = KbBuilder::new().build();
        let idx = kb.keyphrase_index();
        assert_eq!(idx.posting_count(), 0);
    }
}
