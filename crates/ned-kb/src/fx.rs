//! A fast, non-cryptographic hasher for dense integer keys.
//!
//! The performance guide recommends an FxHash-style multiply-rotate hasher
//! when HashDoS is not a concern; all hot maps in this workspace are keyed by
//! interned `u32` ids, for which SipHash is needlessly slow. This is an
//! in-tree implementation so the workspace stays within its approved
//! dependency set.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the FxHash algorithm (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// FxHash-style streaming hasher.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            for (dst, src) in buf.iter_mut().zip(rem) {
                *dst = *src;
            }
            self.add_to_hash(u64::from_le_bytes(buf) | (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"keyphrase"), hash_of(&"keyphrase"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u32), hash_of(&2u32));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
    }

    #[test]
    fn distinguishes_lengths() {
        // The remainder encoding must make "a" differ from "a\0".
        assert_ne!(hash_of(&b"a".as_slice()), hash_of(&b"a\0".as_slice()));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(9));
        assert!(!s.insert(9));
    }

    #[test]
    fn avalanche_on_small_ints() {
        // Dense u32 keys must not collide in the low bits used by hashbrown.
        let mut seen = FxHashSet::default();
        for i in 0u32..10_000 {
            seen.insert(hash_of(&i));
        }
        assert_eq!(seen.len(), 10_000);
    }
}
