//! The frozen, read-optimized knowledge base: [`FrozenKb`].
//!
//! The build-time [`KnowledgeBase`] is shaped for incremental construction:
//! nested `Vec`s per entity, a hash-map dictionary, interners with side
//! tables. Every hot path of the system only ever *reads*, so this module
//! provides the flat columnar form those reads want:
//!
//! - **CSR adjacency** (`offsets` + one flat data array) for in-links,
//!   out-links, per-entity keyphrase lists, and per-phrase word lists —
//!   one allocation per section instead of one per entity/phrase;
//! - **a sorted flat dictionary** ([`FrozenDictionary`]): one surface-key
//!   arena plus offset arrays, looked up by binary search instead of
//!   hashing, iterated in key order with zero per-call allocation;
//! - **precomputed per-section footprints** ([`FrozenKbStats`]) so the
//!   benchmark harness can track memory alongside throughput.
//!
//! A `FrozenKb` is immutable by construction and designed to sit behind an
//! `Arc`: the disambiguation service clones the handle per worker instead of
//! borrowing, which is what sharding and snapshot hot-swap need later.
//!
//! Everything here preserves the exact orderings and arithmetic of the
//! legacy structures (candidate order, sorted adjacency, prior arithmetic on
//! `u64` anchor counts), so disambiguation outputs are byte-identical
//! whichever representation backs the [`KbView`](crate::view::KbView).

use serde::{Deserialize, Serialize};

use ned_text::normalize::{match_key, squash_whitespace};

use crate::dictionary::{Candidate, Dictionary};
use crate::entity::Entity;
use crate::fx::FxHashMap;
use crate::ids::{EntityId, PhraseId, WordId};
use crate::keyphrase::EntityPhrase;
use crate::kp_index::KeyphraseIndex;
use crate::phrase_runs::PhraseRuns;
use crate::store::KnowledgeBase;
use crate::weights::WeightModel;

/// Converts a length to a `u32` CSR offset.
///
/// # Panics
/// Panics if `len` exceeds `u32::MAX` (the id space is `u32` everywhere, so
/// a longer section cannot be addressed anyway).
fn offset(len: usize) -> u32 {
    assert!(len <= u32::MAX as usize, "frozen section overflows u32 offsets: {len}");
    len as u32
}

/// Sorted flat dictionary: surface-key arena + binary search.
///
/// Keys are the `match_key` forms, stored concatenated in ascending order in
/// one arena string; `key_offsets[i]..key_offsets[i+1]` is key `i`'s byte
/// range and `cand_offsets[i]..cand_offsets[i+1]` its candidate range. The
/// per-key candidate order is exactly the legacy finalize order (count
/// descending, entity ascending).
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct FrozenDictionary {
    key_arena: String,
    key_offsets: Vec<u32>,
    cand_offsets: Vec<u32>,
    candidates: Vec<Candidate>,
}

impl FrozenDictionary {
    /// Flattens a legacy dictionary (keys sorted ascending, as
    /// [`Dictionary::iter`] yields them).
    pub(crate) fn freeze(dict: &Dictionary) -> Self {
        let mut key_arena = String::new();
        let mut key_offsets = vec![0u32];
        let mut cand_offsets = vec![0u32];
        let mut candidates = Vec::with_capacity(dict.pair_count());
        for (key, cands) in dict.iter() {
            key_arena.push_str(key);
            candidates.extend_from_slice(cands);
            key_offsets.push(offset(key_arena.len()));
            cand_offsets.push(offset(candidates.len()));
        }
        FrozenDictionary { key_arena, key_offsets, cand_offsets, candidates }
    }

    /// Number of distinct names.
    pub fn name_count(&self) -> usize {
        self.key_offsets.len() - 1
    }

    /// Number of (name, entity) pairs.
    pub fn pair_count(&self) -> usize {
        self.candidates.len()
    }

    /// The `i`-th key in ascending order.
    pub(crate) fn key_at(&self, i: usize) -> &str {
        // ned-lint: allow(p1) — CSR invariant: offsets has len()+1 entries
        &self.key_arena[self.key_offsets[i] as usize..self.key_offsets[i + 1] as usize]
    }

    /// The candidate list of the `i`-th key.
    pub(crate) fn candidates_at(&self, i: usize) -> &[Candidate] {
        // ned-lint: allow(p1) — CSR invariant: offsets has len()+1 entries
        &self.candidates[self.cand_offsets[i] as usize..self.cand_offsets[i + 1] as usize]
    }

    /// Binary search for a match key.
    fn find(&self, key: &str) -> Option<usize> {
        let (mut lo, mut hi) = (0usize, self.name_count());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.key_at(mid).cmp(key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(mid),
            }
        }
        None
    }

    /// Candidate entities for a mention surface (same case rules as the
    /// legacy dictionary), or an empty slice when unknown.
    pub fn candidates(&self, surface: &str) -> &[Candidate] {
        let key = match_key(&squash_whitespace(surface));
        self.find(&key).map_or(&[], |i| self.candidates_at(i))
    }

    /// Candidate list for an **already-normalized** match key, skipping the
    /// case rules (overlay fall-through in [`crate::delta`]).
    pub(crate) fn candidates_by_key(&self, key: &str) -> &[Candidate] {
        self.find(key).map_or(&[], |i| self.candidates_at(i))
    }

    /// Popularity prior p(e | name) (§3.3.3) — identical arithmetic to the
    /// legacy dictionary (sum `u64` anchor counts, then one division).
    pub fn prior(&self, surface: &str, entity: EntityId) -> f64 {
        let cands = self.candidates(surface);
        let total: u64 = cands.iter().map(|c| c.count).sum();
        if total == 0 {
            return 0.0;
        }
        cands
            .iter()
            .find(|c| c.entity == entity)
            .map_or(0.0, |c| c.count as f64 / total as f64)
    }

    /// Full prior distribution over the candidates of a name, in candidate
    /// order. Empty when the name is unknown.
    pub fn prior_distribution(&self, surface: &str) -> Vec<(EntityId, f64)> {
        let cands = self.candidates(surface);
        let total: u64 = cands.iter().map(|c| c.count).sum();
        if total == 0 {
            return Vec::new();
        }
        cands.iter().map(|c| (c.entity, c.count as f64 / total as f64)).collect()
    }

    /// Approximate heap footprint in bytes.
    fn approx_heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.key_arena.len()
            + (self.key_offsets.len() + self.cand_offsets.len()) * size_of::<u32>()
            + self.candidates.len() * size_of::<Candidate>()
    }
}

/// CSR link graph: sorted in-/out-adjacency in two flat arrays each.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct FrozenLinks {
    in_offsets: Vec<u32>,
    in_data: Vec<EntityId>,
    out_offsets: Vec<u32>,
    out_data: Vec<EntityId>,
    edge_count: u64,
}

impl FrozenLinks {
    /// Flattens a legacy link graph (adjacency already sorted ascending).
    pub(crate) fn freeze(links: &crate::links::LinkGraph) -> Self {
        let n = links.len();
        let mut in_offsets = Vec::with_capacity(n + 1);
        let mut in_data = Vec::new();
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut out_data = Vec::new();
        in_offsets.push(0);
        out_offsets.push(0);
        for ei in 0..n {
            let e = EntityId::from_index(ei);
            in_data.extend_from_slice(links.inlinks(e));
            out_data.extend_from_slice(links.outlinks(e));
            in_offsets.push(offset(in_data.len()));
            out_offsets.push(offset(out_data.len()));
        }
        FrozenLinks {
            in_offsets,
            in_data,
            out_offsets,
            out_data,
            edge_count: links.edge_count() as u64,
        }
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.in_offsets.len().saturating_sub(1)
    }

    /// True if the graph covers no entities.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count as usize
    }

    /// Entities linking *to* `e`, sorted ascending.
    pub fn inlinks(&self, e: EntityId) -> &[EntityId] {
        let i = e.index();
        // ned-lint: allow(p1) — CSR invariant: offsets has entity_count+1 entries
        &self.in_data[self.in_offsets[i] as usize..self.in_offsets[i + 1] as usize]
    }

    /// Entities `e` links *to*, sorted ascending.
    pub fn outlinks(&self, e: EntityId) -> &[EntityId] {
        let i = e.index();
        // ned-lint: allow(p1) — CSR invariant: offsets has entity_count+1 entries
        &self.out_data[self.out_offsets[i] as usize..self.out_offsets[i + 1] as usize]
    }

    /// Number of in-links of `e`.
    pub fn inlink_count(&self, e: EntityId) -> usize {
        self.inlinks(e).len()
    }

    /// Size of the intersection of the in-link sets of `a` and `b`.
    pub fn shared_inlink_count(&self, a: EntityId, b: EntityId) -> usize {
        crate::links::sorted_intersection_size(self.inlinks(a), self.inlinks(b))
    }

    /// True if a direct link exists in either direction.
    pub fn directly_linked(&self, a: EntityId, b: EntityId) -> bool {
        self.outlinks(a).binary_search(&b).is_ok() || self.outlinks(b).binary_search(&a).is_ok()
    }

    fn approx_heap_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.in_offsets.len() + self.out_offsets.len()) * size_of::<u32>()
            + (self.in_data.len() + self.out_data.len()) * size_of::<EntityId>()
    }
}

/// Vocabulary + keyphrase section: keyword texts, phrase→word CSR, phrase
/// surfaces, and the entity→keyphrase CSR.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct FrozenPhrases {
    /// Lowercased keyword texts, indexed by `WordId`.
    words: Vec<String>,
    /// CSR offsets of `phrase_word_data`, indexed by `PhraseId`.
    phrase_word_offsets: Vec<u32>,
    /// Flat word-id sequences of all phrases.
    phrase_word_data: Vec<WordId>,
    /// Display surfaces, indexed by `PhraseId`.
    phrase_surfaces: Vec<String>,
    /// CSR offsets of `kp_data`, indexed by `EntityId`.
    kp_offsets: Vec<u32>,
    /// Flat keyphrase lists of all entities (phrase-id sorted per entity).
    kp_data: Vec<EntityPhrase>,
    /// Total phrase observations across all entities.
    total_phrase_observations: u64,
}

impl FrozenPhrases {
    pub(crate) fn freeze(kb: &KnowledgeBase) -> Self {
        let words: Vec<String> = (0..kb.word_interner().len())
            .map(|i| kb.word_text(WordId::from_index(i)).to_string())
            .collect();
        let n_phrases = kb.phrase_interner().len();
        let mut phrase_word_offsets = Vec::with_capacity(n_phrases + 1);
        let mut phrase_word_data = Vec::new();
        let mut phrase_surfaces = Vec::with_capacity(n_phrases);
        phrase_word_offsets.push(0);
        for pi in 0..n_phrases {
            let p = PhraseId::from_index(pi);
            phrase_word_data.extend_from_slice(kb.phrase_words(p));
            phrase_word_offsets.push(offset(phrase_word_data.len()));
            phrase_surfaces.push(kb.phrase_surface(p).to_string());
        }
        let n = kb.entity_count();
        let mut kp_offsets = Vec::with_capacity(n + 1);
        let mut kp_data = Vec::new();
        kp_offsets.push(0);
        for ei in 0..n {
            kp_data.extend_from_slice(kb.keyphrases(EntityId::from_index(ei)));
            kp_offsets.push(offset(kp_data.len()));
        }
        FrozenPhrases {
            words,
            phrase_word_offsets,
            phrase_word_data,
            phrase_surfaces,
            kp_offsets,
            kp_data,
            total_phrase_observations: kb.keyphrase_store().total_observations(),
        }
    }

    fn word_count(&self) -> usize {
        self.words.len()
    }

    fn phrase_count(&self) -> usize {
        self.phrase_surfaces.len()
    }

    fn phrase_words(&self, p: PhraseId) -> &[WordId] {
        let i = p.index();
        // ned-lint: allow(p1) — CSR invariant: offsets has phrase_count+1 entries
        &self.phrase_word_data
            [self.phrase_word_offsets[i] as usize..self.phrase_word_offsets[i + 1] as usize]
    }

    fn keyphrases(&self, e: EntityId) -> &[EntityPhrase] {
        let i = e.index();
        // ned-lint: allow(p1) — CSR invariant: offsets has entity_count+1 entries
        &self.kp_data[self.kp_offsets[i] as usize..self.kp_offsets[i + 1] as usize]
    }

    fn approx_heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.words.iter().map(|w| w.len() + size_of::<String>()).sum::<usize>()
            + self.phrase_word_offsets.len() * size_of::<u32>()
            + self.phrase_word_data.len() * size_of::<WordId>()
            + self.phrase_surfaces.iter().map(|s| s.len() + size_of::<String>()).sum::<usize>()
            + self.kp_offsets.len() * size_of::<u32>()
            + self.kp_data.len() * size_of::<EntityPhrase>()
    }
}

/// Per-section footprint and entry counts of a [`FrozenKb`].
///
/// Byte figures are approximate heap payloads (array contents plus string
/// bytes), not allocator-exact sizes; they exist to make the memory
/// trajectory of the KB visible in the benchmark reports.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FrozenKbStats {
    /// Number of entities.
    pub entity_count: usize,
    /// Bytes of the entity section (records + canonical-name strings).
    pub entity_bytes: usize,
    /// Distinct dictionary surfaces (match keys).
    pub dictionary_surfaces: usize,
    /// (name, entity) pairs in the dictionary.
    pub dictionary_pairs: usize,
    /// Bytes of the dictionary section (arena + offsets + candidates).
    pub dictionary_bytes: usize,
    /// Directed edges in the link graph.
    pub link_edges: usize,
    /// Bytes of the link section (both CSR halves).
    pub link_bytes: usize,
    /// Distinct keywords.
    pub word_count: usize,
    /// Distinct keyphrases.
    pub phrase_count: usize,
    /// (entity, keyphrase) entries across all entities.
    pub keyphrase_entries: usize,
    /// Bytes of the vocabulary + keyphrase section.
    pub keyphrase_bytes: usize,
    /// Bytes of the weight section.
    pub weight_bytes: usize,
    /// Bytes of the precomputed phrase-run section (deduplicated runs +
    /// weight masses).
    pub phrase_run_bytes: usize,
    /// Bytes of the transient indexes rebuilt at assemble time (keyphrase
    /// inverted index, name and word lookup maps).
    pub transient_index_bytes: usize,
    /// Sum of all persistent section bytes (excludes transient indexes).
    pub total_bytes: usize,
}

/// The frozen, read-optimized knowledge base.
///
/// Produced by [`FrozenKb::freeze`] from a built [`KnowledgeBase`], or
/// decoded directly from a v3 snapshot
/// ([`crate::snapshot::read_frozen_snapshot`]). Immutable; share it across
/// threads behind an `Arc`.
#[derive(Debug, Clone)]
pub struct FrozenKb {
    entities: Vec<Entity>,
    dictionary: FrozenDictionary,
    links: FrozenLinks,
    phrases: FrozenPhrases,
    weights: WeightModel,
    /// Persistent like the five classic sections, but *optional* in
    /// snapshots (frame tag 6): rebuilt in `assemble` when absent.
    phrase_runs: PhraseRuns,
    // Transient lookups, rebuilt in `assemble` on every construction path
    // (freeze and snapshot decode alike — nothing below is serialized).
    by_name: FxHashMap<String, EntityId>,
    word_index: FxHashMap<String, WordId>,
    kp_index: KeyphraseIndex,
    stats: FrozenKbStats,
}

impl FrozenKb {
    /// Freezes a built knowledge base into the columnar read form.
    pub fn freeze(kb: &KnowledgeBase) -> Self {
        Self::assemble(
            kb.entity_ids().map(|e| kb.entity(e).clone()).collect(),
            FrozenDictionary::freeze(kb.dictionary()),
            FrozenLinks::freeze(kb.links()),
            FrozenPhrases::freeze(kb),
            kb.weights().clone(),
            None,
        )
    }

    /// The single construction path: takes the persistent sections and
    /// rebuilds every transient index (name lookup, word lookup, keyphrase
    /// inverted index) plus the section stats. Both [`FrozenKb::freeze`] and
    /// the v3 snapshot decoder funnel through here, so a decoded KB can
    /// never miss an index a frozen one has. `phrase_runs` is the decoded
    /// optional tag-6 section; `None` (or a shape mismatch against the
    /// other sections) triggers a rebuild from the keyphrases + weights.
    pub(crate) fn assemble(
        entities: Vec<Entity>,
        dictionary: FrozenDictionary,
        links: FrozenLinks,
        phrases: FrozenPhrases,
        weights: WeightModel,
        phrase_runs: Option<PhraseRuns>,
    ) -> Self {
        use std::mem::size_of;
        let by_name: FxHashMap<String, EntityId> = entities
            .iter()
            .enumerate()
            .map(|(i, e)| (e.canonical_name.clone(), EntityId::from_index(i)))
            .collect();
        let word_index: FxHashMap<String, WordId> = phrases
            .words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), WordId::from_index(i)))
            .collect();
        let kp_index = KeyphraseIndex::build_raw(
            phrases.word_count(),
            entities.len(),
            |e| phrases.keyphrases(e),
            |p| phrases.phrase_words(p),
        );
        let phrase_runs = phrase_runs
            .filter(|r| r.is_consistent_with(phrases.phrase_count(), entities.len()))
            .unwrap_or_else(|| {
                PhraseRuns::build_raw(
                    phrases.phrase_count(),
                    entities.len(),
                    |e| phrases.keyphrases(e),
                    |p| phrases.phrase_words(p),
                    &weights,
                )
            });

        let entity_bytes = entities
            .iter()
            .map(|e| e.canonical_name.len() + size_of::<Entity>())
            .sum::<usize>();
        let dictionary_bytes = dictionary.approx_heap_bytes();
        let link_bytes = links.approx_heap_bytes();
        let keyphrase_bytes = phrases.approx_heap_bytes();
        let weight_bytes = weights.approx_heap_bytes();
        let phrase_run_bytes = phrase_runs.approx_heap_bytes();
        let transient_index_bytes = kp_index.posting_count()
            * size_of::<(EntityId, PhraseId)>()
            + by_name
                .keys()
                .map(|k| k.len() + size_of::<String>() + size_of::<EntityId>())
                .sum::<usize>()
            + word_index
                .keys()
                .map(|k| k.len() + size_of::<String>() + size_of::<WordId>())
                .sum::<usize>();
        let stats = FrozenKbStats {
            entity_count: entities.len(),
            entity_bytes,
            dictionary_surfaces: dictionary.name_count(),
            dictionary_pairs: dictionary.pair_count(),
            dictionary_bytes,
            link_edges: links.edge_count(),
            link_bytes,
            word_count: phrases.word_count(),
            phrase_count: phrases.phrase_count(),
            keyphrase_entries: phrases.kp_data.len(),
            keyphrase_bytes,
            weight_bytes,
            phrase_run_bytes,
            transient_index_bytes,
            total_bytes: entity_bytes
                + dictionary_bytes
                + link_bytes
                + keyphrase_bytes
                + weight_bytes
                + phrase_run_bytes,
        };

        FrozenKb {
            entities,
            dictionary,
            links,
            phrases,
            weights,
            phrase_runs,
            by_name,
            word_index,
            kp_index,
            stats,
        }
    }

    /// Per-section footprint and entry counts.
    pub fn stats(&self) -> &FrozenKbStats {
        &self.stats
    }

    /// Number of entities N in the repository.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// The entity record for `e`.
    pub fn entity(&self, e: EntityId) -> &Entity {
        // ned-lint: allow(p1) — ids are dense indexes into the entity table
        &self.entities[e.index()]
    }

    /// Iterates over all entity ids.
    pub fn entity_ids(&self) -> crate::view::EntityIds {
        crate::view::KbView::entity_ids(self)
    }

    /// Looks up an entity by its canonical name.
    pub fn entity_by_name(&self, canonical_name: &str) -> Option<EntityId> {
        self.by_name.get(canonical_name).copied()
    }

    /// Candidate entities for a mention surface (§3.3.2 case rules).
    pub fn candidates(&self, surface: &str) -> &[Candidate] {
        self.dictionary.candidates(surface)
    }

    /// Popularity prior p(e | surface) (§3.3.3).
    pub fn prior(&self, surface: &str, e: EntityId) -> f64 {
        self.dictionary.prior(surface, e)
    }

    /// The frozen name dictionary.
    pub fn dictionary(&self) -> &FrozenDictionary {
        &self.dictionary
    }

    /// The frozen link graph.
    pub fn links(&self) -> &FrozenLinks {
        &self.links
    }

    /// The keyphrase set KP(e), sorted by phrase id.
    pub fn keyphrases(&self, e: EntityId) -> &[EntityPhrase] {
        self.phrases.keyphrases(e)
    }

    /// The keyphrase inverted index (keyword → (entity, phrase) postings).
    pub fn keyphrase_index(&self) -> &KeyphraseIndex {
        &self.kp_index
    }

    /// Word-id sequence of a keyphrase.
    pub fn phrase_words(&self, p: PhraseId) -> &[WordId] {
        self.phrases.phrase_words(p)
    }

    /// Display surface of a keyphrase.
    pub fn phrase_surface(&self, p: PhraseId) -> &str {
        // ned-lint: allow(p1) — ids are dense indexes into the surface table
        &self.phrases.phrase_surfaces[p.index()]
    }

    /// Lowercased text of a keyword.
    pub fn word_text(&self, w: WordId) -> &str {
        // ned-lint: allow(p1) — ids are dense indexes into the word table
        &self.phrases.words[w.index()]
    }

    /// Looks up an interned keyword by text (case-insensitive, like the
    /// legacy interner).
    pub fn word_id(&self, text: &str) -> Option<WordId> {
        self.word_index.get(&text.to_lowercase()).copied()
    }

    /// Number of distinct keywords.
    pub fn word_count(&self) -> usize {
        self.phrases.word_count()
    }

    /// Number of distinct keyphrases.
    pub fn phrase_count(&self) -> usize {
        self.phrases.phrase_count()
    }

    /// Total phrase observations across all entities.
    pub fn total_phrase_observations(&self) -> u64 {
        self.phrases.total_phrase_observations
    }

    /// The precomputed weight model.
    pub fn weights(&self) -> &WeightModel {
        &self.weights
    }

    /// Precomputed deduplicated phrase runs and weight masses.
    pub fn phrase_runs(&self) -> &PhraseRuns {
        &self.phrase_runs
    }

    /// Decomposes into the five classic persistent sections (snapshot
    /// writer); the optional phrase-run section is fetched separately via
    /// [`FrozenKb::phrase_runs`].
    pub(crate) fn sections(
        &self,
    ) -> (&Vec<Entity>, &FrozenDictionary, &FrozenLinks, &FrozenPhrases, &WeightModel) {
        (&self.entities, &self.dictionary, &self.links, &self.phrases, &self.weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::tests::example_kb;
    use crate::view::KbView;

    fn frozen() -> (KnowledgeBase, FrozenKb) {
        let kb = example_kb();
        let fz = FrozenKb::freeze(&kb);
        (kb, fz)
    }

    #[test]
    fn entities_and_lookup_match() {
        let (kb, fz) = frozen();
        assert_eq!(fz.entity_count(), kb.entity_count());
        for e in kb.entity_ids() {
            assert_eq!(fz.entity(e).canonical_name, kb.entity(e).canonical_name);
            assert_eq!(fz.entity_by_name(&kb.entity(e).canonical_name), Some(e));
        }
        assert_eq!(fz.entity_by_name("No Such Entity"), None);
    }

    #[test]
    fn dictionary_answers_match() {
        let (kb, fz) = frozen();
        for surface in ["Kashmir", "Page", "Plant", "Jimmy Page", "unknown name"] {
            assert_eq!(fz.candidates(surface), kb.candidates(surface), "{surface}");
            for e in kb.entity_ids() {
                assert_eq!(
                    fz.prior(surface, e).to_bits(),
                    kb.prior(surface, e).to_bits(),
                    "{surface}"
                );
            }
        }
        assert_eq!(fz.dictionary().name_count(), kb.dictionary().name_count());
        assert_eq!(fz.dictionary().pair_count(), kb.dictionary().pair_count());
    }

    #[test]
    fn dictionary_iteration_order_matches() {
        let (kb, fz) = frozen();
        let legacy: Vec<(String, Vec<Candidate>)> =
            kb.dictionary().iter().map(|(k, c)| (k.to_string(), c.to_vec())).collect();
        let frozen: Vec<(String, Vec<Candidate>)> = KbView::dictionary(&fz)
            .iter()
            .map(|(k, c)| (k.to_string(), c.to_vec()))
            .collect();
        assert_eq!(legacy, frozen);
    }

    #[test]
    fn links_match() {
        let (kb, fz) = frozen();
        assert_eq!(fz.links().edge_count(), kb.links().edge_count());
        assert_eq!(fz.links().len(), kb.links().len());
        for a in kb.entity_ids() {
            assert_eq!(fz.links().inlinks(a), kb.links().inlinks(a));
            assert_eq!(fz.links().outlinks(a), kb.links().outlinks(a));
            for b in kb.entity_ids() {
                assert_eq!(
                    fz.links().shared_inlink_count(a, b),
                    kb.links().shared_inlink_count(a, b)
                );
                assert_eq!(fz.links().directly_linked(a, b), kb.links().directly_linked(a, b));
            }
        }
    }

    #[test]
    fn keyphrases_vocab_and_index_match() {
        let (kb, fz) = frozen();
        assert_eq!(fz.word_count(), kb.word_interner().len());
        assert_eq!(fz.phrase_count(), kb.phrase_interner().len());
        assert_eq!(fz.total_phrase_observations(), kb.keyphrase_store().total_observations());
        for e in kb.entity_ids() {
            assert_eq!(fz.keyphrases(e), kb.keyphrases(e));
        }
        for pi in 0..kb.phrase_interner().len() {
            let p = PhraseId::from_index(pi);
            assert_eq!(fz.phrase_words(p), kb.phrase_words(p));
            assert_eq!(fz.phrase_surface(p), kb.phrase_surface(p));
        }
        for wi in 0..kb.word_interner().len() {
            let w = WordId::from_index(wi);
            assert_eq!(fz.word_text(w), kb.word_text(w));
            assert_eq!(fz.word_id(kb.word_text(w)), Some(w));
        }
        assert_eq!(fz.word_id("no-such-word"), None);
        // Inverted index: identical postings for every word.
        assert_eq!(fz.keyphrase_index().posting_count(), kb.keyphrase_index().posting_count());
        for wi in 0..kb.word_interner().len() {
            let w = WordId::from_index(wi);
            assert_eq!(fz.keyphrase_index().postings(w), kb.keyphrase_index().postings(w));
        }
    }

    #[test]
    fn stats_are_populated() {
        let (kb, fz) = frozen();
        let s = fz.stats();
        assert_eq!(s.entity_count, kb.entity_count());
        assert_eq!(s.dictionary_surfaces, kb.dictionary().name_count());
        assert_eq!(s.dictionary_pairs, kb.dictionary().pair_count());
        assert_eq!(s.link_edges, kb.links().edge_count());
        assert_eq!(s.word_count, kb.word_interner().len());
        assert_eq!(s.phrase_count, kb.phrase_interner().len());
        assert!(s.entity_bytes > 0);
        assert!(s.dictionary_bytes > 0);
        assert!(s.link_bytes > 0);
        assert!(s.keyphrase_bytes > 0);
        assert!(s.weight_bytes > 0);
        assert!(s.phrase_run_bytes > 0);
        assert!(s.transient_index_bytes > 0);
        assert_eq!(
            s.total_bytes,
            s.entity_bytes + s.dictionary_bytes + s.link_bytes + s.keyphrase_bytes
                + s.weight_bytes
                + s.phrase_run_bytes
        );
    }

    #[test]
    fn empty_kb_freezes() {
        let kb = crate::builder::KbBuilder::new().build();
        let fz = FrozenKb::freeze(&kb);
        assert_eq!(fz.entity_count(), 0);
        assert!(fz.candidates("anything").is_empty());
        assert_eq!(fz.dictionary().name_count(), 0);
        assert!(fz.links().is_empty());
        // Only the CSR sentinel offsets remain (one `0` per offset array).
        let s = fz.stats();
        assert_eq!(s.entity_bytes, 0);
        assert_eq!(
            s.total_bytes,
            s.dictionary_bytes + s.link_bytes + s.keyphrase_bytes + s.weight_bytes
                + s.phrase_run_bytes
        );
    }

    #[test]
    fn arc_handle_is_fully_owned() {
        // The acceptance criterion of the refactor: a disambiguation service
        // can hold the KB as an `Arc` with no borrowed lifetime.
        fn make() -> std::sync::Arc<FrozenKb> {
            std::sync::Arc::new(frozen().1)
        }
        let handle = make();
        let clone = std::sync::Arc::clone(&handle);
        assert_eq!(clone.entity_count(), handle.entity_count());
    }
}
