//! The read-side boundary of the knowledge base: [`KbView`].
//!
//! Every consumer of the KB — the disambiguator, the relatedness measures,
//! the emerging-entity pipeline, the applications — only ever *reads*. This
//! trait captures that read API once so consumers can be generic over the
//! backing representation: the build-time [`KnowledgeBase`] (nested `Vec`s
//! and hash maps, cheap to mutate) or the read-optimized
//! [`FrozenKb`] (flat columnar arrays, cheap to
//! share). Blanket impls for `&K` and `Arc<K>` mean call sites can keep
//! passing borrows while services hold one `Arc<FrozenKb>` across threads.
//!
//! The two representations store their dictionary and link graph
//! differently, so those accessors return the lightweight [`DictView`] and
//! [`LinksView`] wrappers rather than concrete structs; both wrappers
//! preserve the exact iteration order and arithmetic of the legacy types,
//! keeping every downstream output byte-identical.

use std::sync::Arc;

use crate::delta::DeltaKb;
use crate::dictionary::{Candidate, Dictionary};
use crate::entity::Entity;
use crate::frozen::{FrozenDictionary, FrozenKb, FrozenLinks};
use crate::ids::{EntityId, PhraseId, WordId};
use crate::keyphrase::EntityPhrase;
use crate::kp_index::KeyphraseIndex;
use crate::links::LinkGraph;
use crate::phrase_runs::PhraseRuns;
use crate::store::KnowledgeBase;
use crate::weights::WeightModel;

/// Read-only view of a knowledge base.
///
/// Implemented by [`KnowledgeBase`] and [`FrozenKb`], plus blanket impls
/// for `&K` and `Arc<K>` so both borrowed and shared-handle call styles
/// work. `Send + Sync` is a supertrait: every view must be shareable across
/// the rayon workers of the parallel engine.
pub trait KbView: Send + Sync {
    /// Number of entities N in the repository.
    fn entity_count(&self) -> usize;

    /// The entity record for `e`.
    fn entity(&self, e: EntityId) -> &Entity;

    /// Looks up an entity by its canonical name.
    fn entity_by_name(&self, canonical_name: &str) -> Option<EntityId>;

    /// Candidate entities for a mention surface (dictionary lookup with the
    /// §3.3.2 case rules). Empty when the surface is out-of-dictionary.
    fn candidates(&self, surface: &str) -> &[Candidate];

    /// Popularity prior p(e | surface) (§3.3.3).
    fn prior(&self, surface: &str, e: EntityId) -> f64;

    /// The name dictionary, behind the representation-bridging wrapper.
    fn dictionary(&self) -> DictView<'_>;

    /// The link graph, behind the representation-bridging wrapper.
    fn links(&self) -> LinksView<'_>;

    /// The keyphrase set KP(e), sorted by phrase id.
    fn keyphrases(&self, e: EntityId) -> &[EntityPhrase];

    /// The keyphrase inverted index (keyword → (entity, phrase) postings).
    fn keyphrase_index(&self) -> &KeyphraseIndex;

    /// Word-id sequence of a keyphrase.
    fn phrase_words(&self, p: PhraseId) -> &[WordId];

    /// Display surface of a keyphrase.
    fn phrase_surface(&self, p: PhraseId) -> &str;

    /// Lowercased text of a keyword.
    fn word_text(&self, w: WordId) -> &str;

    /// Looks up an interned keyword by text.
    fn word_id(&self, text: &str) -> Option<WordId>;

    /// Number of distinct keywords.
    fn word_count(&self) -> usize;

    /// Number of distinct keyphrases.
    fn phrase_count(&self) -> usize;

    /// The precomputed weight model.
    fn weights(&self) -> &WeightModel;

    /// Precomputed deduplicated phrase runs and weight masses (the
    /// similarity hot path reads these instead of re-sorting per call).
    fn phrase_runs(&self) -> &PhraseRuns;

    /// Iterates over all entity ids.
    fn entity_ids(&self) -> EntityIds {
        EntityIds(0..self.entity_count())
    }
}

/// Iterator over all entity ids of a view (dense `0..N`).
#[derive(Debug, Clone)]
pub struct EntityIds(std::ops::Range<usize>);

impl Iterator for EntityIds {
    type Item = EntityId;

    fn next(&mut self) -> Option<EntityId> {
        self.0.next().map(EntityId::from_index)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl DoubleEndedIterator for EntityIds {
    fn next_back(&mut self) -> Option<EntityId> {
        self.0.next_back().map(EntityId::from_index)
    }
}

impl ExactSizeIterator for EntityIds {}

macro_rules! delegate_kb_view {
    ($self_:ident => $inner:expr) => {
        fn entity_count(&$self_) -> usize {
            $inner.entity_count()
        }
        fn entity(&$self_, e: EntityId) -> &Entity {
            $inner.entity(e)
        }
        fn entity_by_name(&$self_, canonical_name: &str) -> Option<EntityId> {
            $inner.entity_by_name(canonical_name)
        }
        fn candidates(&$self_, surface: &str) -> &[Candidate] {
            $inner.candidates(surface)
        }
        fn prior(&$self_, surface: &str, e: EntityId) -> f64 {
            $inner.prior(surface, e)
        }
        fn dictionary(&$self_) -> DictView<'_> {
            $inner.dictionary()
        }
        fn links(&$self_) -> LinksView<'_> {
            $inner.links()
        }
        fn keyphrases(&$self_, e: EntityId) -> &[EntityPhrase] {
            $inner.keyphrases(e)
        }
        fn keyphrase_index(&$self_) -> &KeyphraseIndex {
            $inner.keyphrase_index()
        }
        fn phrase_words(&$self_, p: PhraseId) -> &[WordId] {
            $inner.phrase_words(p)
        }
        fn phrase_surface(&$self_, p: PhraseId) -> &str {
            $inner.phrase_surface(p)
        }
        fn word_text(&$self_, w: WordId) -> &str {
            $inner.word_text(w)
        }
        fn word_id(&$self_, text: &str) -> Option<WordId> {
            $inner.word_id(text)
        }
        fn word_count(&$self_) -> usize {
            $inner.word_count()
        }
        fn phrase_count(&$self_) -> usize {
            $inner.phrase_count()
        }
        fn weights(&$self_) -> &WeightModel {
            $inner.weights()
        }
        fn phrase_runs(&$self_) -> &PhraseRuns {
            $inner.phrase_runs()
        }
    };
}

impl<K: KbView + ?Sized> KbView for &K {
    delegate_kb_view!(self => (**self));
}

impl<K: KbView + ?Sized> KbView for Arc<K> {
    delegate_kb_view!(self => (**self));
}

impl KbView for KnowledgeBase {
    fn entity_count(&self) -> usize {
        KnowledgeBase::entity_count(self)
    }
    fn entity(&self, e: EntityId) -> &Entity {
        KnowledgeBase::entity(self, e)
    }
    fn entity_by_name(&self, canonical_name: &str) -> Option<EntityId> {
        KnowledgeBase::entity_by_name(self, canonical_name)
    }
    fn candidates(&self, surface: &str) -> &[Candidate] {
        KnowledgeBase::candidates(self, surface)
    }
    fn prior(&self, surface: &str, e: EntityId) -> f64 {
        KnowledgeBase::prior(self, surface, e)
    }
    fn dictionary(&self) -> DictView<'_> {
        DictView::Legacy(KnowledgeBase::dictionary(self))
    }
    fn links(&self) -> LinksView<'_> {
        LinksView::Graph(KnowledgeBase::links(self))
    }
    fn keyphrases(&self, e: EntityId) -> &[EntityPhrase] {
        KnowledgeBase::keyphrases(self, e)
    }
    fn keyphrase_index(&self) -> &KeyphraseIndex {
        KnowledgeBase::keyphrase_index(self)
    }
    fn phrase_words(&self, p: PhraseId) -> &[WordId] {
        KnowledgeBase::phrase_words(self, p)
    }
    fn phrase_surface(&self, p: PhraseId) -> &str {
        KnowledgeBase::phrase_surface(self, p)
    }
    fn word_text(&self, w: WordId) -> &str {
        KnowledgeBase::word_text(self, w)
    }
    fn word_id(&self, text: &str) -> Option<WordId> {
        KnowledgeBase::word_id(self, text)
    }
    fn word_count(&self) -> usize {
        self.word_interner().len()
    }
    fn phrase_count(&self) -> usize {
        self.phrase_interner().len()
    }
    fn weights(&self) -> &WeightModel {
        KnowledgeBase::weights(self)
    }
    fn phrase_runs(&self) -> &PhraseRuns {
        KnowledgeBase::phrase_runs(self)
    }
}

impl KbView for FrozenKb {
    fn entity_count(&self) -> usize {
        FrozenKb::entity_count(self)
    }
    fn entity(&self, e: EntityId) -> &Entity {
        FrozenKb::entity(self, e)
    }
    fn entity_by_name(&self, canonical_name: &str) -> Option<EntityId> {
        FrozenKb::entity_by_name(self, canonical_name)
    }
    fn candidates(&self, surface: &str) -> &[Candidate] {
        FrozenKb::candidates(self, surface)
    }
    fn prior(&self, surface: &str, e: EntityId) -> f64 {
        FrozenKb::prior(self, surface, e)
    }
    fn dictionary(&self) -> DictView<'_> {
        DictView::Frozen(FrozenKb::dictionary(self))
    }
    fn links(&self) -> LinksView<'_> {
        LinksView::Frozen(FrozenKb::links(self))
    }
    fn keyphrases(&self, e: EntityId) -> &[EntityPhrase] {
        FrozenKb::keyphrases(self, e)
    }
    fn keyphrase_index(&self) -> &KeyphraseIndex {
        FrozenKb::keyphrase_index(self)
    }
    fn phrase_words(&self, p: PhraseId) -> &[WordId] {
        FrozenKb::phrase_words(self, p)
    }
    fn phrase_surface(&self, p: PhraseId) -> &str {
        FrozenKb::phrase_surface(self, p)
    }
    fn word_text(&self, w: WordId) -> &str {
        FrozenKb::word_text(self, w)
    }
    fn word_id(&self, text: &str) -> Option<WordId> {
        FrozenKb::word_id(self, text)
    }
    fn word_count(&self) -> usize {
        FrozenKb::word_count(self)
    }
    fn phrase_count(&self) -> usize {
        FrozenKb::phrase_count(self)
    }
    fn weights(&self) -> &WeightModel {
        FrozenKb::weights(self)
    }
    fn phrase_runs(&self) -> &PhraseRuns {
        FrozenKb::phrase_runs(self)
    }
}

/// Representation-bridging view of the link graph.
///
/// Both arms expose sorted adjacency slices, so the merge-based set
/// operations produce identical results regardless of the backing store.
#[derive(Debug, Clone, Copy)]
pub enum LinksView<'a> {
    /// The build-time nested-`Vec` graph.
    Graph(&'a LinkGraph),
    /// The frozen CSR graph.
    Frozen(&'a FrozenLinks),
    /// The copy-on-write overlay (touched rows overlaid, rest falls
    /// through to the frozen base).
    Delta(&'a DeltaKb),
}

impl<'a> LinksView<'a> {
    /// Number of entities.
    pub fn len(&self) -> usize {
        match self {
            LinksView::Graph(g) => g.len(),
            LinksView::Frozen(f) => f.len(),
            LinksView::Delta(d) => DeltaKb::entity_count(d),
        }
    }

    /// True if the graph covers no entities.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        match self {
            LinksView::Graph(g) => g.edge_count(),
            LinksView::Frozen(f) => f.edge_count(),
            LinksView::Delta(d) => DeltaKb::edge_count(d),
        }
    }

    /// Entities linking *to* `e`, sorted ascending.
    pub fn inlinks(&self, e: EntityId) -> &'a [EntityId] {
        match self {
            LinksView::Graph(g) => g.inlinks(e),
            LinksView::Frozen(f) => f.inlinks(e),
            LinksView::Delta(d) => DeltaKb::inlinks(d, e),
        }
    }

    /// Entities `e` links *to*, sorted ascending.
    pub fn outlinks(&self, e: EntityId) -> &'a [EntityId] {
        match self {
            LinksView::Graph(g) => g.outlinks(e),
            LinksView::Frozen(f) => f.outlinks(e),
            LinksView::Delta(d) => DeltaKb::outlinks(d, e),
        }
    }

    /// Number of in-links of `e` (the entity's "link popularity").
    pub fn inlink_count(&self, e: EntityId) -> usize {
        self.inlinks(e).len()
    }

    /// Size of the intersection of the in-link sets of `a` and `b`.
    pub fn shared_inlink_count(&self, a: EntityId, b: EntityId) -> usize {
        crate::links::sorted_intersection_size(self.inlinks(a), self.inlinks(b))
    }

    /// True if a direct link exists in either direction.
    pub fn directly_linked(&self, a: EntityId, b: EntityId) -> bool {
        self.outlinks(a).binary_search(&b).is_ok() || self.outlinks(b).binary_search(&a).is_ok()
    }
}

/// Representation-bridging view of the name dictionary.
#[derive(Debug, Clone, Copy)]
pub enum DictView<'a> {
    /// The build-time hash-map dictionary.
    Legacy(&'a Dictionary),
    /// The frozen sorted-arena dictionary.
    Frozen(&'a FrozenDictionary),
    /// The copy-on-write overlay (touched rows overlaid, rest falls
    /// through to the frozen base).
    Delta(&'a DeltaKb),
}

impl<'a> DictView<'a> {
    /// Candidate entities for a mention surface, or an empty slice when the
    /// name is unknown.
    pub fn candidates(&self, surface: &str) -> &'a [Candidate] {
        match self {
            DictView::Legacy(d) => d.candidates(surface),
            DictView::Frozen(d) => d.candidates(surface),
            DictView::Delta(d) => DeltaKb::candidates(d, surface),
        }
    }

    /// Popularity prior p(e | name) (§3.3.3). Returns 0 if the pair is
    /// unknown.
    pub fn prior(&self, surface: &str, entity: EntityId) -> f64 {
        match self {
            DictView::Legacy(d) => d.prior(surface, entity),
            DictView::Frozen(d) => d.prior(surface, entity),
            DictView::Delta(d) => DeltaKb::prior(d, surface, entity),
        }
    }

    /// Full prior distribution over the candidates of a name, in candidate
    /// order. Empty when the name is unknown.
    pub fn prior_distribution(&self, surface: &str) -> Vec<(EntityId, f64)> {
        match self {
            DictView::Legacy(d) => d.prior_distribution(surface),
            DictView::Frozen(d) => d.prior_distribution(surface),
            DictView::Delta(d) => DeltaKb::prior_distribution(d, surface),
        }
    }

    /// Number of distinct names.
    pub fn name_count(&self) -> usize {
        match self {
            DictView::Legacy(d) => d.name_count(),
            DictView::Frozen(d) => d.name_count(),
            DictView::Delta(d) => DeltaKb::name_count(d),
        }
    }

    /// Number of (name, entity) pairs.
    pub fn pair_count(&self) -> usize {
        match self {
            DictView::Legacy(d) => d.pair_count(),
            DictView::Frozen(d) => d.pair_count(),
            DictView::Delta(d) => DeltaKb::pair_count(d),
        }
    }

    /// Iterates over all (name-key, candidates) entries in ascending key
    /// order. The frozen arm walks the pre-sorted arrays without allocating;
    /// the legacy arm pays the per-call key sort of [`Dictionary::iter`];
    /// the delta arm merges the base walk with the sorted overlay keys
    /// (overlay shadows the base on equal keys).
    pub fn iter(&self) -> DictIter<'a> {
        match self {
            DictView::Legacy(d) => DictIter::Legacy(Box::new(d.iter())),
            DictView::Frozen(d) => DictIter::Frozen { dict: d, next: 0 },
            DictView::Delta(d) => DictIter::Delta { delta: d, base_next: 0, overlay_next: 0 },
        }
    }
}

/// Iterator over dictionary entries in ascending key order.
pub enum DictIter<'a> {
    /// Boxed legacy iterator (hash-map keys collected and sorted per call).
    Legacy(Box<dyn Iterator<Item = (&'a str, &'a [Candidate])> + 'a>),
    /// Zero-alloc index walk over the frozen sorted arrays.
    Frozen {
        /// The frozen dictionary being walked.
        dict: &'a FrozenDictionary,
        /// Next entry index.
        next: usize,
    },
    /// Linear merge of the frozen base walk with the sorted overlay keys;
    /// the overlay row shadows the base row on equal keys.
    Delta {
        /// The overlay being walked.
        delta: &'a DeltaKb,
        /// Next base entry index.
        base_next: usize,
        /// Next overlay key index.
        overlay_next: usize,
    },
}

impl std::fmt::Debug for DictIter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DictIter::Legacy(_) => f.debug_tuple("Legacy").finish_non_exhaustive(),
            DictIter::Frozen { next, .. } => {
                f.debug_struct("Frozen").field("next", next).finish_non_exhaustive()
            }
            DictIter::Delta { base_next, overlay_next, .. } => f
                .debug_struct("Delta")
                .field("base_next", base_next)
                .field("overlay_next", overlay_next)
                .finish_non_exhaustive(),
        }
    }
}

impl<'a> Iterator for DictIter<'a> {
    type Item = (&'a str, &'a [Candidate]);

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            DictIter::Legacy(it) => it.next(),
            DictIter::Frozen { dict, next } => {
                if *next >= dict.name_count() {
                    return None;
                }
                let i = *next;
                *next += 1;
                Some((dict.key_at(i), dict.candidates_at(i)))
            }
            DictIter::Delta { delta, base_next, overlay_next } => {
                let base = FrozenKb::dictionary(DeltaKb::base(delta));
                let overlay = DeltaKb::dict_overlay_keys(delta);
                let base_key =
                    (*base_next < base.name_count()).then(|| base.key_at(*base_next));
                let overlay_key = overlay.get(*overlay_next).map(String::as_str);
                let take_overlay = match (base_key, overlay_key) {
                    (None, None) => return None,
                    (Some(_), None) => false,
                    (None, Some(_)) => true,
                    (Some(b), Some(o)) => {
                        if b == o {
                            // Overlay shadows the base row; skip the base's.
                            *base_next += 1;
                        }
                        b >= o
                    }
                };
                if take_overlay {
                    let key = &overlay[*overlay_next]; // ned-lint: allow(p1) — index bounded by the Some() check above
                    *overlay_next += 1;
                    Some((key.as_str(), DeltaKb::dict_overlay_row(delta, key).unwrap_or(&[])))
                } else {
                    let i = *base_next;
                    *base_next += 1;
                    Some((base.key_at(i), base.candidates_at(i)))
                }
            }
        }
    }
}

impl KbView for DeltaKb {
    fn entity_count(&self) -> usize {
        DeltaKb::entity_count(self)
    }
    fn entity(&self, e: EntityId) -> &Entity {
        DeltaKb::entity(self, e)
    }
    fn entity_by_name(&self, canonical_name: &str) -> Option<EntityId> {
        DeltaKb::entity_by_name(self, canonical_name)
    }
    fn candidates(&self, surface: &str) -> &[Candidate] {
        DeltaKb::candidates(self, surface)
    }
    fn prior(&self, surface: &str, e: EntityId) -> f64 {
        DeltaKb::prior(self, surface, e)
    }
    fn dictionary(&self) -> DictView<'_> {
        DictView::Delta(self)
    }
    fn links(&self) -> LinksView<'_> {
        LinksView::Delta(self)
    }
    fn keyphrases(&self, e: EntityId) -> &[EntityPhrase] {
        DeltaKb::keyphrases(self, e)
    }
    fn keyphrase_index(&self) -> &KeyphraseIndex {
        DeltaKb::keyphrase_index(self)
    }
    fn phrase_words(&self, p: PhraseId) -> &[WordId] {
        DeltaKb::phrase_words(self, p)
    }
    fn phrase_surface(&self, p: PhraseId) -> &str {
        DeltaKb::phrase_surface(self, p)
    }
    fn word_text(&self, w: WordId) -> &str {
        DeltaKb::word_text(self, w)
    }
    fn word_id(&self, text: &str) -> Option<WordId> {
        DeltaKb::word_id(self, text)
    }
    fn word_count(&self) -> usize {
        DeltaKb::word_count(self)
    }
    fn phrase_count(&self) -> usize {
        DeltaKb::phrase_count(self)
    }
    fn weights(&self) -> &WeightModel {
        DeltaKb::weights(self)
    }
    fn phrase_runs(&self) -> &PhraseRuns {
        DeltaKb::phrase_runs(self)
    }
}
