//! The assembled knowledge base.

use serde::{Deserialize, Serialize};

use crate::dictionary::{Candidate, Dictionary};
use crate::entity::Entity;
use crate::fx::FxHashMap;
use crate::ids::{EntityId, PhraseId, WordId};
use crate::keyphrase::{EntityPhrase, KeyphraseStore};
use crate::kp_index::KeyphraseIndex;
use crate::links::LinkGraph;
use crate::phrase_runs::PhraseRuns;
use crate::vocab::{PhraseInterner, WordInterner};
use crate::weights::WeightModel;

/// An immutable knowledge base: entity repository, name dictionary, link
/// graph, keyphrase store, and precomputed statistical weights.
///
/// Construct via [`crate::builder::KbBuilder`]; serialize via
/// [`crate::snapshot`].
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct KnowledgeBase {
    pub(crate) entities: Vec<Entity>,
    pub(crate) words: WordInterner,
    pub(crate) phrases: PhraseInterner,
    pub(crate) dictionary: Dictionary,
    pub(crate) links: LinkGraph,
    pub(crate) keyphrases: KeyphraseStore,
    pub(crate) weights: WeightModel,
    #[serde(skip)]
    pub(crate) by_name: FxHashMap<String, EntityId>,
    #[serde(skip)]
    pub(crate) kp_index: KeyphraseIndex,
    #[serde(skip)]
    pub(crate) phrase_runs: PhraseRuns,
}

impl KnowledgeBase {
    /// Number of entities N in the repository.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// The entity record for `e`.
    pub fn entity(&self, e: EntityId) -> &Entity {
        &self.entities[e.index()]
    }

    /// Iterates over all entity ids.
    pub fn entity_ids(&self) -> impl Iterator<Item = EntityId> {
        (0..self.entities.len()).map(EntityId::from_index)
    }

    /// Looks up an entity by its canonical name.
    pub fn entity_by_name(&self, canonical_name: &str) -> Option<EntityId> {
        self.by_name.get(canonical_name).copied()
    }

    /// Candidate entities for a mention surface (dictionary lookup with the
    /// §3.3.2 case rules). Empty when the surface is out-of-dictionary.
    pub fn candidates(&self, surface: &str) -> &[Candidate] {
        self.dictionary.candidates(surface)
    }

    /// Popularity prior p(e | surface) (§3.3.3).
    pub fn prior(&self, surface: &str, e: EntityId) -> f64 {
        self.dictionary.prior(surface, e)
    }

    /// The name dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }

    /// The link graph.
    pub fn links(&self) -> &LinkGraph {
        &self.links
    }

    /// The keyphrase set KP(e).
    pub fn keyphrases(&self, e: EntityId) -> &[EntityPhrase] {
        self.keyphrases.phrases(e)
    }

    /// The raw keyphrase store.
    pub fn keyphrase_store(&self) -> &KeyphraseStore {
        &self.keyphrases
    }

    /// The keyphrase inverted index (keyword → (entity, phrase) postings).
    pub fn keyphrase_index(&self) -> &KeyphraseIndex {
        &self.kp_index
    }

    /// Precomputed deduplicated phrase runs and weight masses.
    pub fn phrase_runs(&self) -> &PhraseRuns {
        &self.phrase_runs
    }

    /// Word-id sequence of a keyphrase.
    pub fn phrase_words(&self, p: PhraseId) -> &[WordId] {
        self.phrases.words(p)
    }

    /// Display surface of a keyphrase.
    pub fn phrase_surface(&self, p: PhraseId) -> &str {
        self.phrases.surface(p)
    }

    /// Lowercased text of a keyword.
    pub fn word_text(&self, w: WordId) -> &str {
        self.words.text(w)
    }

    /// Looks up an interned keyword by text.
    pub fn word_id(&self, text: &str) -> Option<WordId> {
        self.words.get(text)
    }

    /// The word interner.
    pub fn word_interner(&self) -> &WordInterner {
        &self.words
    }

    /// The phrase interner.
    pub fn phrase_interner(&self) -> &PhraseInterner {
        &self.phrases
    }

    /// The precomputed weight model.
    pub fn weights(&self) -> &WeightModel {
        &self.weights
    }

    /// Rebuilds transient lookup indexes (after deserialization).
    pub(crate) fn rebuild_indexes(&mut self) {
        self.words.rebuild_index();
        self.phrases.rebuild_index();
        self.by_name = self
            .entities
            .iter()
            .enumerate()
            .map(|(i, e)| (e.canonical_name.clone(), EntityId::from_index(i)))
            .collect();
        self.kp_index = KeyphraseIndex::build(&self.keyphrases, &self.phrases, self.words.len());
        self.phrase_runs = PhraseRuns::build_raw(
            self.phrases.len(),
            self.entities.len(),
            |e| self.keyphrases.phrases(e),
            |p| self.phrases.words(p),
            &self.weights,
        );
    }
}
