//! Copy-on-write delta overlay over a frozen knowledge base.
//!
//! The paper's NED-EE loop (Ch. 5) needs the KB to *grow* while readers
//! keep annotating. [`DeltaKb`] is the read side of that growth: an
//! immutable overlay that layers the effect of a [`KbMutation`] sequence
//! over an untouched `Arc<FrozenKb>` base and implements
//! [`crate::view::KbView`], so every consumer — disambiguator, relatedness,
//! serving — works against it unchanged.
//!
//! ## Semantics
//!
//! Building an overlay conceptually **thaws** the frozen base back into a
//! legacy [`KnowledgeBase`] (id-preserving: entity `i` stays entity `i`,
//! phrase `p` stays phrase `p`), applies the mutations exactly as
//! [`crate::builder::KbBuilder`] would have at build time, and keeps only
//! the *rows that changed* plus the recomputed global statistics
//! ([`WeightModel`], [`KeyphraseIndex`], [`PhraseRuns`] — IDF and the
//! superdocument model depend on the global entity count, so they cannot be
//! patched row-wise). Reads of untouched rows fall through to the base
//! arrays with one hash-map miss of overhead; reads of touched rows hit the
//! overlay.
//!
//! [`DeltaKb::compact`] folds base + mutations into a fresh [`FrozenKb`]
//! that is bitwise-identical to building the merged KB from scratch —
//! the overlay and its compaction share one merge routine, so they cannot
//! drift apart.

use std::sync::Arc;

use ned_core::NedError;
use ned_obs::{names, Metrics};
use ned_text::normalize::{match_key, squash_whitespace};

use crate::dictionary::{Candidate, Dictionary};
use crate::entity::Entity;
use crate::frozen::FrozenKb;
use crate::fx::{FxHashMap, FxHashSet};
use crate::ids::{EntityId, PhraseId, WordId};
use crate::keyphrase::{EntityPhrase, KeyphraseStore};
use crate::kp_index::KeyphraseIndex;
use crate::links::LinkGraph;
use crate::mutation::KbMutation;
use crate::phrase_runs::PhraseRuns;
use crate::store::KnowledgeBase;
use crate::vocab::{PhraseInterner, WordInterner};
use crate::weights::WeightModel;

/// Rows the mutation sequence touched, keyed by their post-merge identity.
#[derive(Debug, Default)]
pub(crate) struct Touched {
    /// Entities whose keyphrase row changed.
    kp_rows: FxHashSet<EntityId>,
    /// Dictionary match-keys whose candidate row changed.
    dict_keys: FxHashSet<String>,
    /// Entities whose out-link row changed.
    out_rows: FxHashSet<EntityId>,
    /// Entities whose in-link row changed.
    in_rows: FxHashSet<EntityId>,
}

/// Reconstructs the legacy representation of a frozen KB, id-preserving:
/// every entity, word, and phrase keeps its dense id, so mutations applied
/// to the thawed KB mean the same thing they would have meant at build
/// time.
fn thaw(base: &FrozenKb) -> KnowledgeBase {
    let n = base.entity_count();
    let entities: Vec<Entity> =
        (0..n).map(|i| base.entity(EntityId::from_index(i)).clone()).collect();
    let words = WordInterner::from_words(
        (0..base.word_count())
            .map(|i| base.word_text(WordId::from_index(i)).to_string())
            .collect(),
    );
    let phrases = PhraseInterner::from_parts(
        (0..base.phrase_count())
            .map(|i| base.phrase_words(PhraseId::from_index(i)).to_vec())
            .collect(),
        (0..base.phrase_count())
            .map(|i| base.phrase_surface(PhraseId::from_index(i)).to_string())
            .collect(),
    );
    let mut dictionary = Dictionary::new();
    let frozen_dict = base.dictionary();
    for i in 0..frozen_dict.name_count() {
        // Frozen keys are already match-key normalized; insert them raw.
        dictionary.insert_row(frozen_dict.key_at(i).to_string(), frozen_dict.candidates_at(i).to_vec());
    }
    let frozen_links = base.links();
    let links = LinkGraph::from_rows(
        (0..n).map(|i| frozen_links.inlinks(EntityId::from_index(i)).to_vec()).collect(),
        (0..n).map(|i| frozen_links.outlinks(EntityId::from_index(i)).to_vec()).collect(),
        frozen_links.edge_count(),
    );
    let keyphrases = KeyphraseStore::from_rows(
        (0..n).map(|i| base.keyphrases(EntityId::from_index(i)).to_vec()).collect(),
        base.total_phrase_observations(),
    );
    let by_name = entities
        .iter()
        .enumerate()
        .map(|(i, e)| (e.canonical_name.clone(), EntityId::from_index(i)))
        .collect();
    KnowledgeBase {
        entities,
        words,
        phrases,
        dictionary,
        links,
        keyphrases,
        weights: WeightModel::default(),
        by_name,
        kp_index: KeyphraseIndex::default(),
        phrase_runs: PhraseRuns::default(),
    }
}

/// Resolves a canonical name against the merged-so-far KB.
fn resolve(kb: &KnowledgeBase, name: &str) -> Result<EntityId, NedError> {
    kb.by_name
        .get(name)
        .copied()
        .ok_or_else(|| NedError::Lookup { what: "entity name", key: name.to_string() })
}

/// Applies one mutation to the thawed KB, mirroring the corresponding
/// [`crate::builder::KbBuilder`] operation, and records what it touched.
fn apply(kb: &mut KnowledgeBase, touched: &mut Touched, m: &KbMutation) -> Result<(), NedError> {
    match m {
        KbMutation::AddEntity { canonical_name, kind } => {
            if kb.by_name.contains_key(canonical_name) {
                return Err(NedError::Config {
                    what: "kb mutation",
                    message: format!("add_entity: canonical name already taken: {canonical_name}"),
                });
            }
            let id = EntityId::from_index(kb.entities.len());
            kb.entities.push(Entity::new(canonical_name.clone(), *kind));
            kb.by_name.insert(canonical_name.clone(), id);
            kb.links.grow_to(kb.entities.len());
            kb.keyphrases.grow_to(kb.entities.len());
            // The builder registers the title itself as a name observation.
            kb.dictionary.add(canonical_name, id, 1);
            touched.dict_keys.insert(match_key(&squash_whitespace(canonical_name)));
        }
        KbMutation::AddLink { src, dst } => {
            let s = resolve(kb, src)?;
            let d = resolve(kb, dst)?;
            kb.links.add_link(s, d);
            touched.out_rows.insert(s);
            touched.in_rows.insert(d);
        }
        KbMutation::AddKeyphrase { entity, surface, count } => {
            let e = resolve(kb, entity)?;
            if surface.split_whitespace().next().is_none() {
                return Err(NedError::Config {
                    what: "kb mutation",
                    message: format!("add_keyphrase: empty keyphrase for {entity}"),
                });
            }
            let p = kb.phrases.intern(surface, &mut kb.words);
            kb.keyphrases.add(e, p, *count);
            touched.kp_rows.insert(e);
        }
        KbMutation::ReweightKeyphrase { entity, surface, delta } => {
            let e = resolve(kb, entity)?;
            let p = kb.phrases.get(surface, &kb.words).ok_or_else(|| NedError::Lookup {
                what: "keyphrase",
                key: surface.clone(),
            })?;
            kb.keyphrases.reweight(e, p, *delta).ok_or_else(|| NedError::Lookup {
                what: "entity keyphrase",
                key: format!("{entity} / {surface}"),
            })?;
            touched.kp_rows.insert(e);
        }
        KbMutation::AddDictionarySurface { entity, surface, count } => {
            let e = resolve(kb, entity)?;
            kb.dictionary.add(surface, e, *count);
            touched.dict_keys.insert(match_key(&squash_whitespace(surface)));
        }
    }
    Ok(())
}

/// Thaws `base`, applies `mutations` in order, and finalizes into a fully
/// consistent [`KnowledgeBase`] — exactly the KB a from-scratch build of
/// base-ops + mutations would have produced. Shared by [`DeltaKb::build`]
/// and [`DeltaKb::compact`] so overlay reads and compacted snapshots cannot
/// disagree.
pub(crate) fn merge(
    base: &FrozenKb,
    mutations: &[KbMutation],
) -> Result<(KnowledgeBase, Touched), NedError> {
    let mut kb = thaw(base);
    let mut touched = Touched::default();
    for m in mutations {
        apply(&mut kb, &mut touched, m)?;
    }
    // Finalize is idempotent on untouched rows: the frozen arrays were
    // stored in exactly the order these sorts produce.
    kb.dictionary.finalize();
    kb.links.finalize();
    kb.keyphrases.finalize();
    kb.weights = WeightModel::compute(&kb.keyphrases, &kb.links, &kb.phrases, kb.words.len());
    kb.rebuild_indexes();
    Ok((kb, touched))
}

/// An immutable copy-on-write overlay: `base` + the effect of `mutations`,
/// readable through [`crate::view::KbView`].
///
/// Untouched rows fall through to the frozen base; touched rows (and
/// everything belonging to newly added entities) live in overlay maps.
/// Global statistics are recomputed over the merged KB, because IDF and the
/// superdocument NPMI depend on the total entity count.
#[derive(Debug)]
pub struct DeltaKb {
    base: Arc<FrozenKb>,
    mutations: Vec<KbMutation>,
    base_entity_count: usize,
    base_word_count: usize,
    base_phrase_count: usize,
    /// Entities `base_entity_count..`, in id order.
    new_entities: Vec<Entity>,
    /// Canonical names of the new entities only.
    by_name_new: FxHashMap<String, EntityId>,
    /// Full merged keyphrase rows of touched + new entities.
    kp_rows: FxHashMap<EntityId, Vec<EntityPhrase>>,
    /// Full merged adjacency rows of touched + new entities.
    inlink_rows: FxHashMap<EntityId, Vec<EntityId>>,
    outlink_rows: FxHashMap<EntityId, Vec<EntityId>>,
    /// Full merged candidate rows of touched dictionary keys.
    dict_rows: FxHashMap<String, Vec<Candidate>>,
    /// The overlay keys, sorted, for merged iteration.
    dict_keys_sorted: Vec<String>,
    merged_name_count: usize,
    merged_pair_count: usize,
    merged_edge_count: usize,
    /// Words `base_word_count..`, in id order (already lowercased).
    words_new: Vec<String>,
    word_index_new: FxHashMap<String, WordId>,
    /// Phrases `base_phrase_count..`, in id order.
    phrases_new: Vec<Vec<WordId>>,
    phrase_surfaces_new: Vec<String>,
    total_phrase_observations: u64,
    weights: WeightModel,
    kp_index: KeyphraseIndex,
    phrase_runs: PhraseRuns,
}

impl DeltaKb {
    /// Builds the overlay for `mutations` over `base`.
    ///
    /// Cost is one thaw + merge (linear in the base) at build time; reads
    /// afterwards are lock-free and allocation-free on the fall-through
    /// path. Name-resolution failures and duplicate entities surface as
    /// typed errors.
    pub fn build(base: Arc<FrozenKb>, mutations: Vec<KbMutation>) -> Result<DeltaKb, NedError> {
        Self::build_observed(base, mutations, &Metrics::disabled())
    }

    /// [`DeltaKb::build`], metered: sets the `kb_delta_entities` gauge to
    /// the number of entities this overlay adds.
    pub fn build_observed(
        base: Arc<FrozenKb>,
        mutations: Vec<KbMutation>,
        metrics: &Metrics,
    ) -> Result<DeltaKb, NedError> {
        let (merged, touched) = merge(&base, &mutations)?;
        let base_n = base.entity_count();
        let merged_n = merged.entity_count();

        let mut new_entities = Vec::with_capacity(merged_n - base_n);
        let mut by_name_new = FxHashMap::default();
        let mut kp_rows = FxHashMap::default();
        let mut inlink_rows = FxHashMap::default();
        let mut outlink_rows = FxHashMap::default();
        for i in base_n..merged_n {
            let e = EntityId::from_index(i);
            let ent = merged.entity(e).clone();
            by_name_new.insert(ent.canonical_name.clone(), e);
            new_entities.push(ent);
            kp_rows.insert(e, merged.keyphrases(e).to_vec());
            inlink_rows.insert(e, merged.links().inlinks(e).to_vec());
            outlink_rows.insert(e, merged.links().outlinks(e).to_vec());
        }
        for &e in &touched.kp_rows {
            kp_rows.entry(e).or_insert_with(|| merged.keyphrases(e).to_vec());
        }
        for &e in &touched.in_rows {
            inlink_rows.entry(e).or_insert_with(|| merged.links().inlinks(e).to_vec());
        }
        for &e in &touched.out_rows {
            outlink_rows.entry(e).or_insert_with(|| merged.links().outlinks(e).to_vec());
        }
        let mut dict_rows = FxHashMap::default();
        for key in &touched.dict_keys {
            if let Some(row) = merged.dictionary().row(key) {
                dict_rows.insert(key.clone(), row.to_vec());
            }
        }
        let mut dict_keys_sorted: Vec<String> = dict_rows.keys().cloned().collect();
        dict_keys_sorted.sort_unstable();

        let base_words = base.word_count();
        let base_phrases = base.phrase_count();
        let words_new: Vec<String> = (base_words..merged.word_interner().len())
            .map(|i| merged.word_text(WordId::from_index(i)).to_string())
            .collect();
        let word_index_new = words_new
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), WordId::from_index(base_words + i)))
            .collect();
        let phrases_new: Vec<Vec<WordId>> = (base_phrases..merged.phrase_interner().len())
            .map(|i| merged.phrase_words(PhraseId::from_index(i)).to_vec())
            .collect();
        let phrase_surfaces_new: Vec<String> = (base_phrases..merged.phrase_interner().len())
            .map(|i| merged.phrase_surface(PhraseId::from_index(i)).to_string())
            .collect();

        metrics.gauge(names::KB_DELTA_ENTITIES).set((merged_n - base_n) as u64);

        Ok(DeltaKb {
            base,
            mutations,
            base_entity_count: base_n,
            base_word_count: base_words,
            base_phrase_count: base_phrases,
            new_entities,
            by_name_new,
            kp_rows,
            inlink_rows,
            outlink_rows,
            dict_rows,
            dict_keys_sorted,
            merged_name_count: merged.dictionary().name_count(),
            merged_pair_count: merged.dictionary().pair_count(),
            merged_edge_count: merged.links().edge_count(),
            words_new,
            word_index_new,
            phrases_new,
            phrase_surfaces_new,
            total_phrase_observations: merged.keyphrase_store().total_observations(),
            weights: merged.weights.clone(),
            kp_index: merged.kp_index.clone(),
            phrase_runs: merged.phrase_runs.clone(),
        })
    }

    /// The frozen base this overlay layers over.
    pub fn base(&self) -> &Arc<FrozenKb> {
        &self.base
    }

    /// The mutation sequence this overlay applies, in order.
    pub fn mutations(&self) -> &[KbMutation] {
        &self.mutations
    }

    /// Number of entities the overlay adds on top of the base.
    pub fn delta_entity_count(&self) -> usize {
        self.new_entities.len()
    }

    /// Folds base + mutations into a fresh [`FrozenKb`].
    ///
    /// Re-runs the same merge that built this overlay, so the result is
    /// bitwise-identical to freezing a from-scratch build of the merged KB
    /// — the compaction invariant the equivalence suite pins down.
    pub fn compact(&self) -> Result<FrozenKb, NedError> {
        let (merged, _) = merge(&self.base, &self.mutations)?;
        Ok(FrozenKb::freeze(&merged))
    }

    // --- read helpers shared with the view wrappers ---------------------

    /// Number of entities in the merged KB.
    pub fn entity_count(&self) -> usize {
        self.base_entity_count + self.new_entities.len()
    }

    /// The entity record for `e` (base fall-through for old ids).
    pub fn entity(&self, e: EntityId) -> &Entity {
        if e.index() < self.base_entity_count {
            self.base.entity(e)
        } else {
            &self.new_entities[e.index() - self.base_entity_count] // ned-lint: allow(p1) — same panics-on-unknown-id contract as the base representations
        }
    }

    /// Looks up an entity by canonical name (overlay first, then base).
    pub fn entity_by_name(&self, canonical_name: &str) -> Option<EntityId> {
        self.by_name_new
            .get(canonical_name)
            .copied()
            .or_else(|| self.base.entity_by_name(canonical_name))
    }

    /// Candidate row for an **already-normalized** match key.
    pub(crate) fn candidates_by_key(&self, key: &str) -> &[Candidate] {
        match self.dict_rows.get(key) {
            Some(row) => row.as_slice(),
            None => self.base.dictionary().candidates_by_key(key),
        }
    }

    /// Candidate entities for a mention surface (§3.3.2 case rules).
    pub fn candidates(&self, surface: &str) -> &[Candidate] {
        self.candidates_by_key(&match_key(&squash_whitespace(surface)))
    }

    /// Popularity prior p(e | surface) — identical arithmetic to the base
    /// dictionaries.
    pub fn prior(&self, surface: &str, entity: EntityId) -> f64 {
        let cands = self.candidates(surface);
        let total: u64 = cands.iter().map(|c| c.count).sum();
        if total == 0 {
            return 0.0;
        }
        cands
            .iter()
            .find(|c| c.entity == entity)
            .map_or(0.0, |c| c.count as f64 / total as f64)
    }

    /// Full prior distribution over the candidates of a name.
    pub fn prior_distribution(&self, surface: &str) -> Vec<(EntityId, f64)> {
        let cands = self.candidates(surface);
        let total: u64 = cands.iter().map(|c| c.count).sum();
        if total == 0 {
            return Vec::new();
        }
        cands.iter().map(|c| (c.entity, c.count as f64 / total as f64)).collect()
    }

    /// Number of distinct names in the merged dictionary.
    pub fn name_count(&self) -> usize {
        self.merged_name_count
    }

    /// Number of (name, entity) pairs in the merged dictionary.
    pub fn pair_count(&self) -> usize {
        self.merged_pair_count
    }

    /// Sorted overlay dictionary keys (for merged iteration).
    pub(crate) fn dict_overlay_keys(&self) -> &[String] {
        &self.dict_keys_sorted
    }

    /// Overlay dictionary row by key.
    pub(crate) fn dict_overlay_row(&self, key: &str) -> Option<&[Candidate]> {
        self.dict_rows.get(key).map(Vec::as_slice)
    }

    /// Entities linking *to* `e`, sorted ascending.
    pub fn inlinks(&self, e: EntityId) -> &[EntityId] {
        match self.inlink_rows.get(&e) {
            Some(row) => row.as_slice(),
            None => self.base.links().inlinks(e),
        }
    }

    /// Entities `e` links *to*, sorted ascending.
    pub fn outlinks(&self, e: EntityId) -> &[EntityId] {
        match self.outlink_rows.get(&e) {
            Some(row) => row.as_slice(),
            None => self.base.links().outlinks(e),
        }
    }

    /// Number of directed edges in the merged graph.
    pub fn edge_count(&self) -> usize {
        self.merged_edge_count
    }

    /// The keyphrase set KP(e), sorted by phrase id.
    pub fn keyphrases(&self, e: EntityId) -> &[EntityPhrase] {
        match self.kp_rows.get(&e) {
            Some(row) => row.as_slice(),
            None => self.base.keyphrases(e),
        }
    }

    /// Word-id sequence of a keyphrase (overlay for new phrase ids).
    pub fn phrase_words(&self, p: PhraseId) -> &[WordId] {
        if p.index() < self.base_phrase_count {
            self.base.phrase_words(p)
        } else {
            self.phrases_new
                .get(p.index() - self.base_phrase_count)
                .map_or(&[], Vec::as_slice)
        }
    }

    /// Display surface of a keyphrase (overlay for new phrase ids).
    pub fn phrase_surface(&self, p: PhraseId) -> &str {
        if p.index() < self.base_phrase_count {
            self.base.phrase_surface(p)
        } else {
            self.phrase_surfaces_new
                .get(p.index() - self.base_phrase_count)
                .map_or("", String::as_str)
        }
    }

    /// Lowercased text of a keyword (overlay for new word ids).
    pub fn word_text(&self, w: WordId) -> &str {
        if w.index() < self.base_word_count {
            self.base.word_text(w)
        } else {
            self.words_new.get(w.index() - self.base_word_count).map_or("", String::as_str)
        }
    }

    /// Looks up an interned keyword by text (overlay first, then base).
    pub fn word_id(&self, text: &str) -> Option<WordId> {
        let key = text.to_lowercase();
        self.word_index_new.get(&key).copied().or_else(|| self.base.word_id(&key))
    }

    /// Number of distinct keywords in the merged KB.
    pub fn word_count(&self) -> usize {
        self.base_word_count + self.words_new.len()
    }

    /// Number of distinct keyphrases in the merged KB.
    pub fn phrase_count(&self) -> usize {
        self.base_phrase_count + self.phrases_new.len()
    }

    /// Total phrase observations across the merged KB.
    pub fn total_phrase_observations(&self) -> u64 {
        self.total_phrase_observations
    }

    /// The weight model recomputed over the merged KB.
    pub fn weights(&self) -> &WeightModel {
        &self.weights
    }

    /// The keyphrase inverted index recomputed over the merged KB.
    pub fn keyphrase_index(&self) -> &KeyphraseIndex {
        &self.kp_index
    }

    /// Phrase runs recomputed over the merged KB.
    pub fn phrase_runs(&self) -> &PhraseRuns {
        &self.phrase_runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::tests::example_kb;
    use crate::entity::EntityKind;
    use crate::view::KbView;

    fn sample_mutations() -> Vec<KbMutation> {
        vec![
            KbMutation::AddEntity {
                canonical_name: "Black Dog (song)".into(),
                kind: EntityKind::Work,
            },
            KbMutation::AddDictionarySurface {
                entity: "Black Dog (song)".into(),
                surface: "Black Dog".into(),
                count: 4,
            },
            KbMutation::AddKeyphrase {
                entity: "Black Dog (song)".into(),
                surface: "hard rock song".into(),
                count: 3,
            },
            KbMutation::AddLink { src: "Black Dog (song)".into(), dst: "Jimmy Page".into() },
            KbMutation::AddLink { src: "Jimmy Page".into(), dst: "Black Dog (song)".into() },
            KbMutation::AddKeyphrase {
                entity: "Jimmy Page".into(),
                surface: "hard rock song".into(),
                count: 1,
            },
            KbMutation::ReweightKeyphrase {
                entity: "Jimmy Page".into(),
                surface: "hard rock song".into(),
                delta: 2,
            },
            KbMutation::AddDictionarySurface {
                entity: "Kashmir (song)".into(),
                surface: "Kashmir".into(),
                count: 10,
            },
        ]
    }

    fn fixture() -> (Arc<FrozenKb>, DeltaKb, KnowledgeBase) {
        let base = Arc::new(FrozenKb::freeze(&example_kb()));
        let muts = sample_mutations();
        let (merged, _) = merge(&base, &muts).unwrap();
        let delta = DeltaKb::build(Arc::clone(&base), muts).unwrap();
        (base, delta, merged)
    }

    #[test]
    fn overlay_reads_match_merged_kb() {
        let (_, delta, merged) = fixture();
        assert_eq!(delta.entity_count(), merged.entity_count());
        assert_eq!(delta.word_count(), merged.word_interner().len());
        assert_eq!(delta.phrase_count(), merged.phrase_interner().len());
        assert_eq!(delta.name_count(), merged.dictionary().name_count());
        assert_eq!(delta.pair_count(), merged.dictionary().pair_count());
        assert_eq!(delta.edge_count(), merged.links().edge_count());
        assert_eq!(
            delta.total_phrase_observations(),
            merged.keyphrase_store().total_observations()
        );
        for e in merged.entity_ids() {
            assert_eq!(delta.entity(e), merged.entity(e));
            assert_eq!(delta.keyphrases(e), merged.keyphrases(e));
            assert_eq!(delta.inlinks(e), merged.links().inlinks(e));
            assert_eq!(delta.outlinks(e), merged.links().outlinks(e));
        }
        for surface in ["Black Dog", "Kashmir", "Jimmy Page", "Page", "Unknown Name"] {
            assert_eq!(delta.candidates(surface), merged.candidates(surface));
            assert_eq!(delta.prior_distribution(surface), {
                let cands = merged.candidates(surface);
                let total: u64 = cands.iter().map(|c| c.count).sum();
                if total == 0 {
                    Vec::new()
                } else {
                    cands.iter().map(|c| (c.entity, c.count as f64 / total as f64)).collect()
                }
            });
        }
    }

    #[test]
    fn untouched_rows_fall_through_to_base() {
        let (base, delta, _) = fixture();
        // "Robert Plant" is never touched by the mutations: the returned
        // slices must be the base's own memory, not copies.
        let e = base.entity_by_name("Robert Plant").unwrap();
        assert!(std::ptr::eq(delta.keyphrases(e).as_ptr(), base.keyphrases(e).as_ptr()));
        let c_delta = delta.candidates("Robert Plant");
        let c_base = base.candidates("Robert Plant");
        assert!(std::ptr::eq(c_delta.as_ptr(), c_base.as_ptr()));
    }

    #[test]
    fn new_entity_is_visible_through_kb_view() {
        let (base, delta, _) = fixture();
        let id = delta.entity_by_name("Black Dog (song)").unwrap();
        assert!(id.index() >= base.entity_count());
        let view: &dyn KbView = &delta;
        assert_eq!(view.entity(id).kind, EntityKind::Work);
        assert!(view.candidates("Black Dog").iter().any(|c| c.entity == id));
        assert!(view.prior("Black Dog", id) > 0.0);
        assert!(!view.keyphrases(id).is_empty());
        let links = view.links();
        assert!(links.directly_linked(id, base.entity_by_name("Jimmy Page").unwrap()));
    }

    #[test]
    fn dict_iteration_merges_base_and_overlay_in_key_order() {
        let (_, delta, merged) = fixture();
        let view: &dyn KbView = &delta;
        let got: Vec<(String, Vec<Candidate>)> =
            view.dictionary().iter().map(|(k, c)| (k.to_string(), c.to_vec())).collect();
        let want: Vec<(String, Vec<Candidate>)> =
            merged.dictionary().iter().map(|(k, c)| (k.to_string(), c.to_vec())).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn weights_are_recomputed_over_merged_kb() {
        let (_, delta, merged) = fixture();
        let bytes_delta = crate::snapshot::encode(delta.weights()).unwrap();
        let bytes_merged = crate::snapshot::encode(merged.weights()).unwrap();
        assert_eq!(bytes_delta, bytes_merged);
    }

    #[test]
    fn compact_equals_freezing_the_merged_kb() {
        let (_, delta, merged) = fixture();
        let compacted = delta.compact().unwrap();
        let direct = FrozenKb::freeze(&merged);
        let mut a = Vec::new();
        let mut b = Vec::new();
        crate::snapshot::write_frozen_snapshot(&compacted, &mut a).unwrap();
        crate::snapshot::write_frozen_snapshot(&direct, &mut b).unwrap();
        assert_eq!(a, b, "compacted snapshot must be bitwise-identical to from-scratch");
    }

    #[test]
    fn unknown_name_and_duplicate_entity_are_typed_errors() {
        let base = Arc::new(FrozenKb::freeze(&example_kb()));
        let err = DeltaKb::build(
            Arc::clone(&base),
            vec![KbMutation::AddLink { src: "Nobody".into(), dst: "Jimmy Page".into() }],
        )
        .unwrap_err();
        assert!(matches!(err, NedError::Lookup { what: "entity name", .. }), "{err}");
        let err = DeltaKb::build(
            Arc::clone(&base),
            vec![KbMutation::AddEntity {
                canonical_name: "Jimmy Page".into(),
                kind: EntityKind::Person,
            }],
        )
        .unwrap_err();
        assert!(matches!(err, NedError::Config { what: "kb mutation", .. }), "{err}");
        let err = DeltaKb::build(
            Arc::clone(&base),
            vec![KbMutation::ReweightKeyphrase {
                entity: "Jimmy Page".into(),
                surface: "no such phrase ever".into(),
                delta: 1,
            }],
        )
        .unwrap_err();
        assert!(matches!(err, NedError::Lookup { .. }), "{err}");
    }

    #[test]
    fn build_observed_sets_delta_gauge() {
        let base = Arc::new(FrozenKb::freeze(&example_kb()));
        let metrics = Metrics::new();
        let delta = DeltaKb::build_observed(
            base,
            vec![KbMutation::AddEntity {
                canonical_name: "Black Dog (song)".into(),
                kind: EntityKind::Work,
            }],
            &metrics,
        )
        .unwrap();
        assert_eq!(delta.delta_entity_count(), 1);
        assert_eq!(metrics.snapshot().gauge(names::KB_DELTA_ENTITIES), 1);
    }
}
