//! The inter-entity link graph.
//!
//! Wikipedia's page links drive both the Milne–Witten relatedness measure
//! (Eq. 3.7, via shared in-links) and the superdocument model of the keyword
//! weights (Eq. 3.3, via in-linking entities' keyphrases). In-link and
//! out-link adjacency lists are stored sorted so set intersections run as
//! linear merges.

use serde::{Deserialize, Serialize};

use crate::ids::EntityId;

/// Directed link graph over entities.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct LinkGraph {
    inlinks: Vec<Vec<EntityId>>,
    outlinks: Vec<Vec<EntityId>>,
    edge_count: usize,
}

impl LinkGraph {
    /// Creates a graph over `n` entities with no links.
    pub fn new(n: usize) -> Self {
        LinkGraph { inlinks: vec![Vec::new(); n], outlinks: vec![Vec::new(); n], edge_count: 0 }
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.inlinks.len()
    }

    /// True if the graph covers no entities.
    pub fn is_empty(&self) -> bool {
        self.inlinks.is_empty()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds a directed link `src → dst`. Self-links and duplicates are
    /// ignored (Wikipedia articles never link to themselves).
    pub fn add_link(&mut self, src: EntityId, dst: EntityId) {
        if src == dst {
            return;
        }
        let out = &mut self.outlinks[src.index()];
        if out.contains(&dst) {
            return;
        }
        out.push(dst);
        self.inlinks[dst.index()].push(src);
        self.edge_count += 1;
    }

    /// Entities linking *to* `e`, sorted ascending after [`Self::finalize`].
    pub fn inlinks(&self, e: EntityId) -> &[EntityId] {
        &self.inlinks[e.index()]
    }

    /// Entities `e` links *to*, sorted ascending after [`Self::finalize`].
    pub fn outlinks(&self, e: EntityId) -> &[EntityId] {
        &self.outlinks[e.index()]
    }

    /// Number of in-links of `e` (the entity's "link popularity").
    pub fn inlink_count(&self, e: EntityId) -> usize {
        self.inlinks[e.index()].len()
    }

    /// Size of the intersection of the in-link sets of `a` and `b`, by
    /// linear merge over the sorted lists.
    pub fn shared_inlink_count(&self, a: EntityId, b: EntityId) -> usize {
        sorted_intersection_size(self.inlinks(a), self.inlinks(b))
    }

    /// True if a direct link exists in either direction.
    pub fn directly_linked(&self, a: EntityId, b: EntityId) -> bool {
        self.outlinks(a).binary_search(&b).is_ok() || self.outlinks(b).binary_search(&a).is_ok()
    }

    /// Sorts all adjacency lists; must be called once after construction and
    /// before any query that relies on sorted order.
    pub fn finalize(&mut self) {
        for list in self.inlinks.iter_mut().chain(self.outlinks.iter_mut()) {
            list.sort_unstable();
        }
    }

    /// Reconstructs a graph from adjacency rows in entity-id order (the
    /// thaw path of [`crate::delta`]).
    pub(crate) fn from_rows(
        inlinks: Vec<Vec<EntityId>>,
        outlinks: Vec<Vec<EntityId>>,
        edge_count: usize,
    ) -> Self {
        LinkGraph { inlinks, outlinks, edge_count }
    }

    /// Extends the graph to cover `n` entities (newly promoted entities
    /// start with no links).
    pub(crate) fn grow_to(&mut self, n: usize) {
        if n > self.inlinks.len() {
            self.inlinks.resize(n, Vec::new());
            self.outlinks.resize(n, Vec::new());
        }
    }
}

/// Size of the intersection of two ascending-sorted slices.
pub fn sorted_intersection_size(a: &[EntityId], b: &[EntityId]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut n = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    fn graph() -> LinkGraph {
        let mut g = LinkGraph::new(5);
        g.add_link(e(0), e(1));
        g.add_link(e(0), e(2));
        g.add_link(e(3), e(1));
        g.add_link(e(3), e(2));
        g.add_link(e(4), e(1));
        g.finalize();
        g
    }

    #[test]
    fn inlinks_and_outlinks() {
        let g = graph();
        assert_eq!(g.inlinks(e(1)), &[e(0), e(3), e(4)]);
        assert_eq!(g.outlinks(e(0)), &[e(1), e(2)]);
        assert_eq!(g.inlink_count(e(2)), 2);
        assert_eq!(g.edge_count(), 5);
    }

    #[test]
    fn self_links_and_duplicates_ignored() {
        let mut g = LinkGraph::new(2);
        g.add_link(e(0), e(0));
        g.add_link(e(0), e(1));
        g.add_link(e(0), e(1));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn shared_inlinks() {
        let g = graph();
        // in(1) = {0,3,4}, in(2) = {0,3} → intersection 2.
        assert_eq!(g.shared_inlink_count(e(1), e(2)), 2);
        assert_eq!(g.shared_inlink_count(e(1), e(0)), 0);
    }

    #[test]
    fn direct_link_detection() {
        let g = graph();
        assert!(g.directly_linked(e(0), e(1)));
        assert!(g.directly_linked(e(1), e(0)));
        assert!(!g.directly_linked(e(1), e(2)));
    }

    #[test]
    fn intersection_helper() {
        let a = [e(1), e(3), e(5), e(7)];
        let b = [e(2), e(3), e(7), e(9)];
        assert_eq!(sorted_intersection_size(&a, &b), 2);
        assert_eq!(sorted_intersection_size(&a, &[]), 0);
        assert_eq!(sorted_intersection_size(&a, &a), 4);
    }
}
