#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! Knowledge-base substrate for the AIDA-NED suite.
//!
//! The thesis layers everything on a YAGO-style knowledge base derived from
//! Wikipedia (§2.3): an entity repository, a name dictionary built from
//! titles/redirects/disambiguation pages/link anchors, the inter-entity link
//! graph, and per-entity descriptive keyphrases mined from articles. This
//! crate implements that substrate from scratch with the exact statistical
//! weighting schemes of the paper:
//!
//! - keyword/keyphrase IDF (Eq. 3.5),
//! - entity–keyword NPMI over the "superdocument" model (Eqs. 3.1–3.3),
//! - entity–keyphrase normalized mutual information µ (Eq. 4.1).
//!
//! The central type is [`KnowledgeBase`], constructed via [`KbBuilder`].

pub mod builder;
pub mod delta;
pub mod dictionary;
pub mod entity;
pub mod frozen;
pub mod fx;
pub mod handle;
pub mod ids;
pub mod keyphrase;
pub mod kp_index;
pub mod links;
pub mod mutation;
pub mod phrase_runs;
pub mod snapshot;
pub mod stats;
pub mod store;
pub mod taxonomy;
pub mod view;
pub mod vocab;
pub mod wal;
pub mod weights;

pub use builder::KbBuilder;
pub use delta::DeltaKb;
pub use entity::{Entity, EntityKind};
pub use frozen::{FrozenDictionary, FrozenKb, FrozenKbStats, FrozenLinks};
pub use handle::{KbEpoch, KbHandle, KbReader};
pub use ids::{EntityId, NameId, PhraseId, WordId};
pub use kp_index::KeyphraseIndex;
pub use mutation::KbMutation;
pub use phrase_runs::PhraseRuns;
pub use store::KnowledgeBase;
pub use taxonomy::{Taxonomy, TypeId};
pub use view::{DictView, EntityIds, KbView, LinksView};
pub use wal::{Wal, WalReplay};
pub use weights::WeightModel;
