//! Precomputed deduplicated phrase-word runs and phrase weight masses.
//!
//! The similarity hot path (Eq. 3.4) evaluates every surviving keyphrase by
//! first sorting and deduplicating its word list (the "run") and then
//! summing the keyword weights over that run (the phrase mass). Both are
//! pure functions of the KB, so recomputing them per (mention, entity,
//! phrase) call is wasted work — and the sort/dedup is a per-call heap
//! allocation, which is what the zero-allocation scoring contract forbids.
//!
//! [`PhraseRuns`] materializes, once at build time:
//!
//! - the sorted-deduplicated word run of every phrase (CSR layout),
//! - the IDF mass of every run (entity-independent),
//! - the NPMI mass of every (entity, own-keyphrase) pair (entity-dependent;
//!   phrases outside an entity's keyphrase set fall back to the caller's
//!   recomputation, which yields the same bits because NPMI of a
//!   non-own word is exactly 0).
//!
//! **Bit-identity contract:** every mass stored here is computed by the
//! *exact* expression the reference `phrase_score` uses —
//! `run.iter().map(weight).sum::<f64>()` over the sorted-deduplicated run —
//! so reading the precomputed value is indistinguishable from recomputing
//! it, down to the sign of zero. `tests/frozen_equivalence.rs` checks this
//! property over random worlds.
//!
//! The structure is persisted as an *optional* section of snapshot v3
//! (frame tag 6) and rebuilt from the keyphrase store + weights when the
//! section is absent (v2 snapshots, legacy builds, hand-built KBs).

use serde::{Deserialize, Serialize};

use crate::ids::{EntityId, PhraseId, WordId};
use crate::keyphrase::EntityPhrase;
use crate::weights::WeightModel;

/// Sorted-deduplicated phrase-word runs with precomputed weight masses.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhraseRuns {
    /// CSR offsets into `run_data`; `phrase_count + 1` entries.
    run_offsets: Vec<u32>,
    /// Concatenated sorted-deduplicated word runs of all phrases.
    run_data: Vec<WordId>,
    /// IDF mass of each phrase's run; `phrase_count` entries.
    idf_mass: Vec<f64>,
    /// CSR offsets into `npmi_mass`; `entity_count + 1` entries.
    npmi_offsets: Vec<u32>,
    /// Per entity: (phrase, NPMI mass) for its own keyphrases, sorted by
    /// phrase id and deduplicated.
    npmi_mass: Vec<(PhraseId, f64)>,
}

impl PhraseRuns {
    /// Builds runs and masses from raw accessors, so both KB
    /// representations (nested legacy stores and frozen CSR arrays)
    /// produce identical values from the same one construction routine
    /// (mirroring [`crate::kp_index::KeyphraseIndex::build_raw`]).
    pub(crate) fn build_raw<'x>(
        phrase_count: usize,
        entity_count: usize,
        phrases_of: impl Fn(EntityId) -> &'x [EntityPhrase],
        words_of: impl Fn(PhraseId) -> &'x [WordId],
        weights: &WeightModel,
    ) -> Self {
        let mut run_offsets = Vec::with_capacity(phrase_count + 1);
        let mut run_data: Vec<WordId> = Vec::new();
        let mut idf_mass = Vec::with_capacity(phrase_count);
        run_offsets.push(0u32);
        for pi in 0..phrase_count {
            let p = PhraseId::from_index(pi);
            // Exactly the reference computation in `phrase_score`: to_vec,
            // sort_unstable, dedup, then sum weights over the run.
            let mut ws = words_of(p).to_vec();
            ws.sort_unstable();
            ws.dedup();
            idf_mass.push(ws.iter().map(|&w| weights.word_idf(w)).sum::<f64>());
            run_data.extend_from_slice(&ws);
            run_offsets.push(offset(run_data.len()));
        }

        let mut npmi_offsets = Vec::with_capacity(entity_count + 1);
        let mut npmi_mass: Vec<(PhraseId, f64)> = Vec::new();
        npmi_offsets.push(0u32);
        for ei in 0..entity_count {
            let e = EntityId::from_index(ei);
            let row_start = npmi_mass.len();
            for ep in phrases_of(e) {
                // Keyphrase rows are sorted by phrase id; skip duplicates
                // so the binary-search lookup stays unambiguous.
                // ned-lint: allow(p1) — row_start ≤ len, suffix slice
                if npmi_mass[row_start..].last().is_some_and(|&(p, _)| p == ep.phrase) {
                    continue;
                }
                let run = run_slice(&run_offsets, &run_data, ep.phrase.index());
                let mass = run.iter().map(|&w| weights.keyword_npmi(e, w)).sum::<f64>();
                npmi_mass.push((ep.phrase, mass));
            }
            npmi_offsets.push(offset(npmi_mass.len()));
        }

        PhraseRuns { run_offsets, run_data, idf_mass, npmi_offsets, npmi_mass }
    }

    /// Number of phrases the runs were built for.
    pub fn phrase_count(&self) -> usize {
        self.run_offsets.len().saturating_sub(1)
    }

    /// The sorted-deduplicated word run of `p`; empty for out-of-range ids.
    pub fn run(&self, p: PhraseId) -> &[WordId] {
        if p.index() >= self.phrase_count() {
            return &[];
        }
        run_slice(&self.run_offsets, &self.run_data, p.index())
    }

    /// IDF mass of `p`'s run; 0 for out-of-range ids.
    pub fn idf_mass(&self, p: PhraseId) -> f64 {
        self.idf_mass.get(p.index()).copied().unwrap_or(0.0)
    }

    /// NPMI mass of `p`'s run with respect to `e`, if `p` is one of `e`'s
    /// own keyphrases. `None` means "not precomputed" — the caller must
    /// recompute (which for non-own phrases sums all-zero weights).
    pub fn npmi_mass(&self, e: EntityId, p: PhraseId) -> Option<f64> {
        let i = e.index();
        if i + 1 >= self.npmi_offsets.len() {
            return None;
        }
        // ned-lint: allow(p1) — CSR invariant: offsets has entity_count+1 entries
        let row = &self.npmi_mass[self.npmi_offsets[i] as usize..self.npmi_offsets[i + 1] as usize];
        row.binary_search_by_key(&p, |&(x, _)| x).map(|k| row[k].1).ok() // ned-lint: allow(p1) — index returned by binary_search
    }

    /// Shape-consistency check against the owning KB's dimensions. A
    /// decoded section that fails this check is discarded and rebuilt —
    /// a snapshot must never smuggle in mismatched masses.
    pub(crate) fn is_consistent_with(&self, phrase_count: usize, entity_count: usize) -> bool {
        self.run_offsets.len() == phrase_count + 1
            && self.npmi_offsets.len() == entity_count + 1
            && self.idf_mass.len() == phrase_count
            && self.run_offsets.last().copied() == Some(offset(self.run_data.len()))
            && self.npmi_offsets.last().copied() == Some(offset(self.npmi_mass.len()))
            && self.run_offsets.windows(2).all(|w| w[0] <= w[1]) // ned-lint: allow(p1) — windows(2) pairs
            && self.npmi_offsets.windows(2).all(|w| w[0] <= w[1])
    }

    /// Approximate heap footprint in bytes (array payloads).
    pub fn approx_heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.run_offsets.len() * size_of::<u32>()
            + self.run_data.len() * size_of::<WordId>()
            + self.idf_mass.len() * size_of::<f64>()
            + self.npmi_offsets.len() * size_of::<u32>()
            + self.npmi_mass.len() * size_of::<(PhraseId, f64)>()
    }
}

/// CSR row `i` of `data` under `offsets` (which has `len + 1` entries).
fn run_slice<'a>(offsets: &[u32], data: &'a [WordId], i: usize) -> &'a [WordId] {
    // ned-lint: allow(p1) — CSR invariant: offsets has phrase_count+1 entries
    &data[offsets[i] as usize..offsets[i + 1] as usize]
}

/// Converts a data length to a `u32` CSR offset.
///
/// # Panics
/// Panics if `len` exceeds `u32::MAX` (a KB that large would have
/// overflowed its id spaces long before).
fn offset(len: usize) -> u32 {
    u32::try_from(len).unwrap_or_else(|_| panic!("CSR offset overflow: {len}")) // ned-lint: allow(p1) — documented overflow guard
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KbBuilder;
    use crate::entity::EntityKind;
    use crate::store::KnowledgeBase;

    fn kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        let jimmy = b.add_entity("Jimmy Page", EntityKind::Person);
        let larry = b.add_entity("Larry Page", EntityKind::Person);
        b.add_keyphrase(jimmy, "hard rock rock", 3);
        b.add_keyphrase(jimmy, "rock guitarist", 2);
        b.add_keyphrase(larry, "search engine", 3);
        b.build()
    }

    #[test]
    fn runs_are_sorted_and_deduplicated() {
        let kb = kb();
        let runs = kb.phrase_runs();
        for pi in 0..runs.phrase_count() {
            let p = PhraseId::from_index(pi);
            let run = runs.run(p);
            assert!(run.windows(2).all(|w| w[0] < w[1]), "run not strictly sorted: {run:?}");
            let mut reference = kb.phrase_words(p).to_vec();
            reference.sort_unstable();
            reference.dedup();
            assert_eq!(run, &reference[..]);
        }
    }

    #[test]
    fn idf_mass_matches_recomputation_bitwise() {
        let kb = kb();
        let runs = kb.phrase_runs();
        for pi in 0..runs.phrase_count() {
            let p = PhraseId::from_index(pi);
            let expected: f64 =
                runs.run(p).iter().map(|&w| kb.weights().word_idf(w)).sum::<f64>();
            assert_eq!(runs.idf_mass(p).to_bits(), expected.to_bits());
        }
    }

    #[test]
    fn npmi_mass_matches_recomputation_bitwise() {
        let kb = kb();
        let runs = kb.phrase_runs();
        for e in kb.entity_ids() {
            for ep in kb.keyphrases(e) {
                let expected: f64 = runs
                    .run(ep.phrase)
                    .iter()
                    .map(|&w| kb.weights().keyword_npmi(e, w))
                    .sum::<f64>();
                let got = runs.npmi_mass(e, ep.phrase).expect("own keyphrase is precomputed");
                assert_eq!(got.to_bits(), expected.to_bits());
            }
        }
    }

    #[test]
    fn non_own_phrase_has_no_precomputed_npmi_mass() {
        let kb = kb();
        let runs = kb.phrase_runs();
        let jimmy = kb.entity_by_name("Jimmy Page").unwrap();
        let larry = kb.entity_by_name("Larry Page").unwrap();
        let larry_phrase = kb.keyphrases(larry)[0].phrase;
        assert!(kb.keyphrases(jimmy).iter().all(|ep| ep.phrase != larry_phrase));
        assert_eq!(runs.npmi_mass(jimmy, larry_phrase), None);
    }

    #[test]
    fn out_of_range_ids_are_harmless() {
        let kb = kb();
        let runs = kb.phrase_runs();
        let bogus_p = PhraseId::from_index(runs.phrase_count() + 3);
        assert!(runs.run(bogus_p).is_empty());
        assert_eq!(runs.idf_mass(bogus_p), 0.0);
        let bogus_e = EntityId::from_index(kb.entity_count() + 3);
        assert_eq!(runs.npmi_mass(bogus_e, PhraseId(0)), None);
    }

    #[test]
    fn consistency_check_accepts_built_and_rejects_mismatched() {
        let kb = kb();
        let runs = kb.phrase_runs().clone();
        let phrase_count = runs.phrase_count();
        let entity_count = kb.entity_count();
        assert!(runs.is_consistent_with(phrase_count, entity_count));
        assert!(!runs.is_consistent_with(phrase_count + 1, entity_count));
        assert!(!runs.is_consistent_with(phrase_count, entity_count + 1));
        let mut truncated = runs.clone();
        truncated.run_data.pop();
        assert!(!truncated.is_consistent_with(phrase_count, entity_count));
        let mut short_mass = runs;
        short_mass.idf_mass.pop();
        assert!(!short_mass.is_consistent_with(phrase_count, entity_count));
    }

    #[test]
    fn empty_kb_builds_empty_runs() {
        let kb = KbBuilder::new().build();
        let runs = kb.phrase_runs();
        assert_eq!(runs.phrase_count(), 0);
        assert!(runs.is_consistent_with(0, 0));
        assert_eq!(runs.approx_heap_bytes(), 2 * std::mem::size_of::<u32>());
    }
}
