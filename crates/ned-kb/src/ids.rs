//! Dense integer identifiers for entities, names, words, and phrases.
//!
//! All knowledge-base objects are referred to by `u32` newtypes, which keeps
//! hot structures compact (see the type-size guidance in the performance
//! guide) and makes hashing cheap.

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Converts the id to a `usize` index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an id from a `usize` index.
            ///
            /// # Panics
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                assert!(index <= u32::MAX as usize, "id overflow: {index}");
                $name(index as u32)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifier of a canonical entity in the repository.
    EntityId
);
define_id!(
    /// Identifier of a surface name in the dictionary.
    NameId
);
define_id!(
    /// Identifier of an interned word (keyword).
    WordId
);
define_id!(
    /// Identifier of an interned keyphrase (sequence of words).
    PhraseId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let e = EntityId::from_index(42);
        assert_eq!(e.index(), 42);
        assert_eq!(usize::from(e), 42);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(WordId(1) < WordId(2));
    }

    #[test]
    #[should_panic(expected = "id overflow")]
    fn overflow_panics() {
        let _ = PhraseId::from_index(usize::MAX);
    }
}
