//! Compact binary snapshots of a knowledge base.
//!
//! A hand-rolled, versioned binary codec over the serde data model is
//! overkill here; instead we use a simple length-prefixed encoding written
//! through a minimal serializer implemented in this module. The format is
//! deliberately tiny: it only needs to round-trip the concrete types of this
//! crate, keeping the workspace inside its approved dependency set (serde
//! without a third-party format crate).
//!
//! Two on-disk layouts coexist:
//!
//! - **v2** (legacy): one monolithic body holding a serialized
//!   [`KnowledgeBase`], framed by a 24-byte header (magic, version, body
//!   length, FNV-1a checksum). Written by [`write_snapshot`], read by
//!   [`read_snapshot`].
//! - **v3** (current): five independent sections — entities, dictionary,
//!   links, keyphrases, weights — each length-prefixed and individually
//!   FNV-checksummed, decoding straight into the flat arrays of a
//!   [`FrozenKb`]. Written by [`write_frozen_snapshot`], read by
//!   [`read_frozen_snapshot`], which also accepts v2 streams via a
//!   freeze-on-load path. Per-section framing is what later PRs need for
//!   mmap and lazy per-section loading.
//!
//! Snapshots are hardened against corruption: truncation, bit flips, and
//! version skew all surface as structured [`SnapshotError`]s — never a
//! panic, never silently garbled data.

use std::io::{self, Read, Write};

use ned_core::{NedError, SnapshotError};
use ned_obs::{names, Metrics};
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::entity::Entity;
use crate::frozen::{FrozenDictionary, FrozenKb, FrozenLinks, FrozenPhrases};
use crate::phrase_runs::PhraseRuns;
use crate::store::KnowledgeBase;
use crate::weights::WeightModel;

mod codec {
    //! A minimal self-describing binary serde format (subset sufficient for
    //! the plain-data types of this workspace: structs, vecs, maps, strings,
    //! integers, floats, options, enums with unit/newtype variants).

    use serde::de::{self, DeserializeSeed, IntoDeserializer, Visitor};
    use serde::ser::{self, SerializeMap, SerializeSeq, SerializeStruct, SerializeTuple};
    use serde::{Deserialize, Serialize};
    use std::fmt;

    /// Serialization/deserialization error.
    #[derive(Debug)]
    pub struct Error(pub String);

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "codec error: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    impl ser::Error for Error {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    impl de::Error for Error {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    /// Serializes a value to bytes.
    pub fn to_bytes<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
        let mut ser = Ser { out: Vec::new() };
        value.serialize(&mut ser)?;
        Ok(ser.out)
    }

    /// Deserializes a value from bytes.
    pub fn from_bytes<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> Result<T, Error> {
        let mut de = De { input: bytes };
        let v = T::deserialize(&mut de)?;
        if !de.input.is_empty() {
            return Err(Error(format!("{} trailing bytes", de.input.len())));
        }
        Ok(v)
    }

    struct Ser {
        out: Vec<u8>,
    }

    impl Ser {
        fn put_u64(&mut self, v: u64) {
            // LEB128 variable-length encoding.
            let mut v = v;
            loop {
                let byte = (v & 0x7f) as u8;
                v >>= 7;
                if v == 0 {
                    self.out.push(byte);
                    break;
                }
                self.out.push(byte | 0x80);
            }
        }
    }

    impl ser::Serializer for &mut Ser {
        type Ok = ();
        type Error = Error;
        type SerializeSeq = Self;
        type SerializeTuple = Self;
        type SerializeTupleStruct = Self;
        type SerializeTupleVariant = Self;
        type SerializeMap = Self;
        type SerializeStruct = Self;
        type SerializeStructVariant = Self;

        fn serialize_bool(self, v: bool) -> Result<(), Error> {
            self.out.push(v as u8);
            Ok(())
        }
        fn serialize_i8(self, v: i8) -> Result<(), Error> {
            self.serialize_i64(v.into())
        }
        fn serialize_i16(self, v: i16) -> Result<(), Error> {
            self.serialize_i64(v.into())
        }
        fn serialize_i32(self, v: i32) -> Result<(), Error> {
            self.serialize_i64(v.into())
        }
        fn serialize_i64(self, v: i64) -> Result<(), Error> {
            // ZigZag encoding.
            self.put_u64(((v << 1) ^ (v >> 63)) as u64);
            Ok(())
        }
        fn serialize_u8(self, v: u8) -> Result<(), Error> {
            self.put_u64(v.into());
            Ok(())
        }
        fn serialize_u16(self, v: u16) -> Result<(), Error> {
            self.put_u64(v.into());
            Ok(())
        }
        fn serialize_u32(self, v: u32) -> Result<(), Error> {
            self.put_u64(v.into());
            Ok(())
        }
        fn serialize_u64(self, v: u64) -> Result<(), Error> {
            self.put_u64(v);
            Ok(())
        }
        fn serialize_f32(self, v: f32) -> Result<(), Error> {
            self.out.extend_from_slice(&v.to_le_bytes());
            Ok(())
        }
        fn serialize_f64(self, v: f64) -> Result<(), Error> {
            self.out.extend_from_slice(&v.to_le_bytes());
            Ok(())
        }
        fn serialize_char(self, v: char) -> Result<(), Error> {
            self.put_u64(v as u64);
            Ok(())
        }
        fn serialize_str(self, v: &str) -> Result<(), Error> {
            self.put_u64(v.len() as u64);
            self.out.extend_from_slice(v.as_bytes());
            Ok(())
        }
        fn serialize_bytes(self, v: &[u8]) -> Result<(), Error> {
            self.put_u64(v.len() as u64);
            self.out.extend_from_slice(v);
            Ok(())
        }
        fn serialize_none(self) -> Result<(), Error> {
            self.out.push(0);
            Ok(())
        }
        fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), Error> {
            self.out.push(1);
            value.serialize(self)
        }
        fn serialize_unit(self) -> Result<(), Error> {
            Ok(())
        }
        fn serialize_unit_struct(self, _name: &'static str) -> Result<(), Error> {
            Ok(())
        }
        fn serialize_unit_variant(
            self,
            _name: &'static str,
            variant_index: u32,
            _variant: &'static str,
        ) -> Result<(), Error> {
            self.put_u64(variant_index.into());
            Ok(())
        }
        fn serialize_newtype_struct<T: ?Sized + Serialize>(
            self,
            _name: &'static str,
            value: &T,
        ) -> Result<(), Error> {
            value.serialize(self)
        }
        fn serialize_newtype_variant<T: ?Sized + Serialize>(
            self,
            _name: &'static str,
            variant_index: u32,
            _variant: &'static str,
            value: &T,
        ) -> Result<(), Error> {
            self.put_u64(variant_index.into());
            value.serialize(self)
        }
        fn serialize_seq(self, len: Option<usize>) -> Result<Self, Error> {
            let len = len.ok_or_else(|| Error("sequence length required".into()))?;
            self.put_u64(len as u64);
            Ok(self)
        }
        fn serialize_tuple(self, _len: usize) -> Result<Self, Error> {
            Ok(self)
        }
        fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, Error> {
            Ok(self)
        }
        fn serialize_tuple_variant(
            self,
            _name: &'static str,
            variant_index: u32,
            _variant: &'static str,
            _len: usize,
        ) -> Result<Self, Error> {
            self.put_u64(variant_index.into());
            Ok(self)
        }
        fn serialize_map(self, len: Option<usize>) -> Result<Self, Error> {
            let len = len.ok_or_else(|| Error("map length required".into()))?;
            self.put_u64(len as u64);
            Ok(self)
        }
        fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, Error> {
            Ok(self)
        }
        fn serialize_struct_variant(
            self,
            _name: &'static str,
            variant_index: u32,
            _variant: &'static str,
            _len: usize,
        ) -> Result<Self, Error> {
            self.put_u64(variant_index.into());
            Ok(self)
        }
    }

    impl SerializeSeq for &mut Ser {
        type Ok = ();
        type Error = Error;
        fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
            value.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Error> {
            Ok(())
        }
    }

    impl SerializeTuple for &mut Ser {
        type Ok = ();
        type Error = Error;
        fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
            value.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Error> {
            Ok(())
        }
    }

    impl ser::SerializeTupleStruct for &mut Ser {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
            value.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Error> {
            Ok(())
        }
    }

    impl ser::SerializeTupleVariant for &mut Ser {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
            value.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Error> {
            Ok(())
        }
    }

    impl SerializeMap for &mut Ser {
        type Ok = ();
        type Error = Error;
        fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), Error> {
            key.serialize(&mut **self)
        }
        fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
            value.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Error> {
            Ok(())
        }
    }

    impl SerializeStruct for &mut Ser {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: ?Sized + Serialize>(
            &mut self,
            _key: &'static str,
            value: &T,
        ) -> Result<(), Error> {
            value.serialize(&mut **self)
        }
        fn skip_field(&mut self, _key: &'static str) -> Result<(), Error> {
            Ok(())
        }
        fn end(self) -> Result<(), Error> {
            Ok(())
        }
    }

    impl ser::SerializeStructVariant for &mut Ser {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: ?Sized + Serialize>(
            &mut self,
            _key: &'static str,
            value: &T,
        ) -> Result<(), Error> {
            value.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Error> {
            Ok(())
        }
    }

    struct De<'de> {
        input: &'de [u8],
    }

    impl<'de> De<'de> {
        fn take(&mut self, n: usize) -> Result<&'de [u8], Error> {
            if self.input.len() < n {
                return Err(Error("unexpected end of input".into()));
            }
            let (head, tail) = self.input.split_at(n);
            self.input = tail;
            Ok(head)
        }

        fn get_u64(&mut self) -> Result<u64, Error> {
            let mut v = 0u64;
            let mut shift = 0;
            loop {
                let byte = self.take(1)?[0];
                v |= u64::from(byte & 0x7f) << shift;
                if byte & 0x80 == 0 {
                    return Ok(v);
                }
                shift += 7;
                if shift >= 64 {
                    return Err(Error("varint overflow".into()));
                }
            }
        }

        fn get_i64(&mut self) -> Result<i64, Error> {
            let z = self.get_u64()?;
            Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
        }
    }

    macro_rules! de_uint {
        ($method:ident, $visit:ident, $ty:ty) => {
            fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
                let v = self.get_u64()?;
                visitor.$visit(<$ty>::try_from(v).map_err(|_| Error("int out of range".into()))?)
            }
        };
    }

    macro_rules! de_int {
        ($method:ident, $visit:ident, $ty:ty) => {
            fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
                let v = self.get_i64()?;
                visitor.$visit(<$ty>::try_from(v).map_err(|_| Error("int out of range".into()))?)
            }
        };
    }

    impl<'de> de::Deserializer<'de> for &mut De<'de> {
        type Error = Error;

        fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, Error> {
            Err(Error("format is not self-describing".into()))
        }

        fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
            visitor.visit_bool(self.take(1)?[0] != 0)
        }

        de_int!(deserialize_i8, visit_i8, i8);
        de_int!(deserialize_i16, visit_i16, i16);
        de_int!(deserialize_i32, visit_i32, i32);

        fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
            let v = self.get_i64()?;
            visitor.visit_i64(v)
        }

        de_uint!(deserialize_u8, visit_u8, u8);
        de_uint!(deserialize_u16, visit_u16, u16);
        de_uint!(deserialize_u32, visit_u32, u32);

        fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
            let v = self.get_u64()?;
            visitor.visit_u64(v)
        }

        fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
            let b = self.take(4)?;
            let b: [u8; 4] = b.try_into().map_err(|_| Error("bad f32 slice".into()))?;
            visitor.visit_f32(f32::from_le_bytes(b))
        }

        fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
            let b = self.take(8)?;
            let b: [u8; 8] = b.try_into().map_err(|_| Error("bad f64 slice".into()))?;
            visitor.visit_f64(f64::from_le_bytes(b))
        }

        fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
            let v = u32::try_from(self.get_u64()?).map_err(|_| Error("bad char".into()))?;
            visitor.visit_char(char::from_u32(v).ok_or_else(|| Error("bad char".into()))?)
        }

        fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
            let len = self.get_u64()? as usize;
            let bytes = self.take(len)?;
            visitor.visit_borrowed_str(
                std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?,
            )
        }

        fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
            self.deserialize_str(visitor)
        }

        fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
            let len = self.get_u64()? as usize;
            visitor.visit_borrowed_bytes(self.take(len)?)
        }

        fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
            self.deserialize_bytes(visitor)
        }

        fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
            if self.take(1)?[0] == 0 {
                visitor.visit_none()
            } else {
                visitor.visit_some(self)
            }
        }

        fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
            visitor.visit_unit()
        }

        fn deserialize_unit_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> Result<V::Value, Error> {
            visitor.visit_unit()
        }

        fn deserialize_newtype_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> Result<V::Value, Error> {
            visitor.visit_newtype_struct(self)
        }

        fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
            let len = self.get_u64()? as usize;
            visitor.visit_seq(Counted { de: self, remaining: len })
        }

        fn deserialize_tuple<V: Visitor<'de>>(
            self,
            len: usize,
            visitor: V,
        ) -> Result<V::Value, Error> {
            visitor.visit_seq(Counted { de: self, remaining: len })
        }

        fn deserialize_tuple_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            len: usize,
            visitor: V,
        ) -> Result<V::Value, Error> {
            self.deserialize_tuple(len, visitor)
        }

        fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
            let len = self.get_u64()? as usize;
            visitor.visit_map(Counted { de: self, remaining: len })
        }

        fn deserialize_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            fields: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, Error> {
            visitor.visit_seq(Counted { de: self, remaining: fields.len() })
        }

        fn deserialize_enum<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _variants: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, Error> {
            visitor.visit_enum(EnumAccess { de: self })
        }

        fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, Error> {
            Err(Error("identifiers are not encoded".into()))
        }

        fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, Error> {
            Err(Error("cannot skip values in non-self-describing format".into()))
        }
    }

    struct Counted<'a, 'de> {
        de: &'a mut De<'de>,
        remaining: usize,
    }

    impl<'de> de::SeqAccess<'de> for Counted<'_, 'de> {
        type Error = Error;
        fn next_element_seed<T: DeserializeSeed<'de>>(
            &mut self,
            seed: T,
        ) -> Result<Option<T::Value>, Error> {
            if self.remaining == 0 {
                return Ok(None);
            }
            self.remaining -= 1;
            seed.deserialize(&mut *self.de).map(Some)
        }
        fn size_hint(&self) -> Option<usize> {
            Some(self.remaining)
        }
    }

    impl<'de> de::MapAccess<'de> for Counted<'_, 'de> {
        type Error = Error;
        fn next_key_seed<K: DeserializeSeed<'de>>(
            &mut self,
            seed: K,
        ) -> Result<Option<K::Value>, Error> {
            if self.remaining == 0 {
                return Ok(None);
            }
            self.remaining -= 1;
            seed.deserialize(&mut *self.de).map(Some)
        }
        fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value, Error> {
            seed.deserialize(&mut *self.de)
        }
        fn size_hint(&self) -> Option<usize> {
            Some(self.remaining)
        }
    }

    struct EnumAccess<'a, 'de> {
        de: &'a mut De<'de>,
    }

    impl<'de, 'a> de::EnumAccess<'de> for EnumAccess<'a, 'de> {
        type Error = Error;
        type Variant = &'a mut De<'de>;
        fn variant_seed<V: DeserializeSeed<'de>>(
            self,
            seed: V,
        ) -> Result<(V::Value, Self::Variant), Error> {
            let idx = u32::try_from(self.de.get_u64()?).map_err(|_| Error("bad variant".into()))?;
            let val = seed.deserialize(idx.into_deserializer())?;
            Ok((val, self.de))
        }
    }

    impl<'de> de::VariantAccess<'de> for &mut De<'de> {
        type Error = Error;
        fn unit_variant(self) -> Result<(), Error> {
            Ok(())
        }
        fn newtype_variant_seed<T: DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value, Error> {
            seed.deserialize(self)
        }
        fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value, Error> {
            de::Deserializer::deserialize_tuple(self, len, visitor)
        }
        fn struct_variant<V: Visitor<'de>>(
            self,
            fields: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, Error> {
            de::Deserializer::deserialize_tuple(self, fields.len(), visitor)
        }
    }
}

pub use codec::Error as CodecError;

/// Magic bytes identifying a knowledge-base snapshot.
const MAGIC: &[u8; 6] = b"AIDAKB";

/// Current snapshot format version: sectioned frames decoding into a
/// [`FrozenKb`]. Version 1 ("AIDAKB01", no checksum) is rejected with
/// [`SnapshotError::UnsupportedVersion`]: its version bytes decode as ASCII
/// `"01"`.
pub const FORMAT_VERSION: u16 = 3;

/// The legacy monolithic-body format still written by [`write_snapshot`]
/// and accepted by [`read_frozen_snapshot`] via freeze-on-load.
pub const V2_FORMAT_VERSION: u16 = 2;

/// v2 header layout: magic (6) + version u16 (2) + body length u64 (8) +
/// FNV-1a body checksum u64 (8), all little-endian.
const HEADER_LEN: usize = 24;

/// v3 header layout: magic (6) + version u16 (2); sections follow.
const V3_HEADER_LEN: usize = 8;

/// v3 section frame prelude: tag u8 (1) + body length u64 (8) + FNV-1a body
/// checksum u64 (8), all little-endian.
const FRAME_PRELUDE_LEN: usize = 17;

/// v3 section tags, in the order [`write_frozen_snapshot`] emits them.
/// `PHRASE_RUNS` is *optional on read*: snapshots written before the
/// phrase-run cache existed simply lack the frame, and the loader rebuilds
/// the structure from keyphrases + weights.
mod tag {
    pub const ENTITIES: u8 = 1;
    pub const DICTIONARY: u8 = 2;
    pub const LINKS: u8 = 3;
    pub const KEYPHRASES: u8 = 4;
    pub const WEIGHTS: u8 = 5;
    pub const PHRASE_RUNS: u8 = 6;
}

/// Human-readable section name of a v3 tag (for error reporting).
fn section_name(t: u8) -> Option<&'static str> {
    match t {
        tag::ENTITIES => Some("entities"),
        tag::DICTIONARY => Some("dictionary"),
        tag::LINKS => Some("links"),
        tag::KEYPHRASES => Some("keyphrases"),
        tag::WEIGHTS => Some("weights"),
        tag::PHRASE_RUNS => Some("phrase_runs"),
        _ => None,
    }
}

/// FNV-1a over the snapshot body; not cryptographic, but any truncation or
/// stray bit flip changes it with overwhelming probability. Shared with the
/// WAL's per-record checksums ([`crate::wal`]).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Serializes any serde value to the crate's binary format.
pub fn encode<T: Serialize>(value: &T) -> Result<Vec<u8>, CodecError> {
    codec::to_bytes(value)
}

/// Deserializes a value from the crate's binary format.
pub fn decode<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, CodecError> {
    codec::from_bytes(bytes)
}

/// Writes a legacy v2 knowledge-base snapshot (hardened header + one
/// monolithic encoded body). Kept alongside the v3 writer as the migration
/// fixture generator and for build pipelines that still produce the
/// mutable-shaped [`KnowledgeBase`].
pub fn write_snapshot<W: Write>(kb: &KnowledgeBase, mut writer: W) -> Result<(), NedError> {
    let body = encode(kb).map_err(|e| NedError::Snapshot(SnapshotError::Codec(e.to_string())))?;
    let mut header = [0u8; HEADER_LEN];
    header[..6].copy_from_slice(MAGIC); // ned-lint: allow(p1) — fixed-size buffer, constant bounds
    header[6..8].copy_from_slice(&V2_FORMAT_VERSION.to_le_bytes()); // ned-lint: allow(p1) — fixed-size buffer, constant bounds
    header[8..16].copy_from_slice(&(body.len() as u64).to_le_bytes()); // ned-lint: allow(p1) — fixed-size buffer, constant bounds
    header[16..24].copy_from_slice(&fnv1a(&body).to_le_bytes()); // ned-lint: allow(p1) — fixed-size buffer, constant bounds
    writer
        .write_all(&header)
        .and_then(|()| writer.write_all(&body))
        .map_err(|e| NedError::io("writing snapshot", e))
}

/// Reads a legacy v2 knowledge-base snapshot, verifying magic, version,
/// length, and checksum, and rebuilds transient indexes.
///
/// Corruption never panics: a truncated, bit-flipped, or version-skewed
/// stream yields the matching [`SnapshotError`]. Use
/// [`read_frozen_snapshot`] for the version-dispatching loader that accepts
/// both v2 and v3.
pub fn read_snapshot<R: Read>(mut reader: R) -> Result<KnowledgeBase, NedError> {
    let mut header = [0u8; HEADER_LEN];
    read_up_to(&mut reader, &mut header) // ned-lint: allow(p1) — fixed-size buffer, constant bounds
        .map_err(|e| NedError::io("reading snapshot header", e))
        .and_then(|got| {
            if got < HEADER_LEN {
                // A stream shorter than the header cannot carry the magic.
                if got < 6 || &header[..6] != MAGIC {
                    Err(SnapshotError::BadMagic.into())
                } else {
                    Err(SnapshotError::Truncated { expected: HEADER_LEN as u64, actual: got as u64 }
                        .into())
                }
            } else {
                Ok(())
            }
        })?;
    if &header[..6] != MAGIC { // ned-lint: allow(p1) — fixed-size buffer, constant bounds
        return Err(SnapshotError::BadMagic.into());
    }
    let version = u16::from_le_bytes([header[6], header[7]]); // ned-lint: allow(p1) — fixed-size buffer, constant bounds
    if version != V2_FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: V2_FORMAT_VERSION,
        }
        .into());
    }
    let len = u64::from_le_bytes(header[8..16].try_into().unwrap_or([0; 8])); // ned-lint: allow(p1) — fixed-size buffer, constant bounds
    let expected_checksum = u64::from_le_bytes(header[16..24].try_into().unwrap_or([0; 8])); // ned-lint: allow(p1) — fixed-size buffer, constant bounds
    read_v2_rest(&mut reader, len, expected_checksum)
}

/// Reads and validates a v2 body (length, checksum, decode) and rebuilds
/// the transient indexes. The 24-byte header has already been consumed.
fn read_v2_rest<R: Read>(
    reader: &mut R,
    len: u64,
    expected_checksum: u64,
) -> Result<KnowledgeBase, NedError> {
    // Read through `take` instead of preallocating `len` bytes: a corrupted
    // length must not trigger a huge allocation.
    let mut body = Vec::new();
    reader
        .by_ref()
        .take(len)
        .read_to_end(&mut body)
        .map_err(|e| NedError::io("reading snapshot body", e))?;
    if body.len() as u64 != len {
        return Err(SnapshotError::Truncated { expected: len, actual: body.len() as u64 }.into());
    }
    let actual_checksum = fnv1a(&body);
    if actual_checksum != expected_checksum {
        return Err(SnapshotError::ChecksumMismatch {
            expected: expected_checksum,
            actual: actual_checksum,
        }
        .into());
    }
    let mut kb: KnowledgeBase =
        decode(&body).map_err(|e| NedError::Snapshot(SnapshotError::Codec(e.to_string())))?;
    kb.rebuild_indexes();
    Ok(kb)
}

/// Encodes one value as a v3 section frame: tag, body length, FNV-1a body
/// checksum, body.
fn write_section<W: Write, T: Serialize>(
    writer: &mut W,
    section_tag: u8,
    value: &T,
) -> Result<(), NedError> {
    let body =
        encode(value).map_err(|e| NedError::Snapshot(SnapshotError::Codec(e.to_string())))?;
    let mut prelude = [0u8; FRAME_PRELUDE_LEN];
    prelude[0] = section_tag; // ned-lint: allow(p1) — fixed-size buffer, constant bounds
    prelude[1..9].copy_from_slice(&(body.len() as u64).to_le_bytes()); // ned-lint: allow(p1) — fixed-size buffer, constant bounds
    prelude[9..17].copy_from_slice(&fnv1a(&body).to_le_bytes()); // ned-lint: allow(p1) — fixed-size buffer, constant bounds
    writer
        .write_all(&prelude)
        .and_then(|()| writer.write_all(&body))
        .map_err(|e| NedError::io("writing snapshot section", e))
}

/// Writes a v3 sectioned snapshot of a [`FrozenKb`]: the 8-byte header
/// followed by the six section frames (entities, dictionary, links,
/// keyphrases, weights, phrase_runs), each length-prefixed and individually
/// checksummed. The trailing phrase-run frame is optional on read.
pub fn write_frozen_snapshot<W: Write>(kb: &FrozenKb, mut writer: W) -> Result<(), NedError> {
    let mut header = [0u8; V3_HEADER_LEN];
    header[..6].copy_from_slice(MAGIC); // ned-lint: allow(p1) — fixed-size buffer, constant bounds
    header[6..8].copy_from_slice(&FORMAT_VERSION.to_le_bytes()); // ned-lint: allow(p1) — fixed-size buffer, constant bounds
    writer.write_all(&header).map_err(|e| NedError::io("writing snapshot header", e))?;
    let (entities, dictionary, links, phrases, weights) = kb.sections();
    write_section(&mut writer, tag::ENTITIES, entities)?;
    write_section(&mut writer, tag::DICTIONARY, dictionary)?;
    write_section(&mut writer, tag::LINKS, links)?;
    write_section(&mut writer, tag::KEYPHRASES, phrases)?;
    write_section(&mut writer, tag::WEIGHTS, weights)?;
    write_section(&mut writer, tag::PHRASE_RUNS, kb.phrase_runs())?;
    Ok(())
}

/// Decoded v3 sections, accumulated while walking the frame stream.
#[derive(Debug, Default)]
struct Sections {
    entities: Option<Vec<Entity>>,
    dictionary: Option<FrozenDictionary>,
    links: Option<FrozenLinks>,
    keyphrases: Option<FrozenPhrases>,
    weights: Option<WeightModel>,
    /// Optional: absent in snapshots written before the phrase-run cache;
    /// `assemble` rebuilds it when `None`.
    phrase_runs: Option<PhraseRuns>,
}

impl Sections {
    fn take<T>(slot: Option<T>, section: &'static str) -> Result<T, NedError> {
        slot.ok_or_else(|| SnapshotError::MissingSection { section }.into())
    }

    fn into_frozen(self) -> Result<FrozenKb, NedError> {
        Ok(FrozenKb::assemble(
            Self::take(self.entities, "entities")?,
            Self::take(self.dictionary, "dictionary")?,
            Self::take(self.links, "links")?,
            Self::take(self.keyphrases, "keyphrases")?,
            Self::take(self.weights, "weights")?,
            self.phrase_runs,
        ))
    }
}

/// Reads one v3 section body, validating the frame's length and checksum.
fn read_section_body<R: Read>(
    reader: &mut R,
    section: &'static str,
    prelude: &[u8; FRAME_PRELUDE_LEN],
) -> Result<Vec<u8>, NedError> {
    let len = u64::from_le_bytes(prelude[1..9].try_into().unwrap_or([0; 8])); // ned-lint: allow(p1) — fixed-size buffer, constant bounds
    let expected_checksum = u64::from_le_bytes(prelude[9..17].try_into().unwrap_or([0; 8])); // ned-lint: allow(p1) — fixed-size buffer, constant bounds
    let mut body = Vec::new();
    reader
        .by_ref()
        .take(len)
        .read_to_end(&mut body)
        .map_err(|e| NedError::io("reading snapshot section", e))?;
    if body.len() as u64 != len {
        return Err(SnapshotError::SectionTruncated {
            section,
            expected: len,
            actual: body.len() as u64,
        }
        .into());
    }
    let actual_checksum = fnv1a(&body);
    if actual_checksum != expected_checksum {
        return Err(SnapshotError::SectionChecksumMismatch {
            section,
            expected: expected_checksum,
            actual: actual_checksum,
        }
        .into());
    }
    Ok(body)
}

/// Reads a snapshot of either format into the read-optimized [`FrozenKb`].
///
/// - A **v3** stream decodes section-by-section straight into the flat
///   arrays, validating each frame's length and checksum independently
///   ([`SnapshotError::SectionTruncated`] /
///   [`SnapshotError::SectionChecksumMismatch`] name the failing section).
///   The five classic sections are required
///   ([`SnapshotError::MissingSection`]); the trailing phrase-run section
///   is optional (rebuilt when absent); an unrecognized tag is rejected
///   ([`SnapshotError::UnknownSection`]).
/// - A **v2** stream is decoded through the legacy path and frozen on load,
///   so old snapshots keep working across the migration.
///
/// Every decode path funnels through the same constructor, so the transient
/// indexes (`entity_by_name`, keyphrase inverted index) are always rebuilt —
/// a loaded KB is indistinguishable from a freshly frozen one.
pub fn read_frozen_snapshot<R: Read>(reader: R) -> Result<FrozenKb, NedError> {
    read_frozen_snapshot_observed(reader, &Metrics::disabled())
}

/// [`read_frozen_snapshot`] with load observability: records the read span,
/// a decoded-section counter, the v2-fallback counter, and per-section body
/// sizes as gauges (`snapshot_section_bytes_<name>`, plus
/// `snapshot_bytes_total`) into the given registry. Pass
/// [`Metrics::disabled`] (or call the plain reader) to skip accounting.
pub fn read_frozen_snapshot_observed<R: Read>(
    mut reader: R,
    metrics: &Metrics,
) -> Result<FrozenKb, NedError> {
    let _span = metrics.span(names::STAGE_SNAPSHOT_READ_NS);
    let mut header = [0u8; V3_HEADER_LEN];
    let got = read_up_to(&mut reader, &mut header)
        .map_err(|e| NedError::io("reading snapshot header", e))?;
    if got < V3_HEADER_LEN {
        if got < 6 || &header[..6] != MAGIC { // ned-lint: allow(p1) — fixed-size buffer, constant bounds
            return Err(SnapshotError::BadMagic.into());
        }
        return Err(
            SnapshotError::Truncated { expected: V3_HEADER_LEN as u64, actual: got as u64 }.into()
        );
    }
    if &header[..6] != MAGIC { // ned-lint: allow(p1) — fixed-size buffer, constant bounds
        return Err(SnapshotError::BadMagic.into());
    }
    let version = u16::from_le_bytes([header[6], header[7]]); // ned-lint: allow(p1) — fixed-size buffer, constant bounds
    if version == V2_FORMAT_VERSION {
        // Legacy monolithic body: finish the 24-byte header, decode the
        // mutable-shaped KB, and freeze it on the way in.
        let mut rest = [0u8; HEADER_LEN - V3_HEADER_LEN];
        let got = read_up_to(&mut reader, &mut rest)
            .map_err(|e| NedError::io("reading snapshot header", e))?;
        if got < rest.len() {
            return Err(SnapshotError::Truncated {
                expected: HEADER_LEN as u64,
                actual: (V3_HEADER_LEN + got) as u64,
            }
            .into());
        }
        let len = u64::from_le_bytes(rest[..8].try_into().unwrap_or([0; 8])); // ned-lint: allow(p1) — fixed-size buffer, constant bounds
        let expected_checksum = u64::from_le_bytes(rest[8..16].try_into().unwrap_or([0; 8])); // ned-lint: allow(p1) — fixed-size buffer, constant bounds
        let kb = read_v2_rest(&mut reader, len, expected_checksum)?;
        metrics.counter(names::SNAPSHOT_V2_FALLBACK).inc();
        metrics.gauge(names::SNAPSHOT_BYTES_TOTAL).set(HEADER_LEN as u64 + len);
        return Ok(FrozenKb::freeze(&kb));
    }
    if version != FORMAT_VERSION {
        return Err(
            SnapshotError::UnsupportedVersion { found: version, supported: FORMAT_VERSION }.into()
        );
    }
    let mut sections = Sections::default();
    let sections_decoded = metrics.counter(names::SNAPSHOT_SECTIONS_DECODED);
    let mut total_bytes = V3_HEADER_LEN as u64;
    loop {
        let mut prelude = [0u8; FRAME_PRELUDE_LEN];
        let got = read_up_to(&mut reader, &mut prelude)
            .map_err(|e| NedError::io("reading snapshot section header", e))?;
        if got == 0 {
            break; // Clean end of the frame stream.
        }
        let Some(section) = section_name(prelude[0]) else { // ned-lint: allow(p1) — fixed-size buffer, constant bounds
            return Err(SnapshotError::UnknownSection { tag: prelude[0] }.into()); // ned-lint: allow(p1) — fixed-size buffer, constant bounds
        };
        if got < FRAME_PRELUDE_LEN {
            return Err(SnapshotError::SectionTruncated {
                section,
                expected: FRAME_PRELUDE_LEN as u64,
                actual: got as u64,
            }
            .into());
        }
        let body = read_section_body(&mut reader, section, &prelude)?;
        let section_gauge =
            format!("{}{section}", names::SNAPSHOT_SECTION_BYTES_PREFIX);
        metrics.gauge(&section_gauge).set(body.len() as u64);
        sections_decoded.inc();
        total_bytes += (FRAME_PRELUDE_LEN + body.len()) as u64;
        let codec_err =
            |e: CodecError| NedError::Snapshot(SnapshotError::Codec(format!("{section}: {e}")));
        match prelude[0] { // ned-lint: allow(p1) — fixed-size buffer, constant bounds
            tag::ENTITIES => sections.entities = Some(decode(&body).map_err(codec_err)?),
            tag::DICTIONARY => sections.dictionary = Some(decode(&body).map_err(codec_err)?),
            tag::LINKS => sections.links = Some(decode(&body).map_err(codec_err)?),
            tag::KEYPHRASES => sections.keyphrases = Some(decode(&body).map_err(codec_err)?),
            tag::WEIGHTS => sections.weights = Some(decode(&body).map_err(codec_err)?),
            tag::PHRASE_RUNS => sections.phrase_runs = Some(decode(&body).map_err(codec_err)?),
            other => return Err(SnapshotError::UnknownSection { tag: other }.into()),
        }
    }
    metrics.gauge(names::SNAPSHOT_BYTES_TOTAL).set(total_bytes);
    sections.into_frozen()
}

/// Fills `buf` as far as the stream allows; returns the bytes read. Unlike
/// `read_exact`, a short stream is reported by count, not an error, so the
/// caller can distinguish bad magic from truncation. Shared with the WAL
/// replayer ([`crate::wal`]), which needs the same distinction per frame.
pub(crate) fn read_up_to<R: Read>(reader: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) { // ned-lint: allow(p1) — fixed-size buffer, constant bounds
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::EntityKind;
    use crate::KbBuilder;

    fn sample_kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        let a = b.add_entity("Alpha Band", EntityKind::Organization);
        let c = b.add_entity("Alpha City", EntityKind::Location);
        b.add_name(a, "Alpha", 10);
        b.add_name(c, "Alpha", 90);
        b.add_keyphrase(a, "rock band", 3);
        b.add_keyphrase(c, "coastal city", 2);
        b.add_link(a, c);
        b.build()
    }

    #[test]
    fn roundtrip_preserves_kb() {
        let kb = sample_kb();
        let mut buf = Vec::new();
        write_snapshot(&kb, &mut buf).unwrap();
        let kb2 = read_snapshot(buf.as_slice()).unwrap();
        assert_eq!(kb2.entity_count(), kb.entity_count());
        let a = kb2.entity_by_name("Alpha Band").unwrap();
        assert_eq!(kb2.entity(a).canonical_name, "Alpha Band");
        assert_eq!(kb2.candidates("Alpha").len(), 2);
        assert_eq!(kb2.keyphrases(a).len(), 1);
        // Weight model round-trips numerically.
        let w = kb2.word_id("rock").unwrap();
        assert_eq!(kb2.weights().keyword_npmi(a, w), kb.weights().keyword_npmi(a, w));
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_snapshot(&b"NOTAKB00rest_of_a_header_xx"[..]).unwrap_err();
        assert!(matches!(err, NedError::Snapshot(SnapshotError::BadMagic)), "{err}");
        // Too short to even hold the magic.
        let err = read_snapshot(&b"AI"[..]).unwrap_err();
        assert!(matches!(err, NedError::Snapshot(SnapshotError::BadMagic)), "{err}");
    }

    #[test]
    fn rejects_version_skew() {
        // A v1 snapshot started with the ASCII bytes "AIDAKB01".
        let mut old = Vec::from(&b"AIDAKB01"[..]);
        old.extend_from_slice(&[0u8; 32]);
        let err = read_snapshot(old.as_slice()).unwrap_err();
        match err {
            NedError::Snapshot(SnapshotError::UnsupportedVersion { found, supported }) => {
                assert_eq!(supported, V2_FORMAT_VERSION);
                assert_ne!(found, V2_FORMAT_VERSION);
            }
            other => panic!("expected version skew, got {other}"),
        }
        // The legacy reader only accepts v2 — a v3 header is version skew to
        // it (read_frozen_snapshot is the version-dispatching loader).
        let kb = sample_kb();
        let mut buf = Vec::new();
        write_snapshot(&kb, &mut buf).unwrap();
        buf[6..8].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        assert!(matches!(
            read_snapshot(buf.as_slice()),
            Err(NedError::Snapshot(SnapshotError::UnsupportedVersion { .. }))
        ));
        // A future version is rejected by both readers.
        let future = FORMAT_VERSION + 1;
        buf[6..8].copy_from_slice(&future.to_le_bytes());
        assert!(matches!(
            read_snapshot(buf.as_slice()),
            Err(NedError::Snapshot(SnapshotError::UnsupportedVersion { .. }))
        ));
        match read_frozen_snapshot(buf.as_slice()).unwrap_err() {
            NedError::Snapshot(SnapshotError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, future);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected version skew, got {other}"),
        }
    }

    #[test]
    fn checksum_catches_body_corruption() {
        let kb = sample_kb();
        let mut buf = Vec::new();
        write_snapshot(&kb, &mut buf).unwrap();
        for pos in HEADER_LEN..buf.len() {
            let mut corrupted = buf.clone();
            corrupted[pos] ^= 0x01;
            assert!(
                matches!(
                    read_snapshot(corrupted.as_slice()),
                    Err(NedError::Snapshot(SnapshotError::ChecksumMismatch { .. }))
                ),
                "flip at byte {pos} was not caught"
            );
        }
    }

    #[test]
    fn codec_roundtrips_basic_types() {
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct S {
            a: u32,
            b: String,
            c: Vec<(i64, f64)>,
            d: Option<bool>,
            e: std::collections::HashMap<String, u8>,
        }
        let mut e = std::collections::HashMap::new();
        e.insert("k".to_string(), 7u8);
        let s = S {
            a: 42,
            b: "hello".into(),
            c: vec![(-5, 1.5), (i64::MAX, -0.0)],
            d: Some(true),
            e,
        };
        let bytes = encode(&s).unwrap();
        let s2: S = decode(&bytes).unwrap();
        assert_eq!(s, s2);
    }

    #[test]
    fn codec_rejects_trailing_bytes() {
        let bytes = encode(&7u32).unwrap();
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(decode::<u32>(&longer).is_err());
        assert_eq!(decode::<u32>(&bytes).unwrap(), 7);
    }

    #[test]
    fn corrupted_snapshots_error_instead_of_panicking() {
        let kb = sample_kb();
        let mut buf = Vec::new();
        write_snapshot(&kb, &mut buf).unwrap();
        // Truncations at every prefix length must error cleanly.
        for cut in 0..buf.len() {
            assert!(read_snapshot(&buf[..cut]).is_err(), "cut at {cut} did not error");
        }
        // A corrupted length header must not allocate terabytes.
        let mut huge = buf.clone();
        huge[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            read_snapshot(huge.as_slice()),
            Err(NedError::Snapshot(SnapshotError::Truncated { .. }))
        ));
        // Single-byte corruptions anywhere (header or body) must error, not
        // panic or decode silently garbled data.
        for pos in 0..buf.len() {
            let mut corrupted = buf.clone();
            corrupted[pos] ^= 0xff;
            assert!(read_snapshot(corrupted.as_slice()).is_err(), "flip at {pos} slipped through");
        }
    }

    #[test]
    fn codec_rejects_truncated_input() {
        let bytes = encode(&"a longer string".to_string()).unwrap();
        assert!(decode::<String>(&bytes[..bytes.len() - 2]).is_err());
    }

    fn assert_frozen_matches(fz: &FrozenKb, kb: &KnowledgeBase) {
        assert_eq!(fz.entity_count(), kb.entity_count());
        for e in kb.entity_ids() {
            assert_eq!(fz.entity(e).canonical_name, kb.entity(e).canonical_name);
            assert_eq!(fz.keyphrases(e), kb.keyphrases(e));
            assert_eq!(fz.links().inlinks(e), kb.links().inlinks(e));
            assert_eq!(fz.links().outlinks(e), kb.links().outlinks(e));
        }
        assert_eq!(fz.candidates("Alpha"), kb.candidates("Alpha"));
        for e in kb.entity_ids() {
            assert_eq!(fz.prior("Alpha", e).to_bits(), kb.prior("Alpha", e).to_bits());
        }
        assert_eq!(fz.keyphrase_index().posting_count(), kb.keyphrase_index().posting_count());
    }

    #[test]
    fn v3_roundtrip_preserves_frozen_kb() {
        let kb = sample_kb();
        let fz = FrozenKb::freeze(&kb);
        let mut buf = Vec::new();
        write_frozen_snapshot(&fz, &mut buf).unwrap();
        assert_eq!(u16::from_le_bytes([buf[6], buf[7]]), FORMAT_VERSION);
        let fz2 = read_frozen_snapshot(buf.as_slice()).unwrap();
        assert_frozen_matches(&fz2, &kb);
        // Numeric weight content survives the section framing.
        let a = kb.entity_by_name("Alpha Band").unwrap();
        let w = kb.word_id("rock").unwrap();
        assert_eq!(fz2.weights().keyword_npmi(a, w), kb.weights().keyword_npmi(a, w));
    }

    #[test]
    fn v2_snapshots_freeze_on_load() {
        let kb = sample_kb();
        let mut buf = Vec::new();
        write_snapshot(&kb, &mut buf).unwrap();
        assert_eq!(u16::from_le_bytes([buf[6], buf[7]]), V2_FORMAT_VERSION);
        let fz = read_frozen_snapshot(buf.as_slice()).unwrap();
        assert_frozen_matches(&fz, &kb);
    }

    #[test]
    fn v3_section_corruption_names_the_section() {
        let kb = sample_kb();
        let fz = FrozenKb::freeze(&kb);
        let mut buf = Vec::new();
        write_frozen_snapshot(&fz, &mut buf).unwrap();
        // The first frame after the 8-byte header is the entities section;
        // flip a byte inside its body.
        let body_len =
            u64::from_le_bytes(buf[9..17].try_into().unwrap()) as usize;
        assert!(body_len > 0);
        let mut corrupted = buf.clone();
        corrupted[V3_HEADER_LEN + FRAME_PRELUDE_LEN] ^= 0x01;
        match read_frozen_snapshot(corrupted.as_slice()).unwrap_err() {
            NedError::Snapshot(SnapshotError::SectionChecksumMismatch { section, .. }) => {
                assert_eq!(section, "entities");
            }
            other => panic!("expected section checksum mismatch, got {other}"),
        }
        // Every single-byte flip anywhere in the stream must error, never
        // panic or decode garbage.
        for pos in V3_HEADER_LEN..buf.len() {
            let mut corrupted = buf.clone();
            corrupted[pos] ^= 0xff;
            assert!(
                read_frozen_snapshot(corrupted.as_slice()).is_err(),
                "flip at {pos} slipped through"
            );
        }
        // Truncations at every prefix length must error cleanly too — with
        // one exception: a cut exactly at the start of the trailing
        // phrase-run frame looks like a clean end-of-stream, and that
        // section is optional by design (rebuilt on load).
        let phrase_runs_start = frame_starts(&buf).pop().unwrap();
        for cut in 0..buf.len() {
            if cut == phrase_runs_start {
                let fz2 = read_frozen_snapshot(&buf[..cut]).unwrap();
                assert_frozen_matches(&fz2, &kb);
                continue;
            }
            assert!(read_frozen_snapshot(&buf[..cut]).is_err(), "cut at {cut} did not error");
        }
    }

    /// Byte offsets of every v3 frame start, in stream order.
    fn frame_starts(buf: &[u8]) -> Vec<usize> {
        let mut starts = Vec::new();
        let mut pos = V3_HEADER_LEN;
        while pos < buf.len() {
            starts.push(pos);
            let body_len =
                u64::from_le_bytes(buf[pos + 1..pos + 9].try_into().unwrap()) as usize;
            pos += FRAME_PRELUDE_LEN + body_len;
        }
        starts
    }

    #[test]
    fn v3_missing_section_is_reported() {
        let kb = sample_kb();
        let fz = FrozenKb::freeze(&kb);
        let mut buf = Vec::new();
        write_frozen_snapshot(&fz, &mut buf).unwrap();
        // Drop the trailing frames from the weights section on (the
        // phrase-run frame alone is optional; weights are not).
        let starts = frame_starts(&buf);
        let weights_start = starts[starts.len() - 2];
        match read_frozen_snapshot(&buf[..weights_start]).unwrap_err() {
            NedError::Snapshot(SnapshotError::MissingSection { section }) => {
                assert_eq!(section, "weights");
            }
            other => panic!("expected missing section, got {other}"),
        }
    }

    #[test]
    fn v3_phrase_run_section_is_optional_and_roundtrips() {
        let kb = sample_kb();
        let fz = FrozenKb::freeze(&kb);
        let mut buf = Vec::new();
        write_frozen_snapshot(&fz, &mut buf).unwrap();
        let starts = frame_starts(&buf);
        assert_eq!(starts.len(), 6, "expected six frames");
        assert_eq!(buf[*starts.last().unwrap()], 6, "phrase-run frame tag");

        // Reading the full stream decodes the persisted runs; reading a
        // stream cut before the phrase-run frame rebuilds them. Both paths
        // must agree exactly with the freshly frozen structure.
        let with_section = read_frozen_snapshot(buf.as_slice()).unwrap();
        let without_section =
            read_frozen_snapshot(&buf[..*starts.last().unwrap()]).unwrap();
        assert_eq!(with_section.phrase_runs(), fz.phrase_runs());
        assert_eq!(without_section.phrase_runs(), fz.phrase_runs());
        assert_eq!(
            with_section.stats().phrase_run_bytes,
            without_section.stats().phrase_run_bytes
        );

        // A shape-mismatched phrase-run section (decodes fine but does not
        // fit the KB's dimensions) is discarded and rebuilt, not trusted.
        let mut swapped = Vec::new();
        write_frozen_snapshot(&fz, &mut swapped).unwrap();
        let foreign = {
            let other = {
                let mut b = KbBuilder::new();
                let e = b.add_entity("Lone", EntityKind::Other);
                b.add_keyphrase(e, "single phrase", 1);
                b.build()
            };
            FrozenKb::freeze(&other).phrase_runs().clone()
        };
        swapped.truncate(*starts.last().unwrap());
        let body = encode(&foreign).unwrap();
        let mut prelude = [0u8; FRAME_PRELUDE_LEN];
        prelude[0] = 6;
        prelude[1..9].copy_from_slice(&(body.len() as u64).to_le_bytes());
        prelude[9..17].copy_from_slice(&fnv1a(&body).to_le_bytes());
        swapped.extend_from_slice(&prelude);
        swapped.extend_from_slice(&body);
        let rebuilt = read_frozen_snapshot(swapped.as_slice()).unwrap();
        assert_eq!(rebuilt.phrase_runs(), fz.phrase_runs());
    }

    #[test]
    fn v3_unknown_tag_is_rejected() {
        let kb = sample_kb();
        let fz = FrozenKb::freeze(&kb);
        let mut buf = Vec::new();
        write_frozen_snapshot(&fz, &mut buf).unwrap();
        let mut corrupted = buf.clone();
        corrupted[V3_HEADER_LEN] = 0x77; // entities frame tag → nonsense
        match read_frozen_snapshot(corrupted.as_slice()).unwrap_err() {
            NedError::Snapshot(SnapshotError::UnknownSection { tag }) => assert_eq!(tag, 0x77),
            other => panic!("expected unknown section, got {other}"),
        }
    }

    #[test]
    fn observed_read_records_section_sizes() {
        let kb = sample_kb();
        let fz = FrozenKb::freeze(&kb);
        let mut buf = Vec::new();
        write_frozen_snapshot(&fz, &mut buf).unwrap();
        let m = Metrics::new();
        let fz2 = read_frozen_snapshot_observed(buf.as_slice(), &m).unwrap();
        assert_frozen_matches(&fz2, &kb);
        let snap = m.snapshot();
        assert_eq!(snap.counter(names::SNAPSHOT_SECTIONS_DECODED), 6);
        assert_eq!(snap.counter(names::SNAPSHOT_V2_FALLBACK), 0);
        assert_eq!(snap.gauge(names::SNAPSHOT_BYTES_TOTAL), buf.len() as u64);
        for section in
            ["entities", "dictionary", "links", "keyphrases", "weights", "phrase_runs"]
        {
            let gauge = format!("{}{section}", names::SNAPSHOT_SECTION_BYTES_PREFIX);
            assert!(snap.gauge(&gauge) > 0, "section {section} size not recorded");
        }
        // Section sizes account for the whole stream minus framing.
        let framed: u64 = snap
            .gauges
            .iter()
            .filter(|(n, _)| n.starts_with(names::SNAPSHOT_SECTION_BYTES_PREFIX))
            .map(|&(_, v)| v + FRAME_PRELUDE_LEN as u64)
            .sum();
        assert_eq!(framed + V3_HEADER_LEN as u64, buf.len() as u64);
        // The read span counted one invocation (zero duration: null clock).
        let (_, span) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == names::STAGE_SNAPSHOT_READ_NS)
            .expect("snapshot read span recorded");
        assert_eq!(span.count, 1);
        assert_eq!(span.sum, 0);
    }

    #[test]
    fn observed_read_counts_v2_fallback() {
        let kb = sample_kb();
        let mut buf = Vec::new();
        write_snapshot(&kb, &mut buf).unwrap();
        let m = Metrics::new();
        let fz = read_frozen_snapshot_observed(buf.as_slice(), &m).unwrap();
        assert_frozen_matches(&fz, &kb);
        let snap = m.snapshot();
        assert_eq!(snap.counter(names::SNAPSHOT_V2_FALLBACK), 1);
        assert_eq!(snap.counter(names::SNAPSHOT_SECTIONS_DECODED), 0);
        assert_eq!(snap.gauge(names::SNAPSHOT_BYTES_TOTAL), buf.len() as u64);
    }

    #[test]
    fn v3_rejects_bad_magic() {
        let err = read_frozen_snapshot(&b"NOTAKB03"[..]).unwrap_err();
        assert!(matches!(err, NedError::Snapshot(SnapshotError::BadMagic)), "{err}");
        let err = read_frozen_snapshot(&b"AI"[..]).unwrap_err();
        assert!(matches!(err, NedError::Snapshot(SnapshotError::BadMagic)), "{err}");
    }
}
