//! Aggregate statistics over a knowledge base (supports Table 3.1-style
//! corpus/KB property reports).

use serde::{Deserialize, Serialize};

use crate::store::KnowledgeBase;

/// Summary statistics of a [`KnowledgeBase`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KbStats {
    /// Number of entities.
    pub entities: usize,
    /// Number of distinct surface names in the dictionary.
    pub names: usize,
    /// Number of (name, entity) dictionary pairs.
    pub name_entity_pairs: usize,
    /// Mean number of candidate entities per name.
    pub mean_candidates_per_name: f64,
    /// Largest candidate set over all names.
    pub max_candidates_per_name: usize,
    /// Number of directed links.
    pub links: usize,
    /// Mean in-links per entity.
    pub mean_inlinks: f64,
    /// Number of distinct keyphrases.
    pub distinct_keyphrases: usize,
    /// Mean keyphrases per entity.
    pub mean_keyphrases_per_entity: f64,
}

impl KbStats {
    /// Computes statistics for `kb`.
    pub fn of(kb: &KnowledgeBase) -> Self {
        let entities = kb.entity_count();
        let names = kb.dictionary().name_count();
        let pairs = kb.dictionary().pair_count();
        let max_candidates =
            kb.dictionary().iter().map(|(_, cands)| cands.len()).max().unwrap_or(0);
        let total_keyphrases: usize =
            kb.entity_ids().map(|e| kb.keyphrases(e).len()).sum();
        KbStats {
            entities,
            names,
            name_entity_pairs: pairs,
            mean_candidates_per_name: ratio(pairs, names),
            max_candidates_per_name: max_candidates,
            links: kb.links().edge_count(),
            mean_inlinks: ratio(kb.links().edge_count(), entities),
            distinct_keyphrases: kb.phrase_interner().len(),
            mean_keyphrases_per_entity: ratio(total_keyphrases, entities),
        }
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::EntityKind;
    use crate::KbBuilder;

    #[test]
    fn stats_of_small_kb() {
        let mut b = KbBuilder::new();
        let a = b.add_entity("A Band", EntityKind::Organization);
        let c = b.add_entity("A City", EntityKind::Location);
        b.add_name(a, "A", 1);
        b.add_name(c, "A", 1);
        b.add_keyphrase(a, "rock band", 1);
        b.add_keyphrase(a, "tour bus", 1);
        b.add_keyphrase(c, "rock band", 1);
        b.add_link(a, c);
        let kb = b.build();
        let s = KbStats::of(&kb);
        assert_eq!(s.entities, 2);
        // Names: "A BAND", "A CITY", "A" (canonical titles + shared alias).
        assert_eq!(s.names, 3);
        assert_eq!(s.name_entity_pairs, 4);
        assert_eq!(s.max_candidates_per_name, 2);
        assert_eq!(s.links, 1);
        assert_eq!(s.distinct_keyphrases, 2);
        assert!((s.mean_keyphrases_per_entity - 1.5).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_kb() {
        let kb = KbBuilder::new().build();
        let s = KbStats::of(&kb);
        assert_eq!(s.entities, 0);
        assert_eq!(s.mean_inlinks, 0.0);
    }
}
