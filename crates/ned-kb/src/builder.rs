//! Incremental construction of a [`KnowledgeBase`].

use crate::entity::{Entity, EntityKind};
use crate::fx::FxHashMap;
use crate::ids::{EntityId, PhraseId};
use crate::keyphrase::KeyphraseStore;
use crate::links::LinkGraph;
use crate::store::KnowledgeBase;
use crate::vocab::{PhraseInterner, WordInterner};
use crate::weights::WeightModel;

/// Builder accumulating entities, names, links, and keyphrases, then
/// computing the weight model in [`KbBuilder::build`].
///
/// Mirrors how the original system harvests Wikipedia: every article becomes
/// an entity; titles, redirects, and link anchors populate the dictionary;
/// page links populate the link graph; anchor texts, categories, and citation
/// titles populate the keyphrase store.
#[derive(Debug, Default)]
pub struct KbBuilder {
    entities: Vec<Entity>,
    by_name: FxHashMap<String, EntityId>,
    words: WordInterner,
    phrases: PhraseInterner,
    dictionary: crate::dictionary::Dictionary,
    link_pairs: Vec<(EntityId, EntityId)>,
    phrase_adds: Vec<(EntityId, PhraseId, u64)>,
}

impl KbBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reconstructs a builder from an existing knowledge base (any
    /// [`KbView`](crate::KbView) — legacy or frozen), so the KB can be
    /// extended (e.g. with harvested keyphrases or newly promoted entities)
    /// and rebuilt with fresh weights — the KB maintenance life-cycle of
    /// §5.6.
    pub fn from_kb<K: crate::KbView + ?Sized>(kb: &K) -> Self {
        let mut builder = KbBuilder::new();
        for e in kb.entity_ids() {
            let entity = kb.entity(e);
            let id = builder.add_entity(&entity.canonical_name, entity.kind);
            debug_assert_eq!(id, e, "entity ids must be stable across rebuilds");
        }
        // Dictionary: canonical names were re-added with count 1 by
        // add_entity; transfer the remaining counts of every entry.
        for (key, cands) in kb.dictionary().iter() {
            for c in cands {
                let already = if key
                    == ned_text::normalize::match_key(&kb.entity(c.entity).canonical_name)
                {
                    1
                } else {
                    0
                };
                if c.count > already {
                    builder.add_name(c.entity, key, c.count - already);
                }
            }
        }
        for e in kb.entity_ids() {
            for &dst in kb.links().outlinks(e) {
                builder.add_link(e, dst);
            }
            for ep in kb.keyphrases(e) {
                builder.add_keyphrase(e, kb.phrase_surface(ep.phrase), ep.count);
            }
        }
        builder
    }

    /// Registers an entity with a unique canonical name.
    ///
    /// The canonical name is automatically added to the dictionary with an
    /// anchor count of 1 (the "title" observation).
    ///
    /// # Panics
    /// Panics if the canonical name is already taken.
    pub fn add_entity(&mut self, canonical_name: &str, kind: EntityKind) -> EntityId {
        assert!(
            !self.by_name.contains_key(canonical_name),
            "duplicate canonical name: {canonical_name}"
        );
        let id = EntityId::from_index(self.entities.len());
        self.entities.push(Entity::new(canonical_name, kind));
        self.by_name.insert(canonical_name.to_string(), id);
        self.dictionary.add(canonical_name, id, 1);
        id
    }

    /// Number of entities registered so far.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Adds a surface name observation (redirect, disambiguation page entry,
    /// or link anchor) for `entity` with the given anchor `count`.
    pub fn add_name(&mut self, entity: EntityId, name: &str, count: u64) {
        self.dictionary.add(name, entity, count);
    }

    /// Adds a directed link between entities (like a Wikipedia page link).
    pub fn add_link(&mut self, src: EntityId, dst: EntityId) {
        self.link_pairs.push((src, dst));
    }

    /// Adds `count` observations of keyphrase `surface` for `entity`.
    pub fn add_keyphrase(&mut self, entity: EntityId, surface: &str, count: u64) -> PhraseId {
        let p = self.phrases.intern(surface, &mut self.words);
        self.phrase_adds.push((entity, p, count));
        p
    }

    /// Finalizes all stores, computes the weight model, and returns the
    /// immutable knowledge base.
    pub fn build(self) -> KnowledgeBase {
        let n = self.entities.len();
        let mut links = LinkGraph::new(n);
        for (src, dst) in self.link_pairs {
            links.add_link(src, dst);
        }
        links.finalize();

        let mut keyphrases = KeyphraseStore::new(n);
        for (e, p, c) in self.phrase_adds {
            keyphrases.add(e, p, c);
        }
        keyphrases.finalize();

        let mut dictionary = self.dictionary;
        dictionary.finalize();

        let weights = WeightModel::compute(&keyphrases, &links, &self.phrases, self.words.len());
        let kp_index =
            crate::kp_index::KeyphraseIndex::build(&keyphrases, &self.phrases, self.words.len());
        let phrase_runs = crate::phrase_runs::PhraseRuns::build_raw(
            self.phrases.len(),
            self.entities.len(),
            |e| keyphrases.phrases(e),
            |p| self.phrases.words(p),
            &weights,
        );

        KnowledgeBase {
            entities: self.entities,
            words: self.words,
            phrases: self.phrases,
            dictionary,
            links,
            keyphrases,
            weights,
            by_name: self.by_name,
            kp_index,
            phrase_runs,
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// Builds the running example of the thesis: Jimmy Page, Kashmir (song),
    /// Kashmir (region), Robert Plant.
    pub(crate) fn example_kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        let page = b.add_entity("Jimmy Page", EntityKind::Person);
        let song = b.add_entity("Kashmir (song)", EntityKind::Work);
        let region = b.add_entity("Kashmir (region)", EntityKind::Location);
        let plant = b.add_entity("Robert Plant", EntityKind::Person);

        b.add_name(page, "Page", 70);
        b.add_name(song, "Kashmir", 6);
        b.add_name(region, "Kashmir", 94);
        b.add_name(plant, "Plant", 60);

        b.add_keyphrase(page, "hard rock", 3);
        b.add_keyphrase(page, "Led Zeppelin", 5);
        b.add_keyphrase(page, "Gibson guitar", 2);
        b.add_keyphrase(song, "Led Zeppelin", 4);
        b.add_keyphrase(song, "hard rock", 2);
        b.add_keyphrase(region, "Himalaya mountains", 5);
        b.add_keyphrase(region, "disputed territory", 3);
        b.add_keyphrase(plant, "Led Zeppelin", 5);
        b.add_keyphrase(plant, "rock singer", 3);

        b.add_link(page, song);
        b.add_link(song, page);
        b.add_link(plant, song);
        b.add_link(plant, page);
        b.add_link(page, plant);

        b.build()
    }

    #[test]
    fn build_produces_consistent_kb() {
        let kb = example_kb();
        assert_eq!(kb.entity_count(), 4);
        let page = kb.entity_by_name("Jimmy Page").unwrap();
        assert_eq!(kb.entity(page).canonical_name, "Jimmy Page");
        assert_eq!(kb.keyphrases(page).len(), 3);
        assert!(kb.links().inlink_count(page) >= 2);
    }

    #[test]
    fn canonical_name_is_in_dictionary() {
        let kb = example_kb();
        let cands = kb.candidates("Jimmy Page");
        assert_eq!(cands.len(), 1);
    }

    #[test]
    fn ambiguous_name_has_multiple_candidates_sorted_by_count() {
        let kb = example_kb();
        let cands = kb.candidates("Kashmir");
        assert_eq!(cands.len(), 2);
        assert!(cands[0].count > cands[1].count);
        let region = kb.entity_by_name("Kashmir (region)").unwrap();
        assert_eq!(cands[0].entity, region);
        assert!(kb.prior("Kashmir", region) > 0.9);
    }

    #[test]
    fn weights_are_computed() {
        let kb = example_kb();
        let page = kb.entity_by_name("Jimmy Page").unwrap();
        let zeppelin = kb.word_id("zeppelin").unwrap();
        assert!(kb.weights().keyword_npmi(page, zeppelin) > 0.0);
    }

    #[test]
    #[should_panic(expected = "duplicate canonical name")]
    fn duplicate_canonical_name_panics() {
        let mut b = KbBuilder::new();
        b.add_entity("X", EntityKind::Other);
        b.add_entity("X", EntityKind::Other);
    }

    #[test]
    fn from_kb_roundtrips() {
        let kb = example_kb();
        let kb2 = KbBuilder::from_kb(&kb).build();
        assert_eq!(kb2.entity_count(), kb.entity_count());
        let page = kb.entity_by_name("Jimmy Page").unwrap();
        assert_eq!(kb2.entity_by_name("Jimmy Page"), Some(page));
        // Dictionary counts and priors survive.
        assert_eq!(kb2.candidates("Kashmir").len(), kb.candidates("Kashmir").len());
        let region = kb.entity_by_name("Kashmir (region)").unwrap();
        assert!((kb2.prior("Kashmir", region) - kb.prior("Kashmir", region)).abs() < 1e-12);
        // Links and keyphrases survive.
        assert_eq!(kb2.links().edge_count(), kb.links().edge_count());
        assert_eq!(kb2.keyphrases(page).len(), kb.keyphrases(page).len());
        // Weights are recomputed identically.
        let z = kb.word_id("zeppelin").unwrap();
        let z2 = kb2.word_id("zeppelin").unwrap();
        assert!(
            (kb.weights().keyword_npmi(page, z) - kb2.weights().keyword_npmi(page, z2)).abs()
                < 1e-12
        );
    }

    #[test]
    fn from_kb_allows_extension() {
        let kb = example_kb();
        let mut builder = KbBuilder::from_kb(&kb);
        let page = kb.entity_by_name("Jimmy Page").unwrap();
        builder.add_keyphrase(page, "chief suspect", 3);
        let kb2 = builder.build();
        assert_eq!(kb2.keyphrases(page).len(), kb.keyphrases(page).len() + 1);
    }

    #[test]
    fn empty_builder_builds_empty_kb() {
        let kb = KbBuilder::new().build();
        assert_eq!(kb.entity_count(), 0);
        assert!(kb.candidates("anything").is_empty());
    }
}
