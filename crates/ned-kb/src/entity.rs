//! Entity repository types.

use serde::{Deserialize, Serialize};

/// Coarse semantic class of an entity, mirroring the classic NER type system
/// (person / organization / location / ...) extended with works and events,
/// which the thesis' examples use heavily (songs, albums, sports events).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntityKind {
    /// A person ("Bob Dylan", "Jimmy Page").
    Person,
    /// An organization ("Apple Inc.", "FC Barcelona").
    Organization,
    /// A location ("Kashmir", "Washington, D.C.").
    Location,
    /// A creative work ("Desire", "Kashmir (song)").
    Work,
    /// An event ("1996 AFC Asian Cup").
    Event,
    /// Anything else ("Prism (software)").
    Other,
}

impl EntityKind {
    /// All kinds, in declaration order.
    pub const ALL: [EntityKind; 6] = [
        EntityKind::Person,
        EntityKind::Organization,
        EntityKind::Location,
        EntityKind::Work,
        EntityKind::Event,
        EntityKind::Other,
    ];
}

/// A canonical entity registered in the knowledge base.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Entity {
    /// Unique canonical name (like a Wikipedia page title), e.g.
    /// "Kashmir (song)".
    pub canonical_name: String,
    /// Coarse semantic class.
    pub kind: EntityKind,
}

impl Entity {
    /// Creates an entity.
    pub fn new(canonical_name: impl Into<String>, kind: EntityKind) -> Self {
        Entity { canonical_name: canonical_name.into(), kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let e = Entity::new("Jimmy Page", EntityKind::Person);
        assert_eq!(e.canonical_name, "Jimmy Page");
        assert_eq!(e.kind, EntityKind::Person);
    }

    #[test]
    fn all_kinds_distinct() {
        let mut seen = std::collections::HashSet::new();
        for k in EntityKind::ALL {
            assert!(seen.insert(k));
        }
    }
}
