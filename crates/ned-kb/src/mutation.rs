//! The typed mutation vocabulary of the incremental KB.
//!
//! The paper's NED-EE loop (Ch. 5, Algorithm 3) grows the knowledge base as
//! confident emerging entities are discovered. [`KbMutation`] is the closed
//! set of changes that growth is allowed to make — exactly the operations
//! [`crate::builder::KbBuilder`] exposes at build time, replayed after the
//! fact.
//!
//! Mutations refer to entities by **canonical name**, not [`EntityId`]:
//! ids are dense indexes assigned at apply time, so a name-based record is
//! stable across WAL replay, overlay rebuilds, and compaction (a promoted
//! entity keeps meaning "the entity named X" no matter how many other
//! promotions landed first). Resolution failures surface as typed
//! [`ned_core::NedError::Lookup`] / [`ned_core::NedError::Config`] errors
//! at apply time — never panics.
//!
//! [`EntityId`]: crate::ids::EntityId

use serde::{Deserialize, Serialize};

use crate::entity::EntityKind;

/// One atomic change to the knowledge base.
///
/// Serialized into WAL frames by [`crate::wal`] with the same hand-rolled
/// codec as snapshot v3 (via the flat `WireMutation` wire form — the
/// vendored codec derives only handle structs and fieldless enums), and
/// applied in order by [`crate::delta::DeltaKb::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KbMutation {
    /// Registers a new entity with a unique canonical name.
    ///
    /// Mirrors [`crate::builder::KbBuilder::add_entity`]: the canonical name
    /// is also added to the dictionary with an anchor count of 1 (the
    /// "title" observation). Applying this to a KB that already has the
    /// name is a [`ned_core::NedError::Config`] error.
    AddEntity {
        /// Unique canonical name, e.g. "Prism (surveillance program)".
        canonical_name: String,
        /// Coarse semantic class.
        kind: EntityKind,
    },
    /// Adds a directed link between two existing entities (by canonical
    /// name). Self-links and duplicates are ignored, like
    /// [`crate::links::LinkGraph::add_link`].
    AddLink {
        /// Canonical name of the source entity.
        src: String,
        /// Canonical name of the destination entity.
        dst: String,
    },
    /// Adds `count` observations of a keyphrase for an existing entity,
    /// interning the phrase if it is new.
    AddKeyphrase {
        /// Canonical name of the entity being described.
        entity: String,
        /// Keyphrase surface text (split on whitespace into keywords).
        surface: String,
        /// Observation count to add.
        count: u64,
    },
    /// Adjusts the observation count of an existing (entity, keyphrase)
    /// pair by a signed delta, saturating at zero. The phrase must already
    /// be in the entity's keyphrase set.
    ReweightKeyphrase {
        /// Canonical name of the entity.
        entity: String,
        /// Surface text of the already-interned phrase.
        surface: String,
        /// Signed count adjustment.
        delta: i64,
    },
    /// Adds a dictionary surface (alias) observation for an existing
    /// entity, like [`crate::builder::KbBuilder::add_name`].
    AddDictionarySurface {
        /// Canonical name of the entity the surface refers to.
        entity: String,
        /// The surface name observed referring to the entity.
        surface: String,
        /// Anchor count of the observation.
        count: u64,
    },
}

impl KbMutation {
    /// Stable label for logs and reports.
    pub fn kind_str(&self) -> &'static str {
        match self {
            KbMutation::AddEntity { .. } => "add_entity",
            KbMutation::AddLink { .. } => "add_link",
            KbMutation::AddKeyphrase { .. } => "add_keyphrase",
            KbMutation::ReweightKeyphrase { .. } => "reweight_keyphrase",
            KbMutation::AddDictionarySurface { .. } => "add_dictionary_surface",
        }
    }
}

/// Fieldless discriminant of [`WireMutation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum WireOp {
    /// [`KbMutation::AddEntity`].
    AddEntity,
    /// [`KbMutation::AddLink`].
    AddLink,
    /// [`KbMutation::AddKeyphrase`].
    AddKeyphrase,
    /// [`KbMutation::ReweightKeyphrase`].
    ReweightKeyphrase,
    /// [`KbMutation::AddDictionarySurface`].
    AddDictionarySurface,
}

/// Flat wire form of a [`KbMutation`], shaped for the vendored codec
/// derives (a struct of scalars/strings plus fieldless enums). Fields not
/// meaningful for an op carry their defaults and are ignored on decode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct WireMutation {
    op: WireOp,
    /// Canonical entity name (or link source).
    entity: String,
    /// Second name: link destination, keyphrase surface, or alias surface.
    other: String,
    /// Entity kind (AddEntity only).
    kind: EntityKind,
    /// Observation count (AddEntity/AddKeyphrase/AddDictionarySurface).
    count: u64,
    /// Signed adjustment (ReweightKeyphrase only).
    delta: i64,
}

impl From<&KbMutation> for WireMutation {
    fn from(m: &KbMutation) -> Self {
        let blank = WireMutation {
            op: WireOp::AddEntity,
            entity: String::new(),
            other: String::new(),
            kind: EntityKind::Other,
            count: 0,
            delta: 0,
        };
        match m {
            KbMutation::AddEntity { canonical_name, kind } => WireMutation {
                op: WireOp::AddEntity,
                entity: canonical_name.clone(),
                kind: *kind,
                ..blank
            },
            KbMutation::AddLink { src, dst } => WireMutation {
                op: WireOp::AddLink,
                entity: src.clone(),
                other: dst.clone(),
                ..blank
            },
            KbMutation::AddKeyphrase { entity, surface, count } => WireMutation {
                op: WireOp::AddKeyphrase,
                entity: entity.clone(),
                other: surface.clone(),
                count: *count,
                ..blank
            },
            KbMutation::ReweightKeyphrase { entity, surface, delta } => WireMutation {
                op: WireOp::ReweightKeyphrase,
                entity: entity.clone(),
                other: surface.clone(),
                delta: *delta,
                ..blank
            },
            KbMutation::AddDictionarySurface { entity, surface, count } => WireMutation {
                op: WireOp::AddDictionarySurface,
                entity: entity.clone(),
                other: surface.clone(),
                count: *count,
                ..blank
            },
        }
    }
}

impl From<WireMutation> for KbMutation {
    fn from(w: WireMutation) -> Self {
        match w.op {
            WireOp::AddEntity => {
                KbMutation::AddEntity { canonical_name: w.entity, kind: w.kind }
            }
            WireOp::AddLink => KbMutation::AddLink { src: w.entity, dst: w.other },
            WireOp::AddKeyphrase => {
                KbMutation::AddKeyphrase { entity: w.entity, surface: w.other, count: w.count }
            }
            WireOp::ReweightKeyphrase => KbMutation::ReweightKeyphrase {
                entity: w.entity,
                surface: w.other,
                delta: w.delta,
            },
            WireOp::AddDictionarySurface => KbMutation::AddDictionarySurface {
                entity: w.entity,
                surface: w.other,
                count: w.count,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{decode, encode};

    fn samples() -> Vec<KbMutation> {
        vec![
            KbMutation::AddEntity {
                canonical_name: "Prism (surveillance program)".into(),
                kind: EntityKind::Other,
            },
            KbMutation::AddLink { src: "Prism (surveillance program)".into(), dst: "NSA".into() },
            KbMutation::AddKeyphrase {
                entity: "Prism (surveillance program)".into(),
                surface: "mass surveillance".into(),
                count: 3,
            },
            KbMutation::ReweightKeyphrase {
                entity: "Prism (surveillance program)".into(),
                surface: "mass surveillance".into(),
                delta: -2,
            },
            KbMutation::AddDictionarySurface {
                entity: "Prism (surveillance program)".into(),
                surface: "PRISM".into(),
                count: 7,
            },
        ]
    }

    #[test]
    fn codec_roundtrip_preserves_every_variant() {
        for m in samples() {
            let bytes = encode(&WireMutation::from(&m)).unwrap();
            let wire: WireMutation = decode(&bytes).unwrap();
            assert_eq!(KbMutation::from(wire), m);
        }
    }

    #[test]
    fn kind_strings_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for m in samples() {
            assert!(seen.insert(m.kind_str()));
        }
    }
}
