//! Statistical keyterm weighting (Eqs. 3.1–3.5 and 4.1).
//!
//! Three weight families drive the similarity and relatedness measures:
//!
//! - **IDF** (Eq. 3.5): `idf(k) = log2(N / df(k))`, where for keyphrases
//!   `df` counts entities with the phrase in their keyphrase set and for
//!   keywords it counts entities with at least one keyphrase containing the
//!   token.
//! - **Entity–keyword NPMI** (Eqs. 3.1–3.3): occurrence is defined on the
//!   entity's *superdocument* — its own keyphrases plus the keyphrases of all
//!   entities linking to it. Under this model an entity occurs exactly once,
//!   so for a keyword `w` present in the superdocument of `e`,
//!   `npmi(e, w) = 1 − ln df_super(w) / ln N`; non-positive weights are
//!   discarded (§3.3.4).
//! - **Entity–keyphrase µ-MI** (Eq. 4.1): normalized mutual information
//!   `µ(E,T) = 2·(H(E) + H(T) − H(E,T)) / (H(E) + H(T))` over the binary
//!   occurrence variables of the same superdocument model.

use serde::{Deserialize, Serialize};

use crate::fx::FxHashSet;
use crate::ids::{EntityId, PhraseId, WordId};
use crate::keyphrase::KeyphraseStore;
use crate::links::LinkGraph;
use crate::vocab::PhraseInterner;

/// Precomputed weights for all entity–keyterm pairs in the knowledge base.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct WeightModel {
    n_entities: usize,
    /// Keyword IDF, indexed by `WordId`.
    word_idf: Vec<f64>,
    /// Keyphrase IDF, indexed by `PhraseId`.
    phrase_idf: Vec<f64>,
    /// Superdocument document frequency per keyword.
    word_super_df: Vec<u32>,
    /// Superdocument document frequency per keyphrase.
    phrase_super_df: Vec<u32>,
    /// Per entity: (word, npmi) for distinct words of its own keyphrases,
    /// sorted by word id; only strictly positive weights are kept.
    entity_word_npmi: Vec<Vec<(WordId, f64)>>,
    /// Per entity: (phrase, µ) for its own keyphrases, sorted by phrase id.
    entity_phrase_mi: Vec<Vec<(PhraseId, f64)>>,
}

impl WeightModel {
    /// Computes all weights from the keyphrase store and link graph.
    ///
    /// Cost is `O(Σ_e |superdoc(e)|)` time with transient per-entity hash
    /// sets; nothing quadratic in the number of entities.
    pub fn compute(
        keyphrases: &KeyphraseStore,
        links: &LinkGraph,
        phrases: &PhraseInterner,
        n_words: usize,
    ) -> Self {
        let n = keyphrases.len();
        let n_phrases = phrases.len();

        // Pass 1: direct document frequencies for IDF.
        let mut word_df = vec![0u32; n_words];
        let mut phrase_df = vec![0u32; n_phrases];
        let mut word_set: FxHashSet<WordId> = FxHashSet::default();
        for ei in 0..n {
            let e = EntityId::from_index(ei);
            word_set.clear();
            for ep in keyphrases.phrases(e) {
                phrase_df[ep.phrase.index()] += 1;
                for &w in phrases.words(ep.phrase) {
                    word_set.insert(w);
                }
            }
            for &w in &word_set {
                word_df[w.index()] += 1;
            }
        }

        // Pass 2: superdocument document frequencies.
        let mut word_super_df = vec![0u32; n_words];
        let mut phrase_super_df = vec![0u32; n_phrases];
        let mut phrase_set: FxHashSet<PhraseId> = FxHashSet::default();
        for ei in 0..n {
            let e = EntityId::from_index(ei);
            word_set.clear();
            phrase_set.clear();
            collect_superdoc(e, keyphrases, links, phrases, &mut word_set, &mut phrase_set);
            for &w in &word_set {
                word_super_df[w.index()] += 1;
            }
            for &p in &phrase_set {
                phrase_super_df[p.index()] += 1;
            }
        }

        let idf = |df: u32| -> f64 {
            if df == 0 || n == 0 {
                0.0
            } else {
                (n as f64 / df as f64).log2()
            }
        };
        let word_idf: Vec<f64> = word_df.iter().map(|&d| idf(d)).collect();
        let phrase_idf: Vec<f64> = phrase_df.iter().map(|&d| idf(d)).collect();

        // Pass 3: per-entity NPMI (keywords) and µ (keyphrases) over own
        // keyphrase terms. Own terms are always in the superdocument.
        let ln_n = (n as f64).ln();
        let mut entity_word_npmi = Vec::with_capacity(n);
        let mut entity_phrase_mi = Vec::with_capacity(n);
        for ei in 0..n {
            let e = EntityId::from_index(ei);
            word_set.clear();
            for ep in keyphrases.phrases(e) {
                for &w in phrases.words(ep.phrase) {
                    word_set.insert(w);
                }
            }
            let mut word_row: Vec<(WordId, f64)> = word_set
                .iter()
                .filter_map(|&w| {
                    let npmi = npmi_present(word_super_df[w.index()], n, ln_n);
                    (npmi > 0.0).then_some((w, npmi))
                })
                .collect();
            word_row.sort_unstable_by_key(|&(w, _)| w);
            entity_word_npmi.push(word_row);

            let mut phrase_row: Vec<(PhraseId, f64)> = keyphrases
                .phrases(e)
                .iter()
                .map(|ep| (ep.phrase, mu_present(phrase_super_df[ep.phrase.index()], n)))
                .collect();
            phrase_row.sort_unstable_by_key(|&(p, _)| p);
            entity_phrase_mi.push(phrase_row);
        }

        WeightModel {
            n_entities: n,
            word_idf,
            phrase_idf,
            word_super_df,
            phrase_super_df,
            entity_word_npmi,
            entity_phrase_mi,
        }
    }

    /// Number of entities the model was computed over.
    pub fn n_entities(&self) -> usize {
        self.n_entities
    }

    /// Keyword IDF (Eq. 3.5); 0 for never-observed words.
    pub fn word_idf(&self, w: WordId) -> f64 {
        self.word_idf.get(w.index()).copied().unwrap_or(0.0)
    }

    /// Keyphrase IDF (Eq. 3.5); 0 for never-observed phrases.
    pub fn phrase_idf(&self, p: PhraseId) -> f64 {
        self.phrase_idf.get(p.index()).copied().unwrap_or(0.0)
    }

    /// Superdocument document frequency of a keyword.
    pub fn word_super_df(&self, w: WordId) -> u32 {
        self.word_super_df.get(w.index()).copied().unwrap_or(0)
    }

    /// NPMI weight of keyword `w` with respect to entity `e` (Eq. 3.1);
    /// 0 when the word is not among the entity's keyphrase words or the
    /// weight was non-positive.
    pub fn keyword_npmi(&self, e: EntityId, w: WordId) -> f64 {
        let row = &self.entity_word_npmi[e.index()];
        row.binary_search_by_key(&w, |&(x, _)| x).map_or(0.0, |i| row[i].1)
    }

    /// All (word, npmi) pairs of an entity, sorted by word id.
    pub fn keyword_npmi_row(&self, e: EntityId) -> &[(WordId, f64)] {
        &self.entity_word_npmi[e.index()]
    }

    /// µ-MI weight of keyphrase `p` with respect to entity `e` (Eq. 4.1);
    /// 0 when the phrase is not in the entity's keyphrase set.
    pub fn phrase_mi(&self, e: EntityId, p: PhraseId) -> f64 {
        let row = &self.entity_phrase_mi[e.index()];
        row.binary_search_by_key(&p, |&(x, _)| x).map_or(0.0, |i| row[i].1)
    }

    /// All (phrase, µ) pairs of an entity, sorted by phrase id.
    pub fn phrase_mi_row(&self, e: EntityId) -> &[(PhraseId, f64)] {
        &self.entity_phrase_mi[e.index()]
    }

    /// Approximate heap footprint of the model in bytes (array payloads
    /// plus the per-row `Vec` headers of the sparse weight rows).
    pub fn approx_heap_bytes(&self) -> usize {
        use std::mem::size_of;
        let row_bytes = |rows: &[Vec<(WordId, f64)>]| -> usize {
            rows.iter()
                .map(|r| r.len() * size_of::<(WordId, f64)>() + size_of::<Vec<(WordId, f64)>>())
                .sum()
        };
        let phrase_row_bytes = |rows: &[Vec<(PhraseId, f64)>]| -> usize {
            rows.iter()
                .map(|r| {
                    r.len() * size_of::<(PhraseId, f64)>() + size_of::<Vec<(PhraseId, f64)>>()
                })
                .sum()
        };
        self.word_idf.len() * size_of::<f64>()
            + self.phrase_idf.len() * size_of::<f64>()
            + self.word_super_df.len() * size_of::<u32>()
            + self.phrase_super_df.len() * size_of::<u32>()
            + row_bytes(&self.entity_word_npmi)
            + phrase_row_bytes(&self.entity_phrase_mi)
    }
}

/// Collects the distinct words and phrases of an entity's superdocument.
fn collect_superdoc(
    e: EntityId,
    keyphrases: &KeyphraseStore,
    links: &LinkGraph,
    phrases: &PhraseInterner,
    words_out: &mut FxHashSet<WordId>,
    phrases_out: &mut FxHashSet<PhraseId>,
) {
    let mut add = |entity: EntityId| {
        for ep in keyphrases.phrases(entity) {
            if phrases_out.insert(ep.phrase) {
                for &w in phrases.words(ep.phrase) {
                    words_out.insert(w);
                }
            } else {
                // Phrase already seen: its words are already inserted.
            }
        }
    };
    add(e);
    for &src in links.inlinks(e) {
        add(src);
    }
}

/// NPMI for a term that *is* present in the entity's superdocument:
/// `1 − ln(df_super) / ln(N)`.
fn npmi_present(df_super: u32, n: usize, ln_n: f64) -> f64 {
    if n <= 1 || df_super == 0 {
        return 0.0;
    }
    1.0 - (df_super as f64).ln() / ln_n
}

/// Normalized mutual information µ (Eq. 4.1) for a term present in the
/// entity's superdocument, under the one-occurrence-per-entity model:
/// `p(E) = 1/N`, `p(T) = df/N`, `p(E,T) = 1/N`.
fn mu_present(df_super: u32, n: usize) -> f64 {
    if n <= 1 || df_super == 0 {
        return 0.0;
    }
    let n = n as f64;
    let p_e = 1.0 / n;
    let p_t = df_super as f64 / n;
    let h_e = binary_entropy(p_e);
    let h_t = binary_entropy(p_t);
    if h_e + h_t <= 0.0 {
        return 0.0;
    }
    // Joint distribution cells: (E=1,T=1)=1/N, (E=1,T=0)=0,
    // (E=0,T=1)=(df−1)/N, (E=0,T=0)=(N−df)/N.
    let p11 = p_e;
    let p01 = (df_super as f64 - 1.0) / n;
    let p00 = (n - df_super as f64) / n;
    let h_joint = -(plogp(p11) + plogp(p01) + plogp(p00));
    let mi = (h_e + h_t - h_joint).max(0.0);
    (2.0 * mi / (h_e + h_t)).clamp(0.0, 1.0)
}

fn binary_entropy(p: f64) -> f64 {
    -(plogp(p) + plogp(1.0 - p))
}

fn plogp(p: f64) -> f64 {
    if p <= 0.0 {
        0.0
    } else {
        p * p.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::WordInterner;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    /// Builds a 3-entity fixture: e0 and e1 share the phrase "hard rock";
    /// e2 has the unique phrase "folk singer"; e2 links to e0.
    fn fixture() -> (KeyphraseStore, LinkGraph, PhraseInterner, WordInterner) {
        let mut words = WordInterner::new();
        let mut phrases = PhraseInterner::new();
        let hard_rock = phrases.intern("hard rock", &mut words);
        let folk = phrases.intern("folk singer", &mut words);
        let guitar = phrases.intern("electric guitar", &mut words);
        let mut kp = KeyphraseStore::new(3);
        kp.add(e(0), hard_rock, 2);
        kp.add(e(0), guitar, 1);
        kp.add(e(1), hard_rock, 1);
        kp.add(e(2), folk, 1);
        kp.finalize();
        let mut links = LinkGraph::new(3);
        links.add_link(e(2), e(0));
        links.finalize();
        (kp, links, phrases, words)
    }

    fn model() -> (WeightModel, PhraseInterner, WordInterner) {
        let (kp, links, phrases, words) = fixture();
        let m = WeightModel::compute(&kp, &links, &phrases, words.len());
        (m, phrases, words)
    }

    #[test]
    fn idf_reflects_document_frequency() {
        let (m, phrases, words) = model();
        let hard_rock = phrases.get("hard rock", &words).unwrap();
        let folk = phrases.get("folk singer", &words).unwrap();
        // df(hard rock) = 2 of 3 entities; df(folk singer) = 1 of 3.
        assert!((m.phrase_idf(hard_rock) - (3.0f64 / 2.0).log2()).abs() < 1e-12);
        assert!((m.phrase_idf(folk) - 3.0f64.log2()).abs() < 1e-12);
        assert!(m.phrase_idf(folk) > m.phrase_idf(hard_rock));
    }

    #[test]
    fn rarer_words_get_higher_npmi() {
        let (m, _, words) = model();
        let rock = words.get("rock").unwrap();
        let folk = words.get("folk").unwrap();
        // "rock" is in superdocs of e0, e1; "folk" in superdocs of e2 and e0
        // (e2 links to e0, so e0's superdoc includes e2's phrases).
        let npmi_rock = m.keyword_npmi(e(0), rock);
        assert!(npmi_rock > 0.0);
        let npmi_folk_e2 = m.keyword_npmi(e(2), folk);
        assert!(npmi_folk_e2 > 0.0);
        // Word absent from entity's own keyphrases has weight 0.
        assert_eq!(m.keyword_npmi(e(2), rock), 0.0);
    }

    #[test]
    fn npmi_in_unit_interval() {
        let (m, _, _) = model();
        for ei in 0..3 {
            for &(_, v) in m.keyword_npmi_row(e(ei)) {
                assert!(v > 0.0 && v <= 1.0, "npmi {v} out of range");
            }
        }
    }

    #[test]
    fn mu_in_unit_interval_and_rarer_is_higher() {
        let (m, phrases, words) = model();
        let hard_rock = phrases.get("hard rock", &words).unwrap();
        let folk = phrases.get("folk singer", &words).unwrap();
        let mu_common = m.phrase_mi(e(0), hard_rock);
        let mu_rare = m.phrase_mi(e(2), folk);
        assert!(mu_common > 0.0 && mu_common <= 1.0);
        assert!(mu_rare > 0.0 && mu_rare <= 1.0);
        assert!(mu_rare >= mu_common, "rare {mu_rare} vs common {mu_common}");
    }

    #[test]
    fn ubiquitous_term_gets_zero_npmi() {
        // A word present in every superdocument carries no information.
        let mut words = WordInterner::new();
        let mut phrases = PhraseInterner::new();
        let p0 = phrases.intern("common word", &mut words);
        let mut kp = KeyphraseStore::new(2);
        kp.add(e(0), p0, 1);
        kp.add(e(1), p0, 1);
        kp.finalize();
        let mut links = LinkGraph::new(2);
        links.finalize();
        let m = WeightModel::compute(&kp, &links, &phrases, words.len());
        let common = words.get("common").unwrap();
        // df_super = N → npmi = 0 → discarded.
        assert_eq!(m.keyword_npmi(e(0), common), 0.0);
        assert!(m.keyword_npmi_row(e(0)).is_empty());
    }

    #[test]
    fn empty_kb_is_well_defined() {
        let kp = KeyphraseStore::new(0);
        let links = LinkGraph::new(0);
        let phrases = PhraseInterner::new();
        let m = WeightModel::compute(&kp, &links, &phrases, 0);
        assert_eq!(m.n_entities(), 0);
        assert_eq!(m.word_idf(WordId(0)), 0.0);
    }

    #[test]
    fn mu_handles_full_df() {
        // df_super == N must give µ = 0, not NaN.
        assert_eq!(mu_present(2, 2), 0.0);
        assert!(mu_present(1, 2) > 0.0);
    }
}
