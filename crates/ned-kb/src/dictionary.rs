//! The name dictionary D ⊂ (N × E) of §2.2.1.
//!
//! For each surface name the dictionary stores the candidate entities it can
//! refer to, together with anchor counts: how often the name was observed
//! linking to that entity. Anchor counts induce the popularity prior of
//! §3.3.3. Lookup follows the case rules of §3.3.2 via
//! [`ned_text::normalize::match_key`].

use serde::{Deserialize, Serialize};

use ned_text::normalize::{match_key, squash_whitespace};

use crate::fx::FxHashMap;
use crate::ids::EntityId;

/// A candidate entity for a name, with its anchor count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The candidate entity.
    pub entity: EntityId,
    /// How often the name was observed referring to this entity.
    pub count: u64,
}

/// Name → candidate-set dictionary with popularity priors.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Dictionary {
    /// Keyed by `match_key` of the squashed surface form.
    entries: FxHashMap<String, Vec<Candidate>>,
    /// Total number of (name, entity) pairs.
    pair_count: usize,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or increments) a name → entity observation.
    pub fn add(&mut self, name: &str, entity: EntityId, count: u64) {
        let key = match_key(&squash_whitespace(name));
        let list = self.entries.entry(key).or_default();
        match list.iter_mut().find(|c| c.entity == entity) {
            Some(c) => c.count += count,
            None => {
                list.push(Candidate { entity, count });
                self.pair_count += 1;
            }
        }
    }

    /// Candidate entities for a mention surface, or an empty slice when the
    /// name is unknown (the mention is then trivially out-of-KB, §2.2.1).
    pub fn candidates(&self, surface: &str) -> &[Candidate] {
        let key = match_key(&squash_whitespace(surface));
        self.entries.get(&key).map_or(&[], |v| v.as_slice())
    }

    /// Popularity prior p(e | name): the candidate's share of the name's
    /// total anchor count (§3.3.3). Returns 0 if the pair is unknown.
    pub fn prior(&self, surface: &str, entity: EntityId) -> f64 {
        let cands = self.candidates(surface);
        let total: u64 = cands.iter().map(|c| c.count).sum();
        if total == 0 {
            return 0.0;
        }
        cands
            .iter()
            .find(|c| c.entity == entity)
            .map_or(0.0, |c| c.count as f64 / total as f64)
    }

    /// Full prior distribution over the candidates of a name, in candidate
    /// order. Empty when the name is unknown.
    pub fn prior_distribution(&self, surface: &str) -> Vec<(EntityId, f64)> {
        let cands = self.candidates(surface);
        let total: u64 = cands.iter().map(|c| c.count).sum();
        if total == 0 {
            return Vec::new();
        }
        cands.iter().map(|c| (c.entity, c.count as f64 / total as f64)).collect()
    }

    /// Number of distinct names.
    pub fn name_count(&self) -> usize {
        self.entries.len()
    }

    /// Number of (name, entity) pairs.
    pub fn pair_count(&self) -> usize {
        self.pair_count
    }

    /// Iterates over all (name-key, candidates) entries in ascending key
    /// order, so downstream consumers (snapshot writer, index builder,
    /// autocomplete) observe the same sequence on every run regardless of
    /// the hasher's bucket layout.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[Candidate])> {
        let mut keys: Vec<&String> = self.entries.keys().collect();
        keys.sort_unstable();
        keys.into_iter().filter_map(|k| {
            self.entries.get(k).map(|v| (k.as_str(), v.as_slice()))
        })
    }

    /// Inserts a full candidate row under an **already-normalized** key
    /// (the thaw path of [`crate::delta`]): frozen dictionary keys went
    /// through `match_key` once at build time and must not be re-normalized.
    pub(crate) fn insert_row(&mut self, key: String, cands: Vec<Candidate>) {
        self.pair_count += cands.len();
        self.entries.insert(key, cands);
    }

    /// Looks up a row by its **already-normalized** key, without
    /// re-applying the match-key rules (overlay reads in [`crate::delta`]).
    pub(crate) fn row(&self, key: &str) -> Option<&[Candidate]> {
        self.entries.get(key).map(Vec::as_slice)
    }

    /// Sorts every candidate list by descending count (stable order for
    /// deterministic iteration). Called once at build time.
    pub(crate) fn finalize(&mut self) {
        for list in self.entries.values_mut() {
            list.sort_by(|a, b| b.count.cmp(&a.count).then(a.entity.cmp(&b.entity)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn add_and_lookup() {
        let mut d = Dictionary::new();
        d.add("Kashmir", e(0), 50);
        d.add("Kashmir", e(1), 3);
        let c = d.candidates("Kashmir");
        assert_eq!(c.len(), 2);
        assert_eq!(d.pair_count(), 2);
    }

    #[test]
    fn lookup_follows_case_rules() {
        let mut d = Dictionary::new();
        d.add("Apple", e(0), 10);
        d.add("US", e(1), 10);
        // Long names: case-insensitive.
        assert_eq!(d.candidates("APPLE").len(), 1);
        assert_eq!(d.candidates("apple").len(), 1);
        // Short names: case-sensitive.
        assert_eq!(d.candidates("US").len(), 1);
        assert!(d.candidates("us").is_empty());
    }

    #[test]
    fn duplicate_adds_accumulate() {
        let mut d = Dictionary::new();
        d.add("Page", e(0), 5);
        d.add("Page", e(0), 7);
        assert_eq!(d.candidates("Page")[0].count, 12);
        assert_eq!(d.pair_count(), 1);
    }

    #[test]
    fn prior_is_normalized() {
        let mut d = Dictionary::new();
        d.add("Kashmir", e(0), 90);
        d.add("Kashmir", e(1), 10);
        assert!((d.prior("Kashmir", e(0)) - 0.9).abs() < 1e-12);
        assert!((d.prior("Kashmir", e(1)) - 0.1).abs() < 1e-12);
        assert_eq!(d.prior("Kashmir", e(2)), 0.0);
        assert_eq!(d.prior("Unknown", e(0)), 0.0);
        let dist = d.prior_distribution("Kashmir");
        let sum: f64 = dist.iter().map(|(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn whitespace_is_squashed() {
        let mut d = Dictionary::new();
        d.add("New  York", e(0), 1);
        assert_eq!(d.candidates("New York").len(), 1);
    }

    #[test]
    fn finalize_sorts_by_count_desc() {
        let mut d = Dictionary::new();
        d.add("Page", e(0), 1);
        d.add("Page", e(1), 100);
        d.finalize();
        assert_eq!(d.candidates("Page")[0].entity, e(1));
    }
}
