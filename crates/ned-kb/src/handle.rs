//! Epoch-based publication of KB versions to concurrent readers.
//!
//! The incremental KB changes over time — a promotion run builds a new
//! [`DeltaKb`], compaction produces a fresh [`FrozenKb`] — but annotation
//! workers must never block on those writes, and an in-flight request must
//! see one consistent KB from start to finish. [`KbHandle`] provides that:
//! an atomically swappable `Arc` (hand-rolled arc-swap: a generation
//! counter + a briefly-held lock on the *writer* side only), where readers
//! pin an epoch by cloning the `Arc` and keep it for as long as they like.
//!
//! The fast path for readers is [`KbReader`]: it caches the last `Arc` and
//! revalidates with a single atomic load of the generation counter —
//! lock-free and wait-free when nothing changed, which is every request
//! except the first after a swap. Even on a swap, [`KbReader::refresh`]
//! uses `try_read` and simply keeps serving its pinned epoch if the writer
//! happens to hold the lock — readers never wait.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use ned_obs::{names, Metrics};

use crate::delta::DeltaKb;
use crate::dictionary::Candidate;
use crate::entity::Entity;
use crate::frozen::FrozenKb;
use crate::ids::{EntityId, PhraseId, WordId};
use crate::keyphrase::EntityPhrase;
use crate::kp_index::KeyphraseIndex;
use crate::phrase_runs::PhraseRuns;
use crate::view::{DictView, KbView, LinksView};
use crate::weights::WeightModel;

/// One published version of the knowledge base: either a plain frozen
/// snapshot or a frozen base with a delta overlay.
#[derive(Debug, Clone)]
pub enum KbEpoch {
    /// A compacted (or initial) frozen KB.
    Frozen(Arc<FrozenKb>),
    /// A frozen base plus copy-on-write overlay.
    Delta(Arc<DeltaKb>),
}

macro_rules! on_epoch {
    ($self_:expr, $kb:ident => $body:expr) => {
        match $self_ {
            KbEpoch::Frozen($kb) => $body,
            KbEpoch::Delta($kb) => $body,
        }
    };
}

impl KbEpoch {
    /// Entities the epoch adds over its frozen base (0 for plain frozen).
    pub fn delta_entity_count(&self) -> usize {
        match self {
            KbEpoch::Frozen(_) => 0,
            KbEpoch::Delta(d) => d.delta_entity_count(),
        }
    }
}

impl KbView for KbEpoch {
    fn entity_count(&self) -> usize {
        on_epoch!(self, kb => kb.entity_count())
    }
    fn entity(&self, e: EntityId) -> &Entity {
        on_epoch!(self, kb => kb.entity(e))
    }
    fn entity_by_name(&self, canonical_name: &str) -> Option<EntityId> {
        on_epoch!(self, kb => kb.entity_by_name(canonical_name))
    }
    fn candidates(&self, surface: &str) -> &[Candidate] {
        on_epoch!(self, kb => kb.candidates(surface))
    }
    fn prior(&self, surface: &str, e: EntityId) -> f64 {
        on_epoch!(self, kb => kb.prior(surface, e))
    }
    fn dictionary(&self) -> DictView<'_> {
        match self {
            KbEpoch::Frozen(kb) => KbView::dictionary(&**kb),
            KbEpoch::Delta(kb) => KbView::dictionary(&**kb),
        }
    }
    fn links(&self) -> LinksView<'_> {
        match self {
            KbEpoch::Frozen(kb) => KbView::links(&**kb),
            KbEpoch::Delta(kb) => KbView::links(&**kb),
        }
    }
    fn keyphrases(&self, e: EntityId) -> &[EntityPhrase] {
        on_epoch!(self, kb => kb.keyphrases(e))
    }
    fn keyphrase_index(&self) -> &KeyphraseIndex {
        on_epoch!(self, kb => kb.keyphrase_index())
    }
    fn phrase_words(&self, p: PhraseId) -> &[WordId] {
        on_epoch!(self, kb => kb.phrase_words(p))
    }
    fn phrase_surface(&self, p: PhraseId) -> &str {
        on_epoch!(self, kb => kb.phrase_surface(p))
    }
    fn word_text(&self, w: WordId) -> &str {
        on_epoch!(self, kb => kb.word_text(w))
    }
    fn word_id(&self, text: &str) -> Option<WordId> {
        on_epoch!(self, kb => kb.word_id(text))
    }
    fn word_count(&self) -> usize {
        on_epoch!(self, kb => kb.word_count())
    }
    fn phrase_count(&self) -> usize {
        on_epoch!(self, kb => kb.phrase_count())
    }
    fn weights(&self) -> &WeightModel {
        on_epoch!(self, kb => kb.weights())
    }
    fn phrase_runs(&self) -> &PhraseRuns {
        on_epoch!(self, kb => kb.phrase_runs())
    }
}

/// Atomically swappable handle on the current KB epoch.
///
/// Writers call [`KbHandle::swap`] to publish a new epoch; readers call
/// [`KbHandle::current`] (or keep a [`KbReader`]) to pin one. A pinned
/// epoch stays fully usable after any number of swaps — dropping the last
/// `Arc` frees it.
#[derive(Debug)]
pub struct KbHandle {
    current: RwLock<Arc<KbEpoch>>,
    generation: AtomicU64,
    metrics: Metrics,
}

impl KbHandle {
    /// Creates a handle publishing `epoch` as generation 0.
    pub fn new(epoch: KbEpoch) -> Self {
        Self::observed(epoch, &Metrics::disabled())
    }

    /// [`KbHandle::new`], metered: [`KbHandle::swap`] bumps the
    /// `kb_epoch_swaps` counter.
    pub fn observed(epoch: KbEpoch, metrics: &Metrics) -> Self {
        KbHandle {
            current: RwLock::new(Arc::new(epoch)),
            generation: AtomicU64::new(0),
            metrics: metrics.clone(),
        }
    }

    /// The current generation number (bumped on every swap).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Pins the current epoch: returns its generation and a clone of the
    /// `Arc`. Briefly takes the read lock (writers hold it only for the
    /// pointer store, so this never waits on KB construction).
    pub fn current(&self) -> (u64, Arc<KbEpoch>) {
        let guard = self.current.read().unwrap_or_else(|e| e.into_inner());
        (self.generation.load(Ordering::Acquire), Arc::clone(&guard))
    }

    /// Non-blocking pin attempt: `None` only while a writer holds the lock
    /// for its pointer store (a few instructions).
    pub fn try_current(&self) -> Option<(u64, Arc<KbEpoch>)> {
        let guard = self.current.try_read().ok()?;
        Some((self.generation.load(Ordering::Acquire), Arc::clone(&guard)))
    }

    /// Publishes a new epoch, bumping the generation. Readers holding the
    /// old epoch keep it; new pins observe the new one. Returns the new
    /// generation.
    pub fn swap(&self, epoch: KbEpoch) -> u64 {
        let next = Arc::new(epoch);
        {
            let mut guard = self.current.write().unwrap_or_else(|e| e.into_inner());
            *guard = next;
        }
        // Bump *after* the store: a reader that sees the new generation is
        // guaranteed to load the new epoch on its next (re-)pin.
        let generation = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        self.metrics.counter(names::KB_EPOCH_SWAPS).inc();
        generation
    }
}

/// Per-worker cached view of a [`KbHandle`].
///
/// Holds the last pinned epoch; [`KbReader::refresh`] revalidates with one
/// atomic load and only touches the lock (non-blocking `try_read`) when
/// the generation moved. Annotation workers call `refresh` between
/// requests, so a request in flight never changes KB mid-stream.
#[derive(Debug, Clone)]
pub struct KbReader {
    handle: Arc<KbHandle>,
    generation: u64,
    epoch: Arc<KbEpoch>,
}

impl KbReader {
    /// Pins the handle's current epoch.
    pub fn new(handle: Arc<KbHandle>) -> Self {
        let (generation, epoch) = handle.current();
        KbReader { handle, generation, epoch }
    }

    /// The pinned epoch.
    pub fn epoch(&self) -> &Arc<KbEpoch> {
        &self.epoch
    }

    /// Generation of the pinned epoch.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Re-pins if the handle moved on; returns true when the epoch
    /// changed. Never blocks: if the writer is mid-swap, the reader keeps
    /// its current epoch and tries again on the next call.
    pub fn refresh(&mut self) -> bool {
        if self.handle.generation() == self.generation {
            return false;
        }
        match self.handle.try_current() {
            Some((generation, epoch)) => {
                self.generation = generation;
                self.epoch = epoch;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::tests::example_kb;
    use crate::entity::EntityKind;
    use crate::mutation::KbMutation;

    fn frozen() -> Arc<FrozenKb> {
        Arc::new(FrozenKb::freeze(&example_kb()))
    }

    #[test]
    fn swap_publishes_new_epoch_and_keeps_old_pins_alive() {
        let base = frozen();
        let handle = Arc::new(KbHandle::new(KbEpoch::Frozen(Arc::clone(&base))));
        let (gen0, pinned) = handle.current();
        assert_eq!(gen0, 0);
        let n0 = pinned.entity_count();

        let delta = Arc::new(
            DeltaKb::build(
                Arc::clone(&base),
                vec![KbMutation::AddEntity {
                    canonical_name: "Black Dog (song)".into(),
                    kind: EntityKind::Work,
                }],
            )
            .unwrap(),
        );
        let gen1 = handle.swap(KbEpoch::Delta(delta));
        assert_eq!(gen1, 1);
        // The old pin still reads the old KB.
        assert_eq!(pinned.entity_count(), n0);
        let (gen_now, now) = handle.current();
        assert_eq!(gen_now, 1);
        assert_eq!(now.entity_count(), n0 + 1);
        assert_eq!(now.delta_entity_count(), 1);
    }

    #[test]
    fn reader_refreshes_only_on_generation_change() {
        let base = frozen();
        let handle = Arc::new(KbHandle::new(KbEpoch::Frozen(Arc::clone(&base))));
        let mut reader = KbReader::new(Arc::clone(&handle));
        assert!(!reader.refresh());
        let n0 = reader.epoch().entity_count();
        handle.swap(KbEpoch::Frozen(Arc::clone(&base)));
        assert!(reader.refresh());
        assert_eq!(reader.generation(), 1);
        assert_eq!(reader.epoch().entity_count(), n0);
        assert!(!reader.refresh());
    }

    #[test]
    fn swaps_are_counted() {
        let metrics = Metrics::new();
        let handle = KbHandle::observed(KbEpoch::Frozen(frozen()), &metrics);
        handle.swap(KbEpoch::Frozen(frozen()));
        handle.swap(KbEpoch::Frozen(frozen()));
        assert_eq!(metrics.counter_value(names::KB_EPOCH_SWAPS), 2);
        assert_eq!(handle.generation(), 2);
    }

    #[test]
    fn epoch_implements_kb_view_transparently() {
        let base = frozen();
        let epoch = KbEpoch::Frozen(Arc::clone(&base));
        assert_eq!(epoch.entity_count(), base.entity_count());
        let e = base.entity_by_name("Jimmy Page").unwrap();
        assert_eq!(epoch.entity(e), base.entity(e));
        assert_eq!(epoch.candidates("Kashmir").len(), base.candidates("Kashmir").len());
        assert_eq!(epoch.dictionary().name_count(), base.dictionary().name_count());
        assert_eq!(epoch.links().edge_count(), base.links().edge_count());
    }
}
