//! Per-entity keyphrase store.
//!
//! Each entity is described by a set of salient keyphrases KP(e) with
//! occurrence counts (§3.3.4, §4.3.1). In the original system the phrases
//! come from link-anchor texts, category names, and citation titles of the
//! entity's Wikipedia article; here they are supplied by the builder (the
//! synthetic generator or harvested phrases).

use serde::{Deserialize, Serialize};

use crate::ids::{EntityId, PhraseId};

/// A keyphrase of an entity, with its observation count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntityPhrase {
    /// Interned phrase id.
    pub phrase: PhraseId,
    /// How often the phrase was observed with the entity.
    pub count: u64,
}

/// Keyphrase sets for all entities.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct KeyphraseStore {
    per_entity: Vec<Vec<EntityPhrase>>,
    total_phrase_observations: u64,
}

impl KeyphraseStore {
    /// Creates a store for `n` entities.
    pub fn new(n: usize) -> Self {
        KeyphraseStore { per_entity: vec![Vec::new(); n], total_phrase_observations: 0 }
    }

    /// Number of entities covered.
    pub fn len(&self) -> usize {
        self.per_entity.len()
    }

    /// True if the store covers no entities.
    pub fn is_empty(&self) -> bool {
        self.per_entity.is_empty()
    }

    /// Adds `count` observations of `phrase` for `entity`.
    pub fn add(&mut self, entity: EntityId, phrase: PhraseId, count: u64) {
        let list = &mut self.per_entity[entity.index()];
        match list.iter_mut().find(|p| p.phrase == phrase) {
            Some(p) => p.count += count,
            None => list.push(EntityPhrase { phrase, count }),
        }
        self.total_phrase_observations += count;
    }

    /// The keyphrase set KP(e) if `entity` is in range, sorted by phrase
    /// id after [`Self::finalize`].
    pub fn try_phrases(&self, entity: EntityId) -> Option<&[EntityPhrase]> {
        self.per_entity.get(entity.index()).map(Vec::as_slice)
    }

    /// The keyphrase set KP(e), sorted by phrase id after [`Self::finalize`].
    /// An out-of-range entity reads as an empty set (the read path never
    /// panics; ids are validated where they are minted).
    pub fn phrases(&self, entity: EntityId) -> &[EntityPhrase] {
        self.try_phrases(entity).unwrap_or(&[])
    }

    /// Number of distinct keyphrases of `entity`.
    pub fn phrase_count(&self, entity: EntityId) -> usize {
        self.per_entity[entity.index()].len()
    }

    /// True if `entity` has `phrase` in its keyphrase set (requires
    /// [`Self::finalize`] to have run).
    pub fn has_phrase(&self, entity: EntityId, phrase: PhraseId) -> bool {
        self.per_entity[entity.index()].binary_search_by_key(&phrase, |p| p.phrase).is_ok()
    }

    /// Total phrase observations across all entities.
    pub fn total_observations(&self) -> u64 {
        self.total_phrase_observations
    }

    /// Sorts per-entity phrase lists by phrase id for binary search.
    pub fn finalize(&mut self) {
        for list in &mut self.per_entity {
            list.sort_unstable_by_key(|p| p.phrase);
        }
    }

    /// Reconstructs a store from per-entity rows in entity-id order (the
    /// thaw path of [`crate::delta`]).
    pub(crate) fn from_rows(per_entity: Vec<Vec<EntityPhrase>>, total: u64) -> Self {
        KeyphraseStore { per_entity, total_phrase_observations: total }
    }

    /// Extends the store to cover `n` entities (newly promoted entities
    /// start with no keyphrases).
    pub(crate) fn grow_to(&mut self, n: usize) {
        if n > self.per_entity.len() {
            self.per_entity.resize(n, Vec::new());
        }
    }

    /// Adjusts the count of an existing (entity, phrase) pair by `delta`,
    /// saturating at zero, keeping the store total consistent. Returns the
    /// new count, or `None` if the pair is absent.
    pub(crate) fn reweight(
        &mut self,
        entity: EntityId,
        phrase: PhraseId,
        delta: i64,
    ) -> Option<u64> {
        let row = self.per_entity.get_mut(entity.index())?;
        let slot = row.iter_mut().find(|p| p.phrase == phrase)?;
        let old = slot.count;
        let new = if delta >= 0 {
            old.saturating_add(delta as u64)
        } else {
            old.saturating_sub(delta.unsigned_abs())
        };
        slot.count = new;
        self.total_phrase_observations =
            self.total_phrase_observations - old + new;
        Some(new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }
    fn p(i: u32) -> PhraseId {
        PhraseId(i)
    }

    #[test]
    fn add_and_query() {
        let mut s = KeyphraseStore::new(2);
        s.add(e(0), p(10), 3);
        s.add(e(0), p(11), 1);
        s.add(e(1), p(10), 2);
        s.finalize();
        assert_eq!(s.phrase_count(e(0)), 2);
        assert!(s.has_phrase(e(0), p(10)));
        assert!(!s.has_phrase(e(1), p(11)));
        assert_eq!(s.total_observations(), 6);
    }

    #[test]
    fn duplicate_adds_accumulate() {
        let mut s = KeyphraseStore::new(1);
        s.add(e(0), p(5), 2);
        s.add(e(0), p(5), 3);
        assert_eq!(s.phrase_count(e(0)), 1);
        assert_eq!(s.phrases(e(0))[0].count, 5);
    }

    #[test]
    fn finalize_sorts_by_phrase_id() {
        let mut s = KeyphraseStore::new(1);
        s.add(e(0), p(9), 1);
        s.add(e(0), p(2), 1);
        s.add(e(0), p(5), 1);
        s.finalize();
        let ids: Vec<u32> = s.phrases(e(0)).iter().map(|x| x.phrase.0).collect();
        assert_eq!(ids, vec![2, 5, 9]);
    }
}
