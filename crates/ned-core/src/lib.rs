#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! Fault-tolerance substrate shared by every crate in the workspace.
//!
//! The dissertation builds robustness into the *method* (the prior test ρ
//! and coherence test λ selectively disable unreliable signals); this crate
//! builds robustness into the *system*: a typed error taxonomy ([`NedError`])
//! replacing panics on IO/lookup/config paths, the [`DegradationLevel`]
//! ladder the disambiguator reports when it has to fall back, and helpers to
//! capture panics from isolated per-document work items.

pub mod det;
pub mod serve;

pub use serve::{RequestId, ServeError, ServeRequest, ServeResponse, ShedReason};

use std::fmt;
use std::io;

/// Structured decode failures of a knowledge-base snapshot.
///
/// Every way a snapshot byte stream can be unusable gets its own variant so
/// operators can distinguish "wrong file" from "torn download" from "written
/// by a newer binary".
#[derive(Debug)]
pub enum SnapshotError {
    /// The stream does not start with the snapshot magic bytes.
    BadMagic,
    /// The header's format version is not supported by this binary.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Version this binary reads and writes.
        supported: u16,
    },
    /// The stream ended before the declared body length.
    Truncated {
        /// Bytes the header promised.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The body checksum does not match the header checksum.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes actually read.
        actual: u64,
    },
    /// The body passed the checksum but failed to decode (version-skewed
    /// writer or a bug; with a valid checksum this should be unreachable).
    Codec(String),
    /// A v3 section block ended before its declared body length.
    SectionTruncated {
        /// Which section the frame claimed to carry.
        section: &'static str,
        /// Bytes the section header promised.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// A v3 section body does not match its recorded checksum.
    SectionChecksumMismatch {
        /// Which section failed validation.
        section: &'static str,
        /// Checksum recorded in the section header.
        expected: u64,
        /// Checksum of the bytes actually read.
        actual: u64,
    },
    /// A v3 frame carried a section tag this binary does not know.
    UnknownSection {
        /// The unrecognized tag byte.
        tag: u8,
    },
    /// A v3 stream ended without delivering a required section.
    MissingSection {
        /// The section that never arrived.
        section: &'static str,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a knowledge-base snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot format version {found} (this binary supports {supported})"
            ),
            SnapshotError::Truncated { expected, actual } => {
                write!(f, "truncated snapshot: header promised {expected} bytes, got {actual}")
            }
            SnapshotError::ChecksumMismatch { expected, actual } => write!(
                f,
                "snapshot checksum mismatch: header {expected:#018x}, body {actual:#018x}"
            ),
            SnapshotError::Codec(msg) => write!(f, "snapshot body failed to decode: {msg}"),
            SnapshotError::SectionTruncated { section, expected, actual } => write!(
                f,
                "truncated snapshot section {section:?}: frame promised {expected} bytes, \
                 got {actual}"
            ),
            SnapshotError::SectionChecksumMismatch { section, expected, actual } => write!(
                f,
                "snapshot section {section:?} checksum mismatch: frame {expected:#018x}, \
                 body {actual:#018x}"
            ),
            SnapshotError::UnknownSection { tag } => {
                write!(f, "unknown snapshot section tag {tag:#04x}")
            }
            SnapshotError::MissingSection { section } => {
                write!(f, "snapshot ended without required section {section:?}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Structured decode failures of a knowledge-base write-ahead log.
///
/// The WAL shares the snapshot's framing discipline (length-prefixed frames
/// with FNV-1a checksums), so it shares the same taxonomy: "wrong file",
/// "torn write", and "flipped bit" are distinct operator-facing conditions.
/// A torn *tail* is not an error — replay recovers the valid prefix — so
/// the variants here cover only the faults no recovery can repair.
#[derive(Debug)]
pub enum WalError {
    /// The stream does not start with the WAL magic bytes.
    BadMagic,
    /// The header's format version is not supported by this binary.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Version this binary reads and writes.
        supported: u16,
    },
    /// A record body does not match its frame checksum (bit rot or a torn
    /// write *inside* the file rather than at its tail).
    ChecksumMismatch {
        /// Byte offset of the corrupt frame's prelude.
        offset: u64,
        /// Checksum recorded in the frame prelude.
        expected: u64,
        /// Checksum of the bytes actually read.
        actual: u64,
    },
    /// A record passed its checksum but failed to decode (version-skewed
    /// writer or a bug; with a valid checksum this should be unreachable).
    Codec {
        /// Byte offset of the undecodable frame's prelude.
        offset: u64,
        /// The decoder's failure message.
        message: String,
    },
    /// Replay observed a sequence number from the future: records were
    /// lost in the middle of the log, not at its tail.
    SequenceGap {
        /// The sequence number replay expected next.
        expected: u64,
        /// The sequence number actually found.
        found: u64,
    },
    /// A frame carried a record tag this binary does not know.
    UnknownFrameTag {
        /// The unrecognized tag byte.
        tag: u8,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::BadMagic => write!(f, "not a knowledge-base WAL (bad magic)"),
            WalError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported WAL format version {found} (this binary supports {supported})"
            ),
            WalError::ChecksumMismatch { offset, expected, actual } => write!(
                f,
                "WAL record at byte {offset} checksum mismatch: frame {expected:#018x}, \
                 body {actual:#018x}"
            ),
            WalError::Codec { offset, message } => {
                write!(f, "WAL record at byte {offset} failed to decode: {message}")
            }
            WalError::SequenceGap { expected, found } => write!(
                f,
                "WAL sequence gap: expected record {expected}, found {found}"
            ),
            WalError::UnknownFrameTag { tag } => {
                write!(f, "unknown WAL frame tag {tag:#04x}")
            }
        }
    }
}

impl std::error::Error for WalError {}

/// The workspace-wide error type.
///
/// Manual `Display`/`Error` impls (thiserror-style, but hand-rolled: the
/// dependency set is vendored and offline).
#[derive(Debug)]
pub enum NedError {
    /// An underlying IO operation failed.
    Io {
        /// What was being done when the IO failed.
        context: String,
        /// The OS-level error.
        source: io::Error,
    },
    /// A snapshot could not be read.
    Snapshot(SnapshotError),
    /// A write-ahead log could not be replayed.
    Wal(WalError),
    /// A configuration violated its invariants.
    Config {
        /// Which configuration was invalid.
        what: &'static str,
        /// The violated invariant.
        message: String,
    },
    /// A required key was absent from a store.
    Lookup {
        /// The kind of thing looked up (entity, word, document, …).
        what: &'static str,
        /// The missing key.
        key: String,
    },
    /// A solver ran out of its deterministic iteration budget.
    BudgetExhausted {
        /// Iterations spent before giving up.
        spent: u64,
        /// The configured budget.
        budget: u64,
    },
    /// A solver ran past its wall-clock budget.
    DeadlineExceeded {
        /// Milliseconds elapsed when the guard fired.
        elapsed_ms: u64,
        /// The configured budget in milliseconds.
        budget_ms: u64,
    },
    /// A lock was poisoned by a panicking holder and could not be recovered.
    Poisoned {
        /// The poisoned structure.
        what: &'static str,
    },
    /// An isolated work item (one document) panicked.
    DocumentPanic {
        /// The captured panic payload, as text.
        message: String,
    },
}

impl fmt::Display for NedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NedError::Io { context, source } => write!(f, "{context}: {source}"),
            NedError::Snapshot(e) => write!(f, "{e}"),
            NedError::Wal(e) => write!(f, "{e}"),
            NedError::Config { what, message } => write!(f, "invalid {what}: {message}"),
            NedError::Lookup { what, key } => write!(f, "unknown {what}: {key:?}"),
            NedError::BudgetExhausted { spent, budget } => {
                write!(f, "solver iteration budget exhausted ({spent} spent, budget {budget})")
            }
            NedError::DeadlineExceeded { elapsed_ms, budget_ms } => {
                write!(f, "solver wall budget exceeded ({elapsed_ms} ms, budget {budget_ms} ms)")
            }
            NedError::Poisoned { what } => write!(f, "{what} poisoned by a panicking holder"),
            NedError::DocumentPanic { message } => {
                write!(f, "document work item panicked: {message}")
            }
        }
    }
}

impl std::error::Error for NedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NedError::Io { source, .. } => Some(source),
            NedError::Snapshot(e) => Some(e),
            NedError::Wal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapshotError> for NedError {
    fn from(e: SnapshotError) -> Self {
        NedError::Snapshot(e)
    }
}

impl From<WalError> for NedError {
    fn from(e: WalError) -> Self {
        NedError::Wal(e)
    }
}

impl NedError {
    /// Wraps an IO error with the operation it interrupted.
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        NedError::Io { context: context.into(), source }
    }

    /// True when retrying with a *reduced* feature set could succeed — the
    /// signal the degradation ladder keys on (budget/deadline faults), as
    /// opposed to faults no fallback can fix (corrupt snapshot, bad config).
    pub fn is_degradable(&self) -> bool {
        matches!(
            self,
            NedError::BudgetExhausted { .. }
                | NedError::DeadlineExceeded { .. }
                | NedError::DocumentPanic { .. }
        )
    }
}

/// How far down the feature ladder the disambiguator had to step for a
/// document (§3.5's ρ/λ tests disable features *selectively*; this ladder
/// disables them *wholesale* when the joint solver cannot finish).
///
/// Levels are ordered: a larger level means more degradation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum DegradationLevel {
    /// Full fidelity: the configured method ran to completion.
    #[default]
    None,
    /// The joint coherence graph was abandoned (budget or solver fault);
    /// mentions were resolved by local similarity + prior only.
    NoCoherence,
    /// Even local similarity was unusable (non-finite weights); mentions
    /// were resolved by the popularity prior alone.
    PriorOnly,
}

impl DegradationLevel {
    /// True when any fallback was applied.
    pub fn is_degraded(self) -> bool {
        self != DegradationLevel::None
    }

    /// Stable label for reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            DegradationLevel::None => "none",
            DegradationLevel::NoCoherence => "no-coherence",
            DegradationLevel::PriorOnly => "prior-only",
        }
    }
}

impl fmt::Display for DegradationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Renders a `catch_unwind` payload as text (`&str` and `String` payloads
/// cover everything `panic!` produces in practice).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NedError::from(SnapshotError::UnsupportedVersion { found: 9, supported: 2 });
        assert!(e.to_string().contains("version 9"));
        let e = NedError::io("reading snapshot", io::Error::other("boom"));
        assert!(e.to_string().contains("reading snapshot"));
        let e = NedError::Lookup { what: "entity", key: "Page".into() };
        assert!(e.to_string().contains("entity"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e = NedError::io("x", io::Error::other("inner"));
        assert!(e.source().is_some());
        let e = NedError::Snapshot(SnapshotError::BadMagic);
        assert!(e.source().is_some());
        let e = NedError::Wal(WalError::BadMagic);
        assert!(e.source().is_some());
        assert!(NedError::Poisoned { what: "cache shard" }.source().is_none());
    }

    #[test]
    fn wal_errors_display_their_anatomy() {
        let e = NedError::from(WalError::UnsupportedVersion { found: 9, supported: 1 });
        assert!(e.to_string().contains("version 9"));
        let e = WalError::ChecksumMismatch { offset: 17, expected: 1, actual: 2 };
        assert!(e.to_string().contains("byte 17"));
        let e = WalError::SequenceGap { expected: 4, found: 7 };
        assert!(e.to_string().contains("expected record 4"));
        assert!(e.to_string().contains("found 7"));
        let e = WalError::Codec { offset: 25, message: "bad variant".into() };
        assert!(e.to_string().contains("bad variant"));
        let e = WalError::UnknownFrameTag { tag: 0x7f };
        assert!(e.to_string().contains("0x7f"));
        assert!(!WalError::BadMagic.to_string().is_empty());
        // WAL faults are never degradable: no feature fallback fixes a
        // corrupt log.
        assert!(!NedError::Wal(WalError::BadMagic).is_degradable());
    }

    #[test]
    fn degradable_faults() {
        assert!(NedError::BudgetExhausted { spent: 5, budget: 5 }.is_degradable());
        assert!(NedError::DeadlineExceeded { elapsed_ms: 10, budget_ms: 5 }.is_degradable());
        assert!(!NedError::Snapshot(SnapshotError::BadMagic).is_degradable());
        assert!(!NedError::Config { what: "AidaConfig", message: "x".into() }.is_degradable());
    }

    #[test]
    fn degradation_levels_are_ordered() {
        assert!(DegradationLevel::None < DegradationLevel::NoCoherence);
        assert!(DegradationLevel::NoCoherence < DegradationLevel::PriorOnly);
        assert!(!DegradationLevel::None.is_degraded());
        assert!(DegradationLevel::PriorOnly.is_degraded());
        assert_eq!(DegradationLevel::default(), DegradationLevel::None);
        assert_eq!(DegradationLevel::NoCoherence.to_string(), "no-coherence");
    }

    #[test]
    fn panic_messages_are_extracted() {
        let payload = std::panic::catch_unwind(|| panic!("boom {}", 7)).unwrap_err();
        assert_eq!(panic_message(payload.as_ref()), "boom 7");
        let payload = std::panic::catch_unwind(|| panic!("static")).unwrap_err();
        assert_eq!(panic_message(payload.as_ref()), "static");
    }
}
