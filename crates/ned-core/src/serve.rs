//! Request/response envelope and typed errors of the annotation service.
//!
//! The service layer (`ned-serve`) is overload-robust by construction:
//! every way a request can fail to produce annotations is a *typed* outcome
//! here — rejected at admission ([`ServeError::QueueFull`],
//! [`ServeError::ShuttingDown`]), shed after admission
//! ([`ServeError::Shedded`]), or isolated after a handler fault
//! ([`ServeError::WorkerPanic`]). Callers can always distinguish "the
//! service refused more work" from "this particular document is bad".
//!
//! The types live in `ned-core` (not `ned-serve`) so the load harness, the
//! CLI, and the service itself share one vocabulary without a dependency on
//! the threading machinery.

use std::fmt;

use crate::DegradationLevel;

/// Caller-assigned request identifier, echoed on the response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

/// Why an *accepted* request was answered without being annotated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The service began its shutdown drain before a worker picked the
    /// request up; in-flight requests finish, queued ones are shed.
    Drain,
    /// The request's deadline had already expired when a worker dequeued it
    /// and the service is configured to shed (rather than degrade) expired
    /// requests.
    DeadlineExpired,
}

impl ShedReason {
    /// Stable label for reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            ShedReason::Drain => "drain",
            ShedReason::DeadlineExpired => "deadline-expired",
        }
    }
}

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Typed failure outcomes of the annotation service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control rejected the request: the bounded queue was full.
    /// The caller may retry later; nothing was buffered.
    QueueFull {
        /// The configured queue capacity that was exhausted.
        capacity: usize,
    },
    /// The service is draining; no new requests are admitted.
    ShuttingDown,
    /// The request was admitted but deliberately not annotated.
    Shedded {
        /// Why the request was shed.
        reason: ShedReason,
    },
    /// The request's handler panicked; the fault was isolated to this
    /// request and the worker thread survived.
    WorkerPanic {
        /// The captured panic payload, as text.
        message: String,
    },
    /// The service's internal channel closed unexpectedly (all workers
    /// gone); should be unreachable while the service is alive.
    ChannelClosed,
}

impl ServeError {
    /// True for admission-control rejections (the request never entered the
    /// queue, so `offered == accepted + rejected` accounting counts it on
    /// the rejected side).
    pub fn is_rejection(&self) -> bool {
        matches!(self, ServeError::QueueFull { .. } | ServeError::ShuttingDown)
    }

    /// Stable label for reports and JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            ServeError::QueueFull { .. } => "queue-full",
            ServeError::ShuttingDown => "shutting-down",
            ServeError::Shedded { .. } => "shedded",
            ServeError::WorkerPanic { .. } => "worker-panic",
            ServeError::ChannelClosed => "channel-closed",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "request rejected: queue full (capacity {capacity})")
            }
            ServeError::ShuttingDown => write!(f, "request rejected: service shutting down"),
            ServeError::Shedded { reason } => write!(f, "request shed: {reason}"),
            ServeError::WorkerPanic { message } => {
                write!(f, "request handler panicked: {message}")
            }
            ServeError::ChannelClosed => write!(f, "service channel closed"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One annotation request: a document plus an optional per-request deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeRequest {
    /// Caller-assigned id, echoed on the response.
    pub id: RequestId,
    /// The raw document text to annotate.
    pub text: String,
    /// Optional deadline, milliseconds from submission. The service
    /// translates the *remaining* deadline at dequeue time into a solver
    /// wall budget, degrading joint → no-coherence → prior-only instead of
    /// timing out.
    pub deadline_ms: Option<u64>,
}

impl ServeRequest {
    /// A request without a deadline.
    pub fn new(id: u64, text: impl Into<String>) -> Self {
        ServeRequest { id: RequestId(id), text: text.into(), deadline_ms: None }
    }

    /// Sets the per-request deadline (builder style).
    #[must_use]
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }
}

/// The service's answer to one accepted request.
///
/// Generic over the payload `P` (the annotation layer's output type) so the
/// envelope does not depend on upper crates.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResponse<P> {
    /// The request id this answers.
    pub id: RequestId,
    /// The annotations, or a typed reason there are none.
    pub result: Result<P, ServeError>,
    /// How far down the feature ladder the request was served (meaningful
    /// for `Ok` results; `None` rung for errors).
    pub degradation: DegradationLevel,
    /// Time spent queued before a worker dequeued the request, nanoseconds
    /// (on the service's clock).
    pub queue_wait_ns: u64,
    /// End-to-end latency from submission to response, nanoseconds (on the
    /// service's clock).
    pub latency_ns: u64,
}

impl<P> ServeResponse<P> {
    /// True when the request produced annotations (possibly degraded).
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejections_are_distinguished_from_sheds() {
        assert!(ServeError::QueueFull { capacity: 8 }.is_rejection());
        assert!(ServeError::ShuttingDown.is_rejection());
        assert!(!ServeError::Shedded { reason: ShedReason::Drain }.is_rejection());
        assert!(!ServeError::WorkerPanic { message: "x".into() }.is_rejection());
        assert!(!ServeError::ChannelClosed.is_rejection());
    }

    #[test]
    fn display_is_informative() {
        let e = ServeError::QueueFull { capacity: 64 };
        assert!(e.to_string().contains("capacity 64"));
        let e = ServeError::Shedded { reason: ShedReason::DeadlineExpired };
        assert!(e.to_string().contains("deadline-expired"));
        assert_eq!(RequestId(7).to_string(), "req-7");
    }

    #[test]
    fn request_builder_sets_deadline() {
        let r = ServeRequest::new(3, "text").with_deadline_ms(25);
        assert_eq!(r.id, RequestId(3));
        assert_eq!(r.deadline_ms, Some(25));
        let r = ServeRequest::new(4, "text");
        assert_eq!(r.deadline_ms, None);
    }

    #[test]
    fn stable_labels() {
        assert_eq!(ServeError::ChannelClosed.as_str(), "channel-closed");
        assert_eq!(ShedReason::Drain.as_str(), "drain");
        assert_eq!(
            ServeError::Shedded { reason: ShedReason::DeadlineExpired }.as_str(),
            "shedded"
        );
    }
}
