//! Order-insensitive float reductions.
//!
//! Float addition is not associative, so summing values in hash-map
//! iteration order makes the last bits of a score depend on hasher layout —
//! exactly the nondeterminism the `ned-lint` D1 rule polices. These helpers
//! make a reduction independent of input order by sorting the operands
//! under `f64::total_cmp` before combining them, at an `O(n log n)` cost
//! that only matters for reductions large enough to care about anyway.
//!
//! `ned-lint` treats `det_sum`/`det_dot` in a statement as an
//! order-neutralizer, so call sites that route hash-map values through
//! these helpers lint clean by construction.

/// Sums floats independently of input order.
///
/// Operands are sorted under `total_cmp` first, so any permutation of the
/// same multiset produces bit-identical output. NaNs sort to a fixed
/// position and propagate as usual.
pub fn det_sum(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = values.into_iter().collect();
    v.sort_unstable_by(f64::total_cmp);
    v.iter().sum()
}

/// Dot-product terms summed independently of input order.
///
/// Accepts pre-multiplied terms (e.g. from a filter over the shorter of
/// two sparse vectors) rather than two aligned slices, which is the shape
/// hash-map-backed sparse vectors naturally produce.
pub fn det_dot(terms: impl IntoIterator<Item = f64>) -> f64 {
    det_sum(terms)
}

/// The L2 norm of `values`, reduced order-insensitively.
pub fn det_l2_norm(values: impl IntoIterator<Item = f64>) -> f64 {
    det_sum(values.into_iter().map(|v| v * v)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_is_permutation_invariant() {
        // Constructed so naive left-to-right summation differs across
        // orders in the last bits.
        let xs = [1e16, 1.0, -1e16, 3.5, 1e-9, 7.25, -2.5];
        let forward = det_sum(xs);
        let backward = det_sum(xs.iter().rev().copied());
        let rotated = det_sum(xs.iter().cycle().skip(3).take(xs.len()).copied());
        assert_eq!(forward.to_bits(), backward.to_bits());
        assert_eq!(forward.to_bits(), rotated.to_bits());
    }

    #[test]
    fn naive_order_dependence_exists() {
        // Sanity-check the premise: the same multiset summed in two orders
        // by a plain fold CAN differ — which is what det_sum removes.
        let xs = [1e16, 1.0, -1e16, 1.0];
        let forward: f64 = xs.iter().sum();
        let backward: f64 = xs.iter().rev().sum();
        assert_ne!(forward.to_bits(), backward.to_bits());
    }

    #[test]
    fn l2_norm_matches_manual() {
        let n = det_l2_norm([3.0, 4.0]);
        assert!((n - 5.0).abs() < 1e-12);
        assert_eq!(det_l2_norm(std::iter::empty()), 0.0);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(det_sum(std::iter::empty()), 0.0);
        assert_eq!(det_sum([42.5]), 42.5);
    }
}
