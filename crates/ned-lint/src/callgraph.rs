//! The workspace caller → callee graph and its reachability queries.
//!
//! Nodes are fn ids from [`crate::resolve::Symbols`]; edges exist only for
//! calls the resolver pinned to a unique target. Traversal is fully
//! deterministic (BTree adjacency, sorted roots) so reports and `--explain`
//! chains are byte-identical across runs.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::resolve::{Resolution, Symbols};

/// Resolution and shape statistics for `--callgraph-stats`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CallGraphStats {
    /// First-party files that went through item extraction.
    pub files: usize,
    /// Functions extracted (including trait required methods).
    pub fns: usize,
    /// Call sites seen in function bodies.
    pub call_sites: usize,
    /// Call sites resolved to a unique edge.
    pub resolved: usize,
    /// Call sites with more than one candidate (no edge).
    pub ambiguous: usize,
    /// Call sites with no first-party candidate.
    pub unresolved: usize,
    /// Qualified names of `// ned-lint: entry` roots.
    pub entry_roots: Vec<String>,
    /// Qualified names of `// ned-lint: hot` roots.
    pub hot_roots: Vec<String>,
    /// Functions reachable from the entry roots (roots included).
    pub entry_reachable: usize,
    /// Functions reachable from the hot roots (roots included).
    pub hot_reachable: usize,
}

impl CallGraphStats {
    /// Plain-text rendering for the CLI and the CI artifact.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "call-graph statistics");
        let _ = writeln!(out, "  files analyzed:     {}", self.files);
        let _ = writeln!(out, "  functions:          {}", self.fns);
        let _ = writeln!(
            out,
            "  call sites:         {} ({} resolved, {} ambiguous, {} unresolved)",
            self.call_sites, self.resolved, self.ambiguous, self.unresolved
        );
        let _ = writeln!(
            out,
            "  entry roots:        {} ({} fns reachable)",
            self.entry_roots.len(),
            self.entry_reachable
        );
        for r in &self.entry_roots {
            let _ = writeln!(out, "    entry {r}");
        }
        let _ = writeln!(
            out,
            "  hot roots:          {} ({} fns reachable)",
            self.hot_roots.len(),
            self.hot_reachable
        );
        for r in &self.hot_roots {
            let _ = writeln!(out, "    hot   {r}");
        }
        out
    }
}

/// A parent pointer in a BFS tree: which caller reached a fn, and on what
/// line of the caller the resolving call sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Caller fn id (`None` for roots).
    pub parent: Option<usize>,
    /// Call line inside the parent (root decl line for roots).
    pub line: usize,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Adjacency: callee ids with the first call line creating each edge.
    pub edges: Vec<BTreeMap<usize, usize>>,
    /// Shape/resolution statistics.
    pub stats: CallGraphStats,
}

impl CallGraph {
    /// Builds the graph by resolving every call site in `symbols`.
    /// Call sites inside test-only statements are skipped: tests may panic
    /// and allocate freely without polluting production reachability.
    pub fn build(symbols: &Symbols) -> CallGraph {
        let n = symbols.fns.len();
        let mut g = CallGraph { edges: vec![BTreeMap::new(); n], stats: CallGraphStats::default() };
        g.stats.files = symbols.files.len();
        g.stats.fns = n;
        for (id, f) in symbols.fns.iter().enumerate() {
            if f.item.in_test {
                continue;
            }
            for stmt in &f.item.stmts {
                if stmt.in_test {
                    continue;
                }
                for call in &stmt.calls {
                    g.stats.call_sites += 1;
                    match symbols.resolve(id, call) {
                        Resolution::Edge(target) => {
                            g.stats.resolved += 1;
                            if let Some(adj) = g.edges.get_mut(id) {
                                adj.entry(target).or_insert(call.line);
                            }
                        }
                        Resolution::Ambiguous => g.stats.ambiguous += 1,
                        Resolution::Unresolved => g.stats.unresolved += 1,
                    }
                }
            }
        }
        let entry: Vec<usize> = roots(symbols, |f| f.entry);
        let hot: Vec<usize> = roots(symbols, |f| f.hot);
        g.stats.entry_roots = entry.iter().filter_map(|&i| symbols.fns.get(i)).map(|f| f.qual()).collect();
        g.stats.hot_roots = hot.iter().filter_map(|&i| symbols.fns.get(i)).map(|f| f.qual()).collect();
        g.stats.entry_reachable = g.reachable_from(&entry).len();
        g.stats.hot_reachable = g.reachable_from(&hot).len();
        g
    }

    /// Breadth-first reachability from `roots`; the returned map carries a
    /// shortest-path parent pointer per reached fn (roots map to
    /// `parent: None`). Cycles terminate because each fn is visited once.
    pub fn reachable_from(&self, roots: &[usize]) -> BTreeMap<usize, Hop> {
        let mut tree: BTreeMap<usize, Hop> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        let mut sorted_roots: Vec<usize> = roots.to_vec();
        sorted_roots.sort_unstable();
        for &r in &sorted_roots {
            if r < self.edges.len() && !tree.contains_key(&r) {
                tree.insert(r, Hop { parent: None, line: 0 });
                queue.push_back(r);
            }
        }
        while let Some(cur) = queue.pop_front() {
            let Some(adj) = self.edges.get(cur) else { continue };
            for (&next, &line) in adj {
                if let std::collections::btree_map::Entry::Vacant(slot) = tree.entry(next) {
                    slot.insert(Hop { parent: Some(cur), line });
                    queue.push_back(next);
                }
            }
        }
        tree
    }

    /// Renders the shortest root → `target` call chain from a BFS tree, one
    /// line per hop: `qual (path:line)` where line is the call site in the
    /// caller (the root shows its declaration line).
    pub fn chain(&self, symbols: &Symbols, tree: &BTreeMap<usize, Hop>, target: usize) -> Vec<String> {
        let mut ids: Vec<(usize, usize)> = Vec::new(); // (fn id, call line into next)
        let mut cur = target;
        let mut guard = 0usize;
        while let Some(hop) = tree.get(&cur) {
            ids.push((cur, hop.line));
            match hop.parent {
                Some(p) => cur = p,
                None => break,
            }
            guard += 1;
            if guard > self.edges.len() + 1 {
                break; // defensive: malformed tree
            }
        }
        ids.reverse();
        let mut out = Vec::new();
        for (i, (id, _)) in ids.iter().enumerate() {
            let Some(f) = symbols.fns.get(*id) else { continue };
            // The line shown against fn i is the call line recorded on the
            // hop into fn i+1 (i.e. where this fn hands control onward);
            // the last element shows its declaration line.
            let line = match ids.get(i + 1) {
                Some((_, call_line)) => *call_line,
                None => f.item.decl_line,
            };
            let role = if i == 0 { "root " } else { "  -> " };
            out.push(format!("{role}{} ({}:{})", f.qual(), f.path, line));
        }
        out
    }
}

fn roots(symbols: &Symbols, pick: impl Fn(&crate::items::FnItem) -> bool) -> Vec<usize> {
    symbols
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.item.in_test && pick(&f.item))
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract;
    use crate::rules::FileContext;
    use crate::scanner::scan;

    fn build(src: &str) -> (Symbols, CallGraph) {
        let ctx = FileContext {
            path: "crates/a/src/lib.rs".into(),
            crate_name: "a".into(),
            is_vendor: false,
            is_bin: false,
            is_harness: false,
        };
        let sym = Symbols::build(vec![extract(&ctx, &scan(src))]);
        let g = CallGraph::build(&sym);
        (sym, g)
    }

    fn id_of(sym: &Symbols, qual: &str) -> usize {
        sym.fns.iter().position(|f| f.qual() == qual).unwrap()
    }

    #[test]
    fn cycles_terminate() {
        let (sym, g) = build("pub fn a() { b() }\npub fn b() { a() }\n");
        let tree = g.reachable_from(&[id_of(&sym, "a::a")]);
        assert_eq!(tree.len(), 2);
    }

    #[test]
    fn chain_is_shortest_and_renders_call_lines() {
        let src = "\
// ned-lint: entry
pub fn root() { mid() }
fn mid() { deep() }
fn deep() { leaf() }
pub fn shortcut() { leaf() }
fn leaf() {}
";
        let (sym, g) = build(src);
        let tree = g.reachable_from(&[id_of(&sym, "a::root")]);
        let chain = g.chain(&sym, &tree, id_of(&sym, "a::leaf"));
        assert_eq!(
            chain,
            vec![
                "root a::root (crates/a/src/lib.rs:2)",
                "  -> a::mid (crates/a/src/lib.rs:3)",
                "  -> a::deep (crates/a/src/lib.rs:4)",
                "  -> a::leaf (crates/a/src/lib.rs:6)",
            ]
        );
    }

    #[test]
    fn ambiguity_blocks_reachability() {
        // Two `helper` fns: the bare call from root must not create edges.
        let src = "\
pub fn root() { helper() }
pub mod m1 { pub fn helper() {} }
pub mod m2 { pub fn helper() {} }
";
        let (sym, g) = build(src);
        let tree = g.reachable_from(&[id_of(&sym, "a::root")]);
        assert_eq!(tree.len(), 1, "ambiguous call must not add edges");
        assert_eq!(g.stats.ambiguous, 1);
    }

    #[test]
    fn stats_count_roots_and_reachability() {
        let src = "\
// ned-lint: hot
pub fn score() { inner() }
fn inner() {}
// ned-lint: entry
pub fn serve() { score() }
";
        let (_sym, g) = build(src);
        assert_eq!(g.stats.hot_roots, vec!["a::score"]);
        assert_eq!(g.stats.entry_roots, vec!["a::serve"]);
        assert_eq!(g.stats.hot_reachable, 2);
        assert_eq!(g.stats.entry_reachable, 3);
    }
}
