//! Module-path symbol resolution: turning call sites into call-graph edges.
//!
//! Resolution is deliberately conservative — ambiguity produces **no edge**
//! rather than a guess:
//!
//! * a bare call `foo(…)` resolves to the free fn `foo` in the caller's own
//!   module, else to the *unique* free fn named `foo` anywhere in the
//!   workspace (imports are not tracked);
//! * a path call `a::b::foo(…)` resolves by unique suffix match over
//!   qualified names, after substituting `Self` → the caller's self type
//!   and `crate` → the caller's crate root (`self`/`super` path prefixes
//!   are dropped and the remainder suffix-matched);
//! * a method call `.foo(…)` resolves only when exactly one method named
//!   `foo` exists workspace-wide — with one precise exception: `self.foo(…)`
//!   prefers the unique `foo` on the caller's own self type. Trait required
//!   methods count as candidates, so any trait-declared method with an impl
//!   has ≥ 2 candidates and stays unresolved (dynamic dispatch is never
//!   guessed).
//!
//! Unresolved and ambiguous calls terminate chains; they never suppress a
//! finding inside a function that *is* reachable.

use std::collections::BTreeMap;

use crate::items::{Call, CallKind, FileItems, FnItem};

/// One function known to the resolver (flattened from [`FileItems`]).
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Repo-relative file path.
    pub path: String,
    /// Crate name as on disk (hyphens preserved).
    pub crate_name: String,
    /// The extracted item (name, self type, body, markers).
    pub item: FnItem,
}

impl FnInfo {
    /// Fully qualified display name: `module::Type::name`.
    pub fn qual(&self) -> String {
        let mut segs: Vec<&str> = self.item.module.iter().map(|s| s.as_str()).collect();
        if let Some(ty) = &self.item.self_ty {
            segs.push(ty);
        }
        segs.push(&self.item.name);
        segs.join("::")
    }

    fn qual_segments(&self) -> Vec<String> {
        let mut segs = self.item.module.clone();
        if let Some(ty) = &self.item.self_ty {
            segs.push(ty.clone());
        }
        segs.push(self.item.name.clone());
        segs
    }
}

/// Outcome of resolving one call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Unique target: an edge in the call graph.
    Edge(usize),
    /// More than one candidate — conservatively no edge.
    Ambiguous,
    /// No first-party candidate (std, vendored, macro, or unknown).
    Unresolved,
}

/// The workspace symbol table.
#[derive(Debug, Default)]
pub struct Symbols {
    /// All extracted functions; indices are stable fn ids.
    pub fns: Vec<FnInfo>,
    /// Per-file metadata kept for rules that need file-level context
    /// (consts and joined code text for the metric-name rule).
    pub files: Vec<FileItems>,
    free_by_name: BTreeMap<String, Vec<usize>>,
    method_by_name: BTreeMap<String, Vec<usize>>,
    by_qual: BTreeMap<String, Vec<usize>>,
}

impl Symbols {
    /// Builds the table from per-file extraction results. Test-only
    /// functions are kept (for stats) but never act as resolution targets.
    pub fn build(mut files: Vec<FileItems>) -> Symbols {
        let mut sym = Symbols::default();
        for file in &mut files {
            for item in file.fns.drain(..) {
                sym.fns.push(FnInfo {
                    path: file.path.clone(),
                    crate_name: file.crate_name.clone(),
                    item,
                });
            }
        }
        sym.files = files;
        for (id, f) in sym.fns.iter().enumerate() {
            if f.item.in_test {
                continue;
            }
            if f.item.has_self {
                sym.method_by_name.entry(f.item.name.clone()).or_default().push(id);
            } else if f.item.self_ty.is_none() {
                sym.free_by_name.entry(f.item.name.clone()).or_default().push(id);
            }
            sym.by_qual.entry(f.qual_segments().join("::")).or_default().push(id);
        }
        sym
    }

    /// Resolves one call site made from `caller` (a fn id).
    pub fn resolve(&self, caller: usize, call: &Call) -> Resolution {
        let Some(from) = self.fns.get(caller) else { return Resolution::Unresolved };
        match call.kind {
            CallKind::Bare => {
                let Some(name) = call.segments.first() else {
                    return Resolution::Unresolved;
                };
                // Same-module free fn wins outright.
                let mut local = from.item.module.clone();
                local.push(name.clone());
                if let Some(ids) = self.by_qual.get(&local.join("::")) {
                    if let [only] = ids.as_slice() {
                        return Resolution::Edge(*only);
                    }
                }
                match self.free_by_name.get(name).map(|v| v.as_slice()) {
                    Some([only]) => Resolution::Edge(*only),
                    Some([]) | None => Resolution::Unresolved,
                    Some(_) => Resolution::Ambiguous,
                }
            }
            CallKind::Method => {
                let Some(name) = call.segments.first() else {
                    return Resolution::Unresolved;
                };
                let candidates = self.method_by_name.get(name).map(|v| v.as_slice()).unwrap_or(&[]);
                // `self.foo(…)`: prefer the unique method on the caller's
                // own self type (and crate, to dodge name collisions).
                if call.receiver.as_deref() == Some("self") {
                    if let Some(ty) = &from.item.self_ty {
                        let own: Vec<usize> = candidates
                            .iter()
                            .copied()
                            .filter(|&id| {
                                self.fns.get(id).map(|f| {
                                    f.item.self_ty.as_ref() == Some(ty)
                                        && f.crate_name == from.crate_name
                                }) == Some(true)
                            })
                            .collect();
                        if let [only] = own.as_slice() {
                            return Resolution::Edge(*only);
                        }
                    }
                }
                match candidates {
                    [only] => Resolution::Edge(*only),
                    [] => Resolution::Unresolved,
                    _ => Resolution::Ambiguous,
                }
            }
            CallKind::Path => {
                // Substitute Self/crate, drop self/super, suffix-match.
                let mut segs: Vec<String> = Vec::new();
                for (i, seg) in call.segments.iter().enumerate() {
                    match seg.as_str() {
                        "Self" => match &from.item.self_ty {
                            Some(ty) => segs.push(ty.clone()),
                            None => return Resolution::Unresolved,
                        },
                        "crate" if i == 0 => {
                            if let Some(root) = from.item.module.first() {
                                segs.push(root.clone());
                            }
                        }
                        "self" | "super" if i == 0 => {}
                        _ => segs.push(seg.clone()),
                    }
                }
                if segs.is_empty() {
                    return Resolution::Unresolved;
                }
                let matches: Vec<usize> = self
                    .fns
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| !f.item.in_test && ends_with(&f.qual_segments(), &segs))
                    .map(|(id, _)| id)
                    .collect();
                match matches.as_slice() {
                    [only] => Resolution::Edge(*only),
                    [] => Resolution::Unresolved,
                    _ => Resolution::Ambiguous,
                }
            }
        }
    }
}

fn ends_with(haystack: &[String], suffix: &[String]) -> bool {
    suffix.len() <= haystack.len()
        && haystack
            .iter()
            .rev()
            .zip(suffix.iter().rev())
            .all(|(a, b)| a == b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract;
    use crate::rules::FileContext;
    use crate::scanner::scan;

    fn file(path: &str, crate_name: &str, src: &str) -> FileItems {
        let ctx = FileContext {
            path: path.into(),
            crate_name: crate_name.into(),
            is_vendor: false,
            is_bin: false,
            is_harness: false,
        };
        extract(&ctx, &scan(src))
    }

    fn id_of(sym: &Symbols, qual: &str) -> usize {
        sym.fns
            .iter()
            .position(|f| f.qual() == qual)
            .unwrap_or_else(|| panic!("no fn {qual}"))
    }

    #[test]
    fn bare_call_prefers_same_module_then_unique_workspace() {
        let a = file("crates/a/src/lib.rs", "a", "pub fn go() { helper() }\nfn helper() {}\n");
        let b = file("crates/b/src/lib.rs", "b", "pub fn solo() {}\nfn helper() {}\n");
        let sym = Symbols::build(vec![a, b]);
        let go = id_of(&sym, "a::go");
        let call = &sym.fns[go].item.stmts[0].calls[0];
        assert_eq!(sym.resolve(go, call), Resolution::Edge(id_of(&sym, "a::helper")));
    }

    #[test]
    fn ambiguous_bare_call_yields_no_edge() {
        let a = file("crates/a/src/lib.rs", "a", "pub fn go() { helper() }\n");
        let b = file("crates/b/src/lib.rs", "b", "pub fn helper() {}\n");
        let c = file("crates/c/src/lib.rs", "c", "pub fn helper() {}\n");
        let sym = Symbols::build(vec![a, b, c]);
        let go = id_of(&sym, "a::go");
        let call = sym.fns[go].item.stmts[0].calls[0].clone();
        assert_eq!(sym.resolve(go, &call), Resolution::Ambiguous);
    }

    #[test]
    fn path_call_suffix_matches() {
        let a = file("crates/a/src/util.rs", "a", "pub fn thing() {}\n");
        let b =
            file("crates/b/src/lib.rs", "b", "pub fn go() { util::thing(); a::util::thing(); }\n");
        let sym = Symbols::build(vec![a, b]);
        let go = id_of(&sym, "b::go");
        let target = id_of(&sym, "a::util::thing");
        let calls: Vec<Call> =
            sym.fns[go].item.stmts.iter().flat_map(|s| s.calls.clone()).collect();
        assert_eq!(calls.len(), 2);
        for call in &calls {
            assert_eq!(sym.resolve(go, call), Resolution::Edge(target));
        }
    }

    #[test]
    fn self_method_call_prefers_own_impl() {
        let a = file(
            "crates/a/src/lib.rs",
            "a",
            "pub struct X;\nimpl X {\n    pub fn run(&self) { self.step() }\n    fn step(&self) {}\n}\n",
        );
        // Another `step` method elsewhere makes the global lookup ambiguous.
        let b = file("crates/b/src/lib.rs", "b", "pub struct Y;\nimpl Y {\n    pub fn step(&self) {}\n}\n");
        let sym = Symbols::build(vec![a, b]);
        let run = id_of(&sym, "a::X::run");
        let call = sym.fns[run].item.stmts[0].calls[0].clone();
        assert_eq!(sym.resolve(run, &call), Resolution::Edge(id_of(&sym, "a::X::step")));
    }

    #[test]
    fn trait_declared_methods_stay_ambiguous() {
        let a = file(
            "crates/a/src/lib.rs",
            "a",
            "pub trait T {\n    fn work(&self);\n}\npub struct X;\nimpl T for X {\n    fn work(&self) {}\n}\npub fn go(t: &X) { t.work() }\n",
        );
        let sym = Symbols::build(vec![a]);
        let go = id_of(&sym, "a::go");
        let call = sym.fns[go].item.stmts[0].calls[0].clone();
        // Trait decl + impl = two candidates; dynamic dispatch is never guessed.
        assert_eq!(sym.resolve(go, &call), Resolution::Ambiguous);
    }

    #[test]
    fn self_path_call_resolves_to_assoc_fn() {
        let a = file(
            "crates/a/src/lib.rs",
            "a",
            "pub struct X;\nimpl X {\n    pub fn run(&self) { Self::make() }\n    fn make() {}\n}\n",
        );
        let sym = Symbols::build(vec![a]);
        let run = id_of(&sym, "a::X::run");
        let call = sym.fns[run].item.stmts[0].calls[0].clone();
        assert_eq!(sym.resolve(run, &call), Resolution::Edge(id_of(&sym, "a::X::make")));
    }

    #[test]
    fn test_fns_are_not_targets() {
        let a = file(
            "crates/a/src/lib.rs",
            "a",
            "pub fn go() { helper() }\n#[cfg(test)]\nmod tests {\n    pub fn helper() {}\n}\n",
        );
        let sym = Symbols::build(vec![a]);
        let go = id_of(&sym, "a::go");
        let call = sym.fns[go].item.stmts[0].calls[0].clone();
        assert_eq!(sym.resolve(go, &call), Resolution::Unresolved);
    }
}
