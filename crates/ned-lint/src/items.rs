//! Item extraction: the first half of the workspace call-graph analyzer.
//!
//! This pass runs over [`crate::scanner`] output and recovers just enough
//! structure for interprocedural rules: `fn` items (with their enclosing
//! `impl`/`trait`/`mod` context), the statements of each function body, the
//! call sites inside those statements, and top-level `&str` constants (for
//! the metric-name rule). Like the lexical rules it is a heuristic pass,
//! not a parser — anything it cannot classify it drops on the floor, which
//! downstream resolution treats as "no edge" (conservative for reachability
//! rules: unresolved calls never *suppress* a finding, they only stop a
//! chain).
//!
//! Root annotations are read from comments:
//!
//! * `// ned-lint: hot` on the line above (or trailing) a `fn` marks it a
//!   hot-path root for rule `h1`;
//! * `// ned-lint: entry` marks an entry root for rule `p2`.

use std::collections::BTreeSet;

use crate::rules::{has_word, is_ident_char, FileContext};
use crate::scanner::SourceLine;

/// How a call site is written at the call position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `foo(…)` — a bare name.
    Bare,
    /// `a::b::foo(…)` — a path-qualified call (also `Self::foo`).
    Path,
    /// `.foo(…)` — a method call.
    Method,
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// How the call is written.
    pub kind: CallKind,
    /// Path segments; bare and method calls carry exactly one.
    pub segments: Vec<String>,
    /// For method calls: the receiver identifier when trivially known
    /// (`self` or a plain local). `None` for chained receivers.
    pub receiver: Option<String>,
    /// 1-based line of the statement containing the call.
    pub line: usize,
}

/// One statement of a function body (same boundaries as the lexical rules:
/// code between `;` / `{` / `}`).
#[derive(Debug, Clone)]
pub struct BodyStmt {
    /// 1-based first line.
    pub line: usize,
    /// Comment/literal-stripped text, trimmed.
    pub text: String,
    /// Brace depth before the statement's terminator applies.
    pub depth: i64,
    /// `;`, `{`, or `}`.
    pub terminator: char,
    /// True inside `#[cfg(test)]` / `#[test]` regions.
    pub in_test: bool,
    /// Inline `// ned-lint: allow(…)` suppressions covering the statement.
    pub allows: BTreeSet<String>,
    /// The raw first line, trimmed and truncated, for reports.
    pub snippet: String,
    /// Call sites found in the statement text.
    pub calls: Vec<Call>,
}

/// One `fn` item. Trait required methods (`fn f(…);`) are recorded with an
/// empty body so method resolution stays conservative about dynamic
/// dispatch: a trait with one impl still yields two candidates.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Simple name.
    pub name: String,
    /// Enclosing `impl`/`trait` self type, if any.
    pub self_ty: Option<String>,
    /// True when the declaration mentions `self` (method).
    pub has_self: bool,
    /// Module path (crate root first, inner `mod` frames appended).
    pub module: Vec<String>,
    /// 1-based declaration line.
    pub decl_line: usize,
    /// True inside test regions.
    pub in_test: bool,
    /// `// ned-lint: hot` root for rule h1.
    pub hot: bool,
    /// `// ned-lint: entry` root for rule p2.
    pub entry: bool,
    /// Body statements in source order.
    pub stmts: Vec<BodyStmt>,
}

/// A `const NAME: &str = "value"` item outside any function.
#[derive(Debug, Clone)]
pub struct ConstStr {
    /// Constant name.
    pub name: String,
    /// The literal value (read back from the raw source).
    pub value: String,
    /// 1-based declaration line.
    pub line: usize,
    /// True inside test regions.
    pub in_test: bool,
}

/// Everything extracted from one first-party file.
#[derive(Debug, Clone)]
pub struct FileItems {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// Crate name as it appears on disk (hyphens preserved).
    pub crate_name: String,
    /// Functions declared in the file.
    pub fns: Vec<FnItem>,
    /// Top-level `&str` constants.
    pub consts: Vec<ConstStr>,
    /// All stripped code lines joined by `\n` (for usage searches).
    pub code_text: String,
}

/// Derives the module path of a file from its repo-relative location:
/// `crates/ned-kb/src/vocab.rs` → `["ned_kb", "vocab"]`, `lib.rs` maps to
/// the crate root, `mod.rs` to its directory, `src/bin/x.rs` to
/// `["…", "bin", "x"]`.
pub fn module_path_of(path: &str, crate_name: &str) -> Vec<String> {
    let mut out = vec![crate_name.replace('-', "_")];
    let rel = path
        .strip_prefix("src/")
        .or_else(|| path.split_once("/src/").map(|(_, r)| r))
        .unwrap_or(path);
    let rel = rel.strip_suffix(".rs").unwrap_or(rel);
    let segs: Vec<&str> = rel.split('/').filter(|s| !s.is_empty()).collect();
    for (i, seg) in segs.iter().enumerate() {
        let last = i + 1 == segs.len();
        if last && (*seg == "lib" || *seg == "mod") {
            continue;
        }
        out.push((*seg).to_string());
    }
    out
}

#[derive(Debug)]
struct Event {
    start_line: usize,
    end_line: usize,
    text: String,
    /// Brace depth before the terminator applies.
    depth: i64,
    terminator: char,
    in_test: bool,
    allows: BTreeSet<String>,
    markers: BTreeSet<String>,
}

/// Markers present on one raw line.
fn markers_on(raw: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    if let Some(pos) = raw.find("ned-lint:") {
        let after = raw.get(pos + "ned-lint:".len()..).unwrap_or("");
        for word in ["hot", "entry"] {
            let mut from = 0usize;
            while let Some(rel) = after.get(from..).and_then(|s| s.find(word)) {
                let p = from + rel;
                from = p + word.len();
                let before_ok = after
                    .get(..p)
                    .and_then(|s| s.chars().next_back())
                    .map(|c| !is_ident_char(c))
                    .unwrap_or(true);
                let after_ok = after
                    .get(p + word.len()..)
                    .and_then(|s| s.chars().next())
                    .map(|c| !is_ident_char(c))
                    .unwrap_or(true);
                if before_ok && after_ok {
                    out.insert(word.to_string());
                }
            }
        }
    }
    out
}

/// Assembles scanned lines into events. Unlike the lexical assembler this
/// one also emits empty `{` / `}` events so block closes stay visible.
fn events(lines: &[SourceLine]) -> Vec<Event> {
    let mut out: Vec<Event> = Vec::new();
    let mut buf = String::new();
    let mut start_line = 0usize;
    let mut last_line = 0usize;
    let mut in_test = false;
    let mut allows: BTreeSet<String> = BTreeSet::new();
    let mut markers: BTreeSet<String> = BTreeSet::new();
    let mut pending_markers: BTreeSet<String> = BTreeSet::new();
    let mut brace_depth: i64 = 0;
    let mut bracket_depth: i64 = 0;

    for line in lines {
        let line_markers = markers_on(&line.raw);
        if line.code.trim().is_empty() {
            // Pure comment / blank line: markers carry to the next item.
            pending_markers.extend(line_markers.iter().cloned());
        } else {
            markers.extend(line_markers.iter().cloned());
        }
        for c in line.code.chars() {
            if start_line == 0 && !c.is_whitespace() {
                start_line = line.number;
                in_test = line.in_test;
                allows.extend(line.allows.iter().cloned());
            }
            let terminator = match c {
                '(' | '[' => {
                    bracket_depth += 1;
                    buf.push(c);
                    continue;
                }
                ')' | ']' => {
                    bracket_depth -= 1;
                    buf.push(c);
                    continue;
                }
                '{' | '}' | ';' if bracket_depth == 0 => c,
                _ => {
                    buf.push(c);
                    continue;
                }
            };
            let text = std::mem::take(&mut buf).trim().to_string();
            let has_text = !text.is_empty();
            if has_text || terminator != ';' {
                let mut ev_markers = BTreeSet::new();
                if has_text {
                    ev_markers.extend(std::mem::take(&mut pending_markers));
                    ev_markers.extend(std::mem::take(&mut markers));
                }
                out.push(Event {
                    start_line: if has_text { start_line } else { line.number },
                    end_line: line.number,
                    text,
                    depth: brace_depth,
                    terminator,
                    in_test: if has_text { in_test } else { line.in_test },
                    allows: std::mem::take(&mut allows),
                    markers: ev_markers,
                });
            } else {
                allows.clear();
            }
            match terminator {
                '{' => brace_depth += 1,
                '}' => brace_depth -= 1,
                _ => {}
            }
            start_line = 0;
            in_test = false;
        }
        if start_line != 0 {
            allows.extend(line.allows.iter().cloned());
            in_test = in_test || line.in_test;
            buf.push(' ');
        }
        last_line = line.number;
    }
    let text = buf.trim().to_string();
    if !text.is_empty() {
        out.push(Event {
            start_line,
            end_line: last_line,
            text,
            depth: brace_depth,
            terminator: ';',
            in_test,
            allows,
            markers,
        });
    }
    out
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameKind {
    Mod,
    Impl,
    Trait,
    Fn,
    Other,
}

#[derive(Debug)]
struct Frame {
    kind: FrameKind,
    open_depth: i64,
    fn_idx: Option<usize>,
}

#[derive(Debug)]
enum Header {
    Fn(String),
    Mod(String),
    Impl(Option<String>),
    Trait(String),
    Other,
}

/// Strips leading attributes (`#[…]`) and visibility from a header.
fn strip_prefix_tokens(text: &str) -> &str {
    let mut rest = text.trim_start();
    loop {
        if let Some(after_hash) = rest.strip_prefix('#') {
            let after_hash = after_hash.trim_start();
            if let Some(inner) = after_hash.strip_prefix('[') {
                // Skip a balanced `[…]` group.
                let mut depth = 1i64;
                let mut cut = None;
                for (i, c) in inner.char_indices() {
                    match c {
                        '[' => depth += 1,
                        ']' => {
                            depth -= 1;
                            if depth == 0 {
                                cut = Some(i + 1);
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                match cut {
                    Some(i) => {
                        rest = inner.get(i..).unwrap_or("").trim_start();
                        continue;
                    }
                    None => return rest,
                }
            }
        }
        if let Some(after) = rest.strip_prefix("pub") {
            let after_trim = after.trim_start();
            if after_trim.starts_with('(') {
                // `pub(crate)` / `pub(in …)`.
                if let Some(close) = after_trim.find(')') {
                    rest = after_trim.get(close + 1..).unwrap_or("").trim_start();
                    continue;
                }
            }
            if after.starts_with(char::is_whitespace) {
                rest = after_trim;
                continue;
            }
        }
        let mut stripped = false;
        for kw in ["const ", "async ", "unsafe ", "default ", "extern \"\" "] {
            if let Some(after) = rest.strip_prefix(kw) {
                rest = after.trim_start();
                stripped = true;
                break;
            }
        }
        if !stripped {
            return rest;
        }
    }
}

fn ident_at_start(text: &str) -> String {
    text.chars().take_while(|&c| is_ident_char(c)).collect()
}

/// First word-boundary occurrence of `word` in `text`.
fn find_word(text: &str, word: &str) -> Option<usize> {
    let mut from = 0usize;
    while let Some(rel) = text.get(from..).and_then(|s| s.find(word)) {
        let pos = from + rel;
        from = pos + word.len();
        if crate::rules::word_boundaries(text, pos, word.len()) {
            return Some(pos);
        }
    }
    None
}

/// Skips a balanced generics group starting at `<`; `->` inside (e.g.
/// `Fn(u32) -> u32` bounds) does not close it.
fn skip_generics(text: &str) -> &str {
    let Some(inner) = text.strip_prefix('<') else { return text };
    let mut depth = 1i64;
    let mut prev = '<';
    for (i, c) in inner.char_indices() {
        match c {
            '<' => depth += 1,
            '>' if prev != '-' && prev != '=' => {
                depth -= 1;
                if depth == 0 {
                    return inner.get(i + 1..).unwrap_or("");
                }
            }
            _ => {}
        }
        prev = c;
    }
    ""
}

/// The last path segment of a type expression: `a::b::Foo<T>` → `Foo`.
fn type_name(expr: &str) -> Option<String> {
    let expr = expr.trim().trim_start_matches('&').trim();
    let head: String = expr
        .chars()
        .take_while(|&c| is_ident_char(c) || c == ':')
        .collect();
    let name = head.rsplit("::").next().unwrap_or("").to_string();
    if name.is_empty() || name.chars().all(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(name)
    }
}

fn classify(text: &str) -> Header {
    let rest = strip_prefix_tokens(text);
    if let Some(after) = rest.strip_prefix("mod ") {
        let name = ident_at_start(after.trim_start());
        if !name.is_empty() {
            return Header::Mod(name);
        }
    }
    if let Some(after) = rest.strip_prefix("trait ") {
        let name = ident_at_start(after.trim_start());
        if !name.is_empty() {
            return Header::Trait(name);
        }
    }
    if rest == "impl" || rest.starts_with("impl ") || rest.starts_with("impl<") {
        let after = rest.get("impl".len()..).unwrap_or("").trim_start();
        let after = skip_generics(after).trim_start();
        let target = match after.split_once(" for ") {
            Some((_, t)) => t,
            None => after,
        };
        return Header::Impl(type_name(target));
    }
    if let Some(after) = rest.strip_prefix("fn ") {
        let name = ident_at_start(after.trim_start());
        if !name.is_empty() {
            return Header::Fn(name);
        }
    }
    Header::Other
}

const SNIPPET_MAX: usize = 110;

fn snippet_of(lines: &[SourceLine], line_no: usize) -> String {
    lines
        .iter()
        .find(|l| l.number == line_no)
        .map(|l| {
            let t = l.raw.trim();
            let mut s: String = t.chars().take(SNIPPET_MAX).collect();
            if s.len() < t.len() {
                s.push('…');
            }
            s
        })
        .unwrap_or_default()
}

/// Keywords that look like bare calls but are not.
const CALL_KEYWORDS: [&str; 16] = [
    "if", "while", "for", "match", "loop", "return", "in", "as", "move", "fn", "let", "else",
    "unsafe", "ref", "await", "box",
];

/// Extracts call sites from one statement's stripped text.
pub fn extract_calls(text: &str, line: usize) -> Vec<Call> {
    let chars: Vec<char> = text.chars().collect();
    let mut out = Vec::new();
    let at = |k: usize| chars.get(k).copied();
    for i in 0..chars.len() {
        if at(i) != Some('(') || i == 0 {
            continue;
        }
        let Some(prev) = at(i - 1) else { continue };
        if !is_ident_char(prev) {
            continue;
        }
        // Scan back over the callee identifier.
        let mut s = i;
        while s > 0 && at(s - 1).map(is_ident_char).unwrap_or(false) {
            s -= 1;
        }
        let name: String = chars.get(s..i).map(|cs| cs.iter().collect()).unwrap_or_default();
        if name.is_empty() || name.chars().next().map(|c| c.is_ascii_digit()).unwrap_or(true) {
            continue;
        }
        let before = if s > 0 { at(s - 1) } else { None };
        match before {
            Some('!') => {} // macro invocation
            Some('.') => {
                // Method call: capture a trivial receiver ident.
                let mut r = s - 1;
                while r > 0 && at(r - 1).map(is_ident_char).unwrap_or(false) {
                    r -= 1;
                }
                let recv: String =
                    chars.get(r..s - 1).map(|cs| cs.iter().collect()).unwrap_or_default();
                let receiver = if recv.is_empty()
                    || recv.chars().next().map(|c| c.is_ascii_digit()).unwrap_or(true)
                    || (r > 0 && at(r - 1) == Some('.'))
                {
                    None
                } else {
                    Some(recv)
                };
                out.push(Call { kind: CallKind::Method, segments: vec![name], receiver, line });
            }
            Some(':') if s >= 2 && at(s - 2) == Some(':') => {
                // Path call: walk back `seg::seg::name`.
                let mut segments = vec![name];
                let mut k = s;
                while k >= 2 && at(k - 1) == Some(':') && at(k - 2) == Some(':') {
                    let mut e = k - 2;
                    while e > 0 && at(e - 1).map(is_ident_char).unwrap_or(false) {
                        e -= 1;
                    }
                    let seg: String =
                        chars.get(e..k - 2).map(|cs| cs.iter().collect()).unwrap_or_default();
                    if seg.is_empty() {
                        break;
                    }
                    segments.push(seg);
                    k = e;
                }
                segments.reverse();
                out.push(Call { kind: CallKind::Path, segments, receiver: None, line });
            }
            _ => {
                let first_upper =
                    name.chars().next().map(|c| c.is_ascii_uppercase()).unwrap_or(false);
                if !first_upper && !CALL_KEYWORDS.contains(&name.as_str()) {
                    out.push(Call { kind: CallKind::Bare, segments: vec![name], receiver: None, line });
                }
            }
        }
    }
    out
}

/// Reads the `&str` literal value of a const declaration back from raw
/// source (the stripped text has the contents blanked).
fn const_value(lines: &[SourceLine], start: usize, end: usize) -> Option<String> {
    let mut raw = String::new();
    for l in lines.iter().filter(|l| l.number >= start && l.number <= end) {
        raw.push_str(&l.raw);
        raw.push('\n');
    }
    let eq = raw.find('=')?;
    let after = raw.get(eq + 1..)?;
    let open = after.find('"')?;
    let body = after.get(open + 1..)?;
    let close = body.find('"')?;
    body.get(..close).map(|s| s.to_string())
}

/// Extracts items from one first-party file.
pub fn extract(ctx: &FileContext, lines: &[SourceLine]) -> FileItems {
    let base_module = module_path_of(&ctx.path, &ctx.crate_name);
    let mut out = FileItems {
        path: ctx.path.clone(),
        crate_name: ctx.crate_name.clone(),
        fns: Vec::new(),
        consts: Vec::new(),
        code_text: String::new(),
    };
    for line in lines {
        out.code_text.push_str(&line.code);
        out.code_text.push('\n');
    }

    let mut stack: Vec<Frame> = Vec::new();
    let mut module_stack: Vec<String> = base_module;

    let innermost = |stack: &[Frame]| -> Option<usize> {
        stack.iter().rev().find_map(|f| if f.kind == FrameKind::Fn { f.fn_idx } else { None })
    };
    // Self types of impl/trait frames, parallel to `stack`.
    let mut frame_self_tys: Vec<Option<String>> = Vec::new();

    // Self type visible at the current point: the innermost impl/trait not
    // hidden behind a nested free fn.
    let current_self_ty = |stack: &[Frame], tys: &[Option<String>]| -> Option<String> {
        for (f, ty) in stack.iter().zip(tys.iter()).rev() {
            match f.kind {
                FrameKind::Fn => return None,
                FrameKind::Impl | FrameKind::Trait => return ty.clone(),
                _ => {}
            }
        }
        None
    };

    for ev in events(lines) {
        match ev.terminator {
            '{' => {
                let header = if ev.text.is_empty() { Header::Other } else { classify(&ev.text) };
                let (kind, fn_idx, self_ty) = match header {
                    Header::Fn(name) => {
                        let has_self = has_word(&ev.text, "self");
                        let self_ty = current_self_ty(&stack, &frame_self_tys);
                        out.fns.push(FnItem {
                            name,
                            self_ty,
                            has_self,
                            module: module_stack.clone(),
                            decl_line: ev.start_line,
                            in_test: ev.in_test,
                            hot: ev.markers.contains("hot"),
                            entry: ev.markers.contains("entry"),
                            stmts: Vec::new(),
                        });
                        (FrameKind::Fn, Some(out.fns.len() - 1), None)
                    }
                    Header::Mod(name) => {
                        module_stack.push(name);
                        (FrameKind::Mod, None, None)
                    }
                    Header::Impl(ty) => (FrameKind::Impl, None, ty),
                    Header::Trait(name) => (FrameKind::Trait, None, Some(name)),
                    Header::Other => {
                        // Block headers (`if …`, `match …`, closures) are
                        // body statements of the enclosing fn.
                        if let Some(idx) = innermost(&stack) {
                            push_stmt(&mut out.fns, idx, &ev, lines);
                        }
                        (FrameKind::Other, None, None)
                    }
                };
                stack.push(Frame { kind, open_depth: ev.depth, fn_idx });
                frame_self_tys.push(self_ty);
            }
            '}' => {
                if !ev.text.is_empty() {
                    if let Some(idx) = innermost(&stack) {
                        push_stmt(&mut out.fns, idx, &ev, lines);
                    }
                }
                while stack.last().map(|f| f.open_depth == ev.depth - 1).unwrap_or(false) {
                    if let Some(f) = stack.pop() {
                        if f.kind == FrameKind::Mod {
                            module_stack.pop();
                        }
                    }
                    frame_self_tys.pop();
                }
            }
            _ => {
                if let Some(idx) = innermost(&stack) {
                    push_stmt(&mut out.fns, idx, &ev, lines);
                } else if stack.last().map(|f| f.kind == FrameKind::Trait).unwrap_or(false) {
                    // Trait required method: `fn f(…);` — bodyless item.
                    if let Header::Fn(name) = classify(&ev.text) {
                        let self_ty = current_self_ty(&stack, &frame_self_tys);
                        out.fns.push(FnItem {
                            name,
                            self_ty,
                            has_self: has_word(&ev.text, "self"),
                            module: module_stack.clone(),
                            decl_line: ev.start_line,
                            in_test: ev.in_test,
                            hot: ev.markers.contains("hot"),
                            entry: ev.markers.contains("entry"),
                            stmts: Vec::new(),
                        });
                    }
                } else {
                    // Module-level statement: look for a `&str` const.
                    // (`strip_prefix_tokens` eats the `const` keyword, so
                    // anchor on the word in the original text instead.)
                    if let Some(found) = find_word(&ev.text, "const") {
                        let after = ev.text.get(found + "const".len()..).unwrap_or("");
                        let name = ident_at_start(after.trim_start());
                        let tail = after.trim_start().get(name.len()..).unwrap_or("");
                        if !name.is_empty()
                            && tail.trim_start().starts_with(':')
                            && tail.contains("str")
                            && tail.contains('=')
                        {
                            if let Some(value) = const_value(lines, ev.start_line, ev.end_line) {
                                out.consts.push(ConstStr {
                                    name,
                                    value,
                                    line: ev.start_line,
                                    in_test: ev.in_test,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

fn push_stmt(fns: &mut [FnItem], idx: usize, ev: &Event, lines: &[SourceLine]) {
    let calls = extract_calls(&ev.text, ev.start_line);
    if let Some(f) = fns.get_mut(idx) {
        f.stmts.push(BodyStmt {
            line: ev.start_line,
            text: ev.text.clone(),
            depth: ev.depth,
            terminator: ev.terminator,
            in_test: ev.in_test,
            allows: ev.allows.clone(),
            snippet: snippet_of(lines, ev.start_line),
            calls,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn ctx() -> FileContext {
        FileContext {
            path: "crates/demo/src/lib.rs".into(),
            crate_name: "demo".into(),
            is_vendor: false,
            is_bin: false,
            is_harness: false,
        }
    }

    #[test]
    fn module_paths() {
        assert_eq!(module_path_of("crates/ned-kb/src/vocab.rs", "ned-kb"), vec!["ned_kb", "vocab"]);
        assert_eq!(module_path_of("crates/ned-kb/src/lib.rs", "ned-kb"), vec!["ned_kb"]);
        assert_eq!(module_path_of("src/lib.rs", "aida-ned"), vec!["aida_ned"]);
        assert_eq!(
            module_path_of("crates/ned-bench/src/bin/annotate.rs", "ned-bench"),
            vec!["ned_bench", "bin", "annotate"]
        );
        assert_eq!(
            module_path_of("crates/x/src/store/mod.rs", "x"),
            vec!["x", "store"]
        );
    }

    #[test]
    fn extracts_free_fns_methods_and_traits() {
        let src = "\
pub fn free(x: u32) -> u32 { helper(x) }
fn helper(x: u32) -> u32 { x }
pub struct Foo;
impl Foo {
    pub fn method(&self) -> u32 { free(1) }
    pub fn assoc() -> u32 { 2 }
}
pub trait Bar {
    fn required(&self) -> u32;
    fn provided(&self) -> u32 { 3 }
}
impl Bar for Foo {
    fn required(&self) -> u32 { self.method() }
}
";
        let items = extract(&ctx(), &scan(src));
        let names: Vec<(String, Option<String>, bool)> =
            items.fns.iter().map(|f| (f.name.clone(), f.self_ty.clone(), f.has_self)).collect();
        assert_eq!(
            names,
            vec![
                ("free".into(), None, false),
                ("helper".into(), None, false),
                ("method".into(), Some("Foo".into()), true),
                ("assoc".into(), Some("Foo".into()), false),
                ("required".into(), Some("Bar".into()), true),
                ("provided".into(), Some("Bar".into()), true),
                ("required".into(), Some("Foo".into()), true),
            ]
        );
        let free = &items.fns[0];
        assert_eq!(free.module, vec!["demo"]);
        assert_eq!(free.stmts.len(), 1);
        assert_eq!(free.stmts[0].calls, vec![Call {
            kind: CallKind::Bare,
            segments: vec!["helper".into()],
            receiver: None,
            line: 1,
        }]);
    }

    #[test]
    fn markers_attach_to_next_fn() {
        let src = "\
// ned-lint: hot
pub fn scorer() -> u32 { 1 }

/// Docs in between do not clear a marker.
// ned-lint: entry
#[inline]
pub fn root() -> u32 { 2 }

pub fn plain() -> u32 { 3 }
";
        let items = extract(&ctx(), &scan(src));
        assert!(items.fns[0].hot && !items.fns[0].entry);
        assert!(items.fns[1].entry && !items.fns[1].hot);
        assert!(!items.fns[2].hot && !items.fns[2].entry);
    }

    #[test]
    fn inner_mod_frames_extend_the_module_path() {
        let src = "\
pub mod inner {
    pub fn f() -> u32 { 1 }
}
pub fn outer() -> u32 { 2 }
";
        let items = extract(&ctx(), &scan(src));
        assert_eq!(items.fns[0].module, vec!["demo", "inner"]);
        assert_eq!(items.fns[1].module, vec!["demo"]);
    }

    #[test]
    fn call_kinds() {
        let calls = extract_calls(
            "let x = free(1) + path::to::thing(2) + Self::assoc(3) + recv.method(4) + mac!(5)",
            7,
        );
        assert_eq!(
            calls,
            vec![
                Call { kind: CallKind::Bare, segments: vec!["free".into()], receiver: None, line: 7 },
                Call {
                    kind: CallKind::Path,
                    segments: vec!["path".into(), "to".into(), "thing".into()],
                    receiver: None,
                    line: 7
                },
                Call {
                    kind: CallKind::Path,
                    segments: vec!["Self".into(), "assoc".into()],
                    receiver: None,
                    line: 7
                },
                Call {
                    kind: CallKind::Method,
                    segments: vec!["method".into()],
                    receiver: Some("recv".into()),
                    line: 7
                },
            ]
        );
    }

    #[test]
    fn keywords_and_constructors_are_not_bare_calls() {
        let calls = extract_calls("if check(x) { return Some(y) } else { Ok(z) }", 1);
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].segments, vec!["check"]);
    }

    #[test]
    fn consts_parse_with_values_from_raw() {
        let src = "/// Doc.\npub const AIDA_DOCS: &str = \"aida_docs\";\nconst OTHER: usize = 3;\n";
        let items = extract(&ctx(), &scan(src));
        assert_eq!(items.consts.len(), 1);
        assert_eq!(items.consts[0].name, "AIDA_DOCS");
        assert_eq!(items.consts[0].value, "aida_docs");
        assert_eq!(items.consts[0].line, 2);
    }

    #[test]
    fn trait_required_methods_are_recorded_bodyless() {
        let src = "pub trait T {\n    fn f(&self, x: u32) -> u32;\n}\n";
        let items = extract(&ctx(), &scan(src));
        assert_eq!(items.fns.len(), 1);
        assert_eq!(items.fns[0].name, "f");
        assert_eq!(items.fns[0].self_ty.as_deref(), Some("T"));
        assert!(items.fns[0].stmts.is_empty());
    }
}
