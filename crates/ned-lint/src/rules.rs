//! The five workspace invariant rules.
//!
//! All rules operate on comment/literal-stripped statements produced from
//! [`crate::scanner`] lines. They are heuristic by design — a line scanner
//! cannot resolve types across crates — so every rule errs toward flagging
//! at the *source* of a risk (e.g. the definition of an accessor that
//! exposes hash-map iteration order) and supports inline
//! `// ned-lint: allow(rule)` suppressions plus the `lint.toml` baseline
//! ratchet for reviewed sites.

use std::collections::BTreeSet;

use crate::scanner::SourceLine;

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Hash-map/set iteration order flowing into output.
    D1,
    /// Float ordering via `partial_cmp` instead of `total_cmp`.
    D2,
    /// Wall-clock or unseeded randomness in non-bench code.
    D3,
    /// Panicking constructs (indexing, `panic!`) in library code.
    P1,
    /// `unsafe` code in first-party crates.
    U1,
    /// Panicking construct reachable from a declared entry root.
    P2,
    /// Allocating construct reachable from a hot-path root.
    H1,
    /// Lock guard held across a call into another first-party module.
    C1,
    /// Metric name not routed through `ned_obs::names`.
    M1,
}

impl Rule {
    /// All rules, in report order.
    pub const ALL: [Rule; 9] = [
        Rule::D1,
        Rule::D2,
        Rule::D3,
        Rule::P1,
        Rule::U1,
        Rule::P2,
        Rule::H1,
        Rule::C1,
        Rule::M1,
    ];

    /// Stable lowercase id used in suppressions and the baseline.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "d1",
            Rule::D2 => "d2",
            Rule::D3 => "d3",
            Rule::P1 => "p1",
            Rule::U1 => "u1",
            Rule::P2 => "p2",
            Rule::H1 => "h1",
            Rule::C1 => "c1",
            Rule::M1 => "m1",
        }
    }

    /// One-line description shown in reports.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::D1 => "hash-map/set iteration order flows to output (sort first or use a BTree collection)",
            Rule::D2 => "float ordering via partial_cmp (use f64::total_cmp for a total order)",
            Rule::D3 => "wall-clock or unseeded randomness in deterministic code",
            Rule::P1 => "panicking construct (indexing / panic!) in library code; prefer .get() or typed errors",
            Rule::U1 => "unsafe code is forbidden in first-party crates",
            Rule::P2 => "panicking construct reachable from an entry root (see --explain rule:file:line for the call chain)",
            Rule::H1 => "allocating construct reachable from a hot-path root (route through ScoringScratch or allow inline)",
            Rule::C1 => "lock guard held across a call into another first-party module (shrink the critical section)",
            Rule::M1 => "metric name not routed through ned_obs::names (literal at registry call, unused or duplicate constant)",
        }
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// For interprocedural rules: the shortest root → site call chain
    /// (one rendered hop per element). Empty for lexical rules.
    pub chain: Vec<String>,
}

/// Where a file sits in the workspace; controls which rules apply.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// Crate name (directory under `crates/`, `vendor/`, or the root crate).
    pub crate_name: String,
    /// True for `vendor/*` crates (only U1 counting applies).
    pub is_vendor: bool,
    /// True for binary targets (`src/bin/*`, `main.rs`): P1 is relaxed.
    pub is_bin: bool,
    /// True for benchmark-harness crates: D3 and P1 are relaxed.
    pub is_harness: bool,
}

/// A statement: contiguous code between `;` / `{` / `}` boundaries.
#[derive(Debug)]
struct Stmt {
    start_line: usize,
    text: String,
    /// Brace depth before the statement's terminator applies.
    depth: i64,
    /// `;`, `{`, or `}` — what ended the statement.
    terminator: char,
    in_test: bool,
    allows: BTreeSet<String>,
}

pub(crate) fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Assembles scanned lines into statements.
fn assemble(lines: &[SourceLine]) -> Vec<Stmt> {
    let mut stmts = Vec::new();
    let mut buf = String::new();
    let mut start_line = 0usize;
    let mut in_test = false;
    let mut allows: BTreeSet<String> = BTreeSet::new();
    let mut brace_depth: i64 = 0;
    let mut bracket_depth: i64 = 0;

    let flush = |buf: &mut String,
                     stmts: &mut Vec<Stmt>,
                     start_line: &mut usize,
                     in_test: &mut bool,
                     allows: &mut BTreeSet<String>,
                     depth: i64,
                     terminator: char| {
        if !buf.trim().is_empty() {
            stmts.push(Stmt {
                start_line: *start_line,
                text: std::mem::take(buf).trim().to_string(),
                depth,
                terminator,
                in_test: *in_test,
                allows: std::mem::take(allows),
            });
        } else {
            buf.clear();
            allows.clear();
        }
        *start_line = 0;
        *in_test = false;
    };

    for line in lines {
        // A suppression on the line above a statement's first line counts.
        for c in line.code.chars() {
            if start_line == 0 && !c.is_whitespace() {
                start_line = line.number;
                in_test = line.in_test;
                // Pull in allows from this line and the previous one.
                allows.extend(line.allows.iter().cloned());
            }
            match c {
                '(' | '[' => {
                    bracket_depth += 1;
                    buf.push(c);
                }
                ')' | ']' => {
                    bracket_depth -= 1;
                    buf.push(c);
                }
                '{' if bracket_depth == 0 => {
                    flush(&mut buf, &mut stmts, &mut start_line, &mut in_test, &mut allows, brace_depth, '{');
                    brace_depth += 1;
                }
                '}' if bracket_depth == 0 => {
                    flush(&mut buf, &mut stmts, &mut start_line, &mut in_test, &mut allows, brace_depth, '}');
                    brace_depth -= 1;
                }
                ';' if bracket_depth == 0 => {
                    flush(&mut buf, &mut stmts, &mut start_line, &mut in_test, &mut allows, brace_depth, ';');
                }
                _ => buf.push(c),
            }
        }
        if start_line != 0 {
            // Statement spans lines: keep accumulating allows/test flags.
            allows.extend(line.allows.iter().cloned());
            in_test = in_test || line.in_test;
            buf.push(' ');
        }
    }
    flush(&mut buf, &mut stmts, &mut start_line, &mut in_test, &mut allows, brace_depth, ';');
    stmts
}

/// Always-panicking macro calls (shared by the lexical P1 rule and the
/// interprocedural P2 rule).
pub(crate) const PANICKY: [&str; 4] = ["panic!(", "unreachable!(", "todo!(", "unimplemented!("];

const HASH_TYPES: [&str; 4] = ["FxHashMap", "FxHashSet", "HashMap", "HashSet"];
const ITER_METHODS: [&str; 10] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
    ".par_iter()",
];

/// Identifiers bound to hash-map/set types anywhere in the file
/// (annotations, struct fields, params, `= FxHashMap::default()`, …).
fn hash_idents(stmts: &[Stmt]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for stmt in stmts {
        let text = &stmt.text;
        for ty in HASH_TYPES {
            let mut from = 0usize;
            while let Some(rel) = text.get(from..).and_then(|s| s.find(ty)) {
                let pos = from + rel;
                from = pos + ty.len();
                // Reject substring matches like `MyHashMapLike`.
                if !word_boundaries(text, pos, ty.len()) {
                    continue;
                }
                if let Some(name) = binding_before(text, pos) {
                    out.insert(name);
                }
            }
        }
    }
    out
}

/// Identifiers bound to float values (`let x = 0.0`, `x: f64`, …).
fn float_idents(stmts: &[Stmt]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for stmt in stmts {
        let text = &stmt.text;
        for ty in ["f64", "f32"] {
            let mut from = 0usize;
            while let Some(rel) = text.get(from..).and_then(|s| s.find(ty)) {
                let pos = from + rel;
                from = pos + ty.len();
                if !word_boundaries(text, pos, ty.len()) {
                    continue;
                }
                if let Some(name) = binding_before(text, pos) {
                    out.insert(name);
                }
            }
        }
        // `let [mut] x = <float literal>` — e.g. `let mut dot = 0.0;`
        if let Some(rest) = text.strip_prefix("let ") {
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            if let Some(eq) = rest.find('=') {
                let name = rest.get(..eq).unwrap_or("").trim();
                let rhs = rest.get(eq + 1..).unwrap_or("").trim();
                if name.chars().all(is_ident_char)
                    && !name.is_empty()
                    && looks_like_float_literal(rhs)
                {
                    out.insert(name.to_string());
                }
            }
        }
    }
    out
}

fn looks_like_float_literal(rhs: &str) -> bool {
    let tok: String = rhs.chars().take_while(|&c| !c.is_whitespace() && c != ';').collect();
    let mut seen_dot = false;
    let mut seen_digit = false;
    for c in tok.chars() {
        match c {
            '0'..='9' | '_' => seen_digit = true,
            '.' if !seen_dot => seen_dot = true,
            '-' if !seen_digit => {}
            _ => return false,
        }
    }
    seen_digit && seen_dot
}

/// Finds the identifier a type token at `pos` is bound to: the ident before
/// the nearest preceding `:` or `=`, allowing only trivial tokens
/// (whitespace, `&`, `mut`, lifetimes, `path::` prefixes) in between.
fn binding_before(text: &str, pos: usize) -> Option<String> {
    let b: Vec<char> = text.get(..pos)?.chars().collect();
    let at = |k: usize| k.checked_sub(1).and_then(|k| b.get(k).copied());
    let mut j = b.len();
    // Walk left over a `seg::seg::` path prefix.
    while at(j) == Some(':') && at(j.saturating_sub(1)) == Some(':') {
        j = j.saturating_sub(2);
        while at(j).map(is_ident_char).unwrap_or(false) {
            j -= 1;
        }
    }
    // Walk left over trivial tokens: whitespace, `&`, `mut`, lifetimes.
    loop {
        while at(j).map(char::is_whitespace).unwrap_or(false) {
            j -= 1;
        }
        if at(j) == Some('&') {
            j -= 1;
            continue;
        }
        if j >= 3
            && at(j) == Some('t')
            && at(j - 1) == Some('u')
            && at(j - 2) == Some('m')
            && !at(j - 3).map(is_ident_char).unwrap_or(false)
        {
            j -= 3;
            continue;
        }
        if at(j).map(is_ident_char).unwrap_or(false) {
            // A lifetime like `'a` is trivial; a plain ident is not.
            let mut k = j;
            while at(k).map(is_ident_char).unwrap_or(false) {
                k -= 1;
            }
            if at(k) == Some('\'') {
                j = k - 1;
                continue;
            }
        }
        break;
    }
    // Expect the separator here.
    let sep = at(j)?;
    if sep != ':' && sep != '=' {
        return None;
    }
    j -= 1;
    // `::` means we are still inside a path; `==`/`=>`/`<=`… are operators.
    if sep == ':' && at(j) == Some(':') {
        return None;
    }
    if sep == '=' && matches!(at(j), Some('=' | '!' | '<' | '>' | '+' | '-' | '*' | '/')) {
        return None;
    }
    while at(j).map(char::is_whitespace).unwrap_or(false) {
        j -= 1;
    }
    let mut name = String::new();
    while at(j).map(is_ident_char).unwrap_or(false) {
        if let Some(c) = at(j) {
            name.push(c);
        }
        j -= 1;
    }
    let name: String = name.chars().rev().collect();
    if name.is_empty() || name.chars().next().map(|c| c.is_ascii_digit()).unwrap_or(true) {
        return None;
    }
    const KEYWORDS: [&str; 10] =
        ["let", "mut", "pub", "fn", "impl", "where", "if", "in", "for", "return"];
    if KEYWORDS.contains(&name.as_str()) {
        return None;
    }
    Some(name)
}

/// The identifier immediately before a method-call token at `pos`
/// (e.g. receiver of `.iter()`); takes the last path segment.
fn receiver_before(text: &str, pos: usize) -> Option<String> {
    let head = text.get(..pos)?;
    let mut name: String = head
        .chars()
        .rev()
        .take_while(|&c| is_ident_char(c))
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    if name.is_empty() {
        // Call-result receiver like `foo().iter()` — unknown type.
        return None;
    }
    if name == "self" {
        name.clear();
    }
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Tokens that make hash iteration order irrelevant within a statement.
fn has_neutralizer(text: &str) -> bool {
    const NEUTRAL: [&str; 19] = [
        "sort",
        "BTreeMap",
        "BTreeSet",
        ".count()",
        ".len()",
        ".product",
        ".any(",
        ".all(",
        ".contains",
        ".is_empty()",
        "collect::<HashMap",
        "collect::<HashSet",
        "collect::<FxHashMap",
        "collect::<FxHashSet",
        ".max(",
        ".min(",
        "det_sum",
        "det_dot",
        "det_l2_norm",
    ];
    if NEUTRAL.iter().any(|t| text.contains(t)) {
        return true;
    }
    // Plain sums/folds are commutative for integers; float sums are ordered.
    if text.contains(".sum") && !text.contains(".sum::<f64") && !text.contains(".sum::<f32") {
        return true;
    }
    if (text.contains(".max_by") || text.contains(".min_by")) && text.contains("cmp") {
        return true;
    }
    // Collecting back into a hash container (type annotation form).
    if text.contains(": HashMap<")
        || text.contains(": FxHashMap<")
        || text.contains(": HashSet<")
        || text.contains(": FxHashSet<")
    {
        return true;
    }
    false
}

/// Tokens that make a statement's result order-observable.
fn has_order_sink(text: &str, terminator: char) -> bool {
    const SINKS: [&str; 11] = [
        ".push(",
        ".push_str(",
        ".extend(",
        "return ",
        "write!",
        "writeln!",
        "print!",
        "println!",
        "format!",
        ".join(",
        ".find(",
    ];
    if SINKS.iter().any(|t| text.contains(t)) {
        return true;
    }
    if text.contains(".collect") || text.contains(".sum::<f64") || text.contains(".sum::<f32") {
        return true;
    }
    // Trailing expression (block value / implicit return).
    terminator == '}'
}

/// Does `stmt` iterate a known hash container? Returns the match position.
fn hash_iteration(text: &str, hashes: &BTreeSet<String>) -> Option<usize> {
    for m in ITER_METHODS {
        let mut from = 0usize;
        while let Some(rel) = text.get(from..).and_then(|s| s.find(m)) {
            let pos = from + rel;
            from = pos + m.len();
            if let Some(recv) = receiver_before(text, pos) {
                if hashes.contains(&recv) {
                    return Some(pos);
                }
            }
        }
    }
    None
}

/// For a `for`-loop header, the iterated expression (`for pat in EXPR {`).
fn for_iterable(text: &str) -> Option<&str> {
    let rest = text.strip_prefix("for ")?;
    let in_pos = rest.find(" in ")?;
    Some(rest.get(in_pos + 4..)?.trim())
}

/// True when a loop-body statement cannot observe iteration order:
/// hash-entry updates, per-element scaling, and bare control flow.
fn body_stmt_is_order_neutral(text: &str, floats: &BTreeSet<String>) -> bool {
    let t = text.trim();
    if t.is_empty() || t == "else" {
        return true;
    }
    for kw in ["if ", "if(", "while ", "match ", "else if ", "for "] {
        if t.starts_with(kw) {
            return true;
        }
    }
    if t.contains(".entry(") || t.contains(".insert(") || t.contains(".remove(") {
        return true;
    }
    // Sorting each element independently does not observe the outer order.
    if t.contains(".sort") || t.contains(".dedup") {
        return true;
    }
    if t.contains("*=") || t.contains("/=") {
        return true;
    }
    if t.contains("+=") || t.contains("-=") {
        // Integer accumulation commutes; float accumulation does not.
        let lhs = t.split(['+', '-']).next().unwrap_or("");
        let lhs_ident: String = lhs
            .trim()
            .trim_start_matches('*')
            .chars()
            .take_while(|&c| is_ident_char(c) || c == '.')
            .collect();
        let last = lhs_ident.rsplit('.').next().unwrap_or("");
        return !floats.contains(last);
    }
    if t.starts_with("continue") {
        return true;
    }
    false
}

/// Targets of `.push(` calls inside a statement list.
fn push_targets(stmts: &[&Stmt]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for stmt in stmts {
        let mut from = 0usize;
        while let Some(rel) = stmt.text.get(from..).and_then(|s| s.find(".push(")) {
            let pos = from + rel;
            from = pos + ".push(".len();
            if let Some(recv) = receiver_before(&stmt.text, pos) {
                out.insert(recv);
            }
        }
    }
    out
}

/// The `let [mut] NAME` binding of a statement, if any.
pub(crate) fn let_binding(text: &str) -> Option<String> {
    let rest = text.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// How many following statements to search for a rescuing `X.sort…` call.
const SORT_LOOKAHEAD: usize = 8;

fn sorted_later(stmts: &[Stmt], from: usize, target: &str) -> bool {
    let pat_a = format!("{target}.sort");
    let pat_b = format!("{target}.dedup");
    stmts
        .iter()
        .skip(from)
        .take(SORT_LOOKAHEAD)
        .any(|s| s.text.contains(&pat_a) || s.text.contains(&pat_b))
}

/// Runs all applicable rules over one file's scanned lines.
pub fn check_file(ctx: &FileContext, lines: &[SourceLine]) -> Vec<Finding> {
    let stmts = assemble(lines);
    let hashes = hash_idents(&stmts);
    let floats = float_idents(&stmts);
    let mut findings = Vec::new();

    let snippet_of = |line_no: usize| -> String {
        lines
            .iter()
            .find(|l| l.number == line_no)
            .map(|l| {
                let t = l.raw.trim();
                let mut s: String = t.chars().take(110).collect();
                if s.len() < t.len() {
                    s.push('…');
                }
                s
            })
            .unwrap_or_default()
    };

    let emit = |rule: Rule, stmt: &Stmt, findings: &mut Vec<Finding>| {
        if stmt.allows.contains(rule.id()) {
            return;
        }
        findings.push(Finding {
            path: ctx.path.clone(),
            line: stmt.start_line,
            rule,
            snippet: snippet_of(stmt.start_line),
            chain: Vec::new(),
        });
    };

    for (idx, stmt) in stmts.iter().enumerate() {
        if ctx.is_vendor {
            break; // vendor crates get the U1 count table only (see walk).
        }
        let text = &stmt.text;

        // --- U1: applies everywhere in first-party code, tests included.
        if has_word(text, "unsafe") {
            emit(Rule::U1, stmt, &mut findings);
        }

        if stmt.in_test {
            continue;
        }

        // --- D2: float ordering through partial_cmp.
        if text.contains(".partial_cmp(") && !text.contains("fn partial_cmp") {
            emit(Rule::D2, stmt, &mut findings);
        }

        // --- D3: wall clock / ambient randomness outside bench harnesses.
        if !ctx.is_harness {
            const CLOCKY: [&str; 6] = [
                "Instant::now",
                "SystemTime::now",
                "thread_rng(",
                "from_entropy(",
                "rand::random",
                "getrandom(",
            ];
            if CLOCKY.iter().any(|t| text.contains(t)) {
                emit(Rule::D3, stmt, &mut findings);
            }
        }

        // --- P1: panicking constructs in library code.
        if !ctx.is_harness && !ctx.is_bin {
            if PANICKY.iter().any(|t| text.contains(t)) && !text.contains("catch_unwind") {
                emit(Rule::P1, stmt, &mut findings);
            }
            if has_indexing(text) {
                emit(Rule::P1, stmt, &mut findings);
            }
        }

        // --- D1: hash iteration order escaping into output.
        if let Some(iterable) = for_iterable(text) {
            let is_hash_loop = hash_iteration(iterable, &hashes).is_some() || {
                let plain = iterable.trim_start_matches(['&', '(']).trim();
                let plain = plain.strip_prefix("mut ").unwrap_or(plain);
                let last = plain.rsplit('.').next().unwrap_or(plain);
                plain.chars().all(|c| is_ident_char(c) || c == '.')
                    && hashes.contains(last)
            };
            if is_hash_loop && !has_neutralizer(iterable) {
                // Collect the loop body (statements at deeper brace depth).
                let body: Vec<&Stmt> = stmts
                    .iter()
                    .skip(idx + 1)
                    .take_while(|s| s.depth > stmt.depth)
                    .collect();
                let body_end = idx + 1 + body.len();
                let body_neutral =
                    body.iter().all(|s| body_stmt_is_order_neutral(&s.text, &floats));
                if !body_neutral {
                    // Rescue: everything the body pushes is sorted right
                    // after the loop.
                    let targets = push_targets(&body);
                    let rescued = !targets.is_empty()
                        && targets.iter().all(|t| sorted_later(&stmts, body_end, t));
                    if !rescued {
                        emit(Rule::D1, stmt, &mut findings);
                    }
                }
            }
        } else if let Some(_pos) = hash_iteration(text, &hashes) {
            if !has_neutralizer(text) && has_order_sink(text, stmt.terminator) {
                let rescued = match let_binding(text) {
                    Some(name) => sorted_later(&stmts, idx + 1, &name),
                    None => false,
                };
                if !rescued {
                    emit(Rule::D1, stmt, &mut findings);
                }
            }
        }
    }
    findings
}

/// Counts `unsafe` keyword occurrences (used for the vendor report table).
pub fn count_unsafe(lines: &[SourceLine]) -> usize {
    lines.iter().map(|l| count_word(&l.code, "unsafe")).sum()
}

pub(crate) fn has_word(text: &str, word: &str) -> bool {
    count_word(text, word) > 0
}

fn count_word(text: &str, word: &str) -> usize {
    let mut n = 0usize;
    let mut from = 0usize;
    while let Some(rel) = text.get(from..).and_then(|s| s.find(word)) {
        let pos = from + rel;
        from = pos + word.len();
        if word_boundaries(text, pos, word.len()) {
            n += 1;
        }
    }
    n
}

/// True when the byte range `[pos, pos + len)` is delimited by non-ident
/// characters on both sides.
pub(crate) fn word_boundaries(text: &str, pos: usize, len: usize) -> bool {
    let before_ok = pos == 0
        || !text
            .get(..pos)
            .and_then(|s| s.chars().next_back())
            .map(is_ident_char)
            .unwrap_or(false);
    let after_ok = text
        .get(pos + len..)
        .and_then(|s| s.chars().next())
        .map(|c| !is_ident_char(c))
        .unwrap_or(true);
    before_ok && after_ok
}

/// Detects slice/array indexing `expr[…]` that can panic. Skips attribute
/// lines, macro brackets (`vec![…]`), full-range slices `[..]`, and array
/// type syntax.
pub(crate) fn has_indexing(text: &str) -> bool {
    let t = text.trim();
    if t.starts_with('#') {
        return false;
    }
    let chars: Vec<char> = t.chars().collect();
    for (i, win) in chars.windows(2).enumerate() {
        let [prev, c] = win else { continue };
        if *c != '[' {
            continue;
        }
        // Only `expr[…]` can panic; `![…]` is a macro, `<[…]`/`&[…]` are
        // type/slice syntax.
        if !(is_ident_char(*prev) || *prev == ')' || *prev == ']') {
            continue;
        }
        // Full-range slice `x[..]` never panics.
        let rest: String = chars.iter().skip(i + 2).collect();
        if rest.trim_start().starts_with("..]") {
            continue;
        }
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn ctx() -> FileContext {
        FileContext {
            path: "crates/x/src/lib.rs".into(),
            crate_name: "x".into(),
            is_vendor: false,
            is_bin: false,
            is_harness: false,
        }
    }

    fn run(src: &str) -> Vec<Finding> {
        check_file(&ctx(), &scan(src))
    }

    #[test]
    fn d1_for_loop_push_without_sort_fires() {
        let src = "fn f(m: &FxHashMap<u32, u32>) -> Vec<u32> {\n    let mut out = Vec::new();\n    for (k, v) in m.iter() {\n        out.push(*v);\n    }\n    out\n}\n";
        let f = run(src);
        assert!(f.iter().any(|f| f.rule == Rule::D1), "{f:?}");
    }

    #[test]
    fn d1_rescued_by_sort_after_loop() {
        let src = "fn f(m: &FxHashMap<u32, u32>) -> Vec<u32> {\n    let mut out = Vec::new();\n    for (k, v) in m.iter() {\n        out.push(*v);\n    }\n    out.sort_unstable();\n    out\n}\n";
        let f = run(src);
        assert!(!f.iter().any(|f| f.rule == Rule::D1), "{f:?}");
    }

    #[test]
    fn d1_entry_counting_is_neutral() {
        let src = "fn f(m: &FxHashMap<String, u32>, df: &mut FxHashMap<String, u32>) {\n    for term in m.keys() {\n        *df.entry(term.clone()).or_insert(0) += 1;\n    }\n}\n";
        let f = run(src);
        assert!(!f.iter().any(|f| f.rule == Rule::D1), "{f:?}");
    }

    #[test]
    fn d1_float_sum_over_values_fires() {
        let src = "fn f(bag: &FxHashMap<u32, f64>) -> f64 {\n    let norm: f64 = bag.values().map(|v| v * v).sum::<f64>().sqrt();\n    norm\n}\n";
        let f = run(src);
        assert!(f.iter().any(|f| f.rule == Rule::D1), "{f:?}");
    }

    #[test]
    fn d1_float_accumulation_in_loop_fires() {
        let src = "fn f(bag: &FxHashMap<u32, f64>) -> f64 {\n    let mut dot = 0.0;\n    for (k, v) in bag.iter() {\n        dot += *v;\n    }\n    dot\n}\n";
        let f = run(src);
        assert!(f.iter().any(|f| f.rule == Rule::D1), "{f:?}");
    }

    #[test]
    fn d2_partial_cmp_fires_but_not_definitions() {
        let src = "fn f(xs: &mut Vec<f64>) {\n    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
        assert!(run(src).iter().any(|f| f.rule == Rule::D2));
        let def = "impl PartialOrd for X {\n    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {\n        Some(self.cmp(other))\n    }\n}\n";
        assert!(!run(def).iter().any(|f| f.rule == Rule::D2));
    }

    #[test]
    fn d3_and_u1_and_p1_fire() {
        let src = "fn f(xs: &[u32]) -> u32 {\n    let t = Instant::now();\n    let x = xs[0];\n    unsafe { std::mem::transmute::<u32, i32>(x) };\n    panic!(\"boom\");\n}\n";
        let f = run(src);
        assert!(f.iter().any(|f| f.rule == Rule::D3));
        assert!(f.iter().any(|f| f.rule == Rule::P1 && f.snippet.contains("xs[0]")));
        assert!(f.iter().any(|f| f.rule == Rule::U1));
        assert!(f.iter().any(|f| f.rule == Rule::P1 && f.snippet.contains("panic!")));
    }

    #[test]
    fn suppressions_and_tests_are_respected() {
        let src = "fn f(xs: &[u32]) -> u32 {\n    xs[0] // ned-lint: allow(p1)\n}\n#[cfg(test)]\nmod tests {\n    fn g(xs: &[u32]) -> u32 { xs[1] }\n}\n";
        let f = run(src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn indexing_skips_macros_attrs_and_full_range() {
        assert!(!has_indexing("vec![0; 4]"));
        assert!(!has_indexing("#[derive(Debug)]"));
        assert!(!has_indexing("&xs[..]"));
        assert!(has_indexing("&xs[1..]"));
        assert!(has_indexing("xs[i]"));
    }
}
