//! The `lint.toml` baseline ratchet.
//!
//! Pre-existing findings reviewed when a rule was introduced are recorded
//! as per-`file:rule` counts. The counts may only shrink: a finding count
//! above its baseline fails the lint; a count below it is *stale* and must
//! be ratcheted down (`--write-baseline`), which `--ratchet` (the CI mode)
//! enforces. The format is a deliberately tiny TOML subset so no external
//! parser is needed: `"path:rule" = count` lines under `[baseline]`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Parsed baseline: `"path:rule"` → allowed finding count.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    /// Allowed counts keyed by `path:rule`.
    pub entries: BTreeMap<String, usize>,
}

impl Baseline {
    /// Loads a baseline file; a missing file is an empty baseline.
    pub fn load(path: &Path) -> io::Result<Baseline> {
        match fs::read_to_string(path) {
            Ok(text) => Ok(Self::parse(&text)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(e),
        }
    }

    /// Parses the `[baseline]` table.
    pub fn parse(text: &str) -> Baseline {
        let mut entries = BTreeMap::new();
        let mut in_table = false;
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                in_table = line == "[baseline]";
                continue;
            }
            if !in_table {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else { continue };
            let key = key.trim().trim_matches('"').to_string();
            if let Ok(count) = value.trim().parse::<usize>() {
                entries.insert(key, count);
            }
        }
        Baseline { entries }
    }

    /// Serializes back to the checked-in format (sorted, deterministic).
    pub fn render(counts: &BTreeMap<String, usize>) -> String {
        let mut out = String::from(
            "# ned-lint baseline — reviewed pre-existing findings, counted per file:rule.\n\
             # Counts may only SHRINK. Regenerate after fixing sites with:\n\
             #   cargo run -p ned-lint -- --write-baseline\n\
             # Adding or raising an entry requires explicit reviewer sign-off.\n\
             \n[baseline]\n",
        );
        for (key, count) in counts {
            if *count > 0 {
                let _ = writeln!(out, "\"{key}\" = {count}");
            }
        }
        out
    }

    /// Total allowed findings (used by the CI growth check).
    pub fn total(&self) -> usize {
        self.entries.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_roundtrip() {
        let mut counts = BTreeMap::new();
        counts.insert("crates/x/src/lib.rs:p1".to_string(), 3);
        counts.insert("crates/y/src/a.rs:d1".to_string(), 1);
        counts.insert("crates/z/src/b.rs:u1".to_string(), 0);
        let text = Baseline::render(&counts);
        let parsed = Baseline::parse(&text);
        assert_eq!(parsed.entries.len(), 2, "zero entries are dropped");
        assert_eq!(parsed.entries.get("crates/x/src/lib.rs:p1"), Some(&3));
        assert_eq!(parsed.total(), 4);
    }

    #[test]
    fn ignores_other_tables_and_comments() {
        let text = "# c\n[other]\n\"a:p1\" = 9\n[baseline]\n# c\n\"b:d1\" = 2\n";
        let parsed = Baseline::parse(text);
        assert_eq!(parsed.entries.len(), 1);
        assert_eq!(parsed.entries.get("b:d1"), Some(&2));
    }
}
