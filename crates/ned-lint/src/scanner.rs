//! A hand-rolled Rust source scanner.
//!
//! The scanner is deliberately *not* a full parser: it produces, per input
//! line, the source text with comment and literal **contents** removed, so
//! the rule engine can do robust token matching without being fooled by
//! `"partial_cmp"` inside a string or a commented-out `unsafe` block. It
//! additionally tracks `#[cfg(test)]` / `#[test]` regions (rules are scoped
//! to production code) and parses `// ned-lint: allow(rule, …)` suppression
//! comments.
//!
//! Handled literal forms: `"…"` (with escapes, multi-line), `r"…"` /
//! `r#"…"#` raw strings (any hash depth), byte strings, `'c'` char literals
//! (distinguished from lifetimes by lookahead), and nested `/* … */` block
//! comments.

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct SourceLine {
    /// 1-based line number.
    pub number: usize,
    /// The raw line as it appears in the file.
    pub raw: String,
    /// The line with comments removed and string/char contents blanked.
    pub code: String,
    /// True when the line sits inside a `#[cfg(test)]` block or `#[test]`
    /// function (or is such an attribute itself).
    pub in_test: bool,
    /// Rule ids suppressed on this line via `// ned-lint: allow(…)`.
    pub allows: Vec<String>,
}

#[derive(PartialEq)]
enum Mode {
    Code,
    Block(u32),
    Str,
    RawStr(usize),
    CharLit,
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scans `text` into lines with comments and literal contents removed.
pub fn scan(text: &str) -> Vec<SourceLine> {
    let chars: Vec<char> = text.chars().collect();
    let mut lines: Vec<SourceLine> = Vec::new();
    let mut code = String::new();
    let mut raw = String::new();
    let mut mode = Mode::Code;
    let mut number = 1usize;
    let mut prev_code_char = ' ';

    let mut i = 0usize;
    let at = |k: usize| chars.get(k).copied();
    while i < chars.len() {
        let c = chars[i]; // ned-lint: allow(p1) — i < len by loop bound
        if c == '\n' {
            lines.push(SourceLine {
                number,
                raw: std::mem::take(&mut raw),
                code: std::mem::take(&mut code),
                in_test: false,
                allows: Vec::new(),
            });
            number += 1;
            i += 1;
            continue;
        }
        raw.push(c);
        match mode {
            Mode::Code => {
                if c == '/' && at(i + 1) == Some('/') {
                    // Line comment: consume to end of line (newline handled
                    // by the outer loop).
                    raw.pop();
                    while i < chars.len() && at(i) != Some('\n') {
                        if let Some(ch) = at(i) {
                            raw.push(ch);
                        }
                        i += 1;
                    }
                    continue;
                } else if c == '/' && at(i + 1) == Some('*') {
                    mode = Mode::Block(1);
                    raw.push('*');
                    i += 2;
                    continue;
                } else if c == '"' {
                    code.push('"');
                    prev_code_char = '"';
                    mode = Mode::Str;
                } else if c == 'r' && !is_ident(prev_code_char) && raw_string_hashes(&chars, i).is_some() {
                    let hashes = raw_string_hashes(&chars, i).unwrap_or(0);
                    code.push('"');
                    prev_code_char = '"';
                    // Skip past r##…#" while keeping raw text.
                    for _ in 0..hashes + 1 {
                        i += 1;
                        if let Some(ch) = at(i) {
                            raw.push(ch);
                        }
                    }
                    mode = Mode::RawStr(hashes);
                } else if c == '\'' {
                    // Lifetime or char literal?
                    let next = at(i + 1);
                    let after = at(i + 2);
                    let is_char =
                        matches!((next, after), (Some('\\'), _) | (Some(_), Some('\'')));
                    if is_char {
                        code.push('\'');
                        prev_code_char = '\'';
                        mode = Mode::CharLit;
                    } else {
                        code.push('\'');
                        prev_code_char = '\'';
                    }
                } else {
                    code.push(c);
                    if !c.is_whitespace() {
                        prev_code_char = c;
                    }
                }
            }
            Mode::Block(depth) => {
                if c == '*' && at(i + 1) == Some('/') {
                    raw.push('/');
                    i += 1;
                    if depth == 1 {
                        mode = Mode::Code;
                        // Keep token separation across a comment.
                        code.push(' ');
                    } else {
                        mode = Mode::Block(depth - 1);
                    }
                } else if c == '/' && at(i + 1) == Some('*') {
                    raw.push('*');
                    i += 1;
                    mode = Mode::Block(depth + 1);
                }
            }
            Mode::Str => {
                if c == '\\' {
                    if let Some(ch) = at(i + 1) {
                        raw.push(ch);
                    }
                    i += 1;
                } else if c == '"' {
                    code.push('"');
                    mode = Mode::Code;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if at(i + 1 + k) != Some('#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..hashes {
                            i += 1;
                            if let Some(ch) = at(i) {
                                raw.push(ch);
                            }
                        }
                        code.push('"');
                        mode = Mode::Code;
                    }
                }
            }
            Mode::CharLit => {
                if c == '\\' {
                    if let Some(ch) = at(i + 1) {
                        raw.push(ch);
                    }
                    i += 1;
                } else if c == '\'' {
                    code.push('\'');
                    mode = Mode::Code;
                }
            }
        }
        i += 1;
    }
    if !raw.is_empty() || !code.is_empty() {
        lines.push(SourceLine { number, raw, code, in_test: false, allows: Vec::new() });
    }

    mark_tests(&mut lines);
    mark_allows(&mut lines);
    lines
}

/// If position `i` starts a raw string (`r"`, `r#"`, `br"`, …), returns the
/// number of hashes; `i` points at the `r`.
fn raw_string_hashes(chars: &[char], i: usize) -> Option<usize> {
    let mut k = i + 1;
    let mut hashes = 0usize;
    while chars.get(k) == Some(&'#') {
        hashes += 1;
        k += 1;
    }
    if chars.get(k) == Some(&'"') {
        Some(hashes)
    } else {
        None
    }
}

/// Marks lines inside `#[cfg(test)]` blocks and `#[test]` functions.
fn mark_tests(lines: &mut [SourceLine]) {
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut stack: Vec<i64> = Vec::new();
    for line in lines.iter_mut() {
        let is_test_attr = line.code.contains("#[cfg(test)")
            || line.code.contains("#[test]")
            || line.code.contains("#[cfg(all(test");
        if is_test_attr {
            pending = true;
        }
        if pending || !stack.is_empty() {
            line.in_test = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending {
                        stack.push(depth);
                        pending = false;
                    }
                }
                '}' => {
                    if stack.last() == Some(&depth) {
                        stack.pop();
                    }
                    depth -= 1;
                }
                // `#[cfg(test)] mod tests;` — attribute applies to an
                // out-of-line item; stop carrying it.
                ';' if pending && stack.is_empty() => pending = false,
                _ => {}
            }
        }
    }
}

/// Parses `// ned-lint: allow(rule, …)` suppression comments. A suppression
/// on its own line also covers the following line.
fn mark_allows(lines: &mut [SourceLine]) {
    let mut carried: Vec<String> = Vec::new();
    for line in lines.iter_mut() {
        let mut allows = std::mem::take(&mut carried);
        if let Some(pos) = line.raw.find("ned-lint: allow(") {
            let after = line.raw.get(pos + "ned-lint: allow(".len()..).unwrap_or("");
            if let Some(end) = after.find(')') {
                let list = after.get(..end).unwrap_or("");
                for rule in list.split(',') {
                    let rule = rule.trim().to_ascii_lowercase();
                    if !rule.is_empty() {
                        allows.push(rule);
                    }
                }
            }
            // Standalone suppression comment: carry to the next line too.
            let before = line.raw.get(..pos).unwrap_or("").trim();
            if before == "//" || before.is_empty() {
                carried = allows.clone();
            }
        }
        line.allows = allows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_comments_and_strings() {
        let lines = scan("let x = \"unsafe // not code\"; // unsafe\n");
        assert_eq!(lines.len(), 1);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].code.contains("let x"));
    }

    #[test]
    fn raw_strings_and_chars() {
        let src = "let s = r#\"partial_cmp \"quoted\" \"#; let c = '\\''; let lt: &'static str = \"x\";\n";
        let lines = scan(src);
        assert!(!lines[0].code.contains("partial_cmp"));
        assert!(lines[0].code.contains("static"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b\n";
        let lines = scan(src);
        let code = lines[0].code.replace(' ', "");
        assert_eq!(code, "ab");
    }

    #[test]
    fn multiline_string_blanks_middle_lines() {
        let src = "let s = \"line one\nInstant::now()\nend\";\nInstant::now();\n";
        let lines = scan(src);
        assert!(!lines[1].code.contains("Instant"));
        assert!(lines[3].code.contains("Instant::now"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x[0]; }\n}\nfn c() {}\n";
        let lines = scan(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test);
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(lines[4].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn allow_comments_parse_and_carry() {
        let src = "// ned-lint: allow(d1, p1)\nlet x = 1;\nlet y = 2; // ned-lint: allow(d2)\n";
        let lines = scan(src);
        assert_eq!(lines[0].allows, vec!["d1", "p1"]);
        assert_eq!(lines[1].allows, vec!["d1", "p1"]);
        assert_eq!(lines[2].allows, vec!["d2"]);
    }
}
