#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! `ned-lint`: the workspace invariant checker.
//!
//! PR 1 made byte-identical parallel output a contract and PR 2 made
//! panic-freedom one. Both were enforced only at runtime (proptests,
//! fault-injection) plus generic clippy flags; nothing stopped a change
//! from iterating a `HashMap` into an output order or indexing past a
//! candidate list. This crate walks every first-party source tree and
//! enforces five project invariants clippy cannot express:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `d1` | hash-map/set iteration order must not flow into output |
//! | `d2` | float ordering must use `total_cmp`, not `partial_cmp` |
//! | `d3` | no wall clock / ambient randomness outside bench harnesses |
//! | `p1` | no panicking constructs (indexing, `panic!`) in library code |
//! | `u1` | no `unsafe` in first-party crates |
//! | `p2` | no panicking construct reachable from an `entry` root |
//! | `h1` | no allocation reachable from a `hot` root (outside the arena) |
//! | `c1` | no lock guard held across a cross-module call |
//! | `m1` | every metric name routed through `ned_obs::names` |
//!
//! The first five are lexical, per-file rules. The last four are
//! **interprocedural**: a second pass ([`items`]) extracts fn/impl/trait
//! items and call sites, [`resolve`] links call sites to unique targets
//! (conservative on ambiguity), and [`callgraph`] answers reachability
//! queries from `// ned-lint: entry` / `// ned-lint: hot` roots —
//! see [`interproc`] and [`metric_names`] for the rule logic and
//! `--explain rule:file:line` for call chains.
//!
//! Suppression is two-tier: inline `// ned-lint: allow(rule)` comments for
//! sites with a documented invariant, and the checked-in `lint.toml`
//! baseline (per-`file:rule` counts) for reviewed pre-existing debt. The
//! baseline may only shrink — see [`baseline`].
//!
//! The scanner is a hand-rolled lexer (no external parser dependencies, in
//! keeping with the workspace's vendored-offline constraint); rules are
//! documented heuristics, which is why both suppression tiers exist.

pub mod baseline;
pub mod callgraph;
pub mod interproc;
pub mod items;
pub mod metric_names;
pub mod report;
pub mod resolve;
pub mod rules;
pub mod scanner;
pub mod walk;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use baseline::Baseline;
use report::{BaselineDrift, LintReport};
use rules::Finding;

/// Runs the full lint over the workspace at `root`.
///
/// `baseline` is the parsed `lint.toml` (pass `Baseline::default()` to
/// report every finding).
pub fn run_lint(root: &Path, baseline: &Baseline) -> io::Result<LintReport> {
    let files = walk::workspace_files(root)?;
    let mut report = LintReport::default();
    let mut raw: Vec<Finding> = Vec::new();
    let mut extracted: Vec<items::FileItems> = Vec::new();

    for file in &files {
        let text = fs::read_to_string(&file.abs_path)?;
        let lines = scanner::scan(&text);
        if file.ctx.is_vendor {
            *report.vendor_unsafe.entry(file.ctx.crate_name.clone()).or_insert(0) +=
                rules::count_unsafe(&lines);
        } else {
            raw.extend(rules::check_file(&file.ctx, &lines));
            extracted.push(items::extract(&file.ctx, &lines));
        }
        report.files_scanned += 1;
    }

    // Second pass: the interprocedural rules over the workspace call graph.
    let symbols = resolve::Symbols::build(extracted);
    let graph = callgraph::CallGraph::build(&symbols);
    raw.extend(interproc::check(&symbols, &graph));
    raw.extend(metric_names::check(&symbols));
    report.callgraph = Some(graph.stats.clone());

    raw.sort();
    report.all_findings = raw.clone();

    // Group by file:rule and apply the baseline ratchet.
    let mut by_key: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for f in raw {
        by_key.entry(format!("{}:{}", f.path, f.rule.id())).or_default().push(f);
    }
    for (key, findings) in &by_key {
        report.counts.insert(key.clone(), findings.len());
    }
    for (key, findings) in by_key {
        let allowed = baseline.entries.get(&key).copied().unwrap_or(0);
        if findings.len() > allowed {
            if allowed > 0 {
                report.exceeded.push(BaselineDrift {
                    key: key.clone(),
                    allowed,
                    actual: findings.len(),
                });
            }
            report.findings.extend(findings);
        } else {
            if findings.len() < allowed {
                report.stale.push(BaselineDrift {
                    key: key.clone(),
                    allowed,
                    actual: findings.len(),
                });
            }
            report.baselined += findings.len();
        }
    }
    // Baseline entries for files with zero current findings are stale too.
    for (key, &allowed) in &baseline.entries {
        if allowed > 0 && !report.counts.contains_key(key) {
            report.stale.push(BaselineDrift { key: key.clone(), allowed, actual: 0 });
        }
    }
    report.stale.sort_by(|a, b| a.key.cmp(&b.key));
    report.findings.sort();
    Ok(report)
}
