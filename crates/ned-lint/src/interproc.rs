//! Interprocedural rules driven by the call graph: `p2` (panic
//! reachability), `h1` (static hot-path allocation), and `c1` (lock
//! hygiene).
//!
//! * `p2` — every panicking construct (the `p1` token set, plus `.unwrap()`
//!   / `.expect(` and slice indexing) inside a function transitively
//!   reachable from a `// ned-lint: entry` root is a finding, regardless of
//!   the bin/harness relaxations the lexical `p1` rule grants: a panic in a
//!   bin `main` matters once that `main` is a declared serving entry point.
//!   Sites suppressed with `allow(p1)` are honored — a site justified as
//!   non-panicking is non-panicking no matter who calls it — as is
//!   `allow(p2)`.
//! * `h1` — allocating constructs inside functions reachable from a
//!   `// ned-lint: hot` root are findings unless the function is part of
//!   the sanctioned arena route (`scratch.rs`, `ScoringScratch` /
//!   `CoverScratch` impls) or the site carries `allow(h1)`. This turns the
//!   PR 6 zero-allocation contract from a bench-time ratchet into a static
//!   gate.
//! * `c1` — inside `ned-serve` / `ned-relatedness`, a `let` binding whose
//!   initializer *terminates* in `.lock()` / `.read()` / `.write()`
//!   (modulo poison recovery) must not stay live across a resolved call
//!   into another first-party file: compute under the lock, drop the
//!   guard, then call out. A binding that consumes the guard in the same
//!   statement (`….read().unwrap().get(&k).copied()`) holds no lock and
//!   opens no window. `drop(guard)` or the end of the binding's block
//!   closes the window; `allow(c1)` suppresses a reviewed site.

use crate::callgraph::CallGraph;
use crate::items::BodyStmt;
use crate::resolve::{Resolution, Symbols};
use crate::rules::{has_indexing, let_binding, Finding, Rule, PANICKY};

/// Tokens that heap-allocate (rule `h1`).
const ALLOCATING: [&str; 12] = [
    "Vec::new(",
    "vec!",
    ".collect(",
    ".collect::<",
    ".to_string(",
    "format!(",
    "Box::new(",
    "String::new(",
    "String::from(",
    ".to_owned(",
    ".to_vec(",
    "::with_capacity(",
];

/// Crates where the lock-hygiene rule applies.
const C1_CRATES: [&str; 2] = ["ned-serve", "ned-relatedness"];

fn panics(text: &str) -> bool {
    if text.contains("catch_unwind") {
        return false;
    }
    PANICKY.iter().any(|t| text.contains(t))
        || text.contains(".unwrap()")
        || text.contains(".expect(")
        || has_indexing(text)
}

fn allocates(text: &str) -> bool {
    ALLOCATING.iter().any(|t| text.contains(t))
}

/// True when a fn belongs to the sanctioned scratch-arena allocation route.
fn on_arena_route(symbols: &Symbols, id: usize) -> bool {
    symbols
        .fns
        .get(id)
        .map(|f| {
            f.path.ends_with("/scratch.rs")
                || matches!(
                    f.item.self_ty.as_deref(),
                    Some("ScoringScratch") | Some("CoverScratch")
                )
        })
        .unwrap_or(false)
}

fn finding(path: &str, stmt: &BodyStmt, rule: Rule, chain: Vec<String>) -> Finding {
    Finding {
        path: path.to_string(),
        line: stmt.line,
        rule,
        snippet: stmt.snippet.clone(),
        chain,
    }
}

/// Runs a reachability rule: for every fn reachable from `roots`-marked
/// fns, flag statements matching `bad` unless suppressed by one of
/// `allow_ids`.
fn reachability_rule(
    symbols: &Symbols,
    graph: &CallGraph,
    rule: Rule,
    pick_root: impl Fn(&crate::items::FnItem) -> bool,
    exempt: impl Fn(&Symbols, usize) -> bool,
    bad: impl Fn(&str) -> bool,
    allow_ids: &[&str],
) -> Vec<Finding> {
    let mut out = Vec::new();
    let roots: Vec<usize> = symbols
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.item.in_test && pick_root(&f.item))
        .map(|(id, _)| id)
        .collect();
    let tree = graph.reachable_from(&roots);
    for &id in tree.keys() {
        if exempt(symbols, id) {
            continue;
        }
        let Some(f) = symbols.fns.get(id) else { continue };
        if f.item.in_test {
            continue;
        }
        for stmt in &f.item.stmts {
            if stmt.in_test || allow_ids.iter().any(|a| stmt.allows.contains(*a)) {
                continue;
            }
            if bad(&stmt.text) {
                out.push(finding(&f.path, stmt, rule, graph.chain(symbols, &tree, id)));
            }
        }
    }
    out
}

/// True when a `let` initializer's lock acquisition is *terminal* — the
/// bound name holds the guard itself, so it stays locked until dropped.
/// Poison recovery (`.unwrap()`, `.expect(..)`, `.unwrap_or_else(|e|
/// e.into_inner())`, …) keeps the guard; any other trailing method call
/// consumes it as a temporary that dies at the statement's `;` (e.g.
/// `let v = m.read().unwrap().get(&k).copied();` binds an `Option`, not a
/// guard, and holds no lock afterwards).
fn binds_guard(text: &str) -> bool {
    let after_start = [".lock()", ".read()", ".write()"]
        .iter()
        .filter_map(|t| text.rfind(t).map(|p| p + t.len()))
        .max();
    let Some(after_start) = after_start else { return false };
    let Some(mut rest) = text.get(after_start..) else { return false };
    while let Some(dot) = rest.find('.') {
        let Some(tail) = rest.get(dot + 1..) else { return false };
        let name_len =
            tail.find(|c: char| !c.is_alphanumeric() && c != '_').unwrap_or(tail.len());
        let name = tail.get(..name_len).unwrap_or("");
        if !matches!(
            name,
            "unwrap" | "expect" | "unwrap_or_else" | "unwrap_or_default" | "into_inner"
        ) {
            return false;
        }
        match tail.get(name_len..) {
            Some(next) => rest = next,
            None => return true,
        }
    }
    true
}

/// Rule `c1`: lock guards must not live across cross-module calls.
fn check_lock_hygiene(symbols: &Symbols, out: &mut Vec<Finding>) {
    for (id, f) in symbols.fns.iter().enumerate() {
        if f.item.in_test || !C1_CRATES.contains(&f.crate_name.as_str()) {
            continue;
        }
        let stmts = &f.item.stmts;
        for (i, bind) in stmts.iter().enumerate() {
            if bind.in_test || bind.terminator != ';' {
                continue;
            }
            if !bind.text.starts_with("let ") || !binds_guard(&bind.text) {
                continue;
            }
            let Some(name) = let_binding(&bind.text) else { continue };
            if name == "_" {
                continue; // dropped immediately
            }
            let drop_pat = format!("drop({name})");
            for later in stmts.iter().skip(i + 1) {
                // The guard dies when its block closes or it is dropped.
                if later.depth < bind.depth || later.text.contains(&drop_pat) {
                    break;
                }
                if later.in_test || later.allows.contains("c1") || bind.allows.contains("c1") {
                    continue;
                }
                let cross = later.calls.iter().find_map(|call| match symbols.resolve(id, call) {
                    Resolution::Edge(t) => {
                        let target = symbols.fns.get(t)?;
                        (target.path != f.path).then(|| target.qual())
                    }
                    _ => None,
                });
                if let Some(target_qual) = cross {
                    let chain = vec![
                        format!("guard `{}` bound ({}:{})", name, f.path, bind.line),
                        format!("  -> cross-module call to {} ({}:{})", target_qual, f.path, later.line),
                    ];
                    out.push(finding(&f.path, later, Rule::C1, chain));
                }
            }
        }
    }
}

/// Runs all call-graph-driven rules and returns their findings.
pub fn check(symbols: &Symbols, graph: &CallGraph) -> Vec<Finding> {
    let mut out =
        reachability_rule(symbols, graph, Rule::P2, |f| f.entry, |_, _| false, panics, &[
            "p1", "p2",
        ]);
    out.extend(reachability_rule(
        symbols,
        graph,
        Rule::H1,
        |f| f.hot,
        on_arena_route,
        allocates,
        &["h1"],
    ));
    check_lock_hygiene(symbols, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract;
    use crate::rules::FileContext;
    use crate::scanner::scan;

    fn run(files: &[(&str, &str, &str)]) -> Vec<Finding> {
        let items = files
            .iter()
            .map(|(path, crate_name, src)| {
                let ctx = FileContext {
                    path: (*path).into(),
                    crate_name: (*crate_name).into(),
                    is_vendor: false,
                    is_bin: false,
                    is_harness: false,
                };
                extract(&ctx, &scan(src))
            })
            .collect();
        let sym = Symbols::build(items);
        let graph = CallGraph::build(&sym);
        check(&sym, &graph)
    }

    #[test]
    fn p2_fires_transitively_with_chain() {
        let f = run(&[(
            "crates/a/src/lib.rs",
            "a",
            "// ned-lint: entry\npub fn serve() { step() }\nfn step() { boom() }\nfn boom() { panic!(\"x\") }\n",
        )]);
        let p2: Vec<&Finding> = f.iter().filter(|f| f.rule == Rule::P2).collect();
        assert_eq!(p2.len(), 1);
        assert_eq!(p2[0].line, 4);
        assert_eq!(p2[0].chain.len(), 3);
        assert!(p2[0].chain[0].contains("a::serve"));
        assert!(p2[0].chain[2].contains("a::boom"));
    }

    #[test]
    fn p2_honors_p1_allows_and_unreachable_code() {
        let f = run(&[(
            "crates/a/src/lib.rs",
            "a",
            "// ned-lint: entry\npub fn serve() { fine() }\nfn fine() {\n    let x = xs[0]; // ned-lint: allow(p1)\n}\nfn island() { panic!(\"never called\") }\n",
        )]);
        assert!(f.iter().all(|f| f.rule != Rule::P2), "{f:?}");
    }

    #[test]
    fn h1_flags_allocation_but_not_arena_route() {
        let f = run(&[(
            "crates/a/src/lib.rs",
            "a",
            "// ned-lint: hot\npub fn score() { grow(); with_arena() }\nfn grow() { let v = Vec::new(); }\nfn with_arena() {}\npub struct ScoringScratch;\nimpl ScoringScratch {\n    pub fn ensure(&mut self) { self.bufs.push(Vec::new()); }\n}\n",
        )]);
        let h1: Vec<&Finding> = f.iter().filter(|f| f.rule == Rule::H1).collect();
        assert_eq!(h1.len(), 1, "{f:?}");
        assert_eq!(h1[0].line, 3);
    }

    #[test]
    fn c1_guard_across_cross_module_call() {
        let svc = "\
pub fn pump() {
    let guard = state.lock().unwrap_or_default();
    helper::toil(guard.len());
    drop(guard);
    helper::toil(0);
}
";
        let f = run(&[
            ("crates/ned-serve/src/service.rs", "ned-serve", svc),
            ("crates/ned-serve/src/helper.rs", "ned-serve", "pub fn toil(n: usize) {}\n"),
        ]);
        let c1: Vec<&Finding> = f.iter().filter(|f| f.rule == Rule::C1).collect();
        assert_eq!(c1.len(), 1, "{f:?}");
        assert_eq!(c1[0].line, 3, "call after drop(guard) must not fire");
        assert!(c1[0].chain[0].contains("guard `guard` bound"));
    }

    #[test]
    fn c1_scoped_guard_block_is_clean() {
        let svc = "\
pub fn pump() {
    let job = {
        let guard = state.lock().unwrap_or_default();
        guard.len()
    };
    helper::toil(job);
}
";
        let f = run(&[
            ("crates/ned-serve/src/service.rs", "ned-serve", svc),
            ("crates/ned-serve/src/helper.rs", "ned-serve", "pub fn toil(n: usize) {}\n"),
        ]);
        assert!(f.iter().all(|f| f.rule != Rule::C1), "{f:?}");
    }

    #[test]
    fn c1_consumed_guard_temporary_opens_no_window() {
        // The `.read()` guard is consumed in the same statement — the bound
        // name is an `Option<f64>`, so no lock is held at the call site.
        let svc = "\
pub fn probe() {
    let cached = shard.read().unwrap_or_else(|e| e.into_inner()).get(&key).copied();
    helper::toil(0);
}
";
        let f = run(&[
            ("crates/ned-serve/src/service.rs", "ned-serve", svc),
            ("crates/ned-serve/src/helper.rs", "ned-serve", "pub fn toil(n: usize) {}\n"),
        ]);
        assert!(f.iter().all(|f| f.rule != Rule::C1), "{f:?}");
    }

    #[test]
    fn c1_poison_recovered_guard_still_opens_a_window() {
        let svc = "\
pub fn pump() {
    let guard = state.lock().unwrap_or_else(|e| e.into_inner());
    helper::toil(guard.len());
}
";
        let f = run(&[
            ("crates/ned-serve/src/service.rs", "ned-serve", svc),
            ("crates/ned-serve/src/helper.rs", "ned-serve", "pub fn toil(n: usize) {}\n"),
        ]);
        let c1: Vec<&Finding> = f.iter().filter(|f| f.rule == Rule::C1).collect();
        assert_eq!(c1.len(), 1, "{f:?}");
    }

    #[test]
    fn c1_ignores_other_crates() {
        let f = run(&[
            ("crates/ned-kb/src/store.rs", "ned-kb", "pub fn pump() {\n    let guard = state.lock().unwrap_or_default();\n    helper::toil(guard.len());\n}\n"),
            ("crates/ned-kb/src/helper.rs", "ned-kb", "pub fn toil(n: usize) {}\n"),
        ]);
        assert!(f.iter().all(|f| f.rule != Rule::C1), "{f:?}");
    }
}
