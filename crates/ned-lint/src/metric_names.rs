//! Rule `m1`: metric-name consistency.
//!
//! The observability layer (PR 5) centralizes every metric name in
//! `ned_obs::names` so dashboards and golden-metrics fixtures cannot drift
//! from the code. This rule closes the loop statically:
//!
//! 1. a **string literal** passed to a `Metrics` registry method
//!    (`.counter("…")`, `.gauge("…")`, `.histogram("…")`, `.span("…")`,
//!    `.counter_value("…")`) in non-test code is a finding — route it
//!    through a `names::` constant;
//! 2. a `names` constant **used nowhere** outside its declaring file is a
//!    finding (dead names rot dashboards);
//! 3. two constants sharing the **same value** are a finding (two series
//!    silently merge).
//!
//! The scanner blanks literal contents, so a literal argument shows up as
//! `.counter("")` in stripped text while `.counter(names::X)` keeps its
//! path — which makes the literal check robust against string contents.

use crate::resolve::Symbols;
use crate::rules::{has_word, Finding, Rule};

/// Registry methods whose first argument is a metric name.
const REGISTRY_METHODS: [&str; 5] =
    [".counter(\"", ".gauge(\"", ".histogram(\"", ".span(\"", ".counter_value(\""];

/// The file that must hold every metric name.
const NAMES_FILE: &str = "ned-obs/src/names.rs";

fn names_file(path: &str) -> bool {
    path.ends_with(NAMES_FILE)
}

/// Runs the metric-name checks over the whole workspace.
pub fn check(symbols: &Symbols) -> Vec<Finding> {
    let mut out = Vec::new();

    // 1. Literal names at registry call sites. The registry implementation
    //    itself receives `name` as a parameter, so it never matches.
    for f in &symbols.fns {
        if f.item.in_test || names_file(&f.path) {
            continue;
        }
        for stmt in &f.item.stmts {
            if stmt.in_test || stmt.allows.contains("m1") {
                continue;
            }
            if REGISTRY_METHODS.iter().any(|m| stmt.text.contains(m)) {
                out.push(Finding {
                    path: f.path.clone(),
                    line: stmt.line,
                    rule: Rule::M1,
                    snippet: stmt.snippet.clone(),
                    chain: vec![
                        "literal metric name at a registry call; use a ned_obs::names constant"
                            .to_string(),
                    ],
                });
            }
        }
    }

    // 2./3. Constant hygiene inside the names file.
    for file in symbols.files.iter().filter(|f| names_file(&f.path)) {
        let mut seen: Vec<(&str, &str, usize)> = Vec::new(); // (value, name, line)
        for c in file.consts.iter().filter(|c| !c.in_test) {
            if let Some((_, prior, _)) = seen.iter().find(|(v, _, _)| *v == c.value) {
                out.push(Finding {
                    path: file.path.clone(),
                    line: c.line,
                    rule: Rule::M1,
                    snippet: format!("const {}: duplicate of {} (value \"{}\")", c.name, prior, c.value),
                    chain: Vec::new(),
                });
            } else {
                seen.push((&c.value, &c.name, c.line));
            }
            let used = symbols
                .files
                .iter()
                .filter(|other| !names_file(&other.path))
                .any(|other| has_word(&other.code_text, &c.name));
            if !used {
                out.push(Finding {
                    path: file.path.clone(),
                    line: c.line,
                    rule: Rule::M1,
                    snippet: format!("const {} is unused outside {}", c.name, file.path),
                    chain: Vec::new(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::items::extract;
    use crate::rules::FileContext;
    use crate::scanner::scan;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let items = files
            .iter()
            .map(|(path, src)| {
                let ctx = FileContext {
                    path: (*path).into(),
                    crate_name: "x".into(),
                    is_vendor: false,
                    is_bin: false,
                    is_harness: false,
                };
                extract(&ctx, &scan(src))
            })
            .collect();
        let sym = Symbols::build(items);
        let _ = CallGraph::build(&sym);
        check(&sym)
    }

    #[test]
    fn literal_registry_call_fires_but_names_path_does_not() {
        let f = run(&[
            (
                "crates/ned-obs/src/names.rs",
                "pub const GOOD: &str = \"good\";\n",
            ),
            (
                "crates/x/src/lib.rs",
                "pub fn f(m: &Metrics) {\n    m.counter(\"raw_literal\").inc();\n    m.counter(names::GOOD).inc();\n}\n",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn unused_and_duplicate_constants_fire() {
        let f = run(&[
            (
                "crates/ned-obs/src/names.rs",
                "pub const USED: &str = \"used\";\npub const DEAD: &str = \"dead\";\npub const COPY: &str = \"used\";\n",
            ),
            ("crates/x/src/lib.rs", "pub fn f(m: &Metrics) { m.counter(names::USED).inc(); m.gauge(names::COPY); }\n"),
        ]);
        let lines: Vec<usize> = f.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![2, 3], "{f:?}"); // DEAD unused, COPY duplicate
    }

    #[test]
    fn test_code_literals_are_fine() {
        let f = run(&[(
            "crates/x/src/lib.rs",
            "#[cfg(test)]\nmod tests {\n    fn t(m: &Metrics) { m.counter(\"test_only\").inc(); }\n}\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }
}
