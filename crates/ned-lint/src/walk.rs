//! Workspace walker: enumerates the first-party and vendored source trees.
//!
//! First-party sources are the root crate's `src/` plus `crates/*/src/**`;
//! vendored work-alike crates under `vendor/*/src/**` are only scanned for
//! the `unsafe` count table. Traversal is sorted so reports are
//! byte-identical across runs.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::FileContext;

/// Crates whose purpose is timing/benchmarking: D3 (wall clock) and P1
/// (panics in library code) are relaxed there.
pub const HARNESS_CRATES: [&str; 1] = ["ned-bench"];

/// One source file to lint.
#[derive(Debug)]
pub struct SourceFile {
    /// Context (crate, vendor/bin/harness classification).
    pub ctx: FileContext,
    /// Absolute path on disk.
    pub abs_path: PathBuf,
}

/// Lists all lintable files under `root`, sorted by repo-relative path.
pub fn workspace_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    // Root crate sources.
    collect_tree(root, &root.join("src"), "aida-ned", false, &mut out)?;
    // Member crates.
    for dir in ["crates", "vendor"] {
        let base = root.join(dir);
        if !base.is_dir() {
            continue;
        }
        for entry in sorted_entries(&base)? {
            let src = entry.join("src");
            if !src.is_dir() {
                continue;
            }
            let crate_name = entry
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            collect_tree(root, &src, &crate_name, dir == "vendor", &mut out)?;
        }
    }
    out.sort_by(|a, b| a.ctx.path.cmp(&b.ctx.path));
    Ok(out)
}

fn sorted_entries(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    Ok(entries)
}

fn collect_tree(
    root: &Path,
    src: &Path,
    crate_name: &str,
    is_vendor: bool,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    if !src.is_dir() {
        return Ok(());
    }
    let mut stack = vec![src.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for path in sorted_entries(&dir)? {
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                let is_bin = rel.contains("/bin/") || rel.ends_with("main.rs");
                out.push(SourceFile {
                    ctx: FileContext {
                        path: rel,
                        crate_name: crate_name.to_string(),
                        is_vendor,
                        is_bin,
                        is_harness: HARNESS_CRATES.contains(&crate_name),
                    },
                    abs_path: path,
                });
            }
        }
    }
    Ok(())
}
