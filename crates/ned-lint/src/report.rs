//! Lint run outcome and plain-text rendering.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::callgraph::CallGraphStats;
use crate::rules::{Finding, Rule};

/// A baseline entry that no longer matches reality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineDrift {
    /// `path:rule` key.
    pub key: String,
    /// Count recorded in `lint.toml`.
    pub allowed: usize,
    /// Count found in this run.
    pub actual: usize,
}

/// Outcome of a full lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings not covered by an inline allow or the baseline.
    pub findings: Vec<Finding>,
    /// Number of findings absorbed by the `lint.toml` baseline.
    pub baselined: usize,
    /// Baseline entries whose actual count shrank (must be ratcheted down).
    pub stale: Vec<BaselineDrift>,
    /// Baseline entries whose actual count grew (always a failure).
    pub exceeded: Vec<BaselineDrift>,
    /// `unsafe` occurrence counts per vendored crate (informational).
    pub vendor_unsafe: BTreeMap<String, usize>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Current per-`file:rule` counts (for `--write-baseline`).
    pub counts: BTreeMap<String, usize>,
    /// Every finding before baseline absorption, sorted — `--explain` can
    /// print call chains for baselined sites too.
    pub all_findings: Vec<Finding>,
    /// Call-graph shape and resolution statistics (`--callgraph-stats`).
    pub callgraph: Option<CallGraphStats>,
}

impl LintReport {
    /// True when the run should fail CI in default mode.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.exceeded.is_empty()
    }

    /// Looks up a finding (baselined or not) by rule id, path, and line —
    /// the `--explain rule:file:line` query.
    pub fn explain(&self, rule_id: &str, path: &str, line: usize) -> Option<String> {
        let f = self
            .all_findings
            .iter()
            .find(|f| f.rule.id() == rule_id && f.path == path && f.line == line)?;
        let mut out = String::new();
        let _ = writeln!(out, "{} — {}", f.rule.id().to_uppercase(), f.rule.describe());
        let _ = writeln!(out, "  {}:{}: {}", f.path, f.line, f.snippet);
        if f.chain.is_empty() {
            let _ = writeln!(out, "  (lexical rule: no call chain)");
        } else {
            for hop in &f.chain {
                let _ = writeln!(out, "  {hop}");
            }
        }
        Some(out)
    }

    /// Renders the human-readable report.
    pub fn render(&self, verbose: bool) -> String {
        let mut out = String::new();
        if !self.findings.is_empty() {
            let mut by_rule: BTreeMap<Rule, Vec<&Finding>> = BTreeMap::new();
            for f in &self.findings {
                by_rule.entry(f.rule).or_default().push(f);
            }
            for (rule, findings) in &by_rule {
                let _ = writeln!(
                    out,
                    "{} — {} ({} finding{})",
                    rule.id().to_uppercase(),
                    rule.describe(),
                    findings.len(),
                    if findings.len() == 1 { "" } else { "s" },
                );
                for f in findings {
                    let _ = writeln!(out, "  {}:{}: {}", f.path, f.line, f.snippet);
                    if verbose {
                        for hop in &f.chain {
                            let _ = writeln!(out, "      {hop}");
                        }
                    }
                }
                let _ = writeln!(out);
            }
        }
        for drift in &self.exceeded {
            let _ = writeln!(
                out,
                "baseline exceeded: {} allows {} but {} found — fix the new sites",
                drift.key, drift.allowed, drift.actual,
            );
        }
        for drift in &self.stale {
            let _ = writeln!(
                out,
                "baseline stale: {} allows {} but only {} remain — run --write-baseline to ratchet down",
                drift.key, drift.allowed, drift.actual,
            );
        }
        if verbose || !self.vendor_unsafe.is_empty() {
            let nonzero: Vec<_> =
                self.vendor_unsafe.iter().filter(|(_, &n)| n > 0).collect();
            if !nonzero.is_empty() || verbose {
                let _ = writeln!(out, "vendored `unsafe` occurrences (informational):");
                let _ = writeln!(out, "  {:<24} count", "crate");
                for (krate, n) in &self.vendor_unsafe {
                    let _ = writeln!(out, "  {krate:<24} {n}");
                }
                let _ = writeln!(out);
            }
        }
        let _ = writeln!(
            out,
            "{} file(s) scanned; {} finding(s), {} baselined, {} stale baseline entr{}",
            self.files_scanned,
            self.findings.len(),
            self.baselined,
            self.stale.len(),
            if self.stale.len() == 1 { "y" } else { "ies" },
        );
        out
    }
}
