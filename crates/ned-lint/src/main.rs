//! CLI driver for the workspace invariant checker.
//!
//! ```text
//! cargo run -p ned-lint --release -- [--root DIR] [--ratchet]
//!                                    [--write-baseline] [--baseline-total]
//!                                    [--callgraph-stats]
//!                                    [--explain rule:file:line]
//!                                    [--verbose]
//! ```
//!
//! `--callgraph-stats` prints call-graph shape/resolution statistics and
//! exits clean; `--explain p2:crates/x/src/lib.rs:42` prints the shortest
//! root → site call chain for a finding (baselined sites included).
//!
//! Exit codes: `0` clean, `1` findings (or stale baseline under
//! `--ratchet`, or an `--explain` query with no matching finding),
//! `2` usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use ned_lint::baseline::Baseline;
use ned_lint::run_lint;

struct Args {
    root: Option<PathBuf>,
    ratchet: bool,
    write_baseline: bool,
    baseline_total: bool,
    callgraph_stats: bool,
    explain: Option<String>,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        ratchet: false,
        write_baseline: false,
        baseline_total: false,
        callgraph_stats: false,
        explain: None,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let dir = it.next().ok_or("--root requires a directory argument")?;
                args.root = Some(PathBuf::from(dir));
            }
            "--ratchet" => args.ratchet = true,
            "--write-baseline" => args.write_baseline = true,
            "--baseline-total" => args.baseline_total = true,
            "--callgraph-stats" => args.callgraph_stats = true,
            "--explain" => {
                let q = it.next().ok_or("--explain requires a rule:file:line argument")?;
                args.explain = Some(q);
            }
            "--verbose" | "-v" => args.verbose = true,
            "--help" | "-h" => {
                return Err("usage: ned-lint [--root DIR] [--ratchet] [--write-baseline] [--baseline-total] [--callgraph-stats] [--explain rule:file:line] [--verbose]".to_string());
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// Splits an `--explain` query `rule:file:line` (the file part may itself
/// contain no colons — paths in this workspace never do).
fn parse_explain(q: &str) -> Result<(String, String, usize), String> {
    let (rule, rest) =
        q.split_once(':').ok_or_else(|| format!("--explain wants rule:file:line, got `{q}`"))?;
    let (file, line) =
        rest.rsplit_once(':').ok_or_else(|| format!("--explain wants rule:file:line, got `{q}`"))?;
    let line: usize =
        line.parse().map_err(|_| format!("--explain line must be a number, got `{line}`"))?;
    Ok((rule.to_string(), file.to_string(), line))
}

/// Walks upward from the current directory to the first directory holding
/// a `lint.toml` or a workspace `Cargo.toml`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn run(args: &Args) -> Result<ExitCode, String> {
    let root = match &args.root {
        Some(r) => r.clone(),
        None => find_root().ok_or("cannot locate workspace root; pass --root")?,
    };
    let baseline_path = root.join("lint.toml");
    let baseline = Baseline::load(&baseline_path)
        .map_err(|e| format!("cannot read {}: {e}", baseline_path.display()))?;

    if args.baseline_total {
        println!("{}", baseline.total());
        return Ok(ExitCode::SUCCESS);
    }

    let report =
        run_lint(&root, &baseline).map_err(|e| format!("lint failed on {}: {e}", root.display()))?;

    if args.callgraph_stats {
        match &report.callgraph {
            Some(stats) => print!("{}", stats.render()),
            None => println!("call-graph statistics unavailable"),
        }
        return Ok(ExitCode::SUCCESS);
    }

    if let Some(q) = &args.explain {
        let (rule, file, line) = parse_explain(q)?;
        return match report.explain(&rule, &file, line) {
            Some(text) => {
                print!("{text}");
                Ok(ExitCode::SUCCESS)
            }
            None => {
                eprintln!("no finding for {rule}:{file}:{line} (check path is repo-relative)");
                Ok(ExitCode::from(1))
            }
        };
    }

    if args.write_baseline {
        let text = Baseline::render(&report.counts);
        std::fs::write(&baseline_path, text)
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        println!(
            "wrote {} ({} entr{}, {} finding(s) baselined)",
            baseline_path.display(),
            report.counts.len(),
            if report.counts.len() == 1 { "y" } else { "ies" },
            report.counts.values().sum::<usize>(),
        );
        return Ok(ExitCode::SUCCESS);
    }

    print!("{}", report.render(args.verbose));
    let ratchet_failed = args.ratchet && !report.stale.is_empty();
    if report.is_clean() && !ratchet_failed {
        Ok(ExitCode::SUCCESS)
    } else {
        if ratchet_failed {
            eprintln!("ratchet mode: stale baseline entries must be written down (--write-baseline)");
        }
        Ok(ExitCode::from(1))
    }
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(args) => match run(&args) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("ned-lint: {e}");
                ExitCode::from(2)
            }
        },
        Err(usage) => {
            eprintln!("{usage}");
            ExitCode::from(2)
        }
    }
}
