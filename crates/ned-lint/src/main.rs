//! CLI driver for the workspace invariant checker.
//!
//! ```text
//! cargo run -p ned-lint --release -- [--root DIR] [--ratchet]
//!                                    [--write-baseline] [--baseline-total]
//!                                    [--verbose]
//! ```
//!
//! Exit codes: `0` clean, `1` findings (or stale baseline under
//! `--ratchet`), `2` usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use ned_lint::baseline::Baseline;
use ned_lint::run_lint;

struct Args {
    root: Option<PathBuf>,
    ratchet: bool,
    write_baseline: bool,
    baseline_total: bool,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        ratchet: false,
        write_baseline: false,
        baseline_total: false,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let dir = it.next().ok_or("--root requires a directory argument")?;
                args.root = Some(PathBuf::from(dir));
            }
            "--ratchet" => args.ratchet = true,
            "--write-baseline" => args.write_baseline = true,
            "--baseline-total" => args.baseline_total = true,
            "--verbose" | "-v" => args.verbose = true,
            "--help" | "-h" => {
                return Err("usage: ned-lint [--root DIR] [--ratchet] [--write-baseline] [--baseline-total] [--verbose]".to_string());
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// Walks upward from the current directory to the first directory holding
/// a `lint.toml` or a workspace `Cargo.toml`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn run(args: &Args) -> Result<ExitCode, String> {
    let root = match &args.root {
        Some(r) => r.clone(),
        None => find_root().ok_or("cannot locate workspace root; pass --root")?,
    };
    let baseline_path = root.join("lint.toml");
    let baseline = Baseline::load(&baseline_path)
        .map_err(|e| format!("cannot read {}: {e}", baseline_path.display()))?;

    if args.baseline_total {
        println!("{}", baseline.total());
        return Ok(ExitCode::SUCCESS);
    }

    let report =
        run_lint(&root, &baseline).map_err(|e| format!("lint failed on {}: {e}", root.display()))?;

    if args.write_baseline {
        let text = Baseline::render(&report.counts);
        std::fs::write(&baseline_path, text)
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        println!(
            "wrote {} ({} entr{}, {} finding(s) baselined)",
            baseline_path.display(),
            report.counts.len(),
            if report.counts.len() == 1 { "y" } else { "ies" },
            report.counts.values().sum::<usize>(),
        );
        return Ok(ExitCode::SUCCESS);
    }

    print!("{}", report.render(args.verbose));
    let ratchet_failed = args.ratchet && !report.stale.is_empty();
    if report.is_clean() && !ratchet_failed {
        Ok(ExitCode::SUCCESS)
    } else {
        if ratchet_failed {
            eprintln!("ratchet mode: stale baseline entries must be written down (--write-baseline)");
        }
        Ok(ExitCode::from(1))
    }
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(args) => match run(&args) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("ned-lint: {e}");
                ExitCode::from(2)
            }
        },
        Err(usage) => {
            eprintln!("{usage}");
            ExitCode::from(2)
        }
    }
}
