//! Golden-fixture tests: each rule must fire on its fixture with the exact
//! file, line, and rule id — and must NOT fire where a suppression, test
//! context, or bin context exempts the site.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::{Path, PathBuf};

use ned_lint::baseline::Baseline;
use ned_lint::run_lint;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

#[test]
fn every_rule_fires_exactly_where_expected() {
    let report = run_lint(&fixture_root(), &Baseline::default()).unwrap();
    let got: Vec<(String, usize, String)> = report
        .findings
        .iter()
        .map(|f| (f.path.clone(), f.line, f.rule.id().to_string()))
        .collect();
    let expect = |p: &str, l: usize, r: &str| (p.to_string(), l, r.to_string());
    assert_eq!(
        got,
        vec![
            expect("crates/demo/src/clock.rs", 7, "d3"),
            expect("crates/demo/src/lib.rs", 11, "d1"),
            expect("crates/demo/src/lib.rs", 19, "d2"),
            expect("crates/demo/src/lib.rs", 24, "p1"),
            expect("crates/demo/src/unsafe_use.rs", 5, "u1"),
        ],
        "full report:\n{}",
        report.render(true),
    );
}

#[test]
fn vendor_unsafe_is_counted_not_flagged() {
    let report = run_lint(&fixture_root(), &Baseline::default()).unwrap();
    assert_eq!(report.vendor_unsafe.get("vdemo"), Some(&2));
    assert!(!report.findings.iter().any(|f| f.path.starts_with("vendor/")));
}

#[test]
fn baseline_absorbs_and_ratchets() {
    // A baseline matching the fixture exactly: clean, nothing stale.
    let mut baseline = Baseline::default();
    for (key, count) in [
        ("crates/demo/src/clock.rs:d3", 1),
        ("crates/demo/src/lib.rs:d1", 1),
        ("crates/demo/src/lib.rs:d2", 1),
        ("crates/demo/src/lib.rs:p1", 1),
        ("crates/demo/src/unsafe_use.rs:u1", 1),
    ] {
        baseline.entries.insert(key.to_string(), count);
    }
    let report = run_lint(&fixture_root(), &baseline).unwrap();
    assert!(report.is_clean(), "{}", report.render(true));
    assert_eq!(report.baselined, 5);
    assert!(report.stale.is_empty());

    // An inflated entry is stale (ratchet must be written down); an entry
    // for a clean file is stale too.
    baseline.entries.insert("crates/demo/src/lib.rs:p1".to_string(), 3);
    baseline.entries.insert("crates/demo/src/main.rs:p1".to_string(), 1);
    let report = run_lint(&fixture_root(), &baseline).unwrap();
    assert!(report.is_clean());
    assert_eq!(report.stale.len(), 2, "{}", report.render(true));

    // More findings than the baseline allows is always a failure.
    baseline.entries.insert("crates/demo/src/lib.rs:p1".to_string(), 0);
    let report = run_lint(&fixture_root(), &baseline).unwrap();
    assert!(!report.is_clean());
}

#[test]
fn seeding_a_violation_into_a_clean_crate_fails_the_lint() {
    // Build a minimal clean workspace in the test tmpdir, verify it lints
    // clean, then seed D1 and D2 violations and watch the lint fail — the
    // CI-gate property the tentpole promises.
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("seeded-ws");
    let src = root.join("crates/seeded/src");
    std::fs::create_dir_all(&src).unwrap();
    let lib = src.join("lib.rs");

    std::fs::write(
        &lib,
        "pub fn total(xs: &[u64]) -> u64 {\n    xs.iter().sum()\n}\n",
    )
    .unwrap();
    let report = run_lint(&root, &Baseline::default()).unwrap();
    assert!(report.is_clean(), "{}", report.render(true));

    std::fs::write(
        &lib,
        concat!(
            "use std::collections::HashMap;\n",
            "pub fn dump(m: &HashMap<u32, u32>) -> Vec<u32> {\n",
            "    let mut out = Vec::new();\n",
            "    for (&k, _) in m.iter() {\n",
            "        out.push(k);\n",
            "    }\n",
            "    out\n",
            "}\n",
            "pub fn best(xs: &[f64]) -> Option<f64> {\n",
            "    xs.iter().copied().max_by(|a, b| a.partial_cmp(b).unwrap())\n",
            "}\n",
        ),
    )
    .unwrap();
    let report = run_lint(&root, &Baseline::default()).unwrap();
    assert!(!report.is_clean());
    assert!(report.findings.iter().any(|f| f.rule.id() == "d1"));
    assert!(report.findings.iter().any(|f| f.rule.id() == "d2"));
}
