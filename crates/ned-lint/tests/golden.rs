//! Golden-fixture tests: each rule must fire on its fixture with the exact
//! file, line, and rule id — and must NOT fire where a suppression, test
//! context, or bin context exempts the site.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::{Path, PathBuf};

use ned_lint::baseline::Baseline;
use ned_lint::run_lint;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

#[test]
fn every_rule_fires_exactly_where_expected() {
    let report = run_lint(&fixture_root(), &Baseline::default()).unwrap();
    let got: Vec<(String, usize, String)> = report
        .findings
        .iter()
        .map(|f| (f.path.clone(), f.line, f.rule.id().to_string()))
        .collect();
    let expect = |p: &str, l: usize, r: &str| (p.to_string(), l, r.to_string());
    assert_eq!(
        got,
        vec![
            expect("crates/demo/src/clock.rs", 7, "d3"),
            expect("crates/demo/src/entry.rs", 12, "p2"),
            expect("crates/demo/src/hotpath.rs", 14, "h1"),
            expect("crates/demo/src/lib.rs", 13, "d1"),
            expect("crates/demo/src/lib.rs", 21, "d2"),
            expect("crates/demo/src/lib.rs", 26, "p1"),
            expect("crates/demo/src/main.rs", 7, "p2"),
            expect("crates/demo/src/unsafe_use.rs", 5, "u1"),
            expect("crates/ned-obs/src/lib.rs", 7, "m1"),
            expect("crates/ned-obs/src/names.rs", 6, "m1"),
            expect("crates/ned-obs/src/names.rs", 8, "m1"),
            expect("crates/ned-serve/src/lib.rs", 10, "c1"),
        ],
        "full report:\n{}",
        report.render(true),
    );
}

#[test]
fn p2_overrides_the_bin_p1_relaxation() {
    // `main.rs` indexes a Vec: lexical p1 stays relaxed in bins, but once
    // `main` is a declared entry root the same site is a p2 finding.
    let report = run_lint(&fixture_root(), &Baseline::default()).unwrap();
    let at_site: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.path == "crates/demo/src/main.rs" && f.line == 7)
        .map(|f| f.rule.id())
        .collect();
    assert_eq!(at_site, ["p2"], "full report:\n{}", report.render(true));
}

#[test]
fn explain_reproduces_the_p2_call_chain() {
    let report = run_lint(&fixture_root(), &Baseline::default()).unwrap();
    let text = report.explain("p2", "crates/demo/src/entry.rs", 12).unwrap();
    // Root, two hops, ending at the declaring fn — each with file:line.
    assert!(text.contains("root demo::main::main (crates/demo/src/main.rs:9)"), "{text}");
    assert!(text.contains("-> demo::entry::run (crates/demo/src/entry.rs:6)"), "{text}");
    assert!(text.contains("-> demo::entry::risky (crates/demo/src/entry.rs:10)"), "{text}");
    // Unknown sites return None instead of a fabricated chain.
    assert!(report.explain("p2", "crates/demo/src/entry.rs", 1).is_none());
}

#[test]
fn explain_still_works_for_baselined_sites() {
    let mut baseline = Baseline::default();
    baseline.entries.insert("crates/demo/src/entry.rs:p2".to_string(), 1);
    let report = run_lint(&fixture_root(), &baseline).unwrap();
    assert!(!report.findings.iter().any(|f| f.path.ends_with("entry.rs")), "absorbed");
    let text = report.explain("p2", "crates/demo/src/entry.rs", 12).unwrap();
    assert!(text.contains("root demo::main::main"), "{text}");
}

#[test]
fn h1_exempts_arena_route_and_inline_allows() {
    let report = run_lint(&fixture_root(), &Baseline::default()).unwrap();
    let h1: Vec<(&str, usize)> = report
        .findings
        .iter()
        .filter(|f| f.rule.id() == "h1")
        .map(|f| (f.path.as_str(), f.line))
        .collect();
    // Only `grow`'s Vec::new fires — `ScoringScratch::ensure` (arena
    // route) and the allowed warmup in `reuse` are exempt.
    assert_eq!(h1, [("crates/demo/src/hotpath.rs", 14)], "{}", report.render(true));
}

#[test]
fn callgraph_stats_cover_the_fixture_roots() {
    let report = run_lint(&fixture_root(), &Baseline::default()).unwrap();
    let stats = report.callgraph.expect("stats always computed");
    assert_eq!(stats.entry_roots, ["demo::main::main"]);
    assert_eq!(stats.hot_roots, ["demo::hotpath::score_batch"]);
    assert!(stats.entry_reachable >= 3, "main -> run -> risky: {stats:?}");
    assert!(stats.hot_reachable >= 4, "score_batch, ensure, grow, reuse: {stats:?}");
    assert!(stats.resolved >= 5, "{stats:?}");
    let rendered = stats.render();
    assert!(rendered.contains("entry demo::main::main"), "{rendered}");
}

#[test]
fn vendor_unsafe_is_counted_not_flagged() {
    let report = run_lint(&fixture_root(), &Baseline::default()).unwrap();
    assert_eq!(report.vendor_unsafe.get("vdemo"), Some(&2));
    assert!(!report.findings.iter().any(|f| f.path.starts_with("vendor/")));
}

#[test]
fn baseline_absorbs_and_ratchets() {
    // A baseline matching the fixture exactly: clean, nothing stale.
    let mut baseline = Baseline::default();
    for (key, count) in [
        ("crates/demo/src/clock.rs:d3", 1),
        ("crates/demo/src/entry.rs:p2", 1),
        ("crates/demo/src/hotpath.rs:h1", 1),
        ("crates/demo/src/lib.rs:d1", 1),
        ("crates/demo/src/lib.rs:d2", 1),
        ("crates/demo/src/lib.rs:p1", 1),
        ("crates/demo/src/main.rs:p2", 1),
        ("crates/demo/src/unsafe_use.rs:u1", 1),
        ("crates/ned-obs/src/lib.rs:m1", 1),
        ("crates/ned-obs/src/names.rs:m1", 2),
        ("crates/ned-serve/src/lib.rs:c1", 1),
    ] {
        baseline.entries.insert(key.to_string(), count);
    }
    let report = run_lint(&fixture_root(), &baseline).unwrap();
    assert!(report.is_clean(), "{}", report.render(true));
    assert_eq!(report.baselined, 12);
    assert!(report.stale.is_empty());

    // An inflated entry is stale (ratchet must be written down); an entry
    // for a clean file is stale too.
    baseline.entries.insert("crates/demo/src/lib.rs:p1".to_string(), 3);
    baseline.entries.insert("crates/demo/src/main.rs:p1".to_string(), 1);
    let report = run_lint(&fixture_root(), &baseline).unwrap();
    assert!(report.is_clean());
    assert_eq!(report.stale.len(), 2, "{}", report.render(true));

    // More findings than the baseline allows is always a failure.
    baseline.entries.insert("crates/demo/src/lib.rs:p1".to_string(), 0);
    let report = run_lint(&fixture_root(), &baseline).unwrap();
    assert!(!report.is_clean());
}

#[test]
fn seeding_a_violation_into_a_clean_crate_fails_the_lint() {
    // Build a minimal clean workspace in the test tmpdir, verify it lints
    // clean, then seed D1 and D2 violations and watch the lint fail — the
    // CI-gate property the tentpole promises.
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("seeded-ws");
    let src = root.join("crates/seeded/src");
    std::fs::create_dir_all(&src).unwrap();
    let lib = src.join("lib.rs");

    std::fs::write(
        &lib,
        "pub fn total(xs: &[u64]) -> u64 {\n    xs.iter().sum()\n}\n",
    )
    .unwrap();
    let report = run_lint(&root, &Baseline::default()).unwrap();
    assert!(report.is_clean(), "{}", report.render(true));

    std::fs::write(
        &lib,
        concat!(
            "use std::collections::HashMap;\n",
            "pub fn dump(m: &HashMap<u32, u32>) -> Vec<u32> {\n",
            "    let mut out = Vec::new();\n",
            "    for (&k, _) in m.iter() {\n",
            "        out.push(k);\n",
            "    }\n",
            "    out\n",
            "}\n",
            "pub fn best(xs: &[f64]) -> Option<f64> {\n",
            "    xs.iter().copied().max_by(|a, b| a.partial_cmp(b).unwrap())\n",
            "}\n",
        ),
    )
    .unwrap();
    let report = run_lint(&root, &Baseline::default()).unwrap();
    assert!(!report.is_clean());
    assert!(report.findings.iter().any(|f| f.rule.id() == "d1"));
    assert!(report.findings.iter().any(|f| f.rule.id() == "d2"));
}

#[test]
fn seeding_an_allocation_into_a_hot_reachable_fn_fails_the_gate() {
    // The acceptance property for h1: a clean hot path lints clean; adding
    // one `Vec::new()` to a fn reachable from a hot root trips the gate.
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("seeded-hot-ws");
    let src = root.join("crates/seeded/src");
    std::fs::create_dir_all(&src).unwrap();
    let lib = src.join("lib.rs");

    let clean = concat!(
        "// ned-lint: hot\n",
        "pub fn score(out: &mut [f64]) {\n",
        "    accumulate(out);\n",
        "}\n",
        "fn accumulate(out: &mut [f64]) {\n",
        "    for v in out.iter_mut() {\n",
        "        *v += 1.0;\n",
        "    }\n",
        "}\n",
    );
    std::fs::write(&lib, clean).unwrap();
    let report = run_lint(&root, &Baseline::default()).unwrap();
    assert!(report.is_clean(), "{}", report.render(true));

    let seeded = concat!(
        "// ned-lint: hot\n",
        "pub fn score(out: &mut [f64]) {\n",
        "    accumulate(out);\n",
        "}\n",
        "fn accumulate(out: &mut [f64]) {\n",
        "    let scratch: Vec<f64> = Vec::new();\n",
        "    for v in out.iter_mut() {\n",
        "        *v += scratch.len() as f64;\n",
        "    }\n",
        "}\n",
    );
    std::fs::write(&lib, seeded).unwrap();
    let report = run_lint(&root, &Baseline::default()).unwrap();
    assert!(!report.is_clean());
    let h1: Vec<(&str, usize)> = report
        .findings
        .iter()
        .filter(|f| f.rule.id() == "h1")
        .map(|f| (f.path.as_str(), f.line))
        .collect();
    assert_eq!(h1, [("crates/seeded/src/lib.rs", 6)], "{}", report.render(true));
}
