//! Vendored work-alike: `unsafe` is counted, not flagged.

/// Reads one byte from a raw pointer.
///
/// # Safety
/// `p` must be valid for reads.
pub unsafe fn raw_read(p: *const u8) -> u8 {
    unsafe { *p }
}
