//! Root crate of the fixture workspace: intentionally clean.

/// Sorted output: no finding.
pub fn sorted_keys(map: &std::collections::HashMap<String, u32>) -> Vec<String> {
    let mut out: Vec<String> = map.keys().cloned().collect();
    out.sort_unstable();
    out
}
