//! C1 fixture crate (the rule only applies in `ned-serve` /
//! `ned-relatedness`): a lock guard held across a cross-module call.

mod helper;

/// C1 fires at the first `helper::record` call: `guard` is still live.
/// The second call, after `drop(guard)`, is clean.
pub fn pump(state: &std::sync::Mutex<u32>) {
    let guard = state.lock().unwrap_or_else(|e| e.into_inner());
    helper::record(*guard);
    drop(guard);
    helper::record(0);
}
