//! Cross-module callee for the c1 fixture.

/// Records a value (stands in for a metrics/registry call).
pub fn record(_v: u32) {}
