//! M1 fixture crate: a registry caller with one raw literal name.

mod names;

/// M1 fires at the literal; the `names::` routes are clean.
pub fn install(m: &Metrics) {
    m.counter("raw_name");
    m.counter(names::REQUESTS);
    m.gauge(names::REQUESTS_ALIAS);
}
