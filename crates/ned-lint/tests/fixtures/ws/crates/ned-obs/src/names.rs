//! M1 fixture: metric-name constants.

/// Used by the registry caller in `lib.rs`.
pub const REQUESTS: &str = "requests_total";
/// M1 fires: never referenced outside this file.
pub const ORPHANED: &str = "orphaned_total";
/// M1 fires: duplicates `REQUESTS`'s value (two series would merge).
pub const REQUESTS_ALIAS: &str = "requests_total";
