//! Binary target: P1 (indexing) is relaxed here.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = &args[0];
    println!("{name}");
}
