//! Binary target: P1 (indexing) is relaxed here — but P2 still applies
//! once `main` is a declared entry root.

// ned-lint: entry
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = &args[0];
    println!("{name}");
    entry::run(name.len());
}
