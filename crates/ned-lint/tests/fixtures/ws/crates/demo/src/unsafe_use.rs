//! U1 fixture: `unsafe` in a first-party crate.

/// U1: reinterprets bits through `transmute`.
pub fn reinterpret(x: u32) -> i32 {
    unsafe { std::mem::transmute::<u32, i32>(x) }
}
