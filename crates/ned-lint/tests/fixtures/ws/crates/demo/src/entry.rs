//! P2 fixture: the panicking site sits two call hops from the entry root
//! declared on `main.rs` — `--explain` must reproduce the full chain.

/// First hop from the binary's `main`.
pub fn run(n: usize) {
    risky(n);
}

/// P2 (and lexical P1) fire on the `.expect(` below.
fn risky(n: usize) {
    let v: Option<usize> = Some(n);
    let _ = v.expect("fixture panic");
}
