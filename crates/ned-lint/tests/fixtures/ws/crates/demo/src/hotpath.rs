//! H1 fixture: an allocation reachable from a hot root fires; the scratch
//! arena route and an inline allow are exempt.

/// Hot root for the h1 fixture.
// ned-lint: hot
pub fn score_batch(scratch: &mut ScoringScratch) {
    scratch.ensure(4);
    grow();
    reuse();
}

/// H1 fires on the `Vec::new` below: hot-reachable, off the arena route.
fn grow() {
    let mut buf = Vec::new();
    buf.push(1u32);
}

/// Inline allow: reviewed one-time warmup allocation.
fn reuse() {
    let warm: Vec<u32> = Vec::with_capacity(4); // ned-lint: allow(h1) — one-time warmup
    drop(warm);
}

/// Scratch arena for the fixture's hot path.
pub struct ScoringScratch {
    bufs: Vec<u32>,
}

impl ScoringScratch {
    /// Arena route: allocation here is sanctioned even when hot-reachable.
    pub fn ensure(&mut self, n: usize) {
        while self.bufs.len() < n {
            self.bufs.push(0);
        }
    }
}
