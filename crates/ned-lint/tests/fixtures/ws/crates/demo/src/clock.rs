//! D3 fixture: ambient wall clock in deterministic code.

use std::time::Instant;

/// D3: samples the wall clock.
pub fn stamp_ms() -> u128 {
    let t = Instant::now();
    t.elapsed().as_millis()
}
