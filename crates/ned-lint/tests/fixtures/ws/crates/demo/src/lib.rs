//! Demo crate: one violation per rule, plus exercised suppressions.

use std::collections::HashMap;

mod clock;
mod entry;
mod hotpath;
mod unsafe_use;

/// D1: hash-map iteration order escapes through the returned vector.
pub fn dump_keys(map: &HashMap<String, u32>) -> Vec<String> {
    let mut out = Vec::new();
    for k in map.keys() {
        out.push(k.clone());
    }
    out
}

/// D2: float ordering through `partial_cmp`.
pub fn sort_scores(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}

/// P1: unchecked slice indexing in library code.
pub fn first(xs: &[u32]) -> u32 {
    xs[0]
}

/// Suppressed P1: the inline allow absorbs the finding.
pub fn second(xs: &[u32]) -> u32 {
    // ned-lint: allow(p1)
    xs[1]
}

#[cfg(test)]
mod tests {
    #[test]
    fn indexing_inside_tests_is_exempt() {
        let xs = [1u32, 2, 3];
        assert_eq!(xs[0], 1);
    }
}
