//! The real workspace must lint clean against its checked-in baseline —
//! zero unsuppressed findings and zero stale entries. A failure here means
//! either a new violation slipped in (fix it or justify an inline allow)
//! or debt was paid off without ratcheting `lint.toml` down
//! (`cargo run -p ned-lint -- --write-baseline`).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::Path;

use ned_lint::baseline::Baseline;
use ned_lint::run_lint;

#[test]
fn workspace_lints_clean_with_current_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let baseline = Baseline::load(&root.join("lint.toml")).unwrap();
    let report = run_lint(&root, &baseline).unwrap();
    assert!(report.is_clean(), "unsuppressed findings:\n{}", report.render(true));
    assert!(
        report.stale.is_empty(),
        "stale baseline entries — ratchet lint.toml down:\n{}",
        report.render(true),
    );
    assert!(report.files_scanned > 100, "walker lost the workspace?");
}

/// The interprocedural rules (p2/h1/c1/m1) must have zero *unsuppressed*
/// findings at head: p2 debt is baselined in `lint.toml`, h1 sites carry
/// reviewed inline allows, and c1/m1 are clean outright. A failure here is
/// a new reachable panic, hot-path allocation, guard-across-call, or
/// metric-name drift.
#[test]
fn interprocedural_rules_are_clean_at_head() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let baseline = Baseline::load(&root.join("lint.toml")).unwrap();
    let report = run_lint(&root, &baseline).unwrap();
    for rule in ["p2", "h1", "c1", "m1"] {
        let hits: Vec<String> = report
            .findings
            .iter()
            .filter(|f| f.rule.id() == rule)
            .map(|f| format!("{}:{}", f.path, f.line))
            .collect();
        assert!(hits.is_empty(), "unsuppressed {rule} findings: {hits:?}");
    }
    // h1 and c1 carry no baseline debt at all — only p2 may.
    for key in baseline.entries.keys() {
        assert!(
            !key.ends_with(":h1") && !key.ends_with(":c1") && !key.ends_with(":m1"),
            "baselined {key}: h1/c1/m1 must be fixed or inline-allowed, never baselined"
        );
    }
}

/// The call-graph analysis must actually cover the annotated roots — if an
/// annotation is dropped or the resolver regresses, these counts collapse.
#[test]
fn callgraph_covers_the_annotated_roots() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let baseline = Baseline::load(&root.join("lint.toml")).unwrap();
    let report = run_lint(&root, &baseline).unwrap();
    let stats = report.callgraph.expect("stats always computed");
    let entry_names = stats.entry_roots.join("\n");
    assert!(entry_names.contains("worker_loop"), "{entry_names}");
    assert!(entry_names.contains("disambiguate_features"), "{entry_names}");
    let hot_names = stats.hot_roots.join("\n");
    assert!(hot_names.contains("simscores_batch"), "{hot_names}");
    assert!(hot_names.contains("phrase_score_run"), "{hot_names}");
    assert!(hot_names.contains("shortest_cover_into"), "{hot_names}");
    assert!(stats.entry_reachable > 50, "entry reachability collapsed: {stats:?}");
    assert!(stats.hot_reachable > 10, "hot reachability collapsed: {stats:?}");
    assert!(stats.resolved > 1000, "resolver regressed: {stats:?}");
}
