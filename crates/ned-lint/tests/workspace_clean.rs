//! The real workspace must lint clean against its checked-in baseline —
//! zero unsuppressed findings and zero stale entries. A failure here means
//! either a new violation slipped in (fix it or justify an inline allow)
//! or debt was paid off without ratcheting `lint.toml` down
//! (`cargo run -p ned-lint -- --write-baseline`).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::Path;

use ned_lint::baseline::Baseline;
use ned_lint::run_lint;

#[test]
fn workspace_lints_clean_with_current_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let baseline = Baseline::load(&root.join("lint.toml")).unwrap();
    let report = run_lint(&root, &baseline).unwrap();
    assert!(report.is_clean(), "unsuppressed findings:\n{}", report.render(true));
    assert!(
        report.stale.is_empty(),
        "stale baseline entries — ratchet lint.toml down:\n{}",
        report.render(true),
    );
    assert!(report.files_scanned > 100, "walker lost the workspace?");
}
