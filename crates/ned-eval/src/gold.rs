//! Gold-standard document types shared by the corpus generator, the
//! disambiguators, and the evaluation measures.

use serde::{Deserialize, Serialize};

use ned_kb::EntityId;
use ned_text::{Mention, Token};

/// The label of a mention: a knowledge-base entity, or `None` for an
/// out-of-knowledge-base (emerging) entity (§2.2.1: "OOE").
pub type Label = Option<EntityId>;

/// A mention together with its gold or predicted label.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabeledMention {
    /// The mention span and surface.
    pub mention: Mention,
    /// The label; `None` means out-of-KB.
    pub label: Label,
}

/// A gold-annotated document: tokens plus labeled mentions, with an
/// optional timestamp (day index) for news-stream experiments (Ch. 5).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoldDoc {
    /// Stable document identifier.
    pub id: String,
    /// Tokenized text.
    pub tokens: Vec<Token>,
    /// Gold-labeled mentions, sorted by position, non-overlapping.
    pub mentions: Vec<LabeledMention>,
    /// Day index within a news stream; 0 for timeless corpora.
    pub day: u32,
}

impl GoldDoc {
    /// Creates a document and checks mention ordering invariants.
    pub fn new(
        id: impl Into<String>,
        tokens: Vec<Token>,
        mentions: Vec<LabeledMention>,
        day: u32,
    ) -> Self {
        for w in mentions.windows(2) {
            assert!(
                w[0].mention.token_end <= w[1].mention.token_start,
                "mentions must be sorted and non-overlapping"
            );
        }
        if let Some(last) = mentions.last() {
            assert!(last.mention.token_end <= tokens.len(), "mention out of token range");
        }
        GoldDoc { id: id.into(), tokens, mentions, day }
    }

    /// The bare mentions, without labels (input to a disambiguator).
    pub fn bare_mentions(&self) -> Vec<Mention> {
        self.mentions.iter().map(|m| m.mention.clone()).collect()
    }

    /// The gold labels, parallel to [`Self::bare_mentions`].
    pub fn gold_labels(&self) -> Vec<Label> {
        self.mentions.iter().map(|m| m.label).collect()
    }

    /// Number of mentions whose gold label is out-of-KB.
    pub fn out_of_kb_count(&self) -> usize {
        self.mentions.iter().filter(|m| m.label.is_none()).count()
    }

    /// Reconstructs a plain-text rendering from the tokens (spaces between
    /// tokens; good enough for display and debugging).
    pub fn text(&self) -> String {
        let mut s = String::new();
        for (i, t) in self.tokens.iter().enumerate() {
            if i > 0 {
                s.push(' ');
            }
            s.push_str(&t.text);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ned_text::tokenize;

    fn doc() -> GoldDoc {
        let tokens = tokenize("Kashmir was performed by Page .");
        GoldDoc::new(
            "d1",
            tokens,
            vec![
                LabeledMention {
                    mention: Mention::new("Kashmir", 0, 1),
                    label: Some(EntityId(1)),
                },
                LabeledMention { mention: Mention::new("Page", 4, 5), label: None },
            ],
            0,
        )
    }

    #[test]
    fn accessors() {
        let d = doc();
        assert_eq!(d.bare_mentions().len(), 2);
        assert_eq!(d.gold_labels(), vec![Some(EntityId(1)), None]);
        assert_eq!(d.out_of_kb_count(), 1);
        assert!(d.text().starts_with("Kashmir was"));
    }

    #[test]
    #[should_panic(expected = "sorted and non-overlapping")]
    fn overlapping_mentions_panic() {
        let tokens = tokenize("a b c");
        GoldDoc::new(
            "bad",
            tokens,
            vec![
                LabeledMention { mention: Mention::new("a b", 0, 2), label: None },
                LabeledMention { mention: Mention::new("b c", 1, 3), label: None },
            ],
            0,
        );
    }

    #[test]
    #[should_panic(expected = "out of token range")]
    fn mention_beyond_tokens_panics() {
        let tokens = tokenize("a");
        GoldDoc::new(
            "bad",
            tokens,
            vec![LabeledMention { mention: Mention::new("a b", 0, 2), label: None }],
            0,
        );
    }
}
