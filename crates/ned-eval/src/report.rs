//! Plain-text table rendering for the experiment harness.
//!
//! Every experiment binary prints its results in the same aligned format so
//! `EXPERIMENTS.md` can record them verbatim.

use std::fmt::Write as _;

/// An aligned plain-text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header width.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width must match header");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<width$}", cell, width = widths[i]);
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// Formats a fraction as a percentage with two decimals ("82.63%").
pub fn pct(value: f64) -> String {
    format!("{:.2}%", value * 100.0)
}

/// Formats a float with the given number of decimals.
pub fn num(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["Method", "MacA", "MicA"]);
        t.add_row(vec!["r-prior sim-k r-coh".into(), pct(0.8263), pct(0.8203)]);
        t.add_row(vec!["Kul CI".into(), pct(0.7674), pct(0.7287)]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("82.63%"));
        let lines: Vec<&str> = s.lines().collect();
        // Header + separator + 2 rows + title line.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn pct_and_num_formatting() {
        assert_eq!(pct(0.5), "50.00%");
        assert_eq!(pct(1.0), "100.00%");
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(num(-0.5, 1), "-0.5");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_row_width_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.add_row(vec!["only one".into()]);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new("Empty", &["col"]);
        let s = t.render();
        assert!(s.contains("col"));
        assert_eq!(t.row_count(), 0);
    }
}
