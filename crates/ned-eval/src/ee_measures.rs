//! Emerging-entity discovery measures (§5.7.2).
//!
//! Over the mentions of one document, with gold label `None` meaning
//! "emerging entity" (EE):
//!
//! - **EE precision**: of the mentions a method labeled EE, the fraction
//!   whose gold label is EE.
//! - **EE recall**: of the gold-EE mentions, the fraction the method
//!   labeled EE.
//! - **EE F1**: harmonic mean, computed per document.
//!
//! All three are averaged over documents (documents where a value is
//! undefined — e.g. precision with no EE predictions — are skipped for that
//! value, matching the macro-averaged reporting of Table 5.3; F1 of a
//! document with zero precision or recall is 0, which the thesis notes pulls
//! the average F1 below both averages).

use crate::gold::Label;

/// Per-document EE counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EeCounts {
    /// Mentions predicted EE whose gold label is EE.
    pub true_positives: usize,
    /// Mentions predicted EE whose gold label is an entity.
    pub false_positives: usize,
    /// Gold-EE mentions predicted as an entity.
    pub false_negatives: usize,
}

impl EeCounts {
    /// Counts for one document from parallel label slices.
    pub fn of(gold: &[Label], predicted: &[Label]) -> Self {
        assert_eq!(gold.len(), predicted.len(), "label slices must be parallel");
        let mut c = EeCounts::default();
        for (g, p) in gold.iter().zip(predicted) {
            match (g.is_none(), p.is_none()) {
                (true, true) => c.true_positives += 1,
                (false, true) => c.false_positives += 1,
                (true, false) => c.false_negatives += 1,
                (false, false) => {}
            }
        }
        c
    }

    /// EE precision; `None` when the method predicted no EEs.
    pub fn precision(&self) -> Option<f64> {
        let denom = self.true_positives + self.false_positives;
        (denom > 0).then(|| self.true_positives as f64 / denom as f64)
    }

    /// EE recall; `None` when the document has no gold EEs.
    pub fn recall(&self) -> Option<f64> {
        let denom = self.true_positives + self.false_negatives;
        (denom > 0).then(|| self.true_positives as f64 / denom as f64)
    }

    /// EE F1; `None` when both precision and recall are undefined.
    pub fn f1(&self) -> Option<f64> {
        match (self.precision(), self.recall()) {
            (None, None) => None,
            (p, r) => {
                let p = p.unwrap_or(0.0);
                let r = r.unwrap_or(0.0);
                if p + r == 0.0 {
                    Some(0.0)
                } else {
                    Some(2.0 * p * r / (p + r))
                }
            }
        }
    }
}

/// Document-averaged EE precision, recall, and F1 (Table 5.3 reporting).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EeAverages {
    /// Mean per-document EE precision.
    pub precision: f64,
    /// Mean per-document EE recall.
    pub recall: f64,
    /// Mean per-document EE F1.
    pub f1: f64,
}

/// Averages EE measures over documents given as (gold, predicted) pairs.
pub fn ee_averages<'a, I>(docs: I) -> EeAverages
where
    I: IntoIterator<Item = (&'a [Label], &'a [Label])>,
{
    let mut p_sum = 0.0;
    let mut p_n = 0usize;
    let mut r_sum = 0.0;
    let mut r_n = 0usize;
    let mut f_sum = 0.0;
    let mut f_n = 0usize;
    for (g, pr) in docs {
        let c = EeCounts::of(g, pr);
        if let Some(p) = c.precision() {
            p_sum += p;
            p_n += 1;
        }
        if let Some(r) = c.recall() {
            r_sum += r;
            r_n += 1;
        }
        if let Some(f) = c.f1() {
            f_sum += f;
            f_n += 1;
        }
    }
    let avg = |sum: f64, n: usize| if n == 0 { 0.0 } else { sum / n as f64 };
    EeAverages { precision: avg(p_sum, p_n), recall: avg(r_sum, r_n), f1: avg(f_sum, f_n) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ned_kb::EntityId;

    fn e(i: u32) -> Label {
        Some(EntityId(i))
    }

    #[test]
    fn counts_classify_correctly() {
        let gold = vec![None, None, e(1), e(2)];
        let pred = vec![None, e(9), None, e(2)];
        let c = EeCounts::of(&gold, &pred);
        assert_eq!(c, EeCounts { true_positives: 1, false_positives: 1, false_negatives: 1 });
        assert_eq!(c.precision(), Some(0.5));
        assert_eq!(c.recall(), Some(0.5));
        assert_eq!(c.f1(), Some(0.5));
    }

    #[test]
    fn undefined_precision_when_no_ee_predicted() {
        let gold = vec![None, e(1)];
        let pred = vec![e(2), e(1)];
        let c = EeCounts::of(&gold, &pred);
        assert_eq!(c.precision(), None);
        assert_eq!(c.recall(), Some(0.0));
        assert_eq!(c.f1(), Some(0.0));
    }

    #[test]
    fn undefined_recall_when_no_gold_ee() {
        let gold = vec![e(1), e(2)];
        let pred = vec![None, e(2)];
        let c = EeCounts::of(&gold, &pred);
        assert_eq!(c.precision(), Some(0.0));
        assert_eq!(c.recall(), None);
    }

    #[test]
    fn perfect_discovery() {
        let gold = vec![None, e(1), None];
        let pred = vec![None, e(1), None];
        let c = EeCounts::of(&gold, &pred);
        assert_eq!(c.f1(), Some(1.0));
    }

    #[test]
    fn averaging_skips_undefined_documents() {
        // Doc A: perfect. Doc B: no gold EE, no predicted EE → all undefined.
        let ga = vec![None];
        let pa = vec![None];
        let gb = vec![e(1)];
        let pb = vec![e(1)];
        let docs = [(ga.as_slice(), pa.as_slice()), (gb.as_slice(), pb.as_slice())];
        let avg = ee_averages(docs.iter().copied());
        assert_eq!(avg.precision, 1.0);
        assert_eq!(avg.recall, 1.0);
        assert_eq!(avg.f1, 1.0);
    }

    #[test]
    fn f1_average_can_be_below_both_averages() {
        // Doc A: P=1, R undefined → F1 = 0 (p defined, r undefined → 0+...).
        let ga = vec![e(1)];
        let pa = vec![None]; // FP only: P=0, R undefined, F1 = 0.
        let gb = vec![None];
        let pb = vec![None]; // perfect: P=R=F1=1.
        let docs = [(ga.as_slice(), pa.as_slice()), (gb.as_slice(), pb.as_slice())];
        let avg = ee_averages(docs.iter().copied());
        assert!((avg.precision - 0.5).abs() < 1e-12);
        assert!((avg.recall - 1.0).abs() < 1e-12);
        assert!((avg.f1 - 0.5).abs() < 1e-12);
    }
}
