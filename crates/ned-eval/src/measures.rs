//! Accuracy measures of §3.6.1.
//!
//! - **Document accuracy** `DA_d = |G_d ∩ A_d| / |G_d|`: fraction of
//!   correctly disambiguated gold mentions in one document.
//! - **Micro average accuracy**: the same fraction over the union of all
//!   documents' mentions.
//! - **Macro average accuracy**: mean of the document accuracies.
//!
//! Following §3.6.1 ("Mentions with Out-of-Knowledge-Base Entities"), the
//! Chapter-3 evaluation only counts mentions whose gold label is a known
//! entity; pass `count_out_of_kb = true` to include OOE-labeled mentions as
//! an additional class (the Chapter-5 setting).

use crate::gold::Label;

/// Correct/total counts for one document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DocCounts {
    /// Number of correctly labeled gold mentions.
    pub correct: usize,
    /// Number of gold mentions counted.
    pub total: usize,
}

impl DocCounts {
    /// The document accuracy, or `None` for a document with no counted
    /// mentions.
    pub fn accuracy(&self) -> Option<f64> {
        (self.total > 0).then(|| self.correct as f64 / self.total as f64)
    }
}

/// Counts correct predictions for one document.
///
/// `gold` and `predicted` are parallel label slices. When `count_out_of_kb`
/// is false, mentions with gold label `None` are skipped entirely.
pub fn document_counts(gold: &[Label], predicted: &[Label], count_out_of_kb: bool) -> DocCounts {
    assert_eq!(gold.len(), predicted.len(), "label slices must be parallel");
    let mut counts = DocCounts::default();
    for (g, p) in gold.iter().zip(predicted) {
        if g.is_none() && !count_out_of_kb {
            continue;
        }
        counts.total += 1;
        if g == p {
            counts.correct += 1;
        }
    }
    counts
}

/// Document accuracy `DA_d` (§3.6.1); `None` if nothing was counted.
pub fn document_accuracy(gold: &[Label], predicted: &[Label], count_out_of_kb: bool) -> Option<f64> {
    document_counts(gold, predicted, count_out_of_kb).accuracy()
}

/// Micro average accuracy over a collection of (gold, predicted) documents.
pub fn micro_accuracy<'a, I>(docs: I, count_out_of_kb: bool) -> f64
where
    I: IntoIterator<Item = (&'a [Label], &'a [Label])>,
{
    let mut agg = DocCounts::default();
    for (g, p) in docs {
        let c = document_counts(g, p, count_out_of_kb);
        agg.correct += c.correct;
        agg.total += c.total;
    }
    agg.accuracy().unwrap_or(0.0)
}

/// Macro average accuracy: mean document accuracy, skipping documents with
/// no counted mentions.
pub fn macro_accuracy<'a, I>(docs: I, count_out_of_kb: bool) -> f64
where
    I: IntoIterator<Item = (&'a [Label], &'a [Label])>,
{
    let mut sum = 0.0;
    let mut n = 0usize;
    for (g, p) in docs {
        if let Some(acc) = document_accuracy(g, p, count_out_of_kb) {
            sum += acc;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ned_kb::EntityId;

    fn e(i: u32) -> Label {
        Some(EntityId(i))
    }

    #[test]
    fn document_accuracy_counts_known_gold_only() {
        let gold = vec![e(1), e(2), None, e(3)];
        let pred = vec![e(1), e(9), e(5), e(3)];
        // In-KB only: 2 of 3 correct.
        let c = document_counts(&gold, &pred, false);
        assert_eq!(c, DocCounts { correct: 2, total: 3 });
        // Counting OOE as a class: the None mention was predicted e(5) → wrong.
        let c = document_counts(&gold, &pred, true);
        assert_eq!(c, DocCounts { correct: 2, total: 4 });
    }

    #[test]
    fn correct_out_of_kb_prediction_counts_when_enabled() {
        let gold = vec![None, e(1)];
        let pred = vec![None, e(1)];
        assert_eq!(document_accuracy(&gold, &pred, true), Some(1.0));
    }

    #[test]
    fn micro_pools_mentions_macro_averages_documents() {
        // Doc A: 1/1 correct. Doc B: 1/3 correct.
        let ga = vec![e(1)];
        let pa = vec![e(1)];
        let gb = vec![e(1), e(2), e(3)];
        let pb = vec![e(1), e(9), e(9)];
        let docs = || {
            vec![(ga.as_slice(), pa.as_slice()), (gb.as_slice(), pb.as_slice())].into_iter()
        };
        let micro = micro_accuracy(docs(), false);
        let macro_ = macro_accuracy(docs(), false);
        assert!((micro - 2.0 / 4.0).abs() < 1e-12);
        assert!((macro_ - (1.0 + 1.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_documents_are_skipped() {
        let gold: Vec<Label> = vec![None];
        let pred: Vec<Label> = vec![e(1)];
        assert_eq!(document_accuracy(&gold, &pred, false), None);
        let docs = [(gold.as_slice(), pred.as_slice())];
        assert_eq!(macro_accuracy(docs.iter().copied(), false), 0.0);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_lengths_panic() {
        document_counts(&[None], &[], false);
    }
}
