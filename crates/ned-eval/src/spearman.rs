//! Spearman rank correlation with tie handling (used to score relatedness
//! measures against the gold ranking, Table 4.2).

/// Assigns average ranks (1-based) to `values`, larger value = better rank 1.
/// Ties receive the mean of the ranks they span.
pub fn average_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[b].total_cmp(&values[a]));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Positions i..=j share the average rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation coefficient of two parallel score lists,
/// computed as the Pearson correlation of their average ranks (the
/// tie-correct formulation). Returns 0 for degenerate inputs (length < 2 or
/// zero variance).
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "score lists must be parallel");
    if a.len() < 2 {
        return 0.0;
    }
    pearson(&average_ranks(a), &average_ranks(b))
}

/// Pearson correlation of two parallel lists; 0 when either has zero
/// variance.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "score lists must be parallel");
    let n = a.len() as f64;
    if a.is_empty() {
        return 0.0;
    }
    let mean_a = a.iter().sum::<f64>() / n;
    let mean_b = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let dx = x - mean_a;
        let dy = y - mean_b;
        cov += dx * dy;
        var_a += dx * dx;
        var_b += dy * dy;
    }
    if var_a == 0.0 || var_b == 0.0 {
        return 0.0;
    }
    cov / (var_a * var_b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_rankings_correlate_perfectly() {
        let a = [3.0, 1.0, 4.0, 1.5, 5.0];
        assert!((spearman(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_rankings_correlate_negatively() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_transform_preserves_spearman() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b: Vec<f64> = a.iter().map(|&x: &f64| x.exp()).collect();
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ties_get_average_ranks() {
        let ranks = average_ranks(&[5.0, 5.0, 3.0]);
        // Two items tied for ranks 1 and 2 → both get 1.5; last gets 3.
        assert_eq!(ranks, vec![1.5, 1.5, 3.0]);
    }

    #[test]
    fn uncorrelated_is_near_zero() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 1.0, 4.0, 3.0];
        let rho = spearman(&a, &b);
        assert!(rho.abs() < 0.7, "{rho}");
    }

    #[test]
    fn constant_list_gives_zero() {
        let a = [1.0, 1.0, 1.0];
        let b = [1.0, 2.0, 3.0];
        assert_eq!(spearman(&a, &b), 0.0);
    }

    #[test]
    fn known_value_with_displacement() {
        // Classic 6·Σd²/(n(n²−1)) check (no ties): one swap in 5 items.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 1.0, 3.0, 4.0, 5.0];
        // d² sum = 1 + 1 = 2 → ρ = 1 − 12/(5·24) = 0.9.
        assert!((spearman(&a, &b) - 0.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_lengths_panic() {
        spearman(&[1.0], &[]);
    }
}
