#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! Evaluation measures and gold-standard types for the AIDA-NED suite.
//!
//! Implements the exact measures of the thesis' evaluation chapters:
//! micro/macro/document accuracy (§3.6.1), interpolated MAP and
//! precision–recall curves (Eq. 5.1), EE precision/recall/F1 (§5.7.2),
//! Spearman rank correlation for the relatedness gold standard (§4.5), and
//! the paired t-test used for the significance claims.

pub mod ee_measures;
pub mod gold;
pub mod map;
pub mod measures;
pub mod report;
pub mod spearman;
pub mod ttest;

pub use gold::{GoldDoc, Label, LabeledMention};
pub use measures::{document_accuracy, macro_accuracy, micro_accuracy, DocCounts};
