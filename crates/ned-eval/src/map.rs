//! Interpolated mean average precision and precision–recall curves
//! (Eq. 5.1, used for the confidence-assessor evaluation of §5.7.1).
//!
//! Items are (confidence, correct) pairs. Sorting by descending confidence
//! yields a precision–recall curve; `MAP = (1/m) Σ_{i=1..m} precision@(i/m)`
//! with interpolated precision (the maximum precision at any recall level
//! ≥ the requested one), which equals the area under the interpolated curve.

/// One ranked item: the assessor's confidence and whether the underlying
/// disambiguation was correct.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedItem {
    /// Confidence score (higher = more confident).
    pub confidence: f64,
    /// Whether the prediction was correct.
    pub correct: bool,
}

/// A point of the precision–recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Recall level (fraction of items retrieved).
    pub recall: f64,
    /// Precision among the retrieved items.
    pub precision: f64,
}

/// Raw precision–recall curve: one point per rank position after sorting by
/// descending confidence (ties broken stably).
pub fn pr_curve(items: &[RankedItem]) -> Vec<PrPoint> {
    let mut sorted: Vec<RankedItem> = items.to_vec();
    sorted.sort_by(|a, b| b.confidence.total_cmp(&a.confidence));
    let m = sorted.len();
    let mut correct = 0usize;
    sorted
        .iter()
        .enumerate()
        .map(|(i, item)| {
            if item.correct {
                correct += 1;
            }
            PrPoint {
                recall: (i + 1) as f64 / m as f64,
                precision: correct as f64 / (i + 1) as f64,
            }
        })
        .collect()
}

/// Interpolated MAP (Eq. 5.1): mean over `m` recall levels of the
/// interpolated precision. Returns 0 for an empty input.
pub fn interpolated_map(items: &[RankedItem]) -> f64 {
    let curve = pr_curve(items);
    if curve.is_empty() {
        return 0.0;
    }
    // Interpolated precision at index i = max precision at positions ≥ i.
    let mut interp = vec![0.0; curve.len()];
    let mut best: f64 = 0.0;
    for i in (0..curve.len()).rev() {
        best = best.max(curve[i].precision);
        interp[i] = best;
    }
    interp.iter().sum::<f64>() / interp.len() as f64
}

/// Precision among the items with confidence ≥ `threshold`, plus how many
/// items that is. Supports the "Prec@95% confidence" rows of Table 5.1.
pub fn precision_at_confidence(items: &[RankedItem], threshold: f64) -> (f64, usize) {
    let selected: Vec<&RankedItem> =
        items.iter().filter(|i| i.confidence >= threshold).collect();
    if selected.is_empty() {
        return (0.0, 0);
    }
    let correct = selected.iter().filter(|i| i.correct).count();
    (correct as f64 / selected.len() as f64, selected.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(confidence: f64, correct: bool) -> RankedItem {
        RankedItem { confidence, correct }
    }

    #[test]
    fn perfect_ranking_gives_map_one() {
        let items = vec![item(0.9, true), item(0.8, true), item(0.7, true)];
        assert!((interpolated_map(&items) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_wrong_gives_map_zero() {
        let items = vec![item(0.9, false), item(0.8, false)];
        assert_eq!(interpolated_map(&items), 0.0);
    }

    #[test]
    fn better_ranking_gives_higher_map() {
        // Same items, confidence either aligned or anti-aligned with truth.
        let good = vec![item(0.9, true), item(0.8, true), item(0.2, false), item(0.1, false)];
        let bad = vec![item(0.9, false), item(0.8, false), item(0.2, true), item(0.1, true)];
        assert!(interpolated_map(&good) > interpolated_map(&bad));
    }

    #[test]
    fn pr_curve_shape() {
        let items = vec![item(0.9, true), item(0.8, false), item(0.7, true)];
        let curve = pr_curve(&items);
        assert_eq!(curve.len(), 3);
        assert!((curve[0].precision - 1.0).abs() < 1e-12);
        assert!((curve[1].precision - 0.5).abs() < 1e-12);
        assert!((curve[2].precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((curve[2].recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn interpolation_is_monotone_nonincreasing() {
        let items: Vec<RankedItem> =
            (0..50).map(|i| item(1.0 - i as f64 / 50.0, i % 3 != 0)).collect();
        let curve = pr_curve(&items);
        let mut interp = vec![0.0; curve.len()];
        let mut best: f64 = 0.0;
        for i in (0..curve.len()).rev() {
            best = best.max(curve[i].precision);
            interp[i] = best;
        }
        for w in interp.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn precision_at_confidence_filters() {
        let items =
            vec![item(0.99, true), item(0.97, true), item(0.5, false), item(0.4, true)];
        let (p, n) = precision_at_confidence(&items, 0.95);
        assert_eq!(n, 2);
        assert!((p - 1.0).abs() < 1e-12);
        let (p, n) = precision_at_confidence(&items, 0.0);
        assert_eq!(n, 4);
        assert!((p - 0.75).abs() < 1e-12);
        let (p, n) = precision_at_confidence(&items, 1.1);
        assert_eq!((p, n), (0.0, 0));
    }

    #[test]
    fn empty_input() {
        assert_eq!(interpolated_map(&[]), 0.0);
        assert!(pr_curve(&[]).is_empty());
    }
}
