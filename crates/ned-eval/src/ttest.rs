//! Paired two-sided Student t-test (used for the significance statements of
//! §3.6.2 and §4.6.2).
//!
//! The p-value is computed exactly from the regularized incomplete beta
//! function: for `t` with `ν` degrees of freedom,
//! `p = I_{ν/(ν+t²)}(ν/2, 1/2)`.

/// Result of a paired t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTest {
    /// The t statistic (positive when the first sample's mean is larger).
    pub t: f64,
    /// Degrees of freedom (n − 1).
    pub df: usize,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Mean of the paired differences.
    pub mean_difference: f64,
}

/// Runs a paired two-sided t-test on parallel samples.
///
/// Returns `None` for fewer than two pairs or when all differences are zero
/// (the test is then undefined / trivially non-significant).
pub fn paired_ttest(a: &[f64], b: &[f64]) -> Option<TTest> {
    assert_eq!(a.len(), b.len(), "samples must be paired");
    let n = a.len();
    if n < 2 {
        return None;
    }
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let mean = diffs.iter().sum::<f64>() / n as f64;
    let var = diffs.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
    if var == 0.0 {
        return None;
    }
    let t = mean / (var / n as f64).sqrt();
    let df = n - 1;
    let p = student_t_two_sided_p(t, df);
    Some(TTest { t, df, p_value: p, mean_difference: mean })
}

/// Two-sided p-value of the Student t distribution.
pub fn student_t_two_sided_p(t: f64, df: usize) -> f64 {
    let v = df as f64;
    let x = v / (v + t * t);
    regularized_incomplete_beta(v / 2.0, 0.5, x).clamp(0.0, 1.0)
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction expansion (Numerical Recipes `betai`).
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "x must be in [0, 1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front =
        ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta function (Lentz's method).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9).
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = 0.999_999_999_999_809_9;
    for (i, &c) in COEFFS.iter().enumerate() {
        acc += c / (x + (i + 1) as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_boundaries() {
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(1,1) = x (uniform distribution).
        for &x in &[0.1, 0.5, 0.9] {
            assert!((regularized_incomplete_beta(1.0, 1.0, x) - x).abs() < 1e-10);
        }
    }

    #[test]
    fn t_distribution_known_quantiles() {
        // For df=10, t=2.228 is the 97.5th percentile → two-sided p ≈ 0.05.
        let p = student_t_two_sided_p(2.228, 10);
        assert!((p - 0.05).abs() < 0.002, "{p}");
        // t=0 → p = 1.
        assert!((student_t_two_sided_p(0.0, 5) - 1.0).abs() < 1e-10);
        // Large t → p near 0.
        assert!(student_t_two_sided_p(50.0, 30) < 1e-10);
    }

    #[test]
    fn clearly_different_samples_are_significant() {
        let a = [0.82, 0.83, 0.81, 0.84, 0.82, 0.83, 0.85, 0.82];
        let b = [0.76, 0.77, 0.75, 0.78, 0.76, 0.77, 0.78, 0.76];
        let r = paired_ttest(&a, &b).unwrap();
        assert!(r.p_value < 0.01, "p = {}", r.p_value);
        assert!(r.t > 0.0);
        assert!(r.mean_difference > 0.0);
    }

    #[test]
    fn noisy_equal_samples_are_not_significant() {
        let a = [0.5, 0.7, 0.3, 0.6, 0.4, 0.55];
        let b = [0.52, 0.66, 0.33, 0.58, 0.41, 0.53];
        let r = paired_ttest(&a, &b).unwrap();
        assert!(r.p_value > 0.05, "p = {}", r.p_value);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(paired_ttest(&[1.0], &[2.0]).is_none());
        assert!(paired_ttest(&[1.0, 2.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn symmetry_of_two_sided_test() {
        let p_pos = student_t_two_sided_p(1.7, 12);
        let p_neg = student_t_two_sided_p(-1.7, 12);
        assert!((p_pos - p_neg).abs() < 1e-12);
    }
}
