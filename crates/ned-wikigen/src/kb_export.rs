//! Export of a [`World`] into a [`KnowledgeBase`].
//!
//! Emerging entities and "recent" keyphrases are withheld — they exist in
//! the world (and its documents) but not in the KB, which is exactly the
//! incompleteness the Chapter-5 methods must cope with. Anchor counts for
//! base names are proportional to entity popularity, which yields realistic
//! popularity priors (§3.3.3).

use ned_kb::taxonomy::{kind_name, Taxonomy};
use ned_kb::{EntityId, KbBuilder, KnowledgeBase};

use crate::world::World;
use crate::zipf::popularity_weight;

/// A knowledge base exported from a world, with the index mappings.
#[derive(Debug)]
pub struct ExportedKb {
    /// The knowledge base (emerging entities excluded).
    pub kb: KnowledgeBase,
    /// World index → KB entity id (`None` for emerging entities).
    pub entity_ids: Vec<Option<EntityId>>,
    /// KB entity index → world index.
    pub world_index: Vec<usize>,
    /// YAGO-style type taxonomy: a coarse class per entity kind plus a
    /// domain-specific subclass per (kind, topic) pair — e.g. a "dom2
    /// person" is a person of topic 2.
    pub taxonomy: Taxonomy,
}

/// Anchor-count scale: the most popular entity gets this many anchor
/// observations for its base name.
const ANCHOR_SCALE: f64 = 10_000.0;

impl ExportedKb {
    /// Exports `world` into a knowledge base.
    pub fn build(world: &World) -> Self {
        let mut builder = KbBuilder::new();
        let mut entity_ids: Vec<Option<EntityId>> = vec![None; world.len()];
        let mut world_index = Vec::new();
        let top = popularity_weight(0, world.config.zipf_exponent);

        for e in &world.entities {
            if e.emerging {
                continue;
            }
            let id = builder.add_entity(&e.canonical, e.kind);
            entity_ids[e.index] = Some(id);
            world_index.push(e.index);
            // Base-name anchor count ∝ popularity.
            let share = e.popularity(world.config.zipf_exponent) / top;
            let count = (ANCHOR_SCALE * share).ceil() as u64;
            builder.add_name(id, &e.base_name, count.max(1));
            for (phrase, count) in &e.keyphrases {
                builder.add_keyphrase(id, phrase, *count);
            }
        }
        // Links among in-KB entities.
        for e in &world.entities {
            let Some(src) = entity_ids[e.index] else { continue };
            for &t in &e.outlinks {
                if let Some(dst) = entity_ids[t] {
                    builder.add_link(src, dst);
                }
            }
        }
        // Noisy dictionary entries.
        for (surface, victim) in &world.dictionary_noise {
            if let Some(id) = entity_ids[*victim] {
                builder.add_name(id, surface, 1);
            }
        }
        let kb = builder.build();
        // Taxonomy: root → kind classes → per-domain subclasses.
        let mut taxonomy = Taxonomy::new(kb.entity_count());
        let root = taxonomy.add_type("entity");
        for e in &world.entities {
            let Some(id) = entity_ids[e.index] else { continue };
            let kind_ty = taxonomy.add_type(kind_name(e.kind));
            taxonomy.add_subclass(kind_ty, root);
            let domain_ty = taxonomy.add_type(&format!("dom{} {}", e.topic, kind_name(e.kind)));
            taxonomy.add_subclass(domain_ty, kind_ty);
            taxonomy.assign(id, domain_ty);
        }
        ExportedKb { kb, entity_ids, world_index, taxonomy }
    }

    /// The gold label of a world entity: its KB id, or `None` when
    /// emerging/out-of-KB.
    pub fn label_of(&self, world_idx: usize) -> Option<EntityId> {
        self.entity_ids[world_idx]
    }

    /// The world index backing a KB entity.
    pub fn world_of(&self, id: EntityId) -> usize {
        self.world_index[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;

    fn exported() -> (World, ExportedKb) {
        let world = World::generate(WorldConfig::tiny(3));
        let kb = ExportedKb::build(&world);
        (world, kb)
    }

    #[test]
    fn emerging_entities_are_excluded() {
        let (world, ex) = exported();
        let emerging = world.emerging_indices();
        assert!(!emerging.is_empty());
        assert_eq!(ex.kb.entity_count(), world.len() - emerging.len());
        for &i in &emerging {
            assert_eq!(ex.label_of(i), None);
        }
    }

    #[test]
    fn mappings_roundtrip() {
        let (world, ex) = exported();
        for &i in &world.in_kb_indices() {
            let id = ex.label_of(i).expect("in-KB entity has an id");
            assert_eq!(ex.world_of(id), i);
            assert_eq!(ex.kb.entity(id).canonical_name, world.entities[i].canonical);
        }
    }

    #[test]
    fn priors_follow_popularity() {
        let (world, ex) = exported();
        // Find a base name shared by ≥2 in-KB entities with different ranks.
        let groups = world.name_groups();
        let group = groups
            .values()
            .find(|g| {
                g.len() >= 2 && g.iter().all(|&i| !world.entities[i].emerging)
            })
            .expect("a shared in-KB name");
        let most_popular = *group
            .iter()
            .min_by_key(|&&i| world.entities[i].popularity_rank)
            .unwrap();
        let least_popular = *group
            .iter()
            .max_by_key(|&&i| world.entities[i].popularity_rank)
            .unwrap();
        if most_popular == least_popular {
            return;
        }
        let name = &world.entities[most_popular].base_name;
        let p_most = ex.kb.prior(name, ex.label_of(most_popular).unwrap());
        let p_least = ex.kb.prior(name, ex.label_of(least_popular).unwrap());
        assert!(p_most >= p_least, "{p_most} vs {p_least}");
    }

    #[test]
    fn recent_phrases_are_not_exported() {
        let (world, ex) = exported();
        let with_recent = world
            .entities
            .iter()
            .find(|e| !e.emerging && !e.recent_phrases.is_empty())
            .expect("an entity with recent phrases");
        let id = ex.label_of(with_recent.index).unwrap();
        let kb_phrases: Vec<&str> = ex
            .kb
            .keyphrases(id)
            .iter()
            .map(|ep| ex.kb.phrase_surface(ep.phrase))
            .collect();
        for (p, _) in &with_recent.recent_phrases {
            // A recent phrase may coincide with an exported one by accident
            // of generation, but the specific phrase strings are fresh draws
            // so collisions are practically impossible.
            assert!(!kb_phrases.contains(&p.as_str()), "recent phrase {p} leaked into KB");
        }
    }

    #[test]
    fn taxonomy_covers_all_entities() {
        let (world, ex) = exported();
        let root = ex.taxonomy.type_by_name("entity").unwrap();
        for &i in &world.in_kb_indices() {
            let id = ex.label_of(i).unwrap();
            assert!(ex.taxonomy.is_instance_of(id, root), "entity {i} untyped");
            // The direct type is the domain-specific subclass.
            let direct = ex.taxonomy.direct_types(id);
            assert_eq!(direct.len(), 1);
            let kind_ty = ex
                .taxonomy
                .type_by_name(ned_kb::taxonomy::kind_name(world.entities[i].kind))
                .unwrap();
            assert!(ex.taxonomy.is_subtype_of(direct[0], kind_ty));
        }
    }

    #[test]
    fn ambiguous_names_have_multiple_candidates() {
        let (world, ex) = exported();
        let groups = world.name_groups();
        let (name, _) = groups
            .iter()
            .find(|(_, g)| g.iter().filter(|&&i| !world.entities[i].emerging).count() >= 2)
            .expect("ambiguous in-KB name");
        assert!(ex.kb.candidates(name).len() >= 2);
    }
}
