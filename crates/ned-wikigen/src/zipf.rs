//! Zipfian sampling over ranked items.
//!
//! Entity popularity, name reuse, and document entity selection all follow
//! heavy-tailed distributions; the sampler draws rank `r` (0-based) with
//! probability proportional to `1 / (r + 1)^s`.

use rand::rngs::StdRng;
use rand::Rng;

/// A precomputed Zipf distribution over `n` ranks.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution for `n` items with exponent `s`.
    ///
    /// # Panics
    /// Panics when `n` is zero or `s` is negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for r in 0..n {
            total += 1.0 / ((r + 1) as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True if the distribution covers a single rank.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Samples a 0-based rank.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random();
        match self.cumulative.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// The probability mass of rank `r`.
    pub fn mass(&self, r: usize) -> f64 {
        if r == 0 {
            self.cumulative[0]
        } else {
            self.cumulative[r] - self.cumulative[r - 1]
        }
    }
}

/// Popularity weight of an entity with 0-based rank `r` (unnormalized Zipf
/// mass); used wherever something scales "with popularity".
pub fn popularity_weight(rank: usize, s: f64) -> f64 {
    1.0 / ((rank + 1) as f64).powf(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn head_ranks_dominate() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > 2_000);
        // Tail together still gets some mass.
        let tail: usize = counts[50..].iter().sum();
        assert!(tail > 100);
    }

    #[test]
    fn mass_sums_to_one() {
        let z = Zipf::new(50, 1.2);
        let total: f64 = (0..50).map(|r| z.mass(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_when_exponent_zero() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.mass(r) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn popularity_weight_decreases() {
        assert!(popularity_weight(0, 1.0) > popularity_weight(1, 1.0));
        assert!(popularity_weight(5, 1.0) > popularity_weight(50, 1.0));
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn empty_zipf_panics() {
        Zipf::new(0, 1.0);
    }

    #[test]
    fn sampling_is_deterministic() {
        let z = Zipf::new(20, 1.0);
        let draw = || {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }
}
