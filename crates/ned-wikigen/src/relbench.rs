//! Relatedness gold standard (§4.5.1), generated from the world's latent
//! structure with simulated crowdsourcing.
//!
//! For each *seed* entity, 20 candidate entities of graded latent
//! relatedness are selected. The gold ranking is then derived the way the
//! thesis built its dataset: simulated judges compare candidate pairs (a
//! judge prefers the candidate with higher latent relatedness, with noise),
//! and candidates are ranked by their number of pairwise wins
//! (Coppersmith-style aggregation).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::kb_export::ExportedKb;
use crate::world::World;

/// One seed entity with its ranked candidates.
#[derive(Debug, Clone)]
pub struct SeedEntry {
    /// World index of the seed entity.
    pub seed: usize,
    /// Topic (domain) of the seed, for per-domain reporting.
    pub domain: usize,
    /// World indices of the candidates.
    pub candidates: Vec<usize>,
    /// Gold score per candidate (higher = more related to the seed);
    /// derived from aggregated pairwise wins, parallel to `candidates`.
    pub gold_scores: Vec<f64>,
}

/// The generated gold standard.
#[derive(Debug, Clone)]
pub struct RelatednessGold {
    /// All seed entries.
    pub seeds: Vec<SeedEntry>,
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct RelbenchConfig {
    /// Seeds per domain (the thesis used 5 per domain over 4 domains).
    pub seeds_per_domain: usize,
    /// Candidates per seed (the thesis used 20).
    pub candidates_per_seed: usize,
    /// Judges per pairwise comparison (the thesis used 5).
    pub judges: usize,
    /// Standard deviation of judge noise on the latent relatedness.
    pub judge_noise: f64,
}

impl Default for RelbenchConfig {
    fn default() -> Self {
        RelbenchConfig {
            seeds_per_domain: 5,
            candidates_per_seed: 20,
            judges: 5,
            judge_noise: 0.15,
        }
    }
}

/// Generates the gold standard; only non-emerging entities participate.
pub fn generate_gold(
    world: &World,
    exported: &ExportedKb,
    seed: u64,
    config: &RelbenchConfig,
) -> RelatednessGold {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seeds = Vec::new();
    for domain in 0..world.config.n_topics {
        // Seeds: the most popular in-KB entities of the domain (the thesis
        // chose "the most popular individuals in their respective domain").
        let mut domain_entities: Vec<usize> = world
            .entities
            .iter()
            .filter(|e| e.topic == domain && !e.emerging)
            .map(|e| e.index)
            .collect();
        domain_entities.sort_by_key(|&i| world.entities[i].popularity_rank);
        for &seed_idx in domain_entities.iter().take(config.seeds_per_domain) {
            let candidates =
                pick_candidates(world, exported, seed_idx, config.candidates_per_seed, &mut rng);
            if candidates.len() < 4 {
                continue;
            }
            let gold_scores = crowd_rank(world, seed_idx, &candidates, config, &mut rng);
            seeds.push(SeedEntry { seed: seed_idx, domain, candidates, gold_scores });
        }
    }
    RelatednessGold { seeds }
}

/// Candidate selection: a graded mix of clique mates (highly related),
/// topic mates (related), and cross-topic entities (remotely related) —
/// "highly related as well as only remotely related" (§4.5.1).
fn pick_candidates(
    world: &World,
    exported: &ExportedKb,
    seed_idx: usize,
    n: usize,
    rng: &mut StdRng,
) -> Vec<usize> {
    let seed_entity = &world.entities[seed_idx];
    let in_kb = |i: &usize| exported.label_of(*i).is_some() && *i != seed_idx;
    let mut clique: Vec<usize> =
        world.cliques[seed_entity.clique].iter().copied().filter(in_kb).collect();
    let mut topic: Vec<usize> = world
        .entities
        .iter()
        .filter(|e| e.topic == seed_entity.topic && e.clique != seed_entity.clique)
        .map(|e| e.index)
        .filter(in_kb)
        .collect();
    let mut other: Vec<usize> = world
        .entities
        .iter()
        .filter(|e| e.topic != seed_entity.topic)
        .map(|e| e.index)
        .filter(in_kb)
        .collect();
    clique.shuffle(rng);
    topic.shuffle(rng);
    other.shuffle(rng);
    let mut candidates = Vec::with_capacity(n);
    let quota_clique = (n / 3).min(clique.len());
    let quota_other = n / 4;
    candidates.extend(clique.into_iter().take(quota_clique));
    candidates.extend(other.into_iter().take(quota_other));
    let remaining = n.saturating_sub(candidates.len());
    candidates.extend(topic.into_iter().take(remaining));
    candidates.shuffle(rng);
    candidates
}

/// Simulated pairwise crowdsourcing: each of the `judges` compares every
/// candidate pair under noisy latent relatedness; a candidate's gold score
/// is its total number of wins.
fn crowd_rank(
    world: &World,
    seed_idx: usize,
    candidates: &[usize],
    config: &RelbenchConfig,
    rng: &mut StdRng,
) -> Vec<f64> {
    let latent: Vec<f64> =
        candidates.iter().map(|&c| world.true_relatedness(seed_idx, c)).collect();
    let mut wins = vec![0.0f64; candidates.len()];
    for i in 0..candidates.len() {
        for j in (i + 1)..candidates.len() {
            for _ in 0..config.judges {
                let si = latent[i] + gaussian(rng) * config.judge_noise;
                let sj = latent[j] + gaussian(rng) * config.judge_noise;
                if (si - sj).abs() < 0.02 {
                    // "They are about the same": half a win each.
                    wins[i] += 0.5;
                    wins[j] += 0.5;
                } else if si > sj {
                    wins[i] += 1.0;
                } else {
                    wins[j] += 1.0;
                }
            }
        }
    }
    wins
}

/// Standard normal sample via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use ned_eval::spearman::spearman;

    fn gold() -> (World, ExportedKb, RelatednessGold) {
        let world = World::generate(WorldConfig::tiny(51));
        let kb = ExportedKb::build(&world);
        let g = generate_gold(&world, &kb, 1, &RelbenchConfig::default());
        (world, kb, g)
    }

    #[test]
    fn generates_seeds_per_domain() {
        let (world, _, g) = gold();
        assert!(g.seeds.len() >= world.config.n_topics, "got {} seeds", g.seeds.len());
        for entry in &g.seeds {
            assert_eq!(entry.candidates.len(), entry.gold_scores.len());
            assert!(entry.candidates.len() >= 4);
            // No duplicates, seed not among candidates.
            let mut c = entry.candidates.clone();
            c.sort_unstable();
            c.dedup();
            assert_eq!(c.len(), entry.candidates.len());
            assert!(!entry.candidates.contains(&entry.seed));
        }
    }

    #[test]
    fn gold_ranking_tracks_latent_relatedness() {
        let (world, _, g) = gold();
        for entry in &g.seeds {
            let latent: Vec<f64> = entry
                .candidates
                .iter()
                .map(|&c| world.true_relatedness(entry.seed, c))
                .collect();
            let rho = spearman(&latent, &entry.gold_scores);
            assert!(rho > 0.6, "gold ranking too noisy: ρ = {rho}");
        }
    }

    #[test]
    fn candidates_span_relatedness_grades() {
        let (world, _, g) = gold();
        let entry = &g.seeds[0];
        let latent: Vec<f64> = entry
            .candidates
            .iter()
            .map(|&c| world.true_relatedness(entry.seed, c))
            .collect();
        let max = latent.iter().cloned().fold(f64::MIN, f64::max);
        let min = latent.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min > 0.3, "candidates not graded: {min}..{max}");
    }

    #[test]
    fn generation_is_deterministic() {
        let world = World::generate(WorldConfig::tiny(51));
        let kb = ExportedKb::build(&world);
        let a = generate_gold(&world, &kb, 9, &RelbenchConfig::default());
        let b = generate_gold(&world, &kb, 9, &RelbenchConfig::default());
        assert_eq!(a.seeds.len(), b.seeds.len());
        for (x, y) in a.seeds.iter().zip(&b.seeds) {
            assert_eq!(x.candidates, y.candidates);
            assert_eq!(x.gold_scores, y.gold_scores);
        }
    }
}
