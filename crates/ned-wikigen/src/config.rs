//! Generator configuration.

/// Parameters of the synthetic world.
///
/// Defaults produce a world of ~1,500 entities in 6 topical domains —
/// small enough for fast tests, large enough to exhibit the head/tail
/// phenomena the experiments depend on. The experiment harness scales
/// `entities_per_topic` up.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Master seed; equal seeds give identical worlds.
    pub seed: u64,
    /// Number of topical domains ("music", "politics", ... in spirit).
    pub n_topics: usize,
    /// Entities per topic.
    pub entities_per_topic: usize,
    /// Inclusive range of clique (community) sizes within a topic.
    pub clique_size: (usize, usize),
    /// Distinct content words per topic vocabulary.
    pub topic_vocab: usize,
    /// Distinct globally shared content words.
    pub shared_vocab: usize,
    /// Zipf exponent of the global popularity distribution.
    pub zipf_exponent: f64,
    /// Probability that a new entity reuses an existing base name (the
    /// source of name ambiguity).
    pub name_reuse: f64,
    /// Minimum keyphrases per entity.
    pub base_phrases: usize,
    /// Additional keyphrases for the most popular entity; scales down the
    /// popularity ranking.
    pub max_extra_phrases: usize,
    /// Signature keyphrases shared by every member of a clique.
    pub signature_phrases_per_clique: usize,
    /// Minimum out-links per entity.
    pub base_outlinks: usize,
    /// Additional out-links for the most popular entity.
    pub max_extra_outlinks: usize,
    /// Fraction of entities withheld from the KB as emerging entities;
    /// their base names are forced to collide with in-KB entities.
    pub emerging_fraction: f64,
    /// Fraction of entities that carry "recent" keyphrases present in the
    /// world (and its news stream) but not exported to the KB — models the
    /// update lag of Wikipedia articles (§5.5.1).
    pub recent_phrase_fraction: f64,
    /// Probability of injecting a noisy (wrong) dictionary entry per
    /// entity (§3.6.4, "Bad Dictionary").
    pub dictionary_noise: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 0x5_71c5,
            n_topics: 6,
            entities_per_topic: 250,
            clique_size: (4, 8),
            topic_vocab: 150,
            shared_vocab: 200,
            zipf_exponent: 1.05,
            name_reuse: 0.55,
            base_phrases: 5,
            max_extra_phrases: 25,
            signature_phrases_per_clique: 3,
            base_outlinks: 4,
            max_extra_outlinks: 25,
            emerging_fraction: 0.05,
            recent_phrase_fraction: 0.15,
            dictionary_noise: 0.01,
        }
    }
}

impl WorldConfig {
    /// A small world for fast unit tests.
    pub fn tiny(seed: u64) -> Self {
        WorldConfig {
            seed,
            n_topics: 3,
            entities_per_topic: 60,
            topic_vocab: 60,
            shared_vocab: 80,
            ..Self::default()
        }
    }

    /// Total number of entities.
    pub fn entity_count(&self) -> usize {
        self.n_topics * self.entities_per_topic
    }

    /// Checks invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_topics == 0 || self.entities_per_topic == 0 {
            return Err("world must contain entities".into());
        }
        if self.clique_size.0 == 0 || self.clique_size.0 > self.clique_size.1 {
            return Err("invalid clique size range".into());
        }
        for (name, v) in [
            ("name_reuse", self.name_reuse),
            ("emerging_fraction", self.emerging_fraction),
            ("recent_phrase_fraction", self.recent_phrase_fraction),
            ("dictionary_noise", self.dictionary_noise),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0,1]"));
            }
        }
        if self.emerging_fraction > 0.5 {
            return Err("more than half the world emerging is not supported".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        WorldConfig::default().validate().unwrap();
        WorldConfig::tiny(1).validate().unwrap();
    }

    #[test]
    fn entity_count() {
        let c = WorldConfig { n_topics: 4, entities_per_topic: 10, ..Default::default() };
        assert_eq!(c.entity_count(), 40);
    }

    #[test]
    fn validation_catches_bad_values() {
        let c = WorldConfig { n_topics: 0, ..Default::default() };
        assert!(c.validate().is_err());
        let c = WorldConfig { name_reuse: 1.5, ..Default::default() };
        assert!(c.validate().is_err());
        let c = WorldConfig { clique_size: (5, 3), ..Default::default() };
        assert!(c.validate().is_err());
    }
}
