#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! Deterministic synthetic-world generator for the AIDA-NED experiments.
//!
//! The original evaluation runs on Wikipedia/YAGO, the CoNLL-YAGO corpus,
//! the KORE50/WP datasets, GigaWord news, and a crowdsourced relatedness
//! gold standard — none of which can ship with this repository. This crate
//! generates a *synthetic world* that reproduces the statistical phenomena
//! those assets provide (see DESIGN.md §2):
//!
//! - Zipfian entity popularity and a preferential-attachment link graph
//!   (link-rich head, link-poor tail);
//! - topic/“community” structure with shared signature keyphrases (the
//!   source of semantic coherence);
//! - ambiguous surface names shared across entities, with anchor-count
//!   priors;
//! - emerging entities that share names with in-KB entities but are
//!   withheld from the knowledge base;
//! - gold-annotated corpora in the styles of CoNLL-YAGO, KORE50, the WP
//!   stress test, and a timestamped news stream;
//! - a relatedness gold standard with simulated pairwise judgments.
//!
//! Everything is seeded: the same seed yields byte-identical worlds,
//! corpora, and gold data.

pub mod config;
pub mod corpus;
pub mod corpus_io;
pub mod docgen;
pub mod kb_export;
pub mod news;
pub mod relbench;
pub mod words;
pub mod world;
pub mod zipf;

pub use config::WorldConfig;
pub use kb_export::ExportedKb;
pub use world::{World, WorldEntity};
