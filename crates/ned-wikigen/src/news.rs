//! Timestamped news-stream generation for the emerging-entity experiments
//! (Chapter 5).
//!
//! The stream spans `n_days` days of documents. Emerging entities appear
//! repeatedly across the stream together with their keyphrases — the
//! redundancy NED-EE harvests to build placeholder models (§5.5.2). In-KB
//! entities also appear with their "recent" phrases, which the KB does not
//! know about, modelling Wikipedia's update lag.

use ned_eval::gold::GoldDoc;

use crate::docgen::{DocGenerator, DocProfile};
use crate::kb_export::ExportedKb;
use crate::world::World;

/// Configuration of the news stream.
#[derive(Debug, Clone)]
pub struct NewsConfig {
    /// Number of days in the stream.
    pub n_days: u32,
    /// Documents per day.
    pub docs_per_day: usize,
    /// Probability a mention slot uses an emerging entity.
    pub emerging_prob: f64,
    /// Length of each emerging entity's burst window in days: an emerging
    /// entity appears only within its window, repeatedly — the redundancy
    /// the placeholder models are harvested from ("there is likely a fair
    /// amount of redundancy", §5.5.2).
    pub burst_days: u32,
}

impl Default for NewsConfig {
    fn default() -> Self {
        NewsConfig { n_days: 10, docs_per_day: 30, emerging_prob: 0.12, burst_days: 3 }
    }
}

/// The burst window `[start, start + burst_days)` of an emerging entity,
/// derived deterministically from its index.
fn burst_start(entity_index: usize, n_days: u32, burst_days: u32) -> u32 {
    let span = (n_days.saturating_sub(burst_days) + 1).max(1);
    // splitmix64 finalizer: a well-mixed hash of the index.
    let mut x = entity_index as u64 + 0x9e37_79b9_7f4a_7c15;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x % u64::from(span)) as u32
}

/// A generated news stream.
#[derive(Debug, Clone)]
pub struct NewsStream {
    /// All documents, ordered by day.
    pub docs: Vec<GoldDoc>,
    /// Number of days.
    pub n_days: u32,
}

impl NewsStream {
    /// Documents of one day.
    pub fn day(&self, day: u32) -> impl Iterator<Item = &GoldDoc> {
        self.docs.iter().filter(move |d| d.day == day)
    }

    /// Documents in the half-open day range `[from, to)`.
    pub fn days(&self, from: u32, to: u32) -> impl Iterator<Item = &GoldDoc> {
        self.docs.iter().filter(move |d| d.day >= from && d.day < to)
    }

    /// Total mention count.
    pub fn mention_count(&self) -> usize {
        self.docs.iter().map(|d| d.mentions.len()).sum()
    }

    /// Number of mentions whose gold label is out-of-KB.
    pub fn emerging_mention_count(&self) -> usize {
        self.docs.iter().map(|d| d.out_of_kb_count()).sum()
    }
}

/// The document profile used for news days.
pub fn news_profile(emerging_prob: f64) -> DocProfile {
    DocProfile {
        mentions: (8, 25),
        ambiguous_surface_prob: 0.8,
        context_phrases_per_mention: (0, 3),
        filler_words: (3, 8),
        same_clique_prob: 0.55,
        entity_zipf: 0.8,
        tail_bias: false,
        emerging_prob,
        use_recent_phrases: true,
        confusing_context_prob: 0.2,
        partial_phrase_prob: 0.35,
        heterogeneous_prob: 0.2,
    }
}

/// Generates a news stream.
pub fn generate_stream(
    world: &World,
    exported: &ExportedKb,
    seed: u64,
    config: &NewsConfig,
) -> NewsStream {
    let mut generator = DocGenerator::new(world, exported, seed);
    let profile = news_profile(config.emerging_prob);
    let mut docs = Vec::with_capacity(config.n_days as usize * config.docs_per_day);
    for day in 0..config.n_days {
        // Only emerging entities whose burst window covers `day` are
        // mentionable today.
        let mut pools = vec![Vec::new(); world.config.n_topics];
        for &i in &world.emerging_indices() {
            let start = burst_start(i, config.n_days, config.burst_days);
            if day >= start && day < start + config.burst_days {
                pools[world.entities[i].topic].push(i);
            }
        }
        generator.set_active_emerging(pools);
        for _ in 0..config.docs_per_day {
            docs.push(generator.generate(&profile, day));
        }
    }
    NewsStream { docs, n_days: config.n_days }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;

    fn stream() -> (World, ExportedKb, NewsStream) {
        let world = World::generate(WorldConfig::tiny(41));
        let kb = ExportedKb::build(&world);
        let s = generate_stream(&world, &kb, 1, &NewsConfig::default());
        (world, kb, s)
    }

    #[test]
    fn stream_covers_all_days() {
        let (_, _, s) = stream();
        assert_eq!(s.n_days, 10);
        for day in 0..10 {
            assert_eq!(s.day(day).count(), 30);
        }
        assert_eq!(s.docs.len(), 300);
    }

    #[test]
    fn stream_contains_emerging_mentions() {
        let (_, _, s) = stream();
        let ee = s.emerging_mention_count();
        let total = s.mention_count();
        assert!(ee > 0);
        // Roughly the configured share, with generous tolerance.
        let share = ee as f64 / total as f64;
        assert!((0.02..0.35).contains(&share), "emerging share {share}");
    }

    #[test]
    fn day_range_query() {
        let (_, _, s) = stream();
        let count: usize = s.days(2, 5).count();
        assert_eq!(count, 90);
        assert_eq!(s.days(0, 0).count(), 0);
    }

    #[test]
    fn emerging_entities_recur_across_the_stream() {
        // The EE model difference needs the same emerging entity observed in
        // several documents.
        let (_world, _, s) = stream();
        use std::collections::HashMap;
        let mut surface_days: HashMap<&str, Vec<u32>> = HashMap::new();
        for d in &s.docs {
            for lm in &d.mentions {
                if lm.label.is_none() {
                    surface_days.entry(lm.mention.surface.as_str()).or_default().push(d.day);
                }
            }
        }
        let recurring = surface_days.values().filter(|days| days.len() >= 3).count();
        assert!(recurring > 0, "no emerging surface recurs");
    }
}
