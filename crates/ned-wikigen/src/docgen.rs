//! Gold-annotated document generation.
//!
//! A document is themed on one clique (community) of the world: entities
//! are drawn mostly from the theme, rendered as ambiguous base names or
//! unambiguous canonical names, and surrounded by planted keyphrase words
//! (the context signal AIDA's similarity measure picks up) plus filler.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ned_eval::gold::{GoldDoc, LabeledMention};
use ned_text::{Mention, Token, TokenKind};

use crate::kb_export::ExportedKb;
use crate::world::World;
use crate::zipf::popularity_weight;

/// Shape of the generated documents; presets live in [`crate::corpus`].
#[derive(Debug, Clone)]
pub struct DocProfile {
    /// Inclusive range of mentions per document.
    pub mentions: (usize, usize),
    /// Probability a mention is rendered as its ambiguous base name rather
    /// than the unambiguous canonical name.
    pub ambiguous_surface_prob: f64,
    /// Inclusive range of keyphrases planted near each mention.
    pub context_phrases_per_mention: (usize, usize),
    /// Inclusive range of filler words between slots.
    pub filler_words: (usize, usize),
    /// Probability each mention's entity comes from the theme clique
    /// (otherwise from the theme topic at large).
    pub same_clique_prob: f64,
    /// Popularity bias when sampling non-clique entities: 0 = uniform,
    /// higher = more head-heavy.
    pub entity_zipf: f64,
    /// Prefer tail entities instead (KORE50-style long-tail stress).
    pub tail_bias: bool,
    /// Probability a mention slot uses an emerging (out-of-KB) entity of
    /// the theme topic.
    pub emerging_prob: f64,
    /// Also plant "recent" phrases (not exported to the KB) near in-KB
    /// mentions — the news-stream setting of Chapter 5.
    pub use_recent_phrases: bool,
    /// Probability that a planted context phrase is drawn from a *wrong*
    /// candidate sharing the mention's base name — local-context noise that
    /// misleads similarity-only methods (the metonymy-like confusions of
    /// §3.6.4).
    pub confusing_context_prob: f64,
    /// Probability that a planted phrase is truncated to a single word —
    /// weak, partially matching evidence (the partial-cover cases of
    /// §3.3.4).
    pub partial_phrase_prob: f64,
    /// Probability a document is thematically heterogeneous: a second theme
    /// clique from a *different* topic contributes ~1/3 of the mentions.
    /// These are the documents where blind coherence misleads (challenge C1
    /// and the football/cities example of §3.1).
    pub heterogeneous_prob: f64,
}

impl Default for DocProfile {
    fn default() -> Self {
        DocProfile {
            mentions: (8, 20),
            ambiguous_surface_prob: 0.75,
            context_phrases_per_mention: (1, 3),
            filler_words: (3, 8),
            same_clique_prob: 0.6,
            entity_zipf: 0.8,
            tail_bias: false,
            emerging_prob: 0.0,
            use_recent_phrases: false,
            confusing_context_prob: 0.15,
            partial_phrase_prob: 0.3,
            heterogeneous_prob: 0.2,
        }
    }
}

/// Seeded document generator over a world and its exported KB.
pub struct DocGenerator<'w> {
    world: &'w World,
    exported: &'w ExportedKb,
    rng: StdRng,
    counter: usize,
    /// Per-topic in-KB entity pools.
    topic_pool: Vec<Vec<usize>>,
    /// Per-topic emerging entity pools.
    emerging_pool: Vec<Vec<usize>>,
    /// Base name → in-KB entities carrying it (for confusing context).
    name_groups: std::collections::HashMap<String, Vec<usize>>,
}

// Manual Debug: the borrowed world/KB and entity pools would dump the whole
// synthetic universe.
impl std::fmt::Debug for DocGenerator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DocGenerator")
            .field("counter", &self.counter)
            .field("topics", &self.topic_pool.len())
            .finish_non_exhaustive()
    }
}

const FILLER_STOPWORDS: &[&str] =
    &["the", "of", "a", "in", "and", "with", "for", "was", "on", "at", "to", "said"];

impl<'w> DocGenerator<'w> {
    /// Restricts the emerging-entity pools (e.g. to the entities whose
    /// "burst window" covers the current news day); pass per-topic index
    /// lists. Entities outside the pools will not be mentioned.
    pub fn set_active_emerging(&mut self, pools: Vec<Vec<usize>>) {
        assert_eq!(pools.len(), self.emerging_pool.len(), "one pool per topic");
        self.emerging_pool = pools;
    }

    /// Creates a generator; deterministic in `seed`.
    pub fn new(world: &'w World, exported: &'w ExportedKb, seed: u64) -> Self {
        let mut topic_pool = vec![Vec::new(); world.config.n_topics];
        let mut emerging_pool = vec![Vec::new(); world.config.n_topics];
        let mut name_groups: std::collections::HashMap<String, Vec<usize>> = Default::default();
        for e in &world.entities {
            if e.emerging {
                emerging_pool[e.topic].push(e.index);
            } else {
                topic_pool[e.topic].push(e.index);
                name_groups.entry(e.base_name.clone()).or_default().push(e.index);
            }
        }
        DocGenerator {
            world,
            exported,
            rng: StdRng::seed_from_u64(seed),
            counter: 0,
            topic_pool,
            emerging_pool,
            name_groups,
        }
    }

    /// Generates one document with the given profile and day stamp.
    pub fn generate(&mut self, profile: &DocProfile, day: u32) -> GoldDoc {
        self.counter += 1;
        let id = format!("doc-{:06}", self.counter);
        // Theme: a random clique with at least one in-KB member.
        let clique = loop {
            let ci = self.rng.random_range(0..self.world.cliques.len());
            if self.world.cliques[ci].iter().any(|&m| !self.world.entities[m].emerging) {
                break ci;
            }
        };
        let topic = self.world.entities[self.world.cliques[clique][0]].topic;
        // A heterogeneous document mixes in a second theme from another
        // topic for ~1/3 of its mentions.
        let second_theme: Option<(usize, usize)> =
            if self.rng.random::<f64>() < profile.heterogeneous_prob {
                let other = loop {
                    let ci = self.rng.random_range(0..self.world.cliques.len());
                    let t = self.world.entities[self.world.cliques[ci][0]].topic;
                    if t != topic
                        && self.world.cliques[ci]
                            .iter()
                            .any(|&m| !self.world.entities[m].emerging)
                    {
                        break (ci, t);
                    }
                };
                Some(other)
            } else {
                None
            };
        let n_mentions = self.rng.random_range(profile.mentions.0..=profile.mentions.1);

        let mut builder = TokenBuilder::default();
        let mut mentions: Vec<LabeledMention> = Vec::with_capacity(n_mentions);

        for _ in 0..n_mentions {
            let (clique, topic) = match second_theme {
                Some(second) if self.rng.random::<f64>() < 0.35 => second,
                _ => (clique, topic),
            };
            self.emit_filler(&mut builder, profile, topic);
            let entity_idx = self.pick_entity(profile, clique, topic);
            self.emit_context(&mut builder, profile, entity_idx);
            let entity = &self.world.entities[entity_idx];
            let surface = if self.rng.random::<f64>() < profile.ambiguous_surface_prob {
                entity.base_name.clone()
            } else {
                entity.canonical.clone()
            };
            let start = builder.token_count();
            builder.push_words(&surface);
            let end = builder.token_count();
            mentions.push(LabeledMention {
                mention: Mention::new(surface, start, end),
                label: self.exported.label_of(entity_idx),
            });
        }
        self.emit_filler(&mut builder, profile, topic);
        GoldDoc::new(id, builder.tokens, mentions, day)
    }

    fn pick_entity(&mut self, profile: &DocProfile, clique: usize, topic: usize) -> usize {
        let world = self.world;
        if profile.emerging_prob > 0.0
            && !self.emerging_pool[topic].is_empty()
            && self.rng.random::<f64>() < profile.emerging_prob
        {
            let idx = self.rng.random_range(0..self.emerging_pool[topic].len());
            return self.emerging_pool[topic][idx];
        }
        if self.rng.random::<f64>() < profile.same_clique_prob {
            let members: Vec<usize> = world.cliques[clique]
                .iter()
                .copied()
                .filter(|&m| !world.entities[m].emerging)
                .collect();
            if !members.is_empty() {
                return members[self.rng.random_range(0..members.len())];
            }
        }
        // Weighted pick by (possibly inverted) popularity.
        let weights: Vec<f64> = self.topic_pool[topic]
            .iter()
            .map(|&idx| {
                let rank = world.entities[idx].popularity_rank;
                if profile.tail_bias {
                    // Prefer tail: invert the ranking.
                    popularity_weight(world.len() - 1 - rank, profile.entity_zipf.max(0.1))
                } else {
                    popularity_weight(rank, profile.entity_zipf)
                }
            })
            .collect();
        debug_assert!(!weights.is_empty());
        let total: f64 = weights.iter().sum();
        let mut u = self.rng.random::<f64>() * total;
        for (k, &w) in weights.iter().enumerate() {
            u -= w;
            if u <= 0.0 {
                return self.topic_pool[topic][k];
            }
        }
        // Accumulated rounding can exhaust `u` before the loop returns;
        // the last pool entry is the deterministic fallback.
        let pool = &self.topic_pool[topic];
        pool[pool.len() - 1]
    }

    fn emit_filler(&mut self, builder: &mut TokenBuilder, profile: &DocProfile, topic: usize) {
        let world = self.world;
        let n = self.rng.random_range(profile.filler_words.0..=profile.filler_words.1);
        for _ in 0..n {
            if self.rng.random::<f64>() < 0.5 {
                let w = FILLER_STOPWORDS[self.rng.random_range(0..FILLER_STOPWORDS.len())];
                builder.push_word(w);
            } else {
                let vocab = &world.topic_vocab[topic];
                builder.push_word(&vocab[self.rng.random_range(0..vocab.len())]);
            }
        }
    }

    fn emit_context(
        &mut self,
        builder: &mut TokenBuilder,
        profile: &DocProfile,
        entity_idx: usize,
    ) {
        let world = self.world;
        let entity = &world.entities[entity_idx];
        // Confusing context: sometimes draw phrases from a competitor that
        // shares the base name instead of the true entity.
        let context_source = if self.rng.random::<f64>() < profile.confusing_context_prob {
            match self.name_groups.get(&entity.base_name) {
                Some(group) if group.len() > 1 => {
                    let competitor = loop {
                        let c = group[self.rng.random_range(0..group.len())];
                        if c != entity_idx || group.iter().all(|&g| g == entity_idx) {
                            break c;
                        }
                    };
                    &world.entities[competitor]
                }
                _ => entity,
            }
        } else {
            entity
        };
        // Planted context prefers entity-specific phrases over the clique
        // signature phrases (which sit at the front of the keyphrase list):
        // signature words would otherwise leak document-level evidence to
        // every clique member, making similarity subsume coherence.
        let sig = self.world.config.signature_phrases_per_clique.min(context_source.keyphrases.len());
        let specific = &context_source.keyphrases[sig..];
        let all = &context_source.keyphrases[..];
        let chosen: &[(String, u64)] =
            if !specific.is_empty() && self.rng.random::<f64>() < 0.85 { specific } else { all };
        let mut phrases: Vec<&str> = chosen.iter().map(|(p, _)| p.as_str()).collect();
        if profile.use_recent_phrases || context_source.emerging {
            phrases.extend(context_source.recent_phrases.iter().map(|(p, _)| p.as_str()));
        }
        if phrases.is_empty() {
            return;
        }
        let k = self
            .rng
            .random_range(profile.context_phrases_per_mention.0..=profile.context_phrases_per_mention.1);
        for _ in 0..k {
            let p = phrases[self.rng.random_range(0..phrases.len())];
            if self.rng.random::<f64>() < profile.partial_phrase_prob {
                // Weak evidence: only one word of the phrase appears.
                let words: Vec<&str> = p.split_whitespace().collect();
                builder.push_word(words[self.rng.random_range(0..words.len())]);
            } else {
                builder.push_words(p);
            }
            // A connective between phrase and mention.
            if self.rng.random::<f64>() < 0.5 {
                builder.push_word(FILLER_STOPWORDS[self.rng.random_range(0..FILLER_STOPWORDS.len())]);
            }
        }
    }
}

/// Builds a token vector with consistent byte offsets.
#[derive(Debug, Default)]
struct TokenBuilder {
    tokens: Vec<Token>,
    offset: usize,
}

impl TokenBuilder {
    fn token_count(&self) -> usize {
        self.tokens.len()
    }

    fn push_word(&mut self, word: &str) {
        let token = Token::new(word, self.offset, TokenKind::Word);
        self.offset = token.end + 1;
        self.tokens.push(token);
    }

    fn push_words(&mut self, phrase: &str) {
        for w in phrase.split_whitespace() {
            self.push_word(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;

    fn setup() -> (World, ExportedKb) {
        let world = World::generate(WorldConfig::tiny(21));
        let kb = ExportedKb::build(&world);
        (world, kb)
    }

    #[test]
    fn documents_are_deterministic() {
        let (world, kb) = setup();
        let gen_docs = || {
            let mut g = DocGenerator::new(&world, &kb, 5);
            (0..5).map(|_| g.generate(&DocProfile::default(), 0)).collect::<Vec<_>>()
        };
        assert_eq!(gen_docs(), gen_docs());
    }

    #[test]
    fn mentions_are_well_formed() {
        let (world, kb) = setup();
        let mut g = DocGenerator::new(&world, &kb, 7);
        for _ in 0..20 {
            let doc = g.generate(&DocProfile::default(), 0);
            assert!(!doc.mentions.is_empty());
            for lm in &doc.mentions {
                // Mention surface matches its token span.
                let span_text: Vec<&str> = doc.tokens
                    [lm.mention.token_start..lm.mention.token_end]
                    .iter()
                    .map(|t| t.text.as_str())
                    .collect();
                assert_eq!(span_text.join(" "), lm.mention.surface);
            }
        }
    }

    #[test]
    fn gold_labels_resolve_against_the_kb() {
        let (world, kb) = setup();
        let mut g = DocGenerator::new(&world, &kb, 9);
        let profile = DocProfile::default();
        let mut labeled = 0;
        for _ in 0..10 {
            let doc = g.generate(&profile, 0);
            for lm in &doc.mentions {
                if let Some(id) = lm.label {
                    labeled += 1;
                    // The gold entity must be among the dictionary
                    // candidates of the surface (unless the surface is the
                    // canonical name, which always resolves).
                    let cands = kb.kb.candidates(&lm.mention.surface);
                    assert!(
                        cands.iter().any(|c| c.entity == id),
                        "gold entity not reachable from surface {}",
                        lm.mention.surface
                    );
                }
            }
        }
        assert!(labeled > 50);
    }

    #[test]
    fn emerging_profile_produces_out_of_kb_mentions() {
        let (world, kb) = setup();
        let mut g = DocGenerator::new(&world, &kb, 11);
        let profile = DocProfile { emerging_prob: 0.5, ..DocProfile::default() };
        let mut ee = 0;
        let mut total = 0;
        for _ in 0..20 {
            let doc = g.generate(&profile, 0);
            ee += doc.out_of_kb_count();
            total += doc.mentions.len();
        }
        assert!(ee > 0, "no emerging mentions generated");
        assert!(ee < total);
    }

    #[test]
    fn ambiguity_knob_controls_surfaces() {
        let (world, kb) = setup();
        let count_ambiguous = |prob: f64, seed: u64| {
            let mut g = DocGenerator::new(&world, &kb, seed);
            let profile = DocProfile { ambiguous_surface_prob: prob, ..DocProfile::default() };
            let mut ambiguous = 0;
            let mut total = 0;
            for _ in 0..10 {
                let doc = g.generate(&profile, 0);
                for lm in &doc.mentions {
                    total += 1;
                    if lm.mention.surface.split(' ').count() == 1 {
                        ambiguous += 1;
                    }
                }
            }
            ambiguous as f64 / total as f64
        };
        assert!(count_ambiguous(1.0, 13) > 0.95);
        assert!(count_ambiguous(0.0, 13) < 0.05);
    }

    #[test]
    fn day_stamp_is_preserved() {
        let (world, kb) = setup();
        let mut g = DocGenerator::new(&world, &kb, 15);
        let doc = g.generate(&DocProfile::default(), 42);
        assert_eq!(doc.day, 42);
    }
}
