//! Synthetic lexicon generation.
//!
//! Words are pronounceable consonant–vowel syllable strings ("velkora",
//! "brintu"), guaranteed not to collide with the stopword list. Name words
//! are capitalized variants. A [`Lexicon`] hands out distinct words
//! deterministically from a seeded RNG.

use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;

use ned_text::stopwords::is_stopword;

const ONSETS: &[&str] = &[
    "b", "br", "d", "dr", "f", "fl", "g", "gr", "h", "k", "kl", "kr", "l", "m", "n", "p", "pr",
    "r", "s", "st", "t", "tr", "v", "z", "sh", "th",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ai", "ei", "ou"];
const CODAS: &[&str] = &["", "", "", "n", "r", "s", "l", "k", "m", "t"];

/// Generates one random lowercase word of 2–3 syllables.
pub fn random_word(rng: &mut StdRng) -> String {
    let syllables = rng.random_range(2..=3);
    let mut w = String::new();
    for _ in 0..syllables {
        w.push_str(ONSETS[rng.random_range(0..ONSETS.len())]);
        w.push_str(VOWELS[rng.random_range(0..VOWELS.len())]);
    }
    w.push_str(CODAS[rng.random_range(0..CODAS.len())]);
    w
}

/// Capitalizes the first letter of a word.
pub fn capitalize(word: &str) -> String {
    let mut chars = word.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// A pool of distinct synthetic words.
#[derive(Debug, Default)]
pub struct Lexicon {
    used: HashSet<String>,
}

impl Lexicon {
    /// Creates an empty lexicon.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws a fresh word never handed out before and never a stopword.
    pub fn fresh_word(&mut self, rng: &mut StdRng) -> String {
        loop {
            let w = random_word(rng);
            if w.len() >= 4 && !is_stopword(&w) && self.used.insert(w.clone()) {
                return w;
            }
        }
    }

    /// Draws `n` fresh words.
    pub fn fresh_words(&mut self, rng: &mut StdRng, n: usize) -> Vec<String> {
        (0..n).map(|_| self.fresh_word(rng)).collect()
    }

    /// Number of words handed out.
    pub fn len(&self) -> usize {
        self.used.len()
    }

    /// True when no words were handed out yet.
    pub fn is_empty(&self) -> bool {
        self.used.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn words_are_distinct_and_wordlike() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lex = Lexicon::new();
        let words = lex.fresh_words(&mut rng, 500);
        let distinct: HashSet<&String> = words.iter().collect();
        assert_eq!(distinct.len(), 500);
        for w in &words {
            assert!(w.len() >= 4, "{w}");
            assert!(w.chars().all(|c| c.is_ascii_lowercase()), "{w}");
            assert!(!is_stopword(w), "{w}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let make = || {
            let mut rng = StdRng::seed_from_u64(42);
            Lexicon::new().fresh_words(&mut rng, 50)
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn capitalize_works() {
        assert_eq!(capitalize("velkora"), "Velkora");
        assert_eq!(capitalize(""), "");
    }
}
