//! The synthetic world: entities with latent topics, cliques, popularity,
//! names, keyphrases, and links.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

use ned_kb::EntityKind;

use crate::config::WorldConfig;
use crate::words::{capitalize, Lexicon};
use crate::zipf::popularity_weight;

/// One entity of the synthetic world, with all latent ground truth.
#[derive(Debug, Clone)]
pub struct WorldEntity {
    /// Index into [`World::entities`].
    pub index: usize,
    /// Unique two-token canonical name ("Velkora Brintu").
    pub canonical: String,
    /// Ambiguous single-token base name ("Brintu"); shared across entities.
    pub base_name: String,
    /// Coarse entity kind.
    pub kind: EntityKind,
    /// Topic index.
    pub topic: usize,
    /// Global clique (community) id.
    pub clique: usize,
    /// 0-based global popularity rank (0 = most popular).
    pub popularity_rank: usize,
    /// True when the entity is withheld from the knowledge base.
    pub emerging: bool,
    /// Keyphrases with counts; exported to the KB for non-emerging
    /// entities.
    pub keyphrases: Vec<(String, u64)>,
    /// Recent keyphrases present in the world's news stream but *not*
    /// exported to the KB (Wikipedia update lag, §5.5.1).
    pub recent_phrases: Vec<(String, u64)>,
    /// Out-links (world indices).
    pub outlinks: Vec<usize>,
}

impl WorldEntity {
    /// Popularity weight under the world's Zipf exponent.
    pub fn popularity(&self, zipf_exponent: f64) -> f64 {
        popularity_weight(self.popularity_rank, zipf_exponent)
    }
}

/// The generated world.
#[derive(Debug, Clone)]
pub struct World {
    /// Generator configuration.
    pub config: WorldConfig,
    /// All entities, emerging ones included.
    pub entities: Vec<WorldEntity>,
    /// Per-topic content vocabulary (lowercase words).
    pub topic_vocab: Vec<Vec<String>>,
    /// Globally shared content vocabulary.
    pub shared_vocab: Vec<String>,
    /// Clique membership: clique id → member indices.
    pub cliques: Vec<Vec<usize>>,
    /// Noisy dictionary entries to inject: (surface, entity index).
    pub dictionary_noise: Vec<(String, usize)>,
}

impl World {
    /// Generates a world from `config`; deterministic in `config.seed`.
    ///
    /// # Panics
    /// Panics when the configuration is invalid; use
    /// [`World::try_generate`] to handle that as a typed error.
    pub fn generate(config: WorldConfig) -> Self {
        match Self::try_generate(config) {
            Ok(world) => world,
            // Documented panicking convenience wrapper over `try_new`.
            // ned-lint: allow(p1)
            Err(err) => panic!("invalid world configuration: {err}"),
        }
    }

    /// Generates a world from `config`, rejecting invalid configurations
    /// with [`ned_core::NedError::Config`].
    pub fn try_generate(config: WorldConfig) -> Result<Self, ned_core::NedError> {
        config.validate().map_err(|message| ned_core::NedError::Config {
            what: "WorldConfig",
            message,
        })?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut lexicon = Lexicon::new();

        let shared_vocab = lexicon.fresh_words(&mut rng, config.shared_vocab);
        let topic_vocab: Vec<Vec<String>> = (0..config.n_topics)
            .map(|_| lexicon.fresh_words(&mut rng, config.topic_vocab))
            .collect();

        let n = config.entity_count();

        // Global popularity ranks: a random permutation of 0..n.
        let mut ranks: Vec<usize> = (0..n).collect();
        ranks.shuffle(&mut rng);

        // Cliques: chunk each topic's entities into communities.
        let mut cliques: Vec<Vec<usize>> = Vec::new();
        let mut clique_of = vec![0usize; n];
        let mut topic_of = vec![0usize; n];
        for topic in 0..config.n_topics {
            let start = topic * config.entities_per_topic;
            let end = start + config.entities_per_topic;
            let mut i = start;
            while i < end {
                let size = rng.random_range(config.clique_size.0..=config.clique_size.1);
                let members: Vec<usize> = (i..(i + size).min(end)).collect();
                for &m in &members {
                    clique_of[m] = cliques.len();
                    topic_of[m] = topic;
                }
                i += members.len();
                cliques.push(members);
            }
        }

        // Names.
        let (canonicals, base_names, kinds) =
            generate_names(&config, n, &topic_of, &mut rng, &mut lexicon);

        // Keyphrases: clique signatures first.
        let clique_signatures: Vec<Vec<String>> = cliques
            .iter()
            .enumerate()
            .map(|(ci, members)| {
                let topic = topic_of[members[0]];
                let _ = ci;
                (0..config.signature_phrases_per_clique)
                    .map(|_| random_phrase(&mut rng, &topic_vocab[topic], &shared_vocab))
                    .collect()
            })
            .collect();

        let top_weight = popularity_weight(0, config.zipf_exponent);
        let mut entities: Vec<WorldEntity> = (0..n)
            .map(|i| {
                let topic = topic_of[i];
                let rank = ranks[i];
                let pop_share = popularity_weight(rank, config.zipf_exponent) / top_weight;
                let mut keyphrases: Vec<(String, u64)> = Vec::new();
                for sig in &clique_signatures[clique_of[i]] {
                    keyphrases.push((sig.clone(), rng.random_range(2..=5)));
                }
                let extra = config.base_phrases
                    + ((config.max_extra_phrases as f64) * pop_share).round() as usize;
                for _ in 0..extra {
                    keyphrases
                        .push((random_phrase(&mut rng, &topic_vocab[topic], &shared_vocab), rng.random_range(1..=4)));
                }
                // An identity phrase tying the entity to its base name.
                keyphrases.push((
                    format!(
                        "{} {}",
                        base_names[i].to_lowercase(),
                        topic_vocab[topic][rng.random_range(0..topic_vocab[topic].len())]
                    ),
                    2,
                ));
                WorldEntity {
                    index: i,
                    canonical: canonicals[i].clone(),
                    base_name: base_names[i].clone(),
                    kind: kinds[i],
                    topic,
                    clique: clique_of[i],
                    popularity_rank: rank,
                    emerging: false,
                    keyphrases,
                    recent_phrases: Vec::new(),
                    outlinks: Vec::new(),
                }
            })
            .collect();

        // Links: preferential attachment within clique and topic.
        generate_links(&config, &mut entities, &cliques, &mut rng);

        // Emerging entities: tail entities whose base name collides with an
        // in-KB entity.
        mark_emerging(&config, &mut entities, &mut rng);

        // Recent phrases (not exported to the KB).
        for e in &mut entities {
            if rng.random::<f64>() < config.recent_phrase_fraction {
                let topic = e.topic;
                for _ in 0..rng.random_range(2..=4) {
                    e.recent_phrases.push((
                        random_phrase(&mut rng, &topic_vocab[topic], &shared_vocab),
                        rng.random_range(1..=3),
                    ));
                }
            }
        }

        // Dictionary noise: map a random existing surface to a random
        // unrelated entity.
        let mut dictionary_noise = Vec::new();
        for i in 0..n {
            if rng.random::<f64>() < config.dictionary_noise {
                let victim = rng.random_range(0..n);
                if victim != i && !entities[victim].emerging {
                    dictionary_noise.push((entities[i].base_name.clone(), victim));
                }
            }
        }

        Ok(World { config, entities, topic_vocab, shared_vocab, cliques, dictionary_noise })
    }

    /// Number of entities (emerging included).
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// True when the world has no entities.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Latent ground-truth relatedness of two entities, used for the
    /// relatedness gold standard: same clique ≫ same topic ≫ unrelated,
    /// modulated by shared-keyphrase mass.
    pub fn true_relatedness(&self, a: usize, b: usize) -> f64 {
        if a == b {
            return 1.0;
        }
        let ea = &self.entities[a];
        let eb = &self.entities[b];
        let base = if ea.clique == eb.clique {
            0.8
        } else if ea.topic == eb.topic {
            0.35
        } else {
            0.02
        };
        let pa: HashSet<&str> = ea.keyphrases.iter().map(|(p, _)| p.as_str()).collect();
        let pb: HashSet<&str> = eb.keyphrases.iter().map(|(p, _)| p.as_str()).collect();
        let shared = pa.intersection(&pb).count() as f64;
        let denom = pa.len().min(pb.len()).max(1) as f64;
        (base + 0.2 * (shared / denom)).min(1.0)
    }

    /// All world indices of entities sharing a base name, keyed by name.
    pub fn name_groups(&self) -> HashMap<&str, Vec<usize>> {
        let mut groups: HashMap<&str, Vec<usize>> = HashMap::new();
        for e in &self.entities {
            groups.entry(e.base_name.as_str()).or_default().push(e.index);
        }
        groups
    }

    /// Indices of non-emerging entities.
    pub fn in_kb_indices(&self) -> Vec<usize> {
        self.entities.iter().filter(|e| !e.emerging).map(|e| e.index).collect()
    }

    /// Indices of emerging entities.
    pub fn emerging_indices(&self) -> Vec<usize> {
        self.entities.iter().filter(|e| e.emerging).map(|e| e.index).collect()
    }
}

/// Suffix pools per entity kind for two-token canonical names.
fn kind_and_suffix(rng: &mut StdRng) -> (EntityKind, &'static str) {
    const KINDS: &[(EntityKind, &[&str])] = &[
        (EntityKind::Person, &[]), // persons use Given + Base
        (EntityKind::Organization, &["Group", "Systems", "United", "Ensemble", "Collective"]),
        (EntityKind::Location, &["Valley", "Province", "Island", "Heights", "Harbor"]),
        (EntityKind::Work, &["Suite", "Saga", "Anthem", "Chronicle", "Ballad"]),
        (EntityKind::Event, &["Cup", "Summit", "Festival", "Congress", "Games"]),
        (EntityKind::Other, &["Project", "Initiative", "Engine", "Protocol", "Device"]),
    ];
    // Persons are the most frequent kind, as in news corpora.
    let pick = rng.random_range(0..10usize);
    let (kind, suffixes) = if pick < 5 { KINDS[0] } else { KINDS[1 + (pick - 5) % 5] };
    let suffix = if suffixes.is_empty() { "" } else { suffixes[rng.random_range(0..suffixes.len())] };
    (kind, suffix)
}

#[allow(clippy::type_complexity)]
fn generate_names(
    config: &WorldConfig,
    n: usize,
    topic_of: &[usize],
    rng: &mut StdRng,
    lexicon: &mut Lexicon,
) -> (Vec<String>, Vec<String>, Vec<EntityKind>) {
    let mut base_pool: Vec<String> = Vec::new();
    // Names already used within each topic: reuse prefers the same topic so
    // that name collisions are genuinely hard (competitors share the topic
    // vocabulary and can only be separated by phrase-level context or
    // coherence).
    let mut topic_pools: Vec<Vec<String>> = vec![Vec::new(); config.n_topics];
    let mut given_pool: Vec<String> =
        (0..40).map(|_| capitalize(&lexicon.fresh_word(rng))).collect();
    let mut canonicals = Vec::with_capacity(n);
    let mut base_names = Vec::with_capacity(n);
    let mut kinds = Vec::with_capacity(n);
    let mut used_canonicals: HashSet<String> = HashSet::new();
    for &topic in topic_of.iter().take(n) {
        // Base name: reuse an existing one with probability `name_reuse`;
        // reuse prefers the same topic (70%) over the global pool.
        let reuse = rng.random::<f64>() < config.name_reuse && !base_pool.is_empty();
        let base = if reuse {
            let same_topic = !topic_pools[topic].is_empty() && rng.random::<f64>() < 0.7;
            if same_topic {
                let pool = &topic_pools[topic];
                pool[rng.random_range(0..pool.len())].clone()
            } else {
                base_pool[rng.random_range(0..base_pool.len())].clone()
            }
        } else {
            let b = capitalize(&lexicon.fresh_word(rng));
            base_pool.push(b.clone());
            b
        };
        if !topic_pools[topic].contains(&base) {
            topic_pools[topic].push(base.clone());
        }
        let (kind, suffix) = kind_and_suffix(rng);
        let canonical = loop {
            let c = if kind == EntityKind::Person {
                let given = &given_pool[rng.random_range(0..given_pool.len())];
                format!("{given} {base}")
            } else {
                format!("{base} {suffix}")
            };
            if used_canonicals.insert(c.clone()) {
                break c;
            }
            // Collision: grow the given-name pool / add a fresh qualifier.
            if kind == EntityKind::Person {
                given_pool.push(capitalize(&lexicon.fresh_word(rng)));
            } else {
                let qualifier = capitalize(&lexicon.fresh_word(rng));
                let c = format!("{base} {suffix} {qualifier}");
                if used_canonicals.insert(c.clone()) {
                    break c;
                }
            }
        };
        canonicals.push(canonical);
        base_names.push(base);
        kinds.push(kind);
    }
    (canonicals, base_names, kinds)
}

fn random_phrase(rng: &mut StdRng, topic_words: &[String], shared_words: &[String]) -> String {
    let len = rng.random_range(2..=3);
    let mut parts: Vec<&str> = Vec::with_capacity(len);
    for k in 0..len {
        // Mostly topic words; occasionally a shared word for cross-topic
        // lexical noise.
        let from_shared = k == len - 1 && rng.random::<f64>() < 0.2;
        let w = if from_shared {
            &shared_words[rng.random_range(0..shared_words.len())]
        } else {
            &topic_words[rng.random_range(0..topic_words.len())]
        };
        parts.push(w);
    }
    parts.join(" ")
}

fn generate_links(
    config: &WorldConfig,
    entities: &mut [WorldEntity],
    cliques: &[Vec<usize>],
    rng: &mut StdRng,
) {
    let n = entities.len();
    let top_weight = popularity_weight(0, config.zipf_exponent);
    // Popularity-proportional sampling over a topic (or globally) via
    // precomputed cumulative weights.
    let weights: Vec<f64> =
        entities.iter().map(|e| e.popularity(config.zipf_exponent)).collect();
    let topic_members: Vec<Vec<usize>> = {
        let mut v = vec![Vec::new(); config.n_topics];
        for e in entities.iter() {
            v[e.topic].push(e.index);
        }
        v
    };
    let sample_weighted = |pool: &[usize], rng: &mut StdRng, weights: &[f64]| -> usize {
        let total: f64 = pool.iter().map(|&i| weights[i]).sum();
        let mut u = rng.random::<f64>() * total;
        for &i in pool {
            u -= weights[i];
            if u <= 0.0 {
                return i;
            }
        }
        pool[pool.len() - 1]
    };
    for i in 0..n {
        let pop_share = weights[i] / top_weight;
        let n_links = config.base_outlinks
            + ((config.max_extra_outlinks as f64) * pop_share).round() as usize;
        let clique = &cliques[entities[i].clique];
        let topic = entities[i].topic;
        let mut targets: HashSet<usize> = HashSet::new();
        for _ in 0..n_links {
            let roll: f64 = rng.random();
            let target = if roll < 0.6 && clique.len() > 1 {
                clique[rng.random_range(0..clique.len())]
            } else if roll < 0.95 {
                sample_weighted(&topic_members[topic], rng, &weights)
            } else {
                sample_weighted(&(0..n).collect::<Vec<_>>(), rng, &weights)
            };
            if target != i {
                targets.insert(target);
            }
        }
        let mut sorted: Vec<usize> = targets.into_iter().collect();
        sorted.sort_unstable();
        entities[i].outlinks = sorted;
    }
}

fn mark_emerging(config: &WorldConfig, entities: &mut [WorldEntity], rng: &mut StdRng) {
    let n = entities.len();
    let n_emerging = ((n as f64) * config.emerging_fraction).floor() as usize;
    if n_emerging == 0 {
        return;
    }
    // Candidates: the tail half by popularity.
    let mut tail: Vec<usize> = (0..n).filter(|&i| entities[i].popularity_rank >= n / 2).collect();
    tail.shuffle(rng);
    let chosen: Vec<usize> = tail.into_iter().take(n_emerging).collect();
    // Base names of entities staying in the KB.
    let chosen_set: HashSet<usize> = chosen.iter().copied().collect();
    let kb_names: Vec<String> = entities
        .iter()
        .filter(|e| !chosen_set.contains(&e.index))
        .map(|e| e.base_name.clone())
        .collect();
    for &i in &chosen {
        entities[i].emerging = true;
        // Force a name collision with an in-KB entity ("Prism problem").
        let stolen = kb_names[rng.random_range(0..kb_names.len())].clone();
        entities[i].base_name = stolen;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::generate(WorldConfig::tiny(11))
    }

    #[test]
    fn try_generate_rejects_bad_config() {
        let bad = WorldConfig { n_topics: 0, ..WorldConfig::tiny(11) };
        let err = World::try_generate(bad).expect_err("empty world must be rejected");
        assert!(matches!(err, ned_core::NedError::Config { what: "WorldConfig", .. }));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = world();
        let b = world();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.entities.iter().zip(&b.entities) {
            assert_eq!(x.canonical, y.canonical);
            assert_eq!(x.keyphrases, y.keyphrases);
            assert_eq!(x.outlinks, y.outlinks);
            assert_eq!(x.emerging, y.emerging);
        }
    }

    #[test]
    fn canonical_names_are_unique() {
        let w = world();
        let mut seen = HashSet::new();
        for e in &w.entities {
            assert!(seen.insert(&e.canonical), "duplicate canonical {}", e.canonical);
        }
    }

    #[test]
    fn base_names_are_ambiguous() {
        let w = world();
        let groups = w.name_groups();
        let shared = groups.values().filter(|g| g.len() > 1).count();
        assert!(shared > 10, "expected many shared base names, got {shared}");
    }

    #[test]
    fn popularity_ranks_are_a_permutation() {
        let w = world();
        let mut ranks: Vec<usize> = w.entities.iter().map(|e| e.popularity_rank).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (0..w.len()).collect::<Vec<_>>());
    }

    #[test]
    fn popular_entities_have_more_phrases_and_links() {
        let w = world();
        let head: Vec<&WorldEntity> =
            w.entities.iter().filter(|e| e.popularity_rank < 10).collect();
        let tail: Vec<&WorldEntity> =
            w.entities.iter().filter(|e| e.popularity_rank >= w.len() - 50).collect();
        let avg = |es: &[&WorldEntity], f: fn(&WorldEntity) -> usize| -> f64 {
            es.iter().map(|e| f(e)).sum::<usize>() as f64 / es.len() as f64
        };
        assert!(avg(&head, |e| e.keyphrases.len()) > avg(&tail, |e| e.keyphrases.len()));
        assert!(avg(&head, |e| e.outlinks.len()) > avg(&tail, |e| e.outlinks.len()));
    }

    #[test]
    fn emerging_entities_share_names_with_kb_entities() {
        let w = world();
        let emerging = w.emerging_indices();
        assert!(!emerging.is_empty());
        let kb_names: HashSet<&str> = w
            .entities
            .iter()
            .filter(|e| !e.emerging)
            .map(|e| e.base_name.as_str())
            .collect();
        for &i in &emerging {
            assert!(
                kb_names.contains(w.entities[i].base_name.as_str()),
                "emerging entity {} has non-colliding name {}",
                i,
                w.entities[i].base_name
            );
        }
    }

    #[test]
    fn cliques_partition_entities() {
        let w = world();
        let total: usize = w.cliques.iter().map(|c| c.len()).sum();
        assert_eq!(total, w.len());
        for (ci, members) in w.cliques.iter().enumerate() {
            for &m in members {
                assert_eq!(w.entities[m].clique, ci);
            }
            // All members share a topic.
            let topic = w.entities[members[0]].topic;
            assert!(members.iter().all(|&m| w.entities[m].topic == topic));
        }
    }

    #[test]
    fn clique_members_share_signature_phrases() {
        let w = world();
        let clique = w.cliques.iter().find(|c| c.len() >= 3).expect("a clique of 3+");
        let phrase_sets: Vec<HashSet<&str>> = clique
            .iter()
            .map(|&m| w.entities[m].keyphrases.iter().map(|(p, _)| p.as_str()).collect())
            .collect();
        let shared = phrase_sets
            .iter()
            .skip(1)
            .fold(phrase_sets[0].clone(), |acc, s| acc.intersection(s).copied().collect());
        assert!(
            shared.len() >= w.config.signature_phrases_per_clique,
            "clique shares only {} phrases",
            shared.len()
        );
    }

    #[test]
    fn true_relatedness_respects_structure() {
        let w = world();
        let clique = w.cliques.iter().find(|c| c.len() >= 2).unwrap();
        let (a, b) = (clique[0], clique[1]);
        // An entity from a different topic.
        let other = w
            .entities
            .iter()
            .find(|e| e.topic != w.entities[a].topic)
            .map(|e| e.index)
            .unwrap();
        assert!(w.true_relatedness(a, b) > w.true_relatedness(a, other));
        assert_eq!(w.true_relatedness(a, a), 1.0);
        // Symmetry.
        assert_eq!(w.true_relatedness(a, other), w.true_relatedness(other, a));
    }

    #[test]
    fn link_popularity_is_heavy_tailed() {
        let w = world();
        let mut inlinks = vec![0usize; w.len()];
        for e in &w.entities {
            for &t in &e.outlinks {
                inlinks[t] += 1;
            }
        }
        let max = *inlinks.iter().max().unwrap();
        let zero_or_one = inlinks.iter().filter(|&&c| c <= 1).count();
        assert!(max >= 8, "head entity should attract many links, max {max}");
        assert!(
            zero_or_one > w.len() / 10,
            "tail should be link-poor: {zero_or_one} of {}",
            w.len()
        );
    }
}
