//! Corpus presets reproducing the shapes of the thesis' evaluation data.

use ned_eval::gold::GoldDoc;

use crate::docgen::{DocGenerator, DocProfile};
use crate::kb_export::ExportedKb;
use crate::world::World;

/// A generated corpus with the standard train/dev/test split of §3.6.1
/// (the CoNLL splits are roughly 68% / 16% / 16%).
#[derive(Debug, Clone)]
pub struct Corpus {
    /// All documents, in generation order.
    pub docs: Vec<GoldDoc>,
    /// Index of the first development document.
    pub dev_start: usize,
    /// Index of the first test document.
    pub test_start: usize,
}

impl Corpus {
    fn with_split(docs: Vec<GoldDoc>) -> Self {
        let n = docs.len();
        let dev_start = n * 68 / 100;
        let test_start = n * 84 / 100;
        Corpus { docs, dev_start, test_start }
    }

    /// Training documents.
    pub fn train(&self) -> &[GoldDoc] {
        &self.docs[..self.dev_start]
    }

    /// Development documents.
    pub fn dev(&self) -> &[GoldDoc] {
        &self.docs[self.dev_start..self.test_start]
    }

    /// Test documents.
    pub fn test(&self) -> &[GoldDoc] {
        &self.docs[self.test_start..]
    }

    /// Total number of mentions.
    pub fn mention_count(&self) -> usize {
        self.docs.iter().map(|d| d.mentions.len()).sum()
    }
}

/// The profile behind [`conll_like`]: news-wire style documents with a
/// moderate number of mentions and usable context.
pub fn conll_profile() -> DocProfile {
    DocProfile {
        mentions: (10, 30),
        ambiguous_surface_prob: 0.7,
        context_phrases_per_mention: (0, 2),
        filler_words: (3, 9),
        same_clique_prob: 0.55,
        entity_zipf: 1.0,
        tail_bias: false,
        emerging_prob: 0.12,
        use_recent_phrases: false,
        confusing_context_prob: 0.25,
        partial_phrase_prob: 0.45,
        heterogeneous_prob: 0.3,
    }
}

/// A CoNLL-YAGO-style corpus: `n_docs` topic-coherent news-wire documents.
pub fn conll_like(world: &World, exported: &ExportedKb, seed: u64, n_docs: usize) -> Corpus {
    let mut generator = DocGenerator::new(world, exported, seed);
    let profile = conll_profile();
    Corpus::with_split((0..n_docs).map(|_| generator.generate(&profile, 0)).collect())
}

/// The profile behind [`kore50_like`]: very short, highly ambiguous,
/// long-tail-heavy sentences (§4.6.1).
pub fn kore50_profile() -> DocProfile {
    DocProfile {
        mentions: (2, 4),
        ambiguous_surface_prob: 1.0,
        context_phrases_per_mention: (0, 1),
        filler_words: (1, 4),
        same_clique_prob: 0.8,
        entity_zipf: 0.9,
        tail_bias: true,
        emerging_prob: 0.0,
        use_recent_phrases: false,
        confusing_context_prob: 0.1,
        partial_phrase_prob: 0.3,
        heterogeneous_prob: 0.1,
    }
}

/// A KORE50-style corpus of hard short sentences.
pub fn kore50_like(world: &World, exported: &ExportedKb, seed: u64, n_docs: usize) -> Corpus {
    let mut generator = DocGenerator::new(world, exported, seed);
    let profile = kore50_profile();
    Corpus::with_split((0..n_docs).map(|_| generator.generate(&profile, 0)).collect())
}

/// The profile behind [`wp_like`]: within-topic sentences whose person
/// mentions are reduced to surnames (the WP stress test of §4.6.1).
pub fn wp_profile() -> DocProfile {
    DocProfile {
        mentions: (3, 7),
        ambiguous_surface_prob: 1.0,
        context_phrases_per_mention: (0, 2),
        filler_words: (2, 6),
        same_clique_prob: 0.85,
        entity_zipf: 0.5,
        tail_bias: false,
        emerging_prob: 0.0,
        use_recent_phrases: false,
        confusing_context_prob: 0.15,
        partial_phrase_prob: 0.35,
        heterogeneous_prob: 0.0,
    }
}

/// A WP-style stress corpus.
pub fn wp_like(world: &World, exported: &ExportedKb, seed: u64, n_docs: usize) -> Corpus {
    let mut generator = DocGenerator::new(world, exported, seed);
    let profile = wp_profile();
    Corpus::with_split((0..n_docs).map(|_| generator.generate(&profile, 0)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use crate::kb_export::ExportedKb;
    use crate::world::World;

    fn setup() -> (World, ExportedKb) {
        let world = World::generate(WorldConfig::tiny(31));
        let kb = ExportedKb::build(&world);
        (world, kb)
    }

    #[test]
    fn conll_like_has_news_shape() {
        let (world, kb) = setup();
        let corpus = conll_like(&world, &kb, 1, 30);
        assert_eq!(corpus.docs.len(), 30);
        let avg = corpus.mention_count() as f64 / 30.0;
        assert!((10.0..=30.0).contains(&avg), "avg mentions {avg}");
    }

    #[test]
    fn kore50_like_is_short_and_ambiguous() {
        let (world, kb) = setup();
        let corpus = kore50_like(&world, &kb, 2, 20);
        for doc in &corpus.docs {
            assert!(doc.mentions.len() <= 4);
            for lm in &doc.mentions {
                assert_eq!(lm.mention.surface.split(' ').count(), 1, "must be base names");
            }
        }
    }

    #[test]
    fn splits_partition_the_corpus() {
        let (world, kb) = setup();
        let corpus = conll_like(&world, &kb, 3, 50);
        assert_eq!(
            corpus.train().len() + corpus.dev().len() + corpus.test().len(),
            corpus.docs.len()
        );
        assert!(!corpus.train().is_empty());
        assert!(!corpus.dev().is_empty());
        assert!(!corpus.test().is_empty());
    }

    #[test]
    fn corpora_are_deterministic() {
        let (world, kb) = setup();
        let a = wp_like(&world, &kb, 4, 10);
        let b = wp_like(&world, &kb, 4, 10);
        assert_eq!(a.docs, b.docs);
        let c = wp_like(&world, &kb, 5, 10);
        assert_ne!(a.docs, c.docs);
    }

    #[test]
    fn kore50_prefers_tail_entities() {
        let (world, kb) = setup();
        let kore = kore50_like(&world, &kb, 6, 40);
        let conll = conll_like(&world, &kb, 6, 40);
        let mean_rank = |c: &Corpus| -> f64 {
            let mut ranks = Vec::new();
            for d in &c.docs {
                for lm in &d.mentions {
                    if let Some(id) = lm.label {
                        ranks.push(world.entities[kb.world_of(id)].popularity_rank as f64);
                    }
                }
            }
            ranks.iter().sum::<f64>() / ranks.len() as f64
        };
        assert!(
            mean_rank(&kore) > mean_rank(&conll),
            "KORE50-like should target less popular entities"
        );
    }
}
