//! Corpus (de)serialization: save generated gold corpora to disk and load
//! them back, so expensive corpus generation can be cached between runs and
//! gold data can be shared (the thesis publishes its annotated corpora the
//! same way).

use std::io::{self, Read, Write};

use ned_eval::gold::GoldDoc;
use ned_kb::snapshot::{decode, encode};

/// Magic header identifying a gold-corpus file.
const MAGIC: &[u8; 8] = b"AIDADOC1";

/// Writes a slice of gold documents.
pub fn write_docs<W: Write>(docs: &[GoldDoc], mut writer: W) -> io::Result<()> {
    let body =
        encode(&docs.to_vec()).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    writer.write_all(MAGIC)?;
    writer.write_all(&(body.len() as u64).to_le_bytes())?;
    writer.write_all(&body)
}

/// Reads gold documents written by [`write_docs`].
pub fn read_docs<R: Read>(mut reader: R) -> io::Result<Vec<GoldDoc>> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a gold-corpus file"));
    }
    let mut len_bytes = [0u8; 8];
    reader.read_exact(&mut len_bytes)?;
    let len = u64::from_le_bytes(len_bytes);
    let mut body = Vec::new();
    reader.by_ref().take(len).read_to_end(&mut body)?;
    if body.len() as u64 != len {
        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated corpus body"));
    }
    decode(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use crate::corpus::conll_like;
    use crate::{ExportedKb, World};

    fn docs() -> Vec<GoldDoc> {
        let world = World::generate(WorldConfig::tiny(61));
        let exported = ExportedKb::build(&world);
        conll_like(&world, &exported, 1, 6).docs
    }

    #[test]
    fn roundtrip_preserves_documents() {
        let original = docs();
        let mut buf = Vec::new();
        write_docs(&original, &mut buf).unwrap();
        let restored = read_docs(buf.as_slice()).unwrap();
        assert_eq!(original, restored);
    }

    #[test]
    fn rejects_wrong_magic() {
        let err = read_docs(&b"WRONGMAGplus some data"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncation() {
        let original = docs();
        let mut buf = Vec::new();
        write_docs(&original, &mut buf).unwrap();
        assert!(read_docs(&buf[..buf.len() / 2]).is_err());
        assert!(read_docs(&buf[..10]).is_err());
    }

    #[test]
    fn empty_corpus_roundtrips() {
        let mut buf = Vec::new();
        write_docs(&[], &mut buf).unwrap();
        assert!(read_docs(buf.as_slice()).unwrap().is_empty());
    }
}
