//! KORE: keyphrase overlap relatedness (Eqs. 4.3–4.4).
//!
//! Entities are sets of weighted keyphrases; phrases are sets of weighted
//! keywords. The phrase overlap of two phrases is the weighted Jaccard
//! similarity of their keywords (Eq. 4.3):
//!
//! `PO(p, q) = Σ_{w∈p∩q} min(γ(w), γ(w)) / Σ_{w∈p∪q} max(γ(w), γ(w))`
//!
//! and KORE aggregates squared overlaps over all phrase pairs, re-weighted
//! by the lesser phrase weight and normalized by the total phrase-weight
//! mass of both entities (Eq. 4.4):
//!
//! `KORE(e, f) = Σ_{p,q} PO(p,q)² · min(ϕe(p), ϕf(q)) /
//!               (Σ_p ϕe(p) + Σ_q ϕf(q))`
//!
//! Per §4.5.2 the best configuration uses µ-MI weights for phrases (ϕ) and
//! IDF weights for keywords (γ), which is what this implementation uses.
//! Note that the measure is *not* normalized to reach 1 at self-similarity;
//! it is symmetric and non-negative, and in practice lies well inside
//! [0, 1].

use ned_kb::fx::FxHashMap;
use ned_kb::{EntityId, KbView, PhraseId, WordId};

use crate::traits::Relatedness;

/// Per-phrase precomputation: sorted keyword ids with IDF weights, plus the
/// total IDF mass of the phrase.
#[derive(Debug, Clone)]
struct PhraseInfo {
    words: Vec<(WordId, f64)>,
    idf_sum: f64,
}

/// Per-entity precomputation: keyphrases with µ weights and the weight mass.
#[derive(Debug, Clone, Default)]
struct EntityInfo {
    phrases: Vec<(PhraseId, f64)>,
    weight_mass: f64,
    /// Inverted index: keyword → indexes into `phrases` whose phrase
    /// contains the keyword.
    word_index: FxHashMap<WordId, Vec<u32>>,
}

/// Exact KORE relatedness.
#[derive(Debug)]
pub struct Kore {
    phrase_infos: Vec<PhraseInfo>,
    entity_infos: Vec<EntityInfo>,
}

impl Kore {
    /// Precomputes phrase keyword weights and entity phrase weights.
    /// `Kore` owns its precomputation and keeps no reference to `kb`.
    pub fn new<K: KbView>(kb: &K) -> Self {
        let weights = kb.weights();
        let phrase_infos = (0..kb.phrase_count())
            .map(|pi| {
                let p = PhraseId::from_index(pi);
                let mut words: Vec<(WordId, f64)> = kb
                    .phrase_words(p)
                    .iter()
                    .map(|&w| (w, weights.word_idf(w)))
                    .collect();
                words.sort_unstable_by_key(|&(w, _)| w);
                words.dedup_by_key(|&mut (w, _)| w);
                let idf_sum = words.iter().map(|&(_, idf)| idf).sum();
                PhraseInfo { words, idf_sum }
            })
            .collect();

        let entity_infos = kb
            .entity_ids()
            .map(|e| {
                let phrases: Vec<(PhraseId, f64)> = weights
                    .phrase_mi_row(e)
                    .iter()
                    .filter(|&&(_, mu)| mu > 0.0)
                    .copied()
                    .collect();
                let weight_mass = phrases.iter().map(|&(_, mu)| mu).sum();
                let mut word_index: FxHashMap<WordId, Vec<u32>> = FxHashMap::default();
                for (idx, &(p, _)) in phrases.iter().enumerate() {
                    for &w in kb.phrase_words(p) {
                        word_index.entry(w).or_default().push(idx as u32);
                    }
                }
                for list in word_index.values_mut() {
                    list.dedup();
                }
                EntityInfo { phrases, weight_mass, word_index }
            })
            .collect();

        Kore { phrase_infos, entity_infos }
    }

    /// Phrase overlap PO (Eq. 4.3) between two precomputed phrases.
    fn phrase_overlap(&self, p: PhraseId, q: PhraseId) -> f64 {
        let pa = &self.phrase_infos[p.index()];
        let pb = &self.phrase_infos[q.index()];
        if pa.idf_sum <= 0.0 && pb.idf_sum <= 0.0 {
            return 0.0;
        }
        let mut inter = 0.0;
        let (mut i, mut j) = (0, 0);
        while i < pa.words.len() && j < pb.words.len() {
            match pa.words[i].0.cmp(&pb.words[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += pa.words[i].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        if inter <= 0.0 {
            return 0.0;
        }
        let union = pa.idf_sum + pb.idf_sum - inter;
        if union <= 0.0 {
            return 0.0;
        }
        (inter / union).clamp(0.0, 1.0)
    }

    /// Number of entities covered.
    pub fn entity_count(&self) -> usize {
        self.entity_infos.len()
    }
}

impl Relatedness for Kore {
    fn name(&self) -> &'static str {
        "KORE"
    }

    fn relatedness(&self, a: EntityId, b: EntityId) -> f64 {
        let ea = &self.entity_infos[a.index()];
        let eb = &self.entity_infos[b.index()];
        let denom = ea.weight_mass + eb.weight_mass;
        if denom <= 0.0 {
            return 0.0;
        }
        // Only phrase pairs sharing at least one keyword have PO > 0; walk
        // the smaller entity's phrases and use the other's inverted index.
        let (small, large) = if ea.phrases.len() <= eb.phrases.len() { (ea, eb) } else { (eb, ea) };
        let mut numer = 0.0;
        let mut seen: Vec<u32> = Vec::new();
        for &(p, wp) in &small.phrases {
            seen.clear();
            for &(w, _) in &self.phrase_infos[p.index()].words {
                if let Some(cands) = large.word_index.get(&w) {
                    for &qi in cands {
                        if seen.contains(&qi) {
                            continue;
                        }
                        seen.push(qi);
                        let (q, wq) = large.phrases[qi as usize];
                        let po = self.phrase_overlap(p, q);
                        if po > 0.0 {
                            numer += po * po * wp.min(wq);
                        }
                    }
                }
            }
        }
        numer / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ned_kb::{EntityKind, KbBuilder, KnowledgeBase};

    /// Nick Cave / Hallelujah (song) fixture from §4.1: the song is
    /// link-poor but shares salient keyphrases with the singer.
    fn kb() -> (KnowledgeBase, Vec<EntityId>) {
        let mut b = KbBuilder::new();
        let cave = b.add_entity("Nick Cave", EntityKind::Person);
        let song = b.add_entity("Hallelujah (Nick Cave song)", EntityKind::Work);
        let cohen = b.add_entity("Leonard Cohen", EntityKind::Person);
        let pol = b.add_entity("German President", EntityKind::Person);
        b.add_keyphrase(cave, "Australian singer", 4);
        b.add_keyphrase(cave, "Bad Seeds", 5);
        b.add_keyphrase(cave, "No More Shall We Part", 2);
        b.add_keyphrase(song, "Australian male singer", 2);
        b.add_keyphrase(song, "Bad Seeds", 3);
        b.add_keyphrase(song, "eerie cello", 1);
        b.add_keyphrase(cohen, "Canadian singer", 4);
        b.add_keyphrase(cohen, "Hallelujah composition", 3);
        b.add_keyphrase(pol, "federal assembly", 3);
        b.add_keyphrase(pol, "state visit", 2);
        (b.build(), vec![cave, song, cohen, pol])
    }

    #[test]
    fn related_entities_score_higher_than_unrelated() {
        let (kb, e) = kb();
        let kore = Kore::new(&kb);
        let cave_song = kore.relatedness(e[0], e[1]);
        let cave_pol = kore.relatedness(e[0], e[3]);
        assert!(cave_song > 0.0);
        assert_eq!(cave_pol, 0.0);
    }

    #[test]
    fn partial_phrase_matches_contribute() {
        let (kb, e) = kb();
        let kore = Kore::new(&kb);
        // "Australian singer" vs "Australian male singer" overlap partially;
        // Cave–Cohen share only the word "singer".
        let cave_cohen = kore.relatedness(e[0], e[2]);
        assert!(cave_cohen > 0.0);
        assert!(kore.relatedness(e[0], e[1]) > cave_cohen);
    }

    #[test]
    fn symmetric_and_nonnegative() {
        let (kb, e) = kb();
        let kore = Kore::new(&kb);
        for &a in &e {
            for &b in &e {
                let v = kore.relatedness(a, b);
                assert!(v >= 0.0);
                assert!((v - kore.relatedness(b, a)).abs() < 1e-12, "asymmetric at {a:?},{b:?}");
            }
        }
    }

    #[test]
    fn exact_phrase_match_beats_partial() {
        let mut b = KbBuilder::new();
        let x = b.add_entity("X", EntityKind::Other);
        let exact = b.add_entity("Exact", EntityKind::Other);
        let partial = b.add_entity("Partial", EntityKind::Other);
        let noise = b.add_entity("Noise", EntityKind::Other);
        b.add_keyphrase(x, "English rock guitarist", 1);
        b.add_keyphrase(exact, "English rock guitarist", 1);
        b.add_keyphrase(partial, "English guitarist", 1);
        b.add_keyphrase(noise, "completely unrelated topic", 1);
        let kb = b.build();
        let kore = Kore::new(&kb);
        assert!(kore.relatedness(x, exact) > kore.relatedness(x, partial));
        assert!(kore.relatedness(x, partial) > 0.0);
    }

    #[test]
    fn entity_without_phrases_scores_zero() {
        let mut b = KbBuilder::new();
        let x = b.add_entity("X", EntityKind::Other);
        let y = b.add_entity("Y", EntityKind::Other);
        b.add_keyphrase(y, "some phrase", 1);
        let kb = b.build();
        let kore = Kore::new(&kb);
        assert_eq!(kore.relatedness(x, y), 0.0);
    }

    #[test]
    fn po_is_jaccard_on_idf() {
        let (kb, _) = kb();
        let kore = Kore::new(&kb);
        let words = kb.word_interner();
        let phrases = kb.phrase_interner();
        let a = phrases.get("Australian singer", words).unwrap();
        let b = phrases.get("Australian male singer", words).unwrap();
        let po = kore.phrase_overlap(a, b);
        assert!(po > 0.0 && po < 1.0);
        assert!((kore.phrase_overlap(a, a) - 1.0).abs() < 1e-12);
    }
}
