//! Memoizing wrapper for relatedness measures.
//!
//! The AIDA graph algorithm queries the same entity pair repeatedly while
//! weights are rescaled and the subgraph shrinks; caching turns repeated
//! exact-KORE computations into hash lookups. Thread-safe via sharded
//! `std::sync::RwLock`s so the parallel engine can disambiguate documents
//! from multiple threads over one shared measure.
//!
//! All measures in this crate are symmetric, so keys are canonicalized to
//! `(min(a, b), max(a, b))` — `(a, b)` and `(b, a)` share one entry. Hit,
//! miss, and insert counts are tracked with relaxed atomics and exposed via
//! [`CachedRelatedness::stats`] for the throughput bench's hit-rate report.
//!
//! The cache holds plain memoized floats, so a shard whose lock was
//! poisoned by a panicking worker is still structurally sound (at worst an
//! insert was lost). Every lock acquisition therefore recovers from poison
//! instead of propagating it — one crashed document must not wedge the
//! shared cache for the rest of the batch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use ned_kb::fx::FxHashMap;
use ned_kb::EntityId;

use crate::traits::Relatedness;

const SHARDS: usize = 16;

/// Relaxed counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the wrapped measure.
    pub misses: u64,
    /// Entries written (≤ misses: concurrent misses on one pair insert once
    /// each, but a pair counts one logical entry).
    pub inserts: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache, in [0, 1]; 0 when no
    /// lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A relatedness measure with an internal pair cache.
// Manual Debug: `M` need not be Debug, and dumping the shard maps would be
// both huge and lock-acquiring.
pub struct CachedRelatedness<M> {
    inner: M,
    shards: Vec<RwLock<FxHashMap<(EntityId, EntityId), f64>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

impl<M> std::fmt::Debug for CachedRelatedness<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedRelatedness")
            .field("shards", &self.shards.len())
            .field("hits", &self.hits.load(std::sync::atomic::Ordering::Relaxed))
            .field("misses", &self.misses.load(std::sync::atomic::Ordering::Relaxed))
            .field("inserts", &self.inserts.load(std::sync::atomic::Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl<M: Relatedness> CachedRelatedness<M> {
    /// Wraps `inner` with an empty cache.
    pub fn new(inner: M) -> Self {
        let shards = (0..SHARDS).map(|_| RwLock::new(FxHashMap::default())).collect();
        CachedRelatedness {
            inner,
            shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    /// Number of cached pairs.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap_or_else(|e| e.into_inner()).len()).sum()
    }

    /// True if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all cached pairs (counters keep accumulating).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    /// Snapshot of the hit/miss/insert counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
        }
    }

    /// The wrapped measure.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    fn shard_of(key: (EntityId, EntityId)) -> usize {
        (key.0 .0 as usize ^ (key.1 .0 as usize).rotate_left(16)) % SHARDS
    }
}

impl<M: Relatedness> Relatedness for CachedRelatedness<M> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn relatedness(&self, a: EntityId, b: EntityId) -> f64 {
        // Symmetric measures share one entry per unordered pair.
        let key = if a <= b { (a, b) } else { (b, a) };
        let shard = &self.shards[Self::shard_of(key)];
        if let Some(&v) = shard.read().unwrap_or_else(|e| e.into_inner()).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = self.inner.relatedness(a, b);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        shard.write().unwrap_or_else(|e| e.into_inner()).insert(key, v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Counting {
        calls: AtomicUsize,
    }

    impl Relatedness for Counting {
        fn name(&self) -> &'static str {
            "counting"
        }
        fn relatedness(&self, a: EntityId, b: EntityId) -> f64 {
            self.calls.fetch_add(1, Ordering::Relaxed);
            f64::from(a.0 + b.0)
        }
    }

    #[test]
    fn caches_symmetric_pairs() {
        let c = CachedRelatedness::new(Counting { calls: AtomicUsize::new(0) });
        let a = EntityId(1);
        let b = EntityId(2);
        assert_eq!(c.relatedness(a, b), 3.0);
        assert_eq!(c.relatedness(b, a), 3.0);
        assert_eq!(c.inner().calls.load(Ordering::Relaxed), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clear_resets() {
        let c = CachedRelatedness::new(Counting { calls: AtomicUsize::new(0) });
        c.relatedness(EntityId(1), EntityId(2));
        c.clear();
        assert!(c.is_empty());
        c.relatedness(EntityId(1), EntityId(2));
        assert_eq!(c.inner().calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn distinct_pairs_cached_separately() {
        let c = CachedRelatedness::new(Counting { calls: AtomicUsize::new(0) });
        for i in 0..10u32 {
            c.relatedness(EntityId(i), EntityId(i + 1));
        }
        assert_eq!(c.len(), 10);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let c = CachedRelatedness::new(Counting { calls: AtomicUsize::new(0) });
        let (a, b) = (EntityId(3), EntityId(9));
        c.relatedness(a, b); // miss + insert
        c.relatedness(a, b); // hit
        c.relatedness(b, a); // hit (canonicalized key)
        let stats = c.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.inserts, 1);
        assert_eq!(stats.hits, 2);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn poisoned_shard_recovers() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::Arc;

        let c = Arc::new(CachedRelatedness::new(Counting { calls: AtomicUsize::new(0) }));
        let (a, b) = (EntityId(1), EntityId(2));
        c.relatedness(a, b);
        // Poison the shard holding (a, b) by panicking while its write
        // lock is held, exactly like a crashed worker would.
        let key = if a <= b { (a, b) } else { (b, a) };
        let shard_idx = CachedRelatedness::<Counting>::shard_of(key);
        let poisoner = Arc::clone(&c);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _guard = poisoner.shards[shard_idx].write().unwrap();
            panic!("worker died mid-insert");
        }));
        std::panic::set_hook(hook);
        assert!(result.is_err());
        assert!(c.shards[shard_idx].is_poisoned());
        // Reads, writes, and maintenance all still work.
        assert_eq!(c.relatedness(a, b), 3.0, "cached value survives poison");
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.relatedness(b, a), 3.0);
    }

    #[test]
    fn empty_stats_have_zero_hit_rate() {
        let c = CachedRelatedness::new(Counting { calls: AtomicUsize::new(0) });
        assert_eq!(c.stats(), CacheStats::default());
        assert_eq!(c.stats().hit_rate(), 0.0);
    }
}
