//! Memoizing wrapper for relatedness measures.
//!
//! The AIDA graph algorithm queries the same entity pair repeatedly while
//! weights are rescaled and the subgraph shrinks; caching turns repeated
//! exact-KORE computations into hash lookups. Thread-safe via a sharded
//! `parking_lot::RwLock` so the bench harness can disambiguate documents
//! from multiple threads over one shared measure.

use parking_lot::RwLock;

use ned_kb::fx::FxHashMap;
use ned_kb::EntityId;

use crate::traits::Relatedness;

const SHARDS: usize = 16;

/// A relatedness measure with an internal pair cache.
pub struct CachedRelatedness<M> {
    inner: M,
    shards: Vec<RwLock<FxHashMap<(EntityId, EntityId), f64>>>,
}

impl<M: Relatedness> CachedRelatedness<M> {
    /// Wraps `inner` with an empty cache.
    pub fn new(inner: M) -> Self {
        let shards = (0..SHARDS).map(|_| RwLock::new(FxHashMap::default())).collect();
        CachedRelatedness { inner, shards }
    }

    /// Number of cached pairs.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all cached pairs.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
    }

    /// The wrapped measure.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    fn shard_of(key: (EntityId, EntityId)) -> usize {
        (key.0 .0 as usize ^ (key.1 .0 as usize).rotate_left(16)) % SHARDS
    }
}

impl<M: Relatedness> Relatedness for CachedRelatedness<M> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn relatedness(&self, a: EntityId, b: EntityId) -> f64 {
        let key = if a <= b { (a, b) } else { (b, a) };
        let shard = &self.shards[Self::shard_of(key)];
        if let Some(&v) = shard.read().get(&key) {
            return v;
        }
        let v = self.inner.relatedness(a, b);
        shard.write().insert(key, v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Counting {
        calls: AtomicUsize,
    }

    impl Relatedness for Counting {
        fn name(&self) -> &'static str {
            "counting"
        }
        fn relatedness(&self, a: EntityId, b: EntityId) -> f64 {
            self.calls.fetch_add(1, Ordering::Relaxed);
            f64::from(a.0 + b.0)
        }
    }

    #[test]
    fn caches_symmetric_pairs() {
        let c = CachedRelatedness::new(Counting { calls: AtomicUsize::new(0) });
        let a = EntityId(1);
        let b = EntityId(2);
        assert_eq!(c.relatedness(a, b), 3.0);
        assert_eq!(c.relatedness(b, a), 3.0);
        assert_eq!(c.inner().calls.load(Ordering::Relaxed), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clear_resets() {
        let c = CachedRelatedness::new(Counting { calls: AtomicUsize::new(0) });
        c.relatedness(EntityId(1), EntityId(2));
        c.clear();
        assert!(c.is_empty());
        c.relatedness(EntityId(1), EntityId(2));
        assert_eq!(c.inner().calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn distinct_pairs_cached_separately() {
        let c = CachedRelatedness::new(Counting { calls: AtomicUsize::new(0) });
        for i in 0..10u32 {
            c.relatedness(EntityId(i), EntityId(i + 1));
        }
        assert_eq!(c.len(), 10);
    }
}
