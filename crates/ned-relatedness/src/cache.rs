//! Memoizing wrapper for relatedness measures.
//!
//! The AIDA graph algorithm queries the same entity pair repeatedly while
//! weights are rescaled and the subgraph shrinks; caching turns repeated
//! exact-KORE computations into hash lookups. Thread-safe via sharded
//! `std::sync::RwLock`s so the parallel engine can disambiguate documents
//! from multiple threads over one shared measure.
//!
//! All measures in this crate are symmetric, so keys are canonicalized to
//! `(min(a, b), max(a, b))` — `(a, b)` and `(b, a)` share one entry.
//!
//! Effectiveness counters live in the `ned-obs` registry (names in
//! [`ned_obs::names`]): `relatedness_cache_hits`, `_misses`, `_inserts`.
//! Accounting is *deterministic*: a lookup counts as a miss only when it
//! wins the insert under the shard's write lock, so N workers racing on one
//! absent pair always record exactly 1 miss + (N−1) hits no matter how the
//! race resolves. Totals therefore depend only on the multiset of lookups,
//! not on thread interleaving — which lets the golden-metrics suite pin
//! exact hit counts. By construction `misses == inserts`.
//!
//! The cache holds plain memoized floats, so a shard whose lock was
//! poisoned by a panicking worker is still structurally sound (at worst an
//! insert was lost). Every lock acquisition therefore recovers from poison
//! instead of propagating it — one crashed document must not wedge the
//! shared cache for the rest of the batch.

use std::collections::hash_map::Entry;
use std::sync::RwLock;

use ned_kb::fx::FxHashMap;
use ned_kb::EntityId;
use ned_obs::{names, Counter, Metrics};

use crate::traits::Relatedness;

const SHARDS: usize = 16;

/// A relatedness measure with an internal pair cache.
// Manual Debug: `M` need not be Debug, and dumping the shard maps would be
// both huge and lock-acquiring.
pub struct CachedRelatedness<M> {
    inner: M,
    shards: Vec<RwLock<FxHashMap<(EntityId, EntityId), f64>>>,
    hits: Counter,
    misses: Counter,
    inserts: Counter,
}

impl<M> std::fmt::Debug for CachedRelatedness<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedRelatedness")
            .field("shards", &self.shards.len())
            .field("hits", &self.hits.value())
            .field("misses", &self.misses.value())
            .field("inserts", &self.inserts.value())
            .finish_non_exhaustive()
    }
}

impl<M: Relatedness> CachedRelatedness<M> {
    /// Wraps `inner` with an empty cache and a private metrics registry.
    pub fn new(inner: M) -> Self {
        Self::with_metrics(inner, &Metrics::new())
    }

    /// Wraps `inner` with an empty cache, recording hit/miss/insert
    /// counters into the given registry (pass [`Metrics::disabled`] to
    /// skip accounting entirely).
    pub fn with_metrics(inner: M, metrics: &Metrics) -> Self {
        let shards = (0..SHARDS).map(|_| RwLock::new(FxHashMap::default())).collect();
        CachedRelatedness {
            inner,
            shards,
            hits: metrics.counter(names::RELATEDNESS_CACHE_HITS),
            misses: metrics.counter(names::RELATEDNESS_CACHE_MISSES),
            inserts: metrics.counter(names::RELATEDNESS_CACHE_INSERTS),
        }
    }

    /// Number of cached pairs.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap_or_else(|e| e.into_inner()).len()).sum()
    }

    /// True if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all cached pairs (counters keep accumulating).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.value()
    }

    /// Lookups that computed and inserted a fresh pair so far.
    pub fn misses(&self) -> u64 {
        self.misses.value()
    }

    /// Entries written so far (equals [`CachedRelatedness::misses`]).
    pub fn inserts(&self) -> u64 {
        self.inserts.value()
    }

    /// Fraction of lookups served from the cache, in [0, 1]; 0 when no
    /// lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits.value();
        let total = hits + self.misses.value();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// The wrapped measure.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    fn shard_of(key: (EntityId, EntityId)) -> usize {
        (key.0 .0 as usize ^ (key.1 .0 as usize).rotate_left(16)) % SHARDS
    }
}

impl<M: Relatedness> Relatedness for CachedRelatedness<M> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn relatedness(&self, a: EntityId, b: EntityId) -> f64 {
        // Symmetric measures share one entry per unordered pair.
        let key = if a <= b { (a, b) } else { (b, a) };
        let shard = &self.shards[Self::shard_of(key)];
        if let Some(&v) = shard.read().unwrap_or_else(|e| e.into_inner()).get(&key) {
            self.hits.inc();
            return v;
        }
        // Compute outside the write lock; a racing worker may beat us to
        // the insert, in which case this lookup counts as a hit and the
        // duplicate computation is discarded (pure measures, same value).
        let v = self.inner.relatedness(a, b);
        match shard.write().unwrap_or_else(|e| e.into_inner()).entry(key) {
            Entry::Occupied(slot) => {
                self.hits.inc();
                *slot.get()
            }
            Entry::Vacant(slot) => {
                self.misses.inc();
                self.inserts.inc();
                slot.insert(v);
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Counting {
        calls: AtomicUsize,
    }

    impl Relatedness for Counting {
        fn name(&self) -> &'static str {
            "counting"
        }
        fn relatedness(&self, a: EntityId, b: EntityId) -> f64 {
            self.calls.fetch_add(1, Ordering::Relaxed);
            f64::from(a.0 + b.0)
        }
    }

    #[test]
    fn caches_symmetric_pairs() {
        let c = CachedRelatedness::new(Counting { calls: AtomicUsize::new(0) });
        let a = EntityId(1);
        let b = EntityId(2);
        assert_eq!(c.relatedness(a, b), 3.0);
        assert_eq!(c.relatedness(b, a), 3.0);
        assert_eq!(c.inner().calls.load(Ordering::Relaxed), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clear_resets() {
        let c = CachedRelatedness::new(Counting { calls: AtomicUsize::new(0) });
        c.relatedness(EntityId(1), EntityId(2));
        c.clear();
        assert!(c.is_empty());
        c.relatedness(EntityId(1), EntityId(2));
        assert_eq!(c.inner().calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn distinct_pairs_cached_separately() {
        let c = CachedRelatedness::new(Counting { calls: AtomicUsize::new(0) });
        for i in 0..10u32 {
            c.relatedness(EntityId(i), EntityId(i + 1));
        }
        assert_eq!(c.len(), 10);
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let c = CachedRelatedness::new(Counting { calls: AtomicUsize::new(0) });
        let (a, b) = (EntityId(3), EntityId(9));
        c.relatedness(a, b); // miss + insert
        c.relatedness(a, b); // hit
        c.relatedness(b, a); // hit (canonicalized key)
        assert_eq!(c.misses(), 1);
        assert_eq!(c.inserts(), 1);
        assert_eq!(c.hits(), 2);
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn counters_land_in_a_shared_registry() {
        let m = Metrics::new();
        let c =
            CachedRelatedness::with_metrics(Counting { calls: AtomicUsize::new(0) }, &m);
        c.relatedness(EntityId(1), EntityId(2));
        c.relatedness(EntityId(1), EntityId(2));
        let snap = m.snapshot();
        assert_eq!(snap.counter(names::RELATEDNESS_CACHE_MISSES), 1);
        assert_eq!(snap.counter(names::RELATEDNESS_CACHE_INSERTS), 1);
        assert_eq!(snap.counter(names::RELATEDNESS_CACHE_HITS), 1);
    }

    #[test]
    fn disabled_metrics_skip_accounting_but_still_cache() {
        let c = CachedRelatedness::with_metrics(
            Counting { calls: AtomicUsize::new(0) },
            &Metrics::disabled(),
        );
        c.relatedness(EntityId(1), EntityId(2));
        c.relatedness(EntityId(1), EntityId(2));
        assert_eq!(c.inner().calls.load(Ordering::Relaxed), 1, "still memoizes");
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
        assert_eq!(c.hit_rate(), 0.0);
    }

    #[test]
    fn poisoned_shard_recovers() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::Arc;

        let c = Arc::new(CachedRelatedness::new(Counting { calls: AtomicUsize::new(0) }));
        let (a, b) = (EntityId(1), EntityId(2));
        c.relatedness(a, b);
        // Poison the shard holding (a, b) by panicking while its write
        // lock is held, exactly like a crashed worker would.
        let key = if a <= b { (a, b) } else { (b, a) };
        let shard_idx = CachedRelatedness::<Counting>::shard_of(key);
        let poisoner = Arc::clone(&c);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _guard = poisoner.shards[shard_idx].write().unwrap();
            panic!("worker died mid-insert");
        }));
        std::panic::set_hook(hook);
        assert!(result.is_err());
        assert!(c.shards[shard_idx].is_poisoned());
        // Reads, writes, and maintenance all still work.
        assert_eq!(c.relatedness(a, b), 3.0, "cached value survives poison");
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.relatedness(b, a), 3.0);
    }

    #[test]
    fn fresh_cache_has_zero_hit_rate() {
        let c = CachedRelatedness::new(Counting { calls: AtomicUsize::new(0) });
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
        assert_eq!(c.inserts(), 0);
        assert_eq!(c.hit_rate(), 0.0);
    }
}
