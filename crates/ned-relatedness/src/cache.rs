//! Memoizing wrapper for relatedness measures.
//!
//! The AIDA graph algorithm queries the same entity pair repeatedly while
//! weights are rescaled and the subgraph shrinks; caching turns repeated
//! exact-KORE computations into hash lookups. Thread-safe via sharded
//! `std::sync::RwLock`s so the parallel engine can disambiguate documents
//! from multiple threads over one shared measure.
//!
//! All measures in this crate are symmetric, so keys are canonicalized to
//! `(min(a, b), max(a, b))` — `(a, b)` and `(b, a)` share one entry.
//!
//! Effectiveness counters live in the `ned-obs` registry (names in
//! [`ned_obs::names`]): `relatedness_cache_hits`, `_misses`, `_inserts`.
//! Accounting is *deterministic*: a lookup counts as a miss only when it
//! wins the insert under the shard's write lock, so N workers racing on one
//! absent pair always record exactly 1 miss + (N−1) hits no matter how the
//! race resolves. Totals therefore depend only on the multiset of lookups,
//! not on thread interleaving — which lets the golden-metrics suite pin
//! exact hit counts. By construction `misses == inserts`.
//!
//! An optional hard entry cap ([`CachedRelatedness::with_metrics_and_capacity`])
//! bounds memory for long-running services: past the cap, lookups still
//! compute and return correct values but are not memoized (counted under
//! `relatedness_cache_full`). There is no eviction, so a cached value is
//! immutable for the cache's lifetime and results are byte-identical to an
//! unbounded cache; with a binding cap, *which* pairs end up memoized (and
//! hence the hit/miss/full split) depends on lookup order, so it is exact
//! for a fixed single-threaded sequence and conserved
//! (`hits + misses + full == lookups`) under concurrency.
//!
//! The cache holds plain memoized floats, so a shard whose lock was
//! poisoned by a panicking worker is still structurally sound (at worst an
//! insert was lost). Every lock acquisition therefore recovers from poison
//! instead of propagating it — one crashed document must not wedge the
//! shared cache for the rest of the batch.

use std::collections::hash_map::Entry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use ned_kb::fx::FxHashMap;
use ned_kb::EntityId;
use ned_obs::{names, Counter, Metrics};

use crate::traits::Relatedness;

const SHARDS: usize = 16;

/// What a write-path lookup decided under the shard's write lock. The
/// decision is made while the lock is held (so accounting stays exact) but
/// the counter increments happen after the guard drops — the critical
/// section covers only the map, never the metrics registry.
enum WriteOutcome {
    /// A racing worker inserted first; counts as a hit.
    RacedHit,
    /// The shard is at its entry cap; value returned uncached.
    Full,
    /// This lookup won the insert; counts as a miss + insert.
    Inserted,
}

/// A relatedness measure with an internal pair cache.
// Manual Debug: `M` need not be Debug, and dumping the shard maps would be
// both huge and lock-acquiring.
pub struct CachedRelatedness<M> {
    inner: M,
    shards: Vec<RwLock<FxHashMap<(EntityId, EntityId), f64>>>,
    /// Hard per-shard entry caps (their sum is the configured capacity).
    /// Checked under the shard's write lock, so the bound is exact; a full
    /// shard rejects the insert and returns the computed value uncached —
    /// no eviction, so memoized values never change under a caller.
    shard_caps: Vec<usize>,
    /// KB generation the cached pairs were computed against. An epoch swap
    /// (entity promotion, compaction) changes what entity ids mean, so
    /// [`CachedRelatedness::advance_generation`] drops every memoized pair
    /// when the tag moves — stale scores must never survive a swap.
    kb_generation: AtomicU64,
    hits: Counter,
    misses: Counter,
    inserts: Counter,
    full: Counter,
}

impl<M> std::fmt::Debug for CachedRelatedness<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedRelatedness")
            .field("shards", &self.shards.len())
            .field("hits", &self.hits.value())
            .field("misses", &self.misses.value())
            .field("inserts", &self.inserts.value())
            .field("rejected_full", &self.full.value())
            .finish_non_exhaustive()
    }
}

/// Splits a global entry cap into per-shard caps whose sum is exactly the
/// cap (earlier shards absorb the remainder). An unbounded cache maps to
/// `usize::MAX` per shard.
fn shard_caps(max_entries: usize) -> Vec<usize> {
    if max_entries == usize::MAX {
        return vec![usize::MAX; SHARDS];
    }
    let base = max_entries / SHARDS;
    let rem = max_entries % SHARDS;
    (0..SHARDS).map(|i| base + usize::from(i < rem)).collect()
}

impl<M: Relatedness> CachedRelatedness<M> {
    /// Wraps `inner` with an empty unbounded cache and a private metrics
    /// registry.
    pub fn new(inner: M) -> Self {
        Self::with_metrics(inner, &Metrics::new())
    }

    /// Wraps `inner` with an empty unbounded cache, recording
    /// hit/miss/insert counters into the given registry (pass
    /// [`Metrics::disabled`] to skip accounting entirely).
    pub fn with_metrics(inner: M, metrics: &Metrics) -> Self {
        Self::with_metrics_and_capacity(inner, metrics, usize::MAX)
    }

    /// Wraps `inner` with an empty cache holding at most `max_entries`
    /// pairs. Past the cap, lookups still compute and return correct values
    /// but are not memoized (counted under `relatedness_cache_full`) —
    /// a long-running service gets a hard memory bound with no eviction, so
    /// cached values stay immutable and results stay byte-identical to an
    /// unbounded cache.
    pub fn with_metrics_and_capacity(inner: M, metrics: &Metrics, max_entries: usize) -> Self {
        let shards = (0..SHARDS).map(|_| RwLock::new(FxHashMap::default())).collect();
        CachedRelatedness {
            inner,
            shards,
            shard_caps: shard_caps(max_entries),
            kb_generation: AtomicU64::new(0),
            hits: metrics.counter(names::RELATEDNESS_CACHE_HITS),
            misses: metrics.counter(names::RELATEDNESS_CACHE_MISSES),
            inserts: metrics.counter(names::RELATEDNESS_CACHE_INSERTS),
            full: metrics.counter(names::RELATEDNESS_CACHE_FULL),
        }
    }

    /// The configured entry cap (`usize::MAX` when unbounded).
    pub fn capacity(&self) -> usize {
        if self.shard_caps.contains(&usize::MAX) {
            usize::MAX
        } else {
            self.shard_caps.iter().sum()
        }
    }

    /// Number of cached pairs.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap_or_else(|e| e.into_inner()).len()).sum()
    }

    /// True if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all cached pairs (counters keep accumulating).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    /// The KB generation the cached pairs were computed against.
    pub fn generation(&self) -> u64 {
        self.kb_generation.load(Ordering::Acquire)
    }

    /// Tags the cache with the KB generation it is serving (e.g. from
    /// `ned_kb::KbHandle::generation`). When the tag moves, every memoized
    /// pair is dropped: an epoch swap can add entities and reweight
    /// keyphrases, so scores computed against the old KB are stale.
    /// Returns true when the cache was invalidated.
    ///
    /// Callers sequence this *before* computing against the new KB (swap →
    /// advance → score), so a racing worker can at worst re-insert a value
    /// computed against the new epoch — never resurrect an old one.
    pub fn advance_generation(&self, generation: u64) -> bool {
        if self.kb_generation.swap(generation, Ordering::AcqRel) == generation {
            return false;
        }
        self.clear();
        true
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.value()
    }

    /// Lookups that computed and inserted a fresh pair so far.
    pub fn misses(&self) -> u64 {
        self.misses.value()
    }

    /// Entries written so far (equals [`CachedRelatedness::misses`]).
    pub fn inserts(&self) -> u64 {
        self.inserts.value()
    }

    /// Lookups whose insert was rejected by the entry cap so far.
    pub fn rejected_full(&self) -> u64 {
        self.full.value()
    }

    /// Fraction of lookups served from the cache, in [0, 1]; 0 when no
    /// lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits.value();
        let total = hits + self.misses.value();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// The wrapped measure.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    fn shard_of(key: (EntityId, EntityId)) -> usize {
        (key.0 .0 as usize ^ (key.1 .0 as usize).rotate_left(16)) % SHARDS
    }
}

impl<M: Relatedness> Relatedness for CachedRelatedness<M> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn relatedness(&self, a: EntityId, b: EntityId) -> f64 {
        // Symmetric measures share one entry per unordered pair.
        let key = if a <= b { (a, b) } else { (b, a) };
        let shard_idx = Self::shard_of(key);
        let Some(shard) = self.shards.get(shard_idx) else {
            // `shard_of` reduces mod SHARDS, so this arm is unreachable;
            // degrade to the uncached measure rather than panicking.
            return self.inner.relatedness(a, b);
        };
        // Copy the cached value out so the read guard (a temporary) drops
        // before the counter increment — no lock held across the registry.
        let cached =
            shard.read().unwrap_or_else(|e| e.into_inner()).get(&key).copied();
        if let Some(v) = cached {
            self.hits.inc();
            return v;
        }
        // Compute outside the write lock; a racing worker may beat us to
        // the insert, in which case this lookup counts as a hit and the
        // duplicate computation is discarded (pure measures, same value).
        let v = self.inner.relatedness(a, b);
        let cap = self.shard_caps.get(shard_idx).copied().unwrap_or(usize::MAX);
        let (v, outcome) = {
            let mut guard = shard.write().unwrap_or_else(|e| e.into_inner());
            let occupied = guard.len();
            match guard.entry(key) {
                Entry::Occupied(slot) => (*slot.get(), WriteOutcome::RacedHit),
                // The cap is enforced under the write lock, so the entry
                // count never exceeds it; a rejected insert is neither a
                // hit nor a miss (misses == inserts stays exact) but is
                // counted under `relatedness_cache_full`.
                Entry::Vacant(_) if occupied >= cap => (v, WriteOutcome::Full),
                Entry::Vacant(slot) => {
                    slot.insert(v);
                    (v, WriteOutcome::Inserted)
                }
            }
        };
        match outcome {
            WriteOutcome::RacedHit => self.hits.inc(),
            WriteOutcome::Full => self.full.inc(),
            WriteOutcome::Inserted => {
                self.misses.inc();
                self.inserts.inc();
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Counting {
        calls: AtomicUsize,
    }

    impl Relatedness for Counting {
        fn name(&self) -> &'static str {
            "counting"
        }
        fn relatedness(&self, a: EntityId, b: EntityId) -> f64 {
            self.calls.fetch_add(1, Ordering::Relaxed);
            f64::from(a.0 + b.0)
        }
    }

    #[test]
    fn caches_symmetric_pairs() {
        let c = CachedRelatedness::new(Counting { calls: AtomicUsize::new(0) });
        let a = EntityId(1);
        let b = EntityId(2);
        assert_eq!(c.relatedness(a, b), 3.0);
        assert_eq!(c.relatedness(b, a), 3.0);
        assert_eq!(c.inner().calls.load(Ordering::Relaxed), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clear_resets() {
        let c = CachedRelatedness::new(Counting { calls: AtomicUsize::new(0) });
        c.relatedness(EntityId(1), EntityId(2));
        c.clear();
        assert!(c.is_empty());
        c.relatedness(EntityId(1), EntityId(2));
        assert_eq!(c.inner().calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn distinct_pairs_cached_separately() {
        let c = CachedRelatedness::new(Counting { calls: AtomicUsize::new(0) });
        for i in 0..10u32 {
            c.relatedness(EntityId(i), EntityId(i + 1));
        }
        assert_eq!(c.len(), 10);
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let c = CachedRelatedness::new(Counting { calls: AtomicUsize::new(0) });
        let (a, b) = (EntityId(3), EntityId(9));
        c.relatedness(a, b); // miss + insert
        c.relatedness(a, b); // hit
        c.relatedness(b, a); // hit (canonicalized key)
        assert_eq!(c.misses(), 1);
        assert_eq!(c.inserts(), 1);
        assert_eq!(c.hits(), 2);
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn counters_land_in_a_shared_registry() {
        let m = Metrics::new();
        let c =
            CachedRelatedness::with_metrics(Counting { calls: AtomicUsize::new(0) }, &m);
        c.relatedness(EntityId(1), EntityId(2));
        c.relatedness(EntityId(1), EntityId(2));
        let snap = m.snapshot();
        assert_eq!(snap.counter(names::RELATEDNESS_CACHE_MISSES), 1);
        assert_eq!(snap.counter(names::RELATEDNESS_CACHE_INSERTS), 1);
        assert_eq!(snap.counter(names::RELATEDNESS_CACHE_HITS), 1);
    }

    #[test]
    fn disabled_metrics_skip_accounting_but_still_cache() {
        let c = CachedRelatedness::with_metrics(
            Counting { calls: AtomicUsize::new(0) },
            &Metrics::disabled(),
        );
        c.relatedness(EntityId(1), EntityId(2));
        c.relatedness(EntityId(1), EntityId(2));
        assert_eq!(c.inner().calls.load(Ordering::Relaxed), 1, "still memoizes");
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
        assert_eq!(c.hit_rate(), 0.0);
    }

    #[test]
    fn poisoned_shard_recovers() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::Arc;

        let c = Arc::new(CachedRelatedness::new(Counting { calls: AtomicUsize::new(0) }));
        let (a, b) = (EntityId(1), EntityId(2));
        c.relatedness(a, b);
        // Poison the shard holding (a, b) by panicking while its write
        // lock is held, exactly like a crashed worker would.
        let key = if a <= b { (a, b) } else { (b, a) };
        let shard_idx = CachedRelatedness::<Counting>::shard_of(key);
        let poisoner = Arc::clone(&c);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _guard = poisoner.shards[shard_idx].write().unwrap();
            panic!("worker died mid-insert");
        }));
        std::panic::set_hook(hook);
        assert!(result.is_err());
        assert!(c.shards[shard_idx].is_poisoned());
        // Reads, writes, and maintenance all still work.
        assert_eq!(c.relatedness(a, b), 3.0, "cached value survives poison");
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.relatedness(b, a), 3.0);
    }

    #[test]
    fn entry_cap_is_a_hard_bound() {
        let m = Metrics::new();
        let c = CachedRelatedness::with_metrics_and_capacity(
            Counting { calls: AtomicUsize::new(0) },
            &m,
            5,
        );
        assert_eq!(c.capacity(), 5);
        // 40 distinct pairs against a cap of 5: the cache never exceeds the
        // cap, values are still correct, rejections are counted.
        for i in 0..40u32 {
            assert_eq!(c.relatedness(EntityId(i), EntityId(i + 100)), f64::from(2 * i + 100));
        }
        assert!(c.len() <= 5, "cap is hard: {} entries", c.len());
        assert_eq!(c.misses(), c.inserts());
        assert_eq!(c.len() as u64, c.inserts());
        assert_eq!(c.misses() + c.rejected_full(), 40, "every lookup accounted");
        let snap = m.snapshot();
        assert_eq!(snap.counter(names::RELATEDNESS_CACHE_FULL), c.rejected_full());
        assert!(snap.counter(names::RELATEDNESS_CACHE_FULL) > 0);
    }

    #[test]
    fn capped_cache_results_match_unbounded() {
        let capped = CachedRelatedness::with_metrics_and_capacity(
            Counting { calls: AtomicUsize::new(0) },
            &Metrics::new(),
            2,
        );
        let unbounded = CachedRelatedness::new(Counting { calls: AtomicUsize::new(0) });
        for i in 0..20u32 {
            for j in 0..3u32 {
                let (a, b) = (EntityId(i), EntityId(i + j + 1));
                assert_eq!(capped.relatedness(a, b).to_bits(), unbounded.relatedness(a, b).to_bits());
            }
        }
    }

    #[test]
    fn cap_rejections_are_deterministic_for_a_fixed_sequence() {
        let run = || {
            let m = Metrics::new();
            let c = CachedRelatedness::with_metrics_and_capacity(
                Counting { calls: AtomicUsize::new(0) },
                &m,
                7,
            );
            for i in 0..30u32 {
                c.relatedness(EntityId(i % 13), EntityId((i * 7) % 17 + 1));
            }
            m.snapshot()
        };
        assert_eq!(run(), run(), "single-threaded accounting is exact");
    }

    #[test]
    fn unbounded_cache_never_counts_full() {
        let m = Metrics::new();
        let c = CachedRelatedness::with_metrics(Counting { calls: AtomicUsize::new(0) }, &m);
        assert_eq!(c.capacity(), usize::MAX);
        for i in 0..100u32 {
            c.relatedness(EntityId(i), EntityId(i + 1));
        }
        assert_eq!(c.rejected_full(), 0);
        assert_eq!(m.snapshot().counter(names::RELATEDNESS_CACHE_FULL), 0);
    }

    #[test]
    fn shard_caps_sum_to_the_capacity() {
        for cap in [0usize, 1, 5, 15, 16, 17, 100] {
            let caps = super::shard_caps(cap);
            assert_eq!(caps.len(), SHARDS);
            assert_eq!(caps.iter().sum::<usize>(), cap);
        }
        assert!(super::shard_caps(usize::MAX).iter().all(|&c| c == usize::MAX));
    }

    #[test]
    fn zero_capacity_cache_still_answers() {
        let c = CachedRelatedness::with_metrics_and_capacity(
            Counting { calls: AtomicUsize::new(0) },
            &Metrics::new(),
            0,
        );
        assert_eq!(c.relatedness(EntityId(1), EntityId(2)), 3.0);
        assert_eq!(c.relatedness(EntityId(1), EntityId(2)), 3.0);
        assert!(c.is_empty());
        assert_eq!(c.rejected_full(), 2);
        assert_eq!(c.inner().calls.load(Ordering::Relaxed), 2, "nothing memoized");
    }

    #[test]
    fn advance_generation_drops_entries_only_on_change() {
        let c = CachedRelatedness::new(Counting { calls: AtomicUsize::new(0) });
        assert_eq!(c.generation(), 0);
        c.relatedness(EntityId(1), EntityId(2));
        // Same generation: nothing dropped.
        assert!(!c.advance_generation(0));
        assert_eq!(c.len(), 1);
        // New generation: cache invalidated, tag advanced.
        assert!(c.advance_generation(3));
        assert_eq!(c.generation(), 3);
        assert!(c.is_empty());
        c.relatedness(EntityId(1), EntityId(2));
        assert_eq!(c.inner().calls.load(Ordering::Relaxed), 2, "recomputed");
    }

    #[test]
    fn epoch_swap_yields_fresh_scores_for_promoted_entities() {
        use crate::milne_witten::MilneWitten;
        use ned_kb::{
            DeltaKb, EntityKind, FrozenKb, KbBuilder, KbEpoch, KbHandle, KbMutation,
        };
        use std::sync::Arc;

        // A measure that always reads the handle's *current* epoch, like a
        // serving worker does between requests.
        struct LiveMw {
            handle: Arc<KbHandle>,
        }
        impl Relatedness for LiveMw {
            fn name(&self) -> &'static str {
                "live-mw"
            }
            fn relatedness(&self, a: EntityId, b: EntityId) -> f64 {
                let (_, epoch) = self.handle.current();
                MilneWitten::new(epoch).relatedness(a, b)
            }
        }

        // a and b share two in-linkers out of 5 entities.
        let mut builder = KbBuilder::new();
        let a = builder.add_entity("A", EntityKind::Other);
        let b = builder.add_entity("B", EntityKind::Other);
        let x = builder.add_entity("X", EntityKind::Other);
        let y = builder.add_entity("Y", EntityKind::Other);
        builder.add_entity("C", EntityKind::Other);
        builder.add_link(x, a);
        builder.add_link(x, b);
        builder.add_link(y, a);
        builder.add_link(y, b);
        let base = Arc::new(FrozenKb::freeze(&builder.build()));

        let handle = Arc::new(KbHandle::new(KbEpoch::Frozen(Arc::clone(&base))));
        let cache = CachedRelatedness::new(LiveMw { handle: Arc::clone(&handle) });
        cache.advance_generation(handle.generation());
        let before = cache.relatedness(a, b);

        // Promote an emerging entity that links to a but not b — the
        // in-link sets stop coinciding (and N grows), so MW(a, b) drops
        // below its maximal 1.0.
        let delta = DeltaKb::build(
            Arc::clone(&base),
            vec![
                KbMutation::AddEntity {
                    canonical_name: "Prism (emerging)".into(),
                    kind: EntityKind::Other,
                },
                KbMutation::AddLink { src: "Prism (emerging)".into(), dst: "A".into() },
            ],
        )
        .unwrap();
        let expected = MilneWitten::new(&delta).relatedness(a, b);
        assert_ne!(expected.to_bits(), before.to_bits(), "promotion changes the score");

        handle.swap(KbEpoch::Delta(Arc::new(delta)));
        assert!(cache.advance_generation(handle.generation()), "swap invalidates");
        // Without the generation tag this would return the stale `before`.
        assert_eq!(cache.relatedness(a, b).to_bits(), expected.to_bits());
        assert_eq!(cache.relatedness(b, a).to_bits(), expected.to_bits());
    }

    #[test]
    fn fresh_cache_has_zero_hit_rate() {
        let c = CachedRelatedness::new(Counting { calls: AtomicUsize::new(0) });
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
        assert_eq!(c.inserts(), 0);
        assert_eq!(c.hit_rate(), 0.0);
    }
}
