//! In-link Jaccard relatedness.
//!
//! §2.2.3 notes (citing Ceccarelli et al.) that among single link-based
//! measures, plain Jaccard similarity on the in-link sets often works
//! *better* than Milne–Witten. It is included both as an additional
//! coherence option and as a baseline row for the relatedness experiments.

use ned_kb::{EntityId, KbView};

use crate::traits::Relatedness;

/// Jaccard similarity of in-link sets: `|Ie ∩ If| / |Ie ∪ If|`.
///
/// Generic over the KB representation, like
/// [`MilneWitten`](crate::MilneWitten).
#[derive(Debug, Clone, Copy)]
pub struct InlinkJaccard<K> {
    kb: K,
}

impl<K: KbView> InlinkJaccard<K> {
    /// Creates the measure over `kb`.
    pub fn new(kb: K) -> Self {
        InlinkJaccard { kb }
    }
}

impl<K: KbView> Relatedness for InlinkJaccard<K> {
    fn name(&self) -> &'static str {
        "Jaccard"
    }

    fn relatedness(&self, a: EntityId, b: EntityId) -> f64 {
        let links = self.kb.links();
        let ia = links.inlink_count(a);
        let ib = links.inlink_count(b);
        if ia == 0 || ib == 0 {
            return 0.0;
        }
        let inter = if a == b { ia } else { links.shared_inlink_count(a, b) };
        let union = ia + ib - inter;
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ned_kb::{EntityKind, KbBuilder, KnowledgeBase};

    fn kb() -> (KnowledgeBase, EntityId, EntityId, EntityId) {
        let mut b = KbBuilder::new();
        let x = b.add_entity("X", EntityKind::Other);
        let y = b.add_entity("Y", EntityKind::Other);
        let z = b.add_entity("Z", EntityKind::Other);
        for i in 0..3 {
            let l = b.add_entity(&format!("L{i}"), EntityKind::Other);
            b.add_link(l, x);
            b.add_link(l, y);
        }
        let extra = b.add_entity("Extra", EntityKind::Other);
        b.add_link(extra, y);
        b.add_link(extra, z);
        (b.build(), x, y, z)
    }

    #[test]
    fn jaccard_of_overlapping_inlinks() {
        let (kb, x, y, _) = kb();
        let j = InlinkJaccard::new(&kb);
        // in(x) = {L0,L1,L2}; in(y) = {L0,L1,L2,Extra} → 3/4.
        assert!((j.relatedness(x, y) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn self_similarity_is_one() {
        let (kb, x, ..) = kb();
        let j = InlinkJaccard::new(&kb);
        assert_eq!(j.relatedness(x, x), 1.0);
    }

    #[test]
    fn disjoint_and_linkless() {
        let (kb, x, _, z) = kb();
        let j = InlinkJaccard::new(&kb);
        assert_eq!(j.relatedness(x, z), 0.0);
        let l0 = kb.entity_by_name("L0").unwrap();
        assert_eq!(j.relatedness(x, l0), 0.0); // L0 has no in-links
        assert_eq!(j.relatedness(l0, l0), 0.0);
    }

    #[test]
    fn symmetric_and_bounded() {
        let (kb, x, y, z) = kb();
        let j = InlinkJaccard::new(&kb);
        for &(a, b) in &[(x, y), (x, z), (y, z)] {
            let v = j.relatedness(a, b);
            assert!((0.0..=1.0).contains(&v));
            assert_eq!(v, j.relatedness(b, a));
        }
    }
}
