//! Locality-sensitive hashing by banding over min-hash sketches (§4.4.2).
//!
//! A sketch of length `bands · rows` is split into `bands` contiguous bands
//! of `rows` coordinates; each band is combined into a single bucket key.
//! Two items become candidates if any band maps them to the same bucket.
//! With Jaccard similarity `s`, the candidate probability is
//! `1 − (1 − s^rows)^bands`.

use ned_kb::fx::FxHashMap;

use crate::minhash::mix64;

/// Banding configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Banding {
    /// Number of bands.
    pub bands: usize,
    /// Rows (sketch coordinates) per band.
    pub rows: usize,
}

impl Banding {
    /// Total sketch length required.
    pub fn sketch_len(&self) -> usize {
        self.bands * self.rows
    }

    /// Bucket keys of a sketch: one per band. Following §4.4.2, the values
    /// in a band are combined by summation, losing their order.
    pub fn bucket_keys(&self, sketch: &[u64]) -> Vec<u64> {
        assert_eq!(sketch.len(), self.sketch_len(), "sketch length mismatch");
        sketch
            .chunks_exact(self.rows)
            .enumerate()
            .map(|(band, chunk)| {
                let sum = chunk.iter().fold(0u64, |acc, &v| acc.wrapping_add(v));
                // Mix the band index in so identical sums in different bands
                // do not collide.
                mix64(sum ^ mix64(band as u64 + 1))
            })
            .collect()
    }

    /// Theoretical probability that a pair with Jaccard similarity `s`
    /// becomes an LSH candidate.
    pub fn candidate_probability(&self, s: f64) -> f64 {
        1.0 - (1.0 - s.powi(self.rows as i32)).powi(self.bands as i32)
    }
}

/// A transient LSH table mapping bucket keys to item indexes.
#[derive(Debug, Default)]
pub struct LshTable {
    buckets: FxHashMap<u64, Vec<u32>>,
}

impl LshTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts an item under all its bucket keys.
    pub fn insert(&mut self, item: u32, keys: &[u64]) {
        for &k in keys {
            let bucket = self.buckets.entry(k).or_default();
            if bucket.last() != Some(&item) {
                bucket.push(item);
            }
        }
    }

    /// Number of non-empty buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// All unordered candidate pairs `(i, j)` with `i < j` that share at
    /// least one bucket, deduplicated.
    pub fn candidate_pairs(&self) -> Vec<(u32, u32)> {
        let mut pairs = Vec::new();
        for bucket in self.buckets.values() {
            for (i, &a) in bucket.iter().enumerate() {
                for &b in &bucket[i + 1..] {
                    let pair = if a < b { (a, b) } else { (b, a) };
                    if a != b {
                        pairs.push(pair);
                    }
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minhash::MinHasher;

    #[test]
    fn sketch_len() {
        assert_eq!(Banding { bands: 200, rows: 1 }.sketch_len(), 200);
        assert_eq!(Banding { bands: 1000, rows: 2 }.sketch_len(), 2000);
    }

    #[test]
    fn identical_sketches_share_all_buckets() {
        let banding = Banding { bands: 4, rows: 2 };
        let h = MinHasher::new(banding.sketch_len(), 5);
        let s = h.sketch([1u64, 2, 3]);
        assert_eq!(banding.bucket_keys(&s), banding.bucket_keys(&s));
    }

    #[test]
    fn similar_items_become_candidates() {
        let banding = Banding { bands: 16, rows: 1 };
        let h = MinHasher::new(banding.sketch_len(), 5);
        let mut table = LshTable::new();
        // Items 0 and 1 are near-identical sets; item 2 is disjoint.
        let sets: Vec<Vec<u64>> = vec![
            (0..50).collect(),
            (1..51).collect(),
            (1000..1050).collect(),
        ];
        for (i, set) in sets.iter().enumerate() {
            let sketch = h.sketch(set.iter().copied().map(mix64));
            table.insert(i as u32, &banding.bucket_keys(&sketch));
        }
        let pairs = table.candidate_pairs();
        assert!(pairs.contains(&(0, 1)), "{pairs:?}");
        assert!(!pairs.contains(&(0, 2)), "{pairs:?}");
    }

    #[test]
    fn candidate_pairs_are_unique_and_ordered() {
        let mut table = LshTable::new();
        table.insert(3, &[10, 20]);
        table.insert(1, &[10, 20, 30]);
        table.insert(2, &[30]);
        let pairs = table.candidate_pairs();
        assert_eq!(pairs, vec![(1, 2), (1, 3)]);
    }

    #[test]
    fn candidate_probability_is_monotone() {
        let b = Banding { bands: 10, rows: 2 };
        let p1 = b.candidate_probability(0.2);
        let p2 = b.candidate_probability(0.5);
        let p3 = b.candidate_probability(0.9);
        assert!(p1 < p2 && p2 < p3);
        assert!(p3 > 0.99);
    }

    #[test]
    fn band_index_distinguishes_buckets() {
        // Two sketches that swap band contents must not collide.
        let banding = Banding { bands: 2, rows: 1 };
        let k1 = banding.bucket_keys(&[7, 9]);
        let k2 = banding.bucket_keys(&[9, 7]);
        assert_ne!(k1[0], k2[0]);
        assert_ne!(k1[1], k2[1]);
    }

    #[test]
    #[should_panic(expected = "sketch length mismatch")]
    fn wrong_sketch_length_panics() {
        Banding { bands: 2, rows: 2 }.bucket_keys(&[1, 2, 3]);
    }
}
