//! The two-stage hashing acceleration of KORE (§4.4.2).
//!
//! **Stage 1 (precomputed per knowledge base):** every keyphrase is min-hash
//! sketched over its keywords (4 samples), banded into 2 bands of 2, and each
//! band combined by summation — so each phrase is represented by two
//! phrase-bucket ids, grouping near-duplicate phrases while preserving the
//! notion of partial overlap.
//!
//! **Stage 2 (at query time, for the input entity set):** each entity is the
//! set of its phrase-bucket ids; these sets are min-hash sketched and banded
//! again. Exact KORE is computed only for entity pairs sharing at least one
//! stage-2 bucket; all other pairs are assumed unrelated.
//!
//! Two configurations from §4.4.2:
//! - **KORE-LSH-G** ("good"): 200 bands of size 1 — high recall, moderate
//!   speed-up.
//! - **KORE-LSH-F** ("fast"): 1000 bands of size 2 — higher precision
//!   pruning, order-of-magnitude fewer comparisons.

use ned_kb::fx::{FxHashMap, FxHashSet};
use ned_kb::{EntityId, KbView, PhraseId};

use crate::kore::Kore;
use crate::lsh::{Banding, LshTable};
use crate::minhash::MinHasher;
use crate::traits::Relatedness;

/// Parameters of the two-stage hashing scheme.
#[derive(Debug, Clone, Copy)]
pub struct TwoStageConfig {
    /// Stage-1 banding over the 4-sample phrase sketches.
    pub phrase_banding: Banding,
    /// Stage-2 banding over entity bucket-id sets.
    pub entity_banding: Banding,
    /// Seed for all hash families.
    pub seed: u64,
    /// Display name.
    pub name: &'static str,
}

impl TwoStageConfig {
    /// KORE-LSH-G: recall-oriented (200 bands of size 1).
    pub fn lsh_g() -> Self {
        TwoStageConfig {
            phrase_banding: Banding { bands: 2, rows: 2 },
            entity_banding: Banding { bands: 200, rows: 1 },
            seed: 0x4b4f_5245,
            name: "KORE-LSH-G",
        }
    }

    /// KORE-LSH-F: speed-oriented (1000 bands of size 2).
    pub fn lsh_f() -> Self {
        TwoStageConfig {
            phrase_banding: Banding { bands: 2, rows: 2 },
            entity_banding: Banding { bands: 1000, rows: 2 },
            seed: 0x4b4f_5245,
            name: "KORE-LSH-F",
        }
    }
}

/// KORE with two-stage LSH pruning.
///
/// Both stages' sketches are precomputed at construction time — the thesis
/// keeps the per-entity sketches in main memory ("merely requiring about
/// 2 GBytes" for 3M entities, §4.4.2); only the LSH hashtables are built
/// per input entity set.
pub struct KoreLsh {
    kore: Kore,
    config: TwoStageConfig,
    /// Per entity: precomputed stage-2 bucket keys (one per band), or
    /// `None` for entities without keyphrases.
    entity_keys: Vec<Option<Vec<u64>>>,
}

// Manual Debug: per-entity sketch tables are megabytes of noise.
impl std::fmt::Debug for KoreLsh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KoreLsh")
            .field("config", &self.config)
            .field("entities", &self.entity_keys.len())
            .finish_non_exhaustive()
    }
}

impl KoreLsh {
    /// Precomputes stage-1 phrase buckets and stage-2 entity sketches for
    /// all entities of `kb`. Like [`Kore`], the result owns all of its
    /// precomputation and keeps no reference to `kb`.
    pub fn new<K: KbView>(kb: &K, config: TwoStageConfig) -> Self {
        let phrase_hasher = MinHasher::new(config.phrase_banding.sketch_len(), config.seed);
        let n_phrases = kb.phrase_count();
        let mut phrase_buckets: Vec<Vec<u64>> = Vec::with_capacity(n_phrases);
        for pi in 0..n_phrases {
            let p = PhraseId::from_index(pi);
            let sketch =
                phrase_hasher.sketch(kb.phrase_words(p).iter().map(|w| u64::from(w.0)));
            phrase_buckets.push(config.phrase_banding.bucket_keys(&sketch));
        }
        let entity_hasher =
            MinHasher::new(config.entity_banding.sketch_len(), config.seed ^ 0xa5);
        let entity_keys = kb
            .entity_ids()
            .map(|e| {
                let mut buckets: Vec<u64> = kb
                    .keyphrases(e)
                    .iter()
                    .flat_map(|ep| phrase_buckets[ep.phrase.index()].iter().copied())
                    .collect();
                if buckets.is_empty() {
                    return None;
                }
                buckets.sort_unstable();
                buckets.dedup();
                let sketch = entity_hasher.sketch(buckets.iter().copied());
                Some(config.entity_banding.bucket_keys(&sketch))
            })
            .collect();
        KoreLsh { kore: Kore::new(kb), config, entity_keys }
    }

    /// Display name of the configuration.
    pub fn name(&self) -> &'static str {
        self.config.name
    }

    /// The underlying exact measure.
    pub fn exact(&self) -> &Kore {
        &self.kore
    }

    /// Builds the stage-2 LSH tables for `entities` and returns the set of
    /// unordered candidate pairs (indices into `entities`).
    pub fn candidate_pairs(&self, entities: &[EntityId]) -> Vec<(u32, u32)> {
        let mut table = LshTable::new();
        for (i, &e) in entities.iter().enumerate() {
            if let Some(keys) = &self.entity_keys[e.index()] {
                table.insert(i as u32, keys);
            }
        }
        table.candidate_pairs()
    }

    /// Computes relatedness for an input entity set: exact KORE on LSH
    /// candidate pairs, 0 elsewhere. Returns a scoped measure implementing
    /// [`Relatedness`] plus comparison statistics.
    pub fn scoped(&self, entities: &[EntityId]) -> ScopedKoreLsh<'_> {
        let pairs = self.candidate_pairs(entities);
        let mut allowed: FxHashSet<(EntityId, EntityId)> = FxHashSet::default();
        for (i, j) in pairs {
            let (a, b) = (entities[i as usize], entities[j as usize]);
            allowed.insert(ordered(a, b));
        }
        ScopedKoreLsh { parent: self, allowed }
    }
}

fn ordered(a: EntityId, b: EntityId) -> (EntityId, EntityId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// A [`KoreLsh`] restricted to an input entity set: pairs pruned by LSH
/// score 0 without computing exact KORE.
pub struct ScopedKoreLsh<'a> {
    parent: &'a KoreLsh,
    allowed: FxHashSet<(EntityId, EntityId)>,
}

impl std::fmt::Debug for ScopedKoreLsh<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScopedKoreLsh")
            .field("parent", &self.parent)
            .field("surviving_pairs", &self.allowed.len())
            .finish()
    }
}

impl ScopedKoreLsh<'_> {
    /// Number of pairs that survive LSH pruning (= exact computations).
    pub fn surviving_pairs(&self) -> usize {
        self.allowed.len()
    }

    /// True if the pair survived pruning.
    pub fn is_candidate(&self, a: EntityId, b: EntityId) -> bool {
        self.allowed.contains(&ordered(a, b))
    }
}

impl Relatedness for ScopedKoreLsh<'_> {
    fn name(&self) -> &'static str {
        self.parent.config.name
    }

    fn relatedness(&self, a: EntityId, b: EntityId) -> f64 {
        if a == b || self.allowed.contains(&ordered(a, b)) {
            self.parent.kore.relatedness(a, b)
        } else {
            0.0
        }
    }
}

/// Relatedness of all unordered pairs in `entities` under any measure; the
/// naive all-pairs loop used to report comparison counts (Table 4.4).
pub fn all_pairs_relatedness<M: Relatedness>(
    measure: &M,
    entities: &[EntityId],
) -> FxHashMap<(EntityId, EntityId), f64> {
    let mut out = FxHashMap::default();
    for (i, &a) in entities.iter().enumerate() {
        for &b in &entities[i + 1..] {
            out.insert(ordered(a, b), measure.relatedness(a, b));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ned_kb::{EntityKind, KbBuilder, KnowledgeBase};

    /// Two clusters of entities with heavy intra-cluster phrase sharing.
    fn kb() -> (KnowledgeBase, Vec<EntityId>) {
        let mut b = KbBuilder::new();
        let mut ids = Vec::new();
        for i in 0..4 {
            let e = b.add_entity(&format!("Rock {i}"), EntityKind::Person);
            b.add_keyphrase(e, "hard rock band", 3);
            b.add_keyphrase(e, "electric guitar solo", 2);
            b.add_keyphrase(e, &format!("rock album {i}"), 1);
            ids.push(e);
        }
        for i in 0..4 {
            let e = b.add_entity(&format!("Politics {i}"), EntityKind::Person);
            b.add_keyphrase(e, "foreign trade policy", 3);
            b.add_keyphrase(e, "parliament election campaign", 2);
            b.add_keyphrase(e, &format!("political party {i}"), 1);
            ids.push(e);
        }
        (b.build(), ids)
    }

    #[test]
    fn lsh_g_keeps_intra_cluster_pairs() {
        let (kb, ids) = kb();
        let lsh = KoreLsh::new(&kb, TwoStageConfig::lsh_g());
        let scoped = lsh.scoped(&ids);
        // Same-cluster pairs share identical phrases → must survive.
        assert!(scoped.is_candidate(ids[0], ids[1]));
        assert!(scoped.is_candidate(ids[4], ids[5]));
    }

    #[test]
    fn lsh_prunes_cross_cluster_pairs() {
        let (kb, ids) = kb();
        let lsh = KoreLsh::new(&kb, TwoStageConfig::lsh_f());
        let scoped = lsh.scoped(&ids);
        // Cross-cluster: zero phrase overlap → should be pruned.
        assert!(!scoped.is_candidate(ids[0], ids[5]));
        assert_eq!(scoped.relatedness(ids[0], ids[5]), 0.0);
    }

    #[test]
    fn surviving_pairs_bounded_by_all_pairs() {
        let (kb, ids) = kb();
        for config in [TwoStageConfig::lsh_g(), TwoStageConfig::lsh_f()] {
            let lsh = KoreLsh::new(&kb, config);
            let scoped = lsh.scoped(&ids);
            let all = ids.len() * (ids.len() - 1) / 2;
            assert!(scoped.surviving_pairs() <= all);
        }
    }

    #[test]
    fn scoped_scores_match_exact_on_candidates() {
        let (kb, ids) = kb();
        let lsh = KoreLsh::new(&kb, TwoStageConfig::lsh_g());
        let scoped = lsh.scoped(&ids);
        let exact = lsh.exact();
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                if scoped.is_candidate(a, b) {
                    assert_eq!(scoped.relatedness(a, b), exact.relatedness(a, b));
                }
            }
        }
    }

    #[test]
    fn f_prunes_at_least_as_much_as_g() {
        let (kb, ids) = kb();
        let g = KoreLsh::new(&kb, TwoStageConfig::lsh_g()).scoped(&ids).surviving_pairs();
        let f = KoreLsh::new(&kb, TwoStageConfig::lsh_f()).scoped(&ids).surviving_pairs();
        assert!(f <= g, "F kept {f} pairs, G kept {g}");
    }

    #[test]
    fn all_pairs_helper_counts() {
        let (kb, ids) = kb();
        let kore = Kore::new(&kb);
        let map = all_pairs_relatedness(&kore, &ids[..4]);
        assert_eq!(map.len(), 6);
    }

    #[test]
    fn empty_entity_set() {
        let (kb, _) = kb();
        let lsh = KoreLsh::new(&kb, TwoStageConfig::lsh_g());
        assert!(lsh.candidate_pairs(&[]).is_empty());
    }
}
