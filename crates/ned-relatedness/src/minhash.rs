//! Min-hash sketches (§4.4.2, after Broder et al.).
//!
//! A min-hash sketch of a set approximates Jaccard similarity: the
//! probability that two sets agree on one min-hash coordinate equals their
//! Jaccard coefficient. Hash functions are derived from a seed with the
//! splitmix64 mixer, so sketches are deterministic across runs.

/// A family of `k` min-hash functions.
#[derive(Debug, Clone)]
pub struct MinHasher {
    seeds: Vec<u64>,
}

/// splitmix64 finalizer: a high-quality 64-bit mixing function.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl MinHasher {
    /// Creates `k` hash functions derived deterministically from `seed`.
    pub fn new(k: usize, seed: u64) -> Self {
        let seeds = (0..k as u64).map(|i| mix64(seed ^ mix64(i.wrapping_add(1)))).collect();
        MinHasher { seeds }
    }

    /// Number of hash functions (sketch length).
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// True if the family is empty.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// Computes the sketch of a set of elements. An empty set yields a
    /// sketch of `u64::MAX` values (which never collides with a non-empty
    /// sketch coordinate except by astronomically unlikely accident).
    pub fn sketch(&self, elements: impl IntoIterator<Item = u64> + Clone) -> Vec<u64> {
        let mut out = vec![u64::MAX; self.seeds.len()];
        for x in elements {
            for (slot, &seed) in out.iter_mut().zip(&self.seeds) {
                let h = mix64(x ^ seed);
                if h < *slot {
                    *slot = h;
                }
            }
        }
        out
    }

    /// Estimated Jaccard similarity from two sketches: fraction of agreeing
    /// coordinates.
    pub fn estimate_jaccard(a: &[u64], b: &[u64]) -> f64 {
        assert_eq!(a.len(), b.len(), "sketch lengths must match");
        if a.is_empty() {
            return 0.0;
        }
        let agree = a.iter().zip(b).filter(|(x, y)| x == y).count();
        agree as f64 / a.len() as f64
    }
}

/// Exact Jaccard similarity of two sorted, deduplicated slices (test and
/// calibration helper).
pub fn exact_jaccard(a: &[u64], b: &[u64]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let mut inter = 0usize;
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter as f64 / (a.len() + b.len() - inter) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_is_deterministic() {
        let h = MinHasher::new(16, 42);
        let s1 = h.sketch([1u64, 2, 3]);
        let s2 = h.sketch([3u64, 1, 2]);
        assert_eq!(s1, s2, "order must not matter");
        let h2 = MinHasher::new(16, 42);
        assert_eq!(s1, h2.sketch([1u64, 2, 3]));
    }

    #[test]
    fn different_seeds_give_different_sketches() {
        let a = MinHasher::new(8, 1).sketch([1u64, 2, 3]);
        let b = MinHasher::new(8, 2).sketch([1u64, 2, 3]);
        assert_ne!(a, b);
    }

    #[test]
    fn identical_sets_estimate_one() {
        let h = MinHasher::new(32, 7);
        let s = h.sketch((0u64..20).map(mix64));
        assert_eq!(MinHasher::estimate_jaccard(&s, &s), 1.0);
    }

    #[test]
    fn disjoint_sets_estimate_near_zero() {
        let h = MinHasher::new(64, 7);
        let a = h.sketch((0u64..50).map(mix64));
        let b = h.sketch((1000u64..1050).map(mix64));
        assert!(MinHasher::estimate_jaccard(&a, &b) < 0.1);
    }

    #[test]
    fn estimate_tracks_exact_jaccard() {
        // Statistical test: with 512 hash functions the estimate of a
        // Jaccard-0.5 pair must fall within ±0.12.
        let h = MinHasher::new(512, 99);
        let a: Vec<u64> = (0u64..100).map(mix64).collect();
        let b: Vec<u64> = (50u64..150).map(mix64).collect();
        let (mut sa, mut sb) = (a.clone(), b.clone());
        sa.sort_unstable();
        sb.sort_unstable();
        let exact = exact_jaccard(&sa, &sb);
        let est = MinHasher::estimate_jaccard(
            &h.sketch(a.iter().copied()),
            &h.sketch(b.iter().copied()),
        );
        assert!((est - exact).abs() < 0.12, "exact {exact}, est {est}");
    }

    #[test]
    fn empty_set_sketch() {
        let h = MinHasher::new(4, 3);
        let s = h.sketch(std::iter::empty());
        assert!(s.iter().all(|&v| v == u64::MAX));
    }

    #[test]
    #[should_panic(expected = "sketch lengths must match")]
    fn mismatched_sketch_lengths_panic() {
        MinHasher::estimate_jaccard(&[1], &[1, 2]);
    }

    #[test]
    fn exact_jaccard_basics() {
        assert_eq!(exact_jaccard(&[1, 2, 3], &[2, 3, 4]), 0.5);
        assert_eq!(exact_jaccard(&[], &[]), 0.0);
        assert_eq!(exact_jaccard(&[1], &[2]), 0.0);
        assert_eq!(exact_jaccard(&[1, 2], &[1, 2]), 1.0);
    }
}
