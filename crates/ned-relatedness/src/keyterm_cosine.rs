//! Keyterm cosine relatedness (Eq. 4.2).
//!
//! The link-free baselines of §4.3.2: entities are cast into weighted
//! vectors of keyterms and compared by cosine similarity.
//!
//! - **KPCS** (keyphrase cosine): one dimension per keyphrase, weighted by
//!   the entity-specific µ-MI weight (Eq. 4.1).
//! - **KWCS** (keyword cosine): one dimension per keyword derived by
//!   tokenizing the keyphrases; per §4.3.2 the word weight is the word's
//!   global IDF multiplied by the average µ weight of the phrases the word
//!   was taken from.

use ned_kb::fx::FxHashMap;
use ned_kb::{EntityId, KbView, PhraseId, WordId};

use crate::traits::Relatedness;

/// A sparse unit-normalizable vector: sorted (dimension, weight) pairs.
#[derive(Debug, Clone, Default)]
struct SparseVec {
    entries: Vec<(u32, f64)>,
    norm: f64,
}

impl SparseVec {
    fn from_map(map: FxHashMap<u32, f64>) -> Self {
        let mut entries: Vec<(u32, f64)> = map.into_iter().collect();
        entries.sort_unstable_by_key(|&(d, _)| d);
        let norm = entries.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
        SparseVec { entries, norm }
    }

    fn cosine(&self, other: &Self) -> f64 {
        if self.norm == 0.0 || other.norm == 0.0 {
            return 0.0;
        }
        let mut dot = 0.0;
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            match self.entries[i].0.cmp(&other.entries[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    dot += self.entries[i].1 * other.entries[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        (dot / (self.norm * other.norm)).clamp(0.0, 1.0)
    }
}

/// Keyphrase cosine similarity (KPCS): dimensions are phrase ids, weights
/// are µ-MI.
#[derive(Debug)]
pub struct KeyphraseCosine {
    vectors: Vec<SparseVec>,
}

impl KeyphraseCosine {
    /// Precomputes the phrase vector of every entity in `kb`.
    pub fn new<K: KbView>(kb: &K) -> Self {
        let weights = kb.weights();
        let vectors = kb
            .entity_ids()
            .map(|e| {
                let map: FxHashMap<u32, f64> = weights
                    .phrase_mi_row(e)
                    .iter()
                    .filter(|&&(_, w)| w > 0.0)
                    .map(|&(PhraseId(p), w)| (p, w))
                    .collect();
                SparseVec::from_map(map)
            })
            .collect();
        KeyphraseCosine { vectors }
    }
}

impl Relatedness for KeyphraseCosine {
    fn name(&self) -> &'static str {
        "KPCS"
    }

    fn relatedness(&self, a: EntityId, b: EntityId) -> f64 {
        self.vectors[a.index()].cosine(&self.vectors[b.index()])
    }
}

/// Keyword cosine similarity (KWCS): dimensions are word ids, weights are
/// `idf(w) · mean µ of the phrases containing w`.
#[derive(Debug)]
pub struct KeywordCosine {
    vectors: Vec<SparseVec>,
}

impl KeywordCosine {
    /// Precomputes the keyword vector of every entity in `kb`.
    pub fn new<K: KbView>(kb: &K) -> Self {
        let weights = kb.weights();
        let vectors = kb
            .entity_ids()
            .map(|e| {
                // Accumulate (Σ phrase µ, phrase count) per word.
                let mut acc: FxHashMap<u32, (f64, u32)> = FxHashMap::default();
                for &(p, mu) in weights.phrase_mi_row(e) {
                    for &WordId(w) in kb.phrase_words(p) {
                        let slot = acc.entry(w).or_insert((0.0, 0));
                        slot.0 += mu;
                        slot.1 += 1;
                    }
                }
                let map: FxHashMap<u32, f64> = acc
                    .into_iter()
                    .filter_map(|(w, (mu_sum, n))| {
                        let mean_mu = mu_sum / f64::from(n);
                        let weight = kb.weights().word_idf(WordId(w)) * mean_mu;
                        (weight > 0.0).then_some((w, weight))
                    })
                    .collect();
                SparseVec::from_map(map)
            })
            .collect();
        KeywordCosine { vectors }
    }
}

impl Relatedness for KeywordCosine {
    fn name(&self) -> &'static str {
        "KWCS"
    }

    fn relatedness(&self, a: EntityId, b: EntityId) -> f64 {
        self.vectors[a.index()].cosine(&self.vectors[b.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ned_kb::{EntityKind, KbBuilder, KnowledgeBase};

    /// Three musicians sharing phrases, one unrelated politician.
    fn kb() -> (KnowledgeBase, Vec<EntityId>) {
        let mut b = KbBuilder::new();
        let page = b.add_entity("Jimmy Page", EntityKind::Person);
        let plant = b.add_entity("Robert Plant", EntityKind::Person);
        let dylan = b.add_entity("Bob Dylan", EntityKind::Person);
        let pol = b.add_entity("Some Politician", EntityKind::Person);
        b.add_keyphrase(page, "hard rock", 3);
        b.add_keyphrase(page, "Led Zeppelin", 5);
        b.add_keyphrase(page, "electric guitar", 2);
        b.add_keyphrase(plant, "hard rock", 2);
        b.add_keyphrase(plant, "Led Zeppelin", 4);
        b.add_keyphrase(plant, "rock singer", 3);
        b.add_keyphrase(dylan, "folk singer", 4);
        b.add_keyphrase(dylan, "acoustic guitar", 2);
        b.add_keyphrase(pol, "foreign policy", 4);
        b.add_keyphrase(pol, "trade agreement", 3);
        (b.build(), vec![page, plant, dylan, pol])
    }

    #[test]
    fn kpcs_ranks_shared_phrases_higher() {
        let (kb, e) = kb();
        let m = KeyphraseCosine::new(&kb);
        let page_plant = m.relatedness(e[0], e[1]);
        let page_pol = m.relatedness(e[0], e[3]);
        assert!(page_plant > page_pol, "{page_plant} vs {page_pol}");
        assert_eq!(page_pol, 0.0);
    }

    #[test]
    fn kwcs_catches_partial_word_overlap() {
        let (kb, e) = kb();
        let kpcs = KeyphraseCosine::new(&kb);
        let kwcs = KeywordCosine::new(&kb);
        // Page and Dylan share no phrase but share the word "guitar".
        assert_eq!(kpcs.relatedness(e[0], e[2]), 0.0);
        assert!(kwcs.relatedness(e[0], e[2]) > 0.0);
    }

    #[test]
    fn cosine_is_symmetric_and_bounded() {
        let (kb, e) = kb();
        for m in [&KeyphraseCosine::new(&kb) as &dyn Relatedness, &KeywordCosine::new(&kb)] {
            for &a in &e {
                for &b in &e {
                    let v = m.relatedness(a, b);
                    assert!((0.0..=1.0).contains(&v));
                    assert!((v - m.relatedness(b, a)).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn self_similarity_is_one() {
        let (kb, e) = kb();
        let m = KeyphraseCosine::new(&kb);
        for &a in &e {
            assert!((m.relatedness(a, a) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn entity_without_phrases_has_zero_vector() {
        let mut b = KbBuilder::new();
        let x = b.add_entity("X", EntityKind::Other);
        let y = b.add_entity("Y", EntityKind::Other);
        b.add_keyphrase(y, "some phrase", 1);
        let kb = b.build();
        let m = KeyphraseCosine::new(&kb);
        assert_eq!(m.relatedness(x, y), 0.0);
        assert_eq!(m.relatedness(x, x), 0.0);
    }
}
