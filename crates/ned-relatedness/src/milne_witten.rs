//! The Milne–Witten in-link overlap measure (Eq. 3.7).
//!
//! `MW(e, f) = 1 − (log max(|Ie|,|If|) − log |Ie ∩ If|) /
//!              (log N − log min(|Ie|,|If|))`
//! clamped at 0, where `Ie` is the in-link set of `e` and `N` the number of
//! entities. The measure depends entirely on the richness of the link graph,
//! which is exactly the limitation KORE addresses for long-tail entities.

use ned_kb::{EntityId, KbView};

use crate::traits::Relatedness;

/// Milne–Witten relatedness over a knowledge base's link graph.
///
/// Generic over the KB representation: pass `&KnowledgeBase` for the legacy
/// borrowed style or (a clone of) an `Arc<FrozenKb>` for the shared-handle
/// service style.
#[derive(Debug, Clone, Copy)]
pub struct MilneWitten<K> {
    kb: K,
}

impl<K: KbView> MilneWitten<K> {
    /// Creates the measure over `kb`.
    pub fn new(kb: K) -> Self {
        MilneWitten { kb }
    }
}

impl<K: KbView> Relatedness for MilneWitten<K> {
    fn name(&self) -> &'static str {
        "MW"
    }

    fn relatedness(&self, a: EntityId, b: EntityId) -> f64 {
        let n = self.kb.entity_count();
        let links = self.kb.links();
        let ia = links.inlink_count(a);
        let ib = links.inlink_count(b);
        if ia == 0 || ib == 0 || n < 2 {
            return 0.0;
        }
        let shared = if a == b { ia } else { links.shared_inlink_count(a, b) };
        if shared == 0 {
            return 0.0;
        }
        let max = ia.max(ib) as f64;
        let min = ia.min(ib) as f64;
        let n = n as f64;
        let denom = n.ln() - min.ln();
        if denom <= 0.0 {
            // min(|Ie|,|If|) == N: every entity links to both, which makes
            // the measure degenerate; treat as maximally related.
            return 1.0;
        }
        let v = 1.0 - (max.ln() - (shared as f64).ln()) / denom;
        v.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ned_kb::{EntityKind, KbBuilder, KnowledgeBase};

    /// 6 entities: `a` and `b` share two in-linkers, `c` shares none.
    fn kb() -> (KnowledgeBase, EntityId, EntityId, EntityId) {
        let mut builder = KbBuilder::new();
        let a = builder.add_entity("A", EntityKind::Other);
        let b = builder.add_entity("B", EntityKind::Other);
        let c = builder.add_entity("C", EntityKind::Other);
        let x = builder.add_entity("X", EntityKind::Other);
        let y = builder.add_entity("Y", EntityKind::Other);
        let z = builder.add_entity("Z", EntityKind::Other);
        builder.add_link(x, a);
        builder.add_link(x, b);
        builder.add_link(y, a);
        builder.add_link(y, b);
        builder.add_link(z, a);
        builder.add_link(z, c);
        (builder.build(), a, b, c)
    }

    #[test]
    fn shared_inlinkers_give_positive_relatedness() {
        let (kb, a, b, _) = kb();
        let mw = MilneWitten::new(&kb);
        assert!(mw.relatedness(a, b) > 0.0);
    }

    #[test]
    fn disjoint_inlink_sets_give_zero() {
        let (kb, _, b, c) = kb();
        let mw = MilneWitten::new(&kb);
        assert_eq!(mw.relatedness(b, c), 0.0);
    }

    #[test]
    fn symmetric() {
        let (kb, a, b, c) = kb();
        let mw = MilneWitten::new(&kb);
        assert_eq!(mw.relatedness(a, b), mw.relatedness(b, a));
        assert_eq!(mw.relatedness(a, c), mw.relatedness(c, a));
    }

    #[test]
    fn self_relatedness_is_one_for_linked_entities() {
        let (kb, a, _, _) = kb();
        let mw = MilneWitten::new(&kb);
        assert!((mw.relatedness(a, a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linkless_entity_has_zero_relatedness() {
        let (kb, a, _, _) = kb();
        let mw = MilneWitten::new(&kb);
        // X has no in-links.
        let x = kb.entity_by_name("X").unwrap();
        assert_eq!(mw.relatedness(a, x), 0.0);
        assert_eq!(mw.relatedness(x, x), 0.0);
    }

    #[test]
    fn bounded_by_unit_interval() {
        let (kb, a, b, c) = kb();
        let mw = MilneWitten::new(&kb);
        for &(x, y) in &[(a, b), (a, c), (b, c), (a, a)] {
            let v = mw.relatedness(x, y);
            assert!((0.0..=1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn more_overlap_means_higher_relatedness() {
        // a–b share 2 in-linkers, a–c share 1.
        let (kb, a, b, c) = kb();
        let mw = MilneWitten::new(&kb);
        assert!(mw.relatedness(a, b) > mw.relatedness(a, c));
    }
}
