//! Counter and gauge plumbing for the pair cache.
//!
//! The shard lock is never held across the metrics registry: lookups
//! record what happened in a [`LookupEvents`](super::LookupEvents) while
//! the guard is live and the counters are bumped here after it drops.
//! Gauges follow the evaluation-counter precedent: they are only written
//! by an explicit [`publish_gauges`](super::PairCache::publish_gauges)
//! call, so concurrent lookups cannot interleave gauge stores and
//! snapshots stay a pure function of the workload.

use ned_obs::{names, Counter, Gauge, Metrics};

use super::LookupEvents;

/// The cache's counters, registered eagerly so every snapshot carries the
/// full set (zeros included) regardless of traffic.
#[derive(Debug)]
pub(crate) struct CacheCounters {
    pub hits: Counter,
    pub misses: Counter,
    pub inserts: Counter,
    pub admit_rejected: Counter,
    pub evictions: Counter,
    pub stale_discards: Counter,
}

impl CacheCounters {
    pub fn new(metrics: &Metrics) -> Self {
        CacheCounters {
            hits: metrics.counter(names::RELATEDNESS_CACHE_HITS),
            misses: metrics.counter(names::RELATEDNESS_CACHE_MISSES),
            inserts: metrics.counter(names::RELATEDNESS_CACHE_INSERTS),
            admit_rejected: metrics.counter(names::RELATEDNESS_CACHE_ADMIT_REJECTED),
            evictions: metrics.counter(names::RELATEDNESS_CACHE_EVICTIONS),
            stale_discards: metrics.counter(names::RELATEDNESS_CACHE_STALE_DISCARDS),
        }
    }

    /// Applies one completed lookup's events. Exactly one of hit/miss is
    /// counted per completed lookup, and every miss lands in exactly one
    /// of insert / admit-reject / stale-discard — the conservation laws
    /// the model harness and `cache_check` re-verify.
    pub fn apply(&self, events: &LookupEvents) {
        if events.hit {
            self.hits.inc();
        } else if events.inserted || events.admit_rejected || events.stale_discarded {
            self.misses.inc();
        }
        if events.inserted {
            self.inserts.inc();
        }
        if events.admit_rejected {
            self.admit_rejected.inc();
        }
        if events.stale_discarded {
            self.stale_discards.inc();
        }
        if !events.evicted.is_empty() {
            self.evictions.add(events.evicted.len() as u64);
        }
    }
}

/// Byte/occupancy gauges, written only by `publish_gauges`.
#[derive(Debug)]
pub(crate) struct CacheGauges {
    pub bytes: Gauge,
    pub bytes_peak: Gauge,
    pub entries: Gauge,
}

impl CacheGauges {
    pub fn new(metrics: &Metrics) -> Self {
        CacheGauges {
            bytes: metrics.gauge(names::RELATEDNESS_CACHE_BYTES),
            bytes_peak: metrics.gauge(names::RELATEDNESS_CACHE_BYTES_PEAK),
            entries: metrics.gauge(names::RELATEDNESS_CACHE_ENTRIES),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ned_kb::EntityId;

    #[test]
    fn apply_counts_each_event_once() {
        let m = Metrics::new();
        let c = CacheCounters::new(&m);
        c.apply(&LookupEvents { hit: true, ..LookupEvents::default() });
        c.apply(&LookupEvents { inserted: true, ..LookupEvents::default() });
        c.apply(&LookupEvents {
            admit_rejected: true,
            evicted: vec![(EntityId(1), EntityId(2)), (EntityId(3), EntityId(4))],
            ..LookupEvents::default()
        });
        c.apply(&LookupEvents { stale_discarded: true, ..LookupEvents::default() });
        let snap = m.snapshot();
        assert_eq!(snap.counter(names::RELATEDNESS_CACHE_HITS), 1);
        assert_eq!(snap.counter(names::RELATEDNESS_CACHE_MISSES), 3);
        assert_eq!(snap.counter(names::RELATEDNESS_CACHE_INSERTS), 1);
        assert_eq!(snap.counter(names::RELATEDNESS_CACHE_ADMIT_REJECTED), 1);
        assert_eq!(snap.counter(names::RELATEDNESS_CACHE_EVICTIONS), 2);
        assert_eq!(snap.counter(names::RELATEDNESS_CACHE_STALE_DISCARDS), 1);
    }

    #[test]
    fn aborted_lookups_count_nothing() {
        // A lookup whose compute panicked never reaches its second visit:
        // the default (all-false) events must leave every counter alone.
        let m = Metrics::new();
        let c = CacheCounters::new(&m);
        c.apply(&LookupEvents::default());
        let snap = m.snapshot();
        assert_eq!(snap.counter(names::RELATEDNESS_CACHE_HITS), 0);
        assert_eq!(snap.counter(names::RELATEDNESS_CACHE_MISSES), 0);
    }
}
