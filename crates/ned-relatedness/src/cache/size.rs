//! Byte accounting for the bounded pair cache.
//!
//! The cache charges a flat [`ENTRY_BYTES`] per memoized pair rather than
//! measuring the allocator: the entry layout is fixed (8-byte key pair,
//! 8-byte score, hash-table slot, recency node, frequency count), so a
//! conservative constant keeps the accounting exact, deterministic, and
//! free of allocator introspection. The configured cap is split across
//! shards up front; each shard enforces its slice under its own lock, so
//! the global bound `sum(shard bytes) <= cap` holds at every observation
//! point without any cross-shard coordination.

/// Bytes charged per cached pair: 16 (canonical `(EntityId, EntityId)`
/// key) + 8 (`f64` score) + ~24 amortized hash-table slot overhead + ~40
/// policy metadata (recency-order node plus last-access map entry and a
/// frequency-sketch count), rounded up to a power-of-two-friendly 96.
pub const ENTRY_BYTES: u64 = 96;

/// Splits a global byte cap into per-shard caps whose sum is exactly the
/// cap. The split is quantized in whole entries (earlier shards absorb the
/// remainder entries) so a small cap still yields usable shards — a naive
/// byte split of, say, 5 entries' worth would hand every shard a sub-entry
/// sliver and cache nothing. Sub-entry remainder bytes ride on shard 0,
/// keeping the exact-sum invariant without changing any shard's entry
/// capacity.
pub(crate) fn shard_byte_caps(max_bytes: u64, shards: usize) -> Vec<u64> {
    let n = shards as u64;
    let entries = max_bytes / ENTRY_BYTES;
    let base = entries / n;
    let rem_entries = entries % n;
    let mut caps: Vec<u64> =
        (0..n).map(|i| (base + u64::from(i < rem_entries)) * ENTRY_BYTES).collect();
    if let Some(first) = caps.first_mut() {
        *first += max_bytes - entries * ENTRY_BYTES;
    }
    caps
}

/// How many whole entries fit under `cap_bytes`.
pub(crate) fn entries_under(cap_bytes: u64) -> u64 {
    cap_bytes / ENTRY_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_byte_caps_sum_to_the_cap() {
        for cap in [0u64, 1, 95, 96, 97, 16 * 96, 16 * 96 + 7, 1 << 20] {
            let caps = shard_byte_caps(cap, 16);
            assert_eq!(caps.len(), 16);
            assert_eq!(caps.iter().sum::<u64>(), cap);
        }
    }

    #[test]
    fn shard_byte_caps_quantize_whole_entries_to_early_shards() {
        // 5 entries' worth: shards 0-4 get one entry each, the rest none —
        // a plain byte split would give every shard a useless 30 bytes.
        let caps = shard_byte_caps(5 * ENTRY_BYTES, 16);
        let entry_caps: Vec<u64> = caps.iter().map(|&c| entries_under(c)).collect();
        assert_eq!(entry_caps, vec![1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(entry_caps.iter().sum::<u64>(), 5);
    }

    #[test]
    fn shard_byte_caps_are_monotone_in_the_global_cap() {
        // Nested global caps give nested per-shard caps — the property the
        // hit-rate-vs-cap monotonicity of per-shard LRU rests on.
        let small = shard_byte_caps(10_000, 16);
        let large = shard_byte_caps(20_000, 16);
        for (s, l) in small.iter().zip(&large) {
            assert!(s <= l);
        }
    }

    #[test]
    fn entries_under_rounds_down() {
        assert_eq!(entries_under(0), 0);
        assert_eq!(entries_under(ENTRY_BYTES - 1), 0);
        assert_eq!(entries_under(ENTRY_BYTES), 1);
        assert_eq!(entries_under(10 * ENTRY_BYTES + 95), 10);
    }
}
