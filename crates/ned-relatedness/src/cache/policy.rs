//! Eviction and admission policies for the bounded pair cache.
//!
//! Determinism is the contract every policy must honour: all state is
//! per-shard, recency is the shard's logical access index (a counter that
//! advances once per completed access — never an ambient wall clock; the
//! only `ned_obs::Clock` the cache could tolerate is the frozen null
//! clock, so it takes none at all), and victim selection totally orders
//! candidates by `(last-access index, key)`. Access indexes are unique
//! within a shard, but the explicit key tie-break makes the order total
//! even for states that share an index (segmented-LRU demotion re-files an
//! entry under an index another segment may reuse), so eviction order is a
//! pure function of the shard's access sub-sequence.

use std::collections::{BTreeMap, BTreeSet};

use ned_kb::EntityId;

/// Canonical `(min, max)` entity pair — the cache's key type.
pub type PairKey = (EntityId, EntityId);

/// Which eviction/admission policy a bounded cache runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Plain least-recently-used: evict the coldest pair, admit everything.
    Lru,
    /// Segmented LRU: new pairs enter a probation segment and are promoted
    /// to a protected segment on their first hit, so a burst of one-shot
    /// pairs churns probation without flushing the proven-hot set.
    SegmentedLru,
    /// Segmented LRU behind a frequency-admission gate ("TinyLFU-lite"):
    /// a candidate only displaces the victim when its estimated access
    /// frequency is strictly higher, so one-shot scan pairs cannot evict
    /// hot pairs at all. The default for bounded caches.
    #[default]
    TinyLfuSlru,
}

impl EvictionPolicy {
    /// Stable label used in benchmark reports and `cache_check` rows.
    pub fn label(self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::SegmentedLru => "slru",
            EvictionPolicy::TinyLfuSlru => "tinylfu_slru",
        }
    }
}

/// Per-shard policy state behind the bounded cache.
///
/// The shard calls `on_hit`/`on_insert` with its logical access index,
/// `on_candidate` once per miss (before admission, so frequency sketches
/// see rejected candidates too), and the `victim`/`admits`/`on_evict`
/// trio while making room. Implementations must keep victim selection a
/// pure function of the calls received — no randomness, no wall time, no
/// global state.
pub trait PolicyShard: Send + Sync + std::fmt::Debug {
    /// A cached pair was served at access index `at`.
    fn on_hit(&mut self, key: PairKey, at: u64);
    /// A freshly computed pair was admitted at access index `at`.
    fn on_insert(&mut self, key: PairKey, at: u64);
    /// A miss on `key` is about to seek admission (frequency bookkeeping).
    fn on_candidate(&mut self, key: PairKey);
    /// Should `candidate` displace `victim`? Called before each eviction.
    fn admits(&self, candidate: PairKey, victim: PairKey) -> bool;
    /// The pair that would be evicted next, under the policy's total
    /// `(last-access index, key)` order. `None` when nothing is resident.
    fn victim(&self) -> Option<PairKey>;
    /// `key` was evicted; drop it from the policy's books.
    fn on_evict(&mut self, key: PairKey);
    /// Wholesale invalidation (generation advance / `clear`).
    fn clear(&mut self);
}

/// Protected-segment capacity for a segmented-LRU shard: 4/5 of the entry
/// budget (at least one slot), leaving 1/5 as probation churn space.
pub fn protected_cap_for(entry_cap: u64) -> u64 {
    (entry_cap.saturating_mul(4) / 5).max(1)
}

/// Frequency-sketch aging window for a TinyLFU-gated shard: counts halve
/// after this many recorded samples, so stale popularity decays and
/// previously rejected pairs can eventually win admission.
pub fn sketch_window_for(entry_cap: u64) -> u64 {
    entry_cap.saturating_mul(8).max(64)
}

/// Builds the policy state for one shard with an `entry_cap`-entry budget.
pub(crate) fn build_policy(policy: EvictionPolicy, entry_cap: u64) -> Box<dyn PolicyShard> {
    match policy {
        EvictionPolicy::Lru => Box::new(LruShard::default()),
        EvictionPolicy::SegmentedLru => Box::new(SlruShard::new(entry_cap)),
        EvictionPolicy::TinyLfuSlru => {
            Box::new(FrequencyGate::new(SlruShard::new(entry_cap), sketch_window_for(entry_cap)))
        }
    }
}

/// One recency-ordered segment: a `(last-access index, key)` order plus
/// the per-key index needed to re-file on touch. Both sides are BTrees so
/// iteration order is the eviction order — nothing hash-ordered escapes.
#[derive(Debug, Default)]
struct Segment {
    last: BTreeMap<PairKey, u64>,
    order: BTreeSet<(u64, PairKey)>,
}

impl Segment {
    fn touch(&mut self, key: PairKey, at: u64) {
        if let Some(prev) = self.last.insert(key, at) {
            self.order.remove(&(prev, key));
        }
        self.order.insert((at, key));
    }

    fn remove(&mut self, key: PairKey) -> Option<u64> {
        let at = self.last.remove(&key)?;
        self.order.remove(&(at, key));
        Some(at)
    }

    fn contains(&self, key: PairKey) -> bool {
        self.last.contains_key(&key)
    }

    fn coldest(&self) -> Option<PairKey> {
        self.order.first().map(|&(_, key)| key)
    }

    fn len(&self) -> u64 {
        self.last.len() as u64
    }

    fn clear(&mut self) {
        self.last.clear();
        self.order.clear();
    }
}

/// Plain least-recently-used policy: one segment, admit everything.
#[derive(Debug, Default)]
pub struct LruShard {
    seg: Segment,
}

impl PolicyShard for LruShard {
    fn on_hit(&mut self, key: PairKey, at: u64) {
        self.seg.touch(key, at);
    }

    fn on_insert(&mut self, key: PairKey, at: u64) {
        self.seg.touch(key, at);
    }

    fn on_candidate(&mut self, _key: PairKey) {}

    fn admits(&self, _candidate: PairKey, _victim: PairKey) -> bool {
        true
    }

    fn victim(&self) -> Option<PairKey> {
        self.seg.coldest()
    }

    fn on_evict(&mut self, key: PairKey) {
        self.seg.remove(key);
    }

    fn clear(&mut self) {
        self.seg.clear();
    }
}

/// Segmented LRU: inserts land in probation; a hit promotes to protected;
/// protected overflow demotes its coldest entry back to probation *keeping
/// its last-access index* (so a demoted entry competes on the recency it
/// actually earned). Victims come from probation first, then protected.
#[derive(Debug)]
pub struct SlruShard {
    probation: Segment,
    protected: Segment,
    protected_cap: u64,
}

impl SlruShard {
    /// Policy state for a shard holding at most `entry_cap` entries.
    pub fn new(entry_cap: u64) -> Self {
        SlruShard {
            probation: Segment::default(),
            protected: Segment::default(),
            protected_cap: protected_cap_for(entry_cap),
        }
    }
}

impl PolicyShard for SlruShard {
    fn on_hit(&mut self, key: PairKey, at: u64) {
        if self.probation.remove(key).is_some() {
            self.protected.touch(key, at);
            if self.protected.len() > self.protected_cap {
                if let Some(demoted) = self.protected.coldest() {
                    if let Some(idx) = self.protected.remove(demoted) {
                        self.probation.touch(demoted, idx);
                    }
                }
            }
        } else if self.protected.contains(key) {
            self.protected.touch(key, at);
        } else {
            // Unknown key (shouldn't happen): file it like a fresh insert.
            self.probation.touch(key, at);
        }
    }

    fn on_insert(&mut self, key: PairKey, at: u64) {
        self.probation.touch(key, at);
    }

    fn on_candidate(&mut self, _key: PairKey) {}

    fn admits(&self, _candidate: PairKey, _victim: PairKey) -> bool {
        true
    }

    fn victim(&self) -> Option<PairKey> {
        self.probation.coldest().or_else(|| self.protected.coldest())
    }

    fn on_evict(&mut self, key: PairKey) {
        if self.probation.remove(key).is_none() {
            self.protected.remove(key);
        }
    }

    fn clear(&mut self) {
        self.probation.clear();
        self.protected.clear();
    }
}

/// "TinyLFU-lite" admission gate over an inner policy: an exact per-shard
/// frequency count (BTree-keyed, so nothing depends on hash order) with
/// periodic halving instead of a probabilistic sketch. A candidate only
/// displaces the victim when its estimated frequency is *strictly* higher
/// — a first-seen scan pair (estimate 1) never evicts a pair that has been
/// touched since the last aging pass.
#[derive(Debug)]
pub struct FrequencyGate<P> {
    inner: P,
    counts: BTreeMap<PairKey, u32>,
    samples: u64,
    window: u64,
}

impl<P> FrequencyGate<P> {
    /// Gates `inner` with a frequency sketch aged every `window` samples.
    pub fn new(inner: P, window: u64) -> Self {
        FrequencyGate { inner, counts: BTreeMap::new(), samples: 0, window: window.max(1) }
    }

    fn record(&mut self, key: PairKey) {
        let slot = self.counts.entry(key).or_insert(0);
        *slot = slot.saturating_add(1);
        self.samples += 1;
        if self.samples >= self.window {
            self.age();
        }
    }

    /// Halves every count and drops the zeros. Halving each entry is
    /// order-independent, so the aged sketch is a pure function of the
    /// recorded multiset.
    fn age(&mut self) {
        self.counts = self
            .counts
            .iter()
            .filter_map(|(&key, &count)| {
                let halved = count / 2;
                (halved > 0).then_some((key, halved))
            })
            .collect();
        self.samples = 0;
    }

    fn estimate(&self, key: PairKey) -> u32 {
        self.counts.get(&key).copied().unwrap_or(0)
    }
}

impl<P: PolicyShard> PolicyShard for FrequencyGate<P> {
    fn on_hit(&mut self, key: PairKey, at: u64) {
        self.record(key);
        self.inner.on_hit(key, at);
    }

    fn on_insert(&mut self, key: PairKey, at: u64) {
        // The candidate was already recorded by `on_candidate`.
        self.inner.on_insert(key, at);
    }

    fn on_candidate(&mut self, key: PairKey) {
        self.record(key);
    }

    fn admits(&self, candidate: PairKey, victim: PairKey) -> bool {
        self.estimate(candidate) > self.estimate(victim)
    }

    fn victim(&self) -> Option<PairKey> {
        self.inner.victim()
    }

    fn on_evict(&mut self, key: PairKey) {
        // Frequency history survives the eviction: that is the point of
        // the gate — a frequently seen pair re-admits quickly.
        self.inner.on_evict(key);
    }

    fn clear(&mut self) {
        // Generation advances change what entity ids mean, so the sketch
        // must go with the entries.
        self.inner.clear();
        self.counts.clear();
        self.samples = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(a: u32, b: u32) -> PairKey {
        (EntityId(a), EntityId(b))
    }

    #[test]
    fn lru_evicts_coldest_with_key_tiebreak() {
        let mut p = LruShard::default();
        p.on_insert(k(1, 2), 1);
        p.on_insert(k(3, 4), 2);
        p.on_insert(k(5, 6), 3);
        assert_eq!(p.victim(), Some(k(1, 2)));
        p.on_hit(k(1, 2), 4);
        assert_eq!(p.victim(), Some(k(3, 4)));
        p.on_evict(k(3, 4));
        assert_eq!(p.victim(), Some(k(5, 6)));
    }

    #[test]
    fn slru_protects_promoted_entries() {
        // Budget 5 -> protected cap 4.
        let mut p = SlruShard::new(5);
        p.on_insert(k(1, 1), 1); // probation
        p.on_hit(k(1, 1), 2); // promoted
        p.on_insert(k(2, 2), 3); // probation
        // Probation is victimized before the protected (older) entry.
        assert_eq!(p.victim(), Some(k(2, 2)));
        p.on_evict(k(2, 2));
        // Only the protected entry remains; it is the victim of last resort.
        assert_eq!(p.victim(), Some(k(1, 1)));
    }

    #[test]
    fn slru_demotion_keeps_the_earned_index() {
        let mut p = SlruShard::new(1); // protected cap 1
        p.on_insert(k(1, 1), 1);
        p.on_hit(k(1, 1), 2); // protected = {1}
        p.on_insert(k(2, 2), 3);
        p.on_hit(k(2, 2), 4); // promotes 2, demotes 1 back to probation @2
        // Demoted entry is colder than nothing else in probation; it goes
        // first even though entry 2 was inserted later.
        assert_eq!(p.victim(), Some(k(1, 1)));
    }

    #[test]
    fn frequency_gate_blocks_one_shot_candidates() {
        let mut p = FrequencyGate::new(LruShard::default(), 1024);
        p.on_candidate(k(1, 1));
        p.on_insert(k(1, 1), 1);
        p.on_hit(k(1, 1), 2); // freq(1,1) = 2
        p.on_candidate(k(9, 9)); // freq(9,9) = 1
        assert!(!p.admits(k(9, 9), k(1, 1)), "a scan pair must not evict a hot pair");
        p.on_candidate(k(9, 9));
        p.on_candidate(k(9, 9)); // freq(9,9) = 3
        assert!(p.admits(k(9, 9), k(1, 1)));
    }

    #[test]
    fn frequency_gate_ages_deterministically() {
        let mut p = FrequencyGate::new(LruShard::default(), 4);
        for _ in 0..3 {
            p.on_candidate(k(1, 1));
        }
        assert_eq!(p.estimate(k(1, 1)), 3);
        p.on_candidate(k(2, 2)); // 4th sample triggers halving
        assert_eq!(p.estimate(k(1, 1)), 1);
        assert_eq!(p.estimate(k(2, 2)), 0, "odd counts round down to zero and drop");
        assert_eq!(p.samples, 0);
    }

    #[test]
    fn clear_resets_the_sketch_too() {
        let mut p = FrequencyGate::new(SlruShard::new(4), 1024);
        p.on_candidate(k(1, 1));
        p.on_insert(k(1, 1), 1);
        p.clear();
        assert_eq!(p.estimate(k(1, 1)), 0);
        assert_eq!(p.victim(), None);
    }

    #[test]
    fn caps_and_windows_have_floors() {
        assert_eq!(protected_cap_for(0), 1);
        assert_eq!(protected_cap_for(5), 4);
        assert_eq!(protected_cap_for(100), 80);
        assert_eq!(sketch_window_for(0), 64);
        assert_eq!(sketch_window_for(1000), 8000);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(EvictionPolicy::Lru.label(), "lru");
        assert_eq!(EvictionPolicy::SegmentedLru.label(), "slru");
        assert_eq!(EvictionPolicy::TinyLfuSlru.label(), "tinylfu_slru");
        assert_eq!(EvictionPolicy::default(), EvictionPolicy::TinyLfuSlru);
    }
}
