//! Memoizing pair cache for relatedness measures, with bounded memory.
//!
//! The AIDA graph algorithm queries the same entity pair repeatedly while
//! weights are rescaled and the subgraph shrinks; caching turns repeated
//! exact computations into hash lookups. A long-running service touches
//! millions of distinct pairs, so the cache is size-aware: a configurable
//! byte cap ([`CacheConfig::max_bytes`]) is enforced by pluggable eviction
//! ([`EvictionPolicy`], default segmented LRU behind a frequency-admission
//! gate) with flat per-entry byte accounting ([`size::ENTRY_BYTES`]).
//!
//! The module splits along the tentpole seams: [`policy`] holds the
//! eviction/admission state machines, [`size`] the byte accounting, and a
//! private metrics module the counter plumbing. [`PairCache`] is the
//! policy-driven concurrent map; [`CachedRelatedness`] wraps it around any
//! [`Relatedness`] measure.
//!
//! # Determinism contract
//!
//! Eviction order is a pure function of the access sequence. All policy
//! state is per-shard; recency is the shard's logical access index (no
//! ambient clock — see [`policy`]); victims are totally ordered by
//! `(last-access index, key)`. Keys shard by [`shard_index`], so any
//! driver that replays each shard's access sub-sequence in order — on any
//! number of threads that partition the shards — reproduces hit/miss/evict
//! sequences and counter totals bit-identically. The model harness in
//! `tests/cache_model.rs` replays generated traces against a reference
//! oracle and asserts exactly that.
//!
//! Accounting is deterministic the same way the unbounded cache's always
//! was: a lookup counts as a miss only when its second visit completes
//! under the shard's write lock, so every completed lookup is exactly one
//! hit or one miss, and every miss resolves to exactly one of insert /
//! admit-reject / stale-discard. The conservation laws
//! (`lookups == hits + misses`, `misses == inserts + admit_rejected +
//! stale_discards`, `evictions + live_entries == inserts`,
//! `bytes <= cap`) hold under any interleaving.
//!
//! # Generations
//!
//! [`PairCache::advance_generation`] composes invalidation with eviction:
//! the tag moves first, then every shard is cleared (dropped entries count
//! as evictions, keeping the conservation laws exact). A lookup records
//! the tag at its start and re-checks it under the write lock before
//! inserting; if the tag moved mid-lookup the insert is discarded
//! (`relatedness_cache_stale_discards`), so once `advance_generation`
//! returns no stale-generation value can ever be served from the cache.
//!
//! The cache holds plain memoized floats, so a shard whose lock was
//! poisoned by a panicking worker is still structurally sound. Every lock
//! acquisition recovers from poison instead of propagating it — one
//! crashed document must not wedge the shared cache for the rest of the
//! batch.

mod metrics;
pub mod policy;
pub mod size;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use ned_kb::fx::FxHashMap;
use ned_kb::EntityId;
use ned_obs::Metrics;

use crate::traits::Relatedness;
use metrics::{CacheCounters, CacheGauges};
pub use policy::{EvictionPolicy, PairKey, PolicyShard};
pub use size::ENTRY_BYTES;

/// Number of independent shards (fixed, so shard assignment — and with it
/// the determinism contract — never depends on configuration).
pub const SHARD_COUNT: usize = 16;

/// Canonicalizes an entity pair to the `(min, max)` key all symmetric
/// measures share.
pub fn canonical_key(a: EntityId, b: EntityId) -> PairKey {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// The shard a canonical key lives in. Public so deterministic drivers
/// (and the model-test oracle) can partition work by shard.
pub fn shard_index(key: PairKey) -> usize {
    (key.0 .0 as usize ^ (key.1 .0 as usize).rotate_left(16)) % SHARD_COUNT
}

/// How a [`PairCache`] is bounded and which policy enforces the bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheConfig {
    /// Total byte cap across all shards; `None` is unbounded. Entries are
    /// charged a flat [`ENTRY_BYTES`], so the entry capacity is
    /// `max_bytes / ENTRY_BYTES` (a cap below one entry caches nothing).
    pub max_bytes: Option<u64>,
    /// Eviction/admission policy for bounded caches (ignored when
    /// unbounded).
    pub policy: EvictionPolicy,
}

impl CacheConfig {
    /// No byte cap: every computed pair is memoized (the default).
    pub fn unbounded() -> Self {
        CacheConfig::default()
    }

    /// A byte cap enforced by the default policy
    /// ([`EvictionPolicy::TinyLfuSlru`]).
    pub fn bounded(max_bytes: u64) -> Self {
        CacheConfig { max_bytes: Some(max_bytes), policy: EvictionPolicy::default() }
    }

    /// Same bound, explicit policy.
    pub fn with_policy(mut self, policy: EvictionPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// What one completed lookup did, in the order it did it. Returned by
/// [`PairCache::get_or_insert_with`] so the model harness can compare the
/// real cache against its oracle event-by-event; exactly one of
/// `hit` / `inserted` / `admit_rejected` / `stale_discarded` is set on
/// every completed lookup.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LookupEvents {
    /// Served from the cache (including a racing duplicate insert).
    pub hit: bool,
    /// The freshly computed value was admitted and memoized.
    pub inserted: bool,
    /// The freshly computed value was rejected by the admission policy or
    /// an unmeetable byte cap (returned to the caller, not memoized).
    pub admit_rejected: bool,
    /// The insert was discarded because the KB generation moved between
    /// the lookup's probe and its insert.
    pub stale_discarded: bool,
    /// Keys evicted to make room, in eviction order (empty unless
    /// `inserted`).
    pub evicted: Vec<PairKey>,
}

/// One shard: the memoized pairs plus the policy/byte state guarding them.
/// Everything behind one lock, so the per-shard invariants (policy books
/// exactly the map's keys; `bytes == len * ENTRY_BYTES <= cap`) hold at
/// every guard drop.
#[derive(Debug)]
struct Shard {
    map: FxHashMap<PairKey, f64>,
    /// Present iff the cache is bounded.
    policy: Option<Box<dyn PolicyShard>>,
    /// This shard's slice of the global byte cap (`None` = unbounded).
    cap_bytes: Option<u64>,
    bytes: u64,
    bytes_peak: u64,
    /// Logical access index: advances once per completed access.
    clock: u64,
}

impl Shard {
    fn new(cap_bytes: Option<u64>, policy_kind: EvictionPolicy) -> Self {
        let policy =
            cap_bytes.map(|cap| policy::build_policy(policy_kind, size::entries_under(cap)));
        Shard { map: FxHashMap::default(), policy, cap_bytes, bytes: 0, bytes_peak: 0, clock: 0 }
    }

    /// Records a hit at the next access index.
    fn note_hit(&mut self, key: PairKey) {
        self.clock += 1;
        let at = self.clock;
        if let Some(p) = self.policy.as_mut() {
            p.on_hit(key, at);
        }
    }

    /// Makes room for `key`, appending evicted keys to `events.evicted`.
    /// Returns whether the key was admitted. Terminates because every
    /// iteration either returns or strictly shrinks the resident set.
    fn make_room(&mut self, key: PairKey, events: &mut LookupEvents) -> bool {
        let Some(cap) = self.cap_bytes else {
            return true;
        };
        let Some(p) = self.policy.as_mut() else {
            // Bounded shards always carry a policy; degrade to rejecting.
            return false;
        };
        p.on_candidate(key);
        while self.bytes.saturating_add(ENTRY_BYTES) > cap {
            let Some(victim) = p.victim() else {
                // Nothing left to evict and still no room: the cap is
                // below one entry.
                return false;
            };
            if !p.admits(key, victim) {
                return false;
            }
            p.on_evict(victim);
            if self.map.remove(&victim).is_some() {
                self.bytes = self.bytes.saturating_sub(ENTRY_BYTES);
            }
            events.evicted.push(victim);
        }
        true
    }

    /// Admits `key -> value` (room already made) at the next access index.
    fn insert(&mut self, key: PairKey, value: f64) {
        self.clock += 1;
        let at = self.clock;
        self.map.insert(key, value);
        self.bytes = self.bytes.saturating_add(ENTRY_BYTES);
        self.bytes_peak = self.bytes_peak.max(self.bytes);
        if let Some(p) = self.policy.as_mut() {
            p.on_insert(key, at);
        }
    }

    /// Drops every entry (generation advance / clear), returning how many
    /// were dropped so the caller can count them as evictions. The logical
    /// clock keeps running — access indexes stay unique for the shard's
    /// lifetime.
    fn drop_all(&mut self) -> u64 {
        let dropped = self.map.len() as u64;
        self.map.clear();
        self.bytes = 0;
        if let Some(p) = self.policy.as_mut() {
            p.clear();
        }
        dropped
    }
}

/// A sharded, policy-bounded, generation-tagged concurrent map from
/// canonical entity pairs to scores. The reusable core under
/// [`CachedRelatedness`]; public so test harnesses and benches can drive
/// it directly with a pure compute function.
#[derive(Debug)]
pub struct PairCache {
    shards: Vec<RwLock<Shard>>,
    config: CacheConfig,
    /// KB generation the cached pairs were computed against.
    kb_generation: AtomicU64,
    counters: CacheCounters,
    gauges: CacheGauges,
}

impl PairCache {
    /// An empty cache with the given bound/policy, its counters and
    /// gauges registered in `metrics` (pass [`Metrics::disabled`] to skip
    /// accounting).
    pub fn new(config: CacheConfig, metrics: &Metrics) -> Self {
        let caps: Vec<Option<u64>> = match config.max_bytes {
            None => vec![None; SHARD_COUNT],
            Some(total) => {
                size::shard_byte_caps(total, SHARD_COUNT).into_iter().map(Some).collect()
            }
        };
        PairCache {
            shards: caps.into_iter().map(|c| RwLock::new(Shard::new(c, config.policy))).collect(),
            config,
            kb_generation: AtomicU64::new(0),
            counters: CacheCounters::new(metrics),
            gauges: CacheGauges::new(metrics),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// The configured byte cap (`None` when unbounded).
    pub fn capacity_bytes(&self) -> Option<u64> {
        self.config.max_bytes
    }

    /// Looks `(a, b)` up (symmetric: the pair is canonicalized), calling
    /// `compute` outside any lock on a miss. Returns the score plus what
    /// the lookup did.
    ///
    /// Two-phase protocol: the probe visit serves hits; a miss computes
    /// with no lock held, then a second visit under the write lock
    /// re-probes (a racing worker may have inserted first — that counts
    /// as a hit and the duplicate computation is discarded), re-checks the
    /// generation tag, and runs admission/eviction. Counters are bumped
    /// after the guard drops; the critical section covers only the shard.
    pub fn get_or_insert_with<F: FnOnce() -> f64>(
        &self,
        a: EntityId,
        b: EntityId,
        compute: F,
    ) -> (f64, LookupEvents) {
        let key = canonical_key(a, b);
        let idx = shard_index(key);
        let mut events = LookupEvents::default();
        let Some(shard) = self.shards.get(idx) else {
            // `shard_index` reduces mod SHARD_COUNT, so this arm is
            // unreachable; degrade to the uncached compute.
            return (compute(), events);
        };
        let gen_at_start = self.kb_generation.load(Ordering::Acquire);
        if self.config.max_bytes.is_none() {
            // Unbounded: hits need no recency bookkeeping, so the probe
            // stays on the cheap read lock (the legacy fast path).
            let cached = shard.read().unwrap_or_else(|e| e.into_inner()).map.get(&key).copied();
            if let Some(v) = cached {
                events.hit = true;
                self.counters.apply(&events);
                return (v, events);
            }
        } else {
            // Bounded: a hit moves recency state, so probe under the
            // write lock.
            let cached = {
                let mut g = shard.write().unwrap_or_else(|e| e.into_inner());
                let probed = g.map.get(&key).copied();
                if probed.is_some() {
                    g.note_hit(key);
                }
                probed
            };
            if let Some(v) = cached {
                events.hit = true;
                self.counters.apply(&events);
                return (v, events);
            }
        }
        let v = compute();
        let value = {
            let mut g = shard.write().unwrap_or_else(|e| e.into_inner());
            if let Some(&existing) = g.map.get(&key) {
                // A racing worker inserted first; this lookup is a hit and
                // the duplicate computation is discarded (pure measures,
                // same value).
                g.note_hit(key);
                events.hit = true;
                existing
            } else if self.kb_generation.load(Ordering::Acquire) != gen_at_start {
                // The KB generation moved while we computed: the value may
                // be stale, so it must not outlive this lookup in the
                // cache. Returning it is fine — the lookup overlapped the
                // swap — but memoizing it would serve stale scores forever.
                events.stale_discarded = true;
                v
            } else if g.make_room(key, &mut events) {
                g.insert(key, v);
                events.inserted = true;
                v
            } else {
                events.admit_rejected = true;
                v
            }
        };
        self.counters.apply(&events);
        (value, events)
    }

    /// The KB generation the cached pairs were computed against.
    pub fn generation(&self) -> u64 {
        self.kb_generation.load(Ordering::Acquire)
    }

    /// Tags the cache with the KB generation it is serving. When the tag
    /// moves, every memoized pair is dropped (counted as evictions) and
    /// any in-flight insert that started under the old tag is discarded —
    /// stale scores must never survive a swap. Returns true when the
    /// cache was invalidated.
    ///
    /// Callers sequence this *before* computing against the new KB (swap →
    /// advance → score), so a racing worker can at worst re-insert a value
    /// computed against the new epoch — never resurrect an old one.
    pub fn advance_generation(&self, generation: u64) -> bool {
        if self.kb_generation.swap(generation, Ordering::AcqRel) == generation {
            return false;
        }
        self.clear();
        true
    }

    /// Drops all cached pairs. Dropped entries count as evictions so the
    /// `evictions + live_entries == inserts` conservation law stays exact;
    /// the other counters keep accumulating.
    pub fn clear(&self) {
        let mut dropped = 0u64;
        for shard in &self.shards {
            dropped += shard.write().unwrap_or_else(|e| e.into_inner()).drop_all();
        }
        if dropped > 0 {
            self.counters.evictions.add(dropped);
        }
    }

    /// Number of cached pairs.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap_or_else(|e| e.into_inner()).map.len()).sum()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently charged to cached pairs (always `<=` the cap: each
    /// shard enforces its slice under its own lock).
    pub fn bytes_used(&self) -> u64 {
        self.shards.iter().map(|s| s.read().unwrap_or_else(|e| e.into_inner()).bytes).sum()
    }

    /// High-water mark of charged bytes (sum of per-shard peaks, so also
    /// `<=` the cap).
    pub fn bytes_peak(&self) -> u64 {
        self.shards.iter().map(|s| s.read().unwrap_or_else(|e| e.into_inner()).bytes_peak).sum()
    }

    /// Every cached pair, sorted by key — the model harness compares this
    /// against its oracle's final contents. Sorting makes the result
    /// independent of hash-map iteration order.
    pub fn contents(&self) -> Vec<(PairKey, f64)> {
        let mut out: Vec<(PairKey, f64)> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let g = shard.read().unwrap_or_else(|e| e.into_inner());
            // ned-lint: allow(d1) — sorted by key below before returning
            out.extend(g.map.iter().map(|(&k, &v)| (k, v)));
        }
        out.sort_unstable_by_key(|x| x.0);
        out
    }

    /// Publishes the byte/occupancy gauges (`relatedness_cache_bytes`,
    /// `_bytes_peak`, `_entries`) from the current shard state. Explicit
    /// publication — like the evaluation counters — keeps snapshots
    /// interleaving-independent: call it at a quiescent point, then
    /// snapshot.
    pub fn publish_gauges(&self) {
        let (mut bytes, mut peak, mut entries) = (0u64, 0u64, 0u64);
        for shard in &self.shards {
            let g = shard.read().unwrap_or_else(|e| e.into_inner());
            bytes += g.bytes;
            peak += g.bytes_peak;
            entries += g.map.len() as u64;
        }
        self.gauges.bytes.set(bytes);
        self.gauges.bytes_peak.set(peak);
        self.gauges.entries.set(entries);
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.counters.hits.value()
    }

    /// Lookups that computed a fresh value so far.
    pub fn misses(&self) -> u64 {
        self.counters.misses.value()
    }

    /// Entries written so far.
    pub fn inserts(&self) -> u64 {
        self.counters.inserts.value()
    }

    /// Entries dropped so far (policy evictions plus invalidation drops).
    pub fn evictions(&self) -> u64 {
        self.counters.evictions.value()
    }

    /// Lookups whose insert was rejected by the admission policy so far.
    pub fn admit_rejected(&self) -> u64 {
        self.counters.admit_rejected.value()
    }

    /// Inserts discarded because the generation moved mid-lookup so far.
    pub fn stale_discards(&self) -> u64 {
        self.counters.stale_discards.value()
    }

    /// Fraction of lookups served from the cache, in [0, 1]; 0 when no
    /// lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.counters.hits.value();
        let total = hits + self.counters.misses.value();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// A relatedness measure with an internal [`PairCache`].
// Manual Debug: `M` need not be Debug.
pub struct CachedRelatedness<M> {
    inner: M,
    cache: PairCache,
}

impl<M> std::fmt::Debug for CachedRelatedness<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedRelatedness")
            .field("cache", &self.cache)
            .finish_non_exhaustive()
    }
}

impl<M: Relatedness> CachedRelatedness<M> {
    /// Wraps `inner` with an empty unbounded cache and a private metrics
    /// registry.
    pub fn new(inner: M) -> Self {
        Self::with_metrics(inner, &Metrics::new())
    }

    /// Wraps `inner` with an empty unbounded cache, recording the cache
    /// counters into the given registry (pass [`Metrics::disabled`] to
    /// skip accounting entirely).
    pub fn with_metrics(inner: M, metrics: &Metrics) -> Self {
        Self::with_config(inner, metrics, CacheConfig::unbounded())
    }

    /// Wraps `inner` with a cache bounded and policed per `config`.
    pub fn with_config(inner: M, metrics: &Metrics, config: CacheConfig) -> Self {
        CachedRelatedness { inner, cache: PairCache::new(config, metrics) }
    }

    /// Back-compat shim for the PR-7 entry-cap constructor: `max_entries`
    /// becomes a byte cap of `max_entries * ENTRY_BYTES` under the default
    /// policy (`usize::MAX` stays unbounded). Where the old cache stopped
    /// memoizing at capacity forever (the cap-full starvation bug), this
    /// one evicts per policy.
    pub fn with_metrics_and_capacity(inner: M, metrics: &Metrics, max_entries: usize) -> Self {
        let config = if max_entries == usize::MAX {
            CacheConfig::unbounded()
        } else {
            CacheConfig::bounded((max_entries as u64).saturating_mul(ENTRY_BYTES))
        };
        Self::with_config(inner, metrics, config)
    }

    /// The configured entry capacity (`usize::MAX` when unbounded).
    pub fn capacity(&self) -> usize {
        match self.cache.capacity_bytes() {
            None => usize::MAX,
            Some(bytes) => usize::try_from(size::entries_under(bytes)).unwrap_or(usize::MAX),
        }
    }

    /// Number of cached pairs.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Drops all cached pairs (dropped entries count as evictions).
    pub fn clear(&self) {
        self.cache.clear();
    }

    /// The KB generation the cached pairs were computed against.
    pub fn generation(&self) -> u64 {
        self.cache.generation()
    }

    /// Tags the cache with the KB generation it is serving (e.g. from
    /// `ned_kb::KbHandle::generation`); see
    /// [`PairCache::advance_generation`]. Returns true when the cache was
    /// invalidated.
    pub fn advance_generation(&self, generation: u64) -> bool {
        self.cache.advance_generation(generation)
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Lookups that computed a fresh value so far.
    pub fn misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Entries written so far.
    pub fn inserts(&self) -> u64 {
        self.cache.inserts()
    }

    /// Entries dropped so far (policy evictions plus invalidation drops).
    pub fn evictions(&self) -> u64 {
        self.cache.evictions()
    }

    /// Lookups whose insert the admission policy rejected so far.
    pub fn admit_rejected(&self) -> u64 {
        self.cache.admit_rejected()
    }

    /// Inserts discarded because the generation moved mid-lookup so far.
    pub fn stale_discards(&self) -> u64 {
        self.cache.stale_discards()
    }

    /// Fraction of lookups served from the cache, in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Bytes currently charged to cached pairs.
    pub fn bytes_used(&self) -> u64 {
        self.cache.bytes_used()
    }

    /// High-water mark of charged bytes.
    pub fn bytes_peak(&self) -> u64 {
        self.cache.bytes_peak()
    }

    /// Publishes the byte/occupancy gauges; see
    /// [`PairCache::publish_gauges`].
    pub fn publish_gauges(&self) {
        self.cache.publish_gauges();
    }

    /// The underlying pair cache.
    pub fn cache(&self) -> &PairCache {
        &self.cache
    }

    /// The wrapped measure.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: Relatedness> Relatedness for CachedRelatedness<M> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn relatedness(&self, a: EntityId, b: EntityId) -> f64 {
        self.cache.get_or_insert_with(a, b, || self.inner.relatedness(a, b)).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    struct Counting {
        calls: AtomicUsize,
    }

    impl Relatedness for Counting {
        fn name(&self) -> &'static str {
            "counting"
        }
        fn relatedness(&self, a: EntityId, b: EntityId) -> f64 {
            self.calls.fetch_add(1, Ordering::Relaxed);
            f64::from(a.0 + b.0)
        }
    }

    fn counting() -> Counting {
        Counting { calls: AtomicUsize::new(0) }
    }

    /// `n` distinct keys that all land in one shard, so per-shard policy
    /// behaviour can be asserted without cross-shard noise.
    fn colliding_keys(n: usize) -> Vec<PairKey> {
        let target = shard_index(canonical_key(EntityId(0), EntityId(0)));
        let mut keys = Vec::new();
        let mut i = 0u32;
        while keys.len() < n {
            let k = canonical_key(EntityId(i), EntityId(i));
            if shard_index(k) == target {
                keys.push(k);
            }
            i += 1;
        }
        keys
    }

    #[test]
    fn caches_symmetric_pairs() {
        let c = CachedRelatedness::new(counting());
        let a = EntityId(1);
        let b = EntityId(2);
        assert_eq!(c.relatedness(a, b), 3.0);
        assert_eq!(c.relatedness(b, a), 3.0);
        assert_eq!(c.inner().calls.load(Ordering::Relaxed), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clear_resets_and_counts_evictions() {
        let c = CachedRelatedness::new(counting());
        c.relatedness(EntityId(1), EntityId(2));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.evictions(), 1, "clear drops count as evictions");
        c.relatedness(EntityId(1), EntityId(2));
        assert_eq!(c.inner().calls.load(Ordering::Relaxed), 2);
        assert_eq!(c.inserts(), c.evictions() + c.len() as u64, "conservation");
    }

    #[test]
    fn distinct_pairs_cached_separately() {
        let c = CachedRelatedness::new(counting());
        for i in 0..10u32 {
            c.relatedness(EntityId(i), EntityId(i + 1));
        }
        assert_eq!(c.len(), 10);
        assert_eq!(c.bytes_used(), 10 * ENTRY_BYTES);
        assert_eq!(c.bytes_peak(), 10 * ENTRY_BYTES);
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let c = CachedRelatedness::new(counting());
        let (a, b) = (EntityId(3), EntityId(9));
        c.relatedness(a, b); // miss + insert
        c.relatedness(a, b); // hit
        c.relatedness(b, a); // hit (canonicalized key)
        assert_eq!(c.misses(), 1);
        assert_eq!(c.inserts(), 1);
        assert_eq!(c.hits(), 2);
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn counters_land_in_a_shared_registry() {
        use ned_obs::names;
        let m = Metrics::new();
        let c = CachedRelatedness::with_metrics(counting(), &m);
        c.relatedness(EntityId(1), EntityId(2));
        c.relatedness(EntityId(1), EntityId(2));
        c.publish_gauges();
        let snap = m.snapshot();
        assert_eq!(snap.counter(names::RELATEDNESS_CACHE_MISSES), 1);
        assert_eq!(snap.counter(names::RELATEDNESS_CACHE_INSERTS), 1);
        assert_eq!(snap.counter(names::RELATEDNESS_CACHE_HITS), 1);
        assert_eq!(snap.counter(names::RELATEDNESS_CACHE_EVICTIONS), 0);
        assert_eq!(snap.counter(names::RELATEDNESS_CACHE_ADMIT_REJECTED), 0);
        assert_eq!(snap.counter(names::RELATEDNESS_CACHE_STALE_DISCARDS), 0);
        assert_eq!(snap.gauge(names::RELATEDNESS_CACHE_BYTES), ENTRY_BYTES);
        assert_eq!(snap.gauge(names::RELATEDNESS_CACHE_BYTES_PEAK), ENTRY_BYTES);
        assert_eq!(snap.gauge(names::RELATEDNESS_CACHE_ENTRIES), 1);
    }

    #[test]
    fn disabled_metrics_skip_accounting_but_still_cache() {
        let c = CachedRelatedness::with_metrics(counting(), &Metrics::disabled());
        c.relatedness(EntityId(1), EntityId(2));
        c.relatedness(EntityId(1), EntityId(2));
        assert_eq!(c.inner().calls.load(Ordering::Relaxed), 1, "still memoizes");
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
        assert_eq!(c.hit_rate(), 0.0);
    }

    #[test]
    fn poisoned_shard_recovers() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::Arc;

        let c = Arc::new(CachedRelatedness::new(counting()));
        let (a, b) = (EntityId(1), EntityId(2));
        c.relatedness(a, b);
        // Poison the shard holding (a, b) by panicking while its write
        // lock is held, exactly like a crashed worker would.
        let idx = shard_index(canonical_key(a, b));
        let poisoner = Arc::clone(&c);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _guard = poisoner.cache.shards[idx].write().unwrap();
            panic!("worker died mid-insert");
        }));
        std::panic::set_hook(hook);
        assert!(result.is_err());
        assert!(c.cache.shards[idx].is_poisoned());
        // Reads, writes, and maintenance all still work.
        assert_eq!(c.relatedness(a, b), 3.0, "cached value survives poison");
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.relatedness(b, a), 3.0);
    }

    #[test]
    fn byte_cap_is_a_hard_bound_under_lru() {
        // One entry per shard; 40 keys colliding into a single shard churn
        // that shard's one slot under LRU.
        let cap = SHARD_COUNT as u64 * ENTRY_BYTES;
        let m = Metrics::new();
        let c = CachedRelatedness::with_config(
            counting(),
            &m,
            CacheConfig::bounded(cap).with_policy(EvictionPolicy::Lru),
        );
        assert_eq!(c.capacity(), SHARD_COUNT);
        for k in colliding_keys(40) {
            assert_eq!(c.relatedness(k.0, k.1), f64::from(k.0 .0 + k.1 .0));
            assert!(c.bytes_used() <= cap, "cap violated mid-run");
        }
        // LRU admits everything: 40 distinct pairs -> 40 inserts, 39
        // evictions, 1 live.
        assert_eq!(c.misses(), 40);
        assert_eq!(c.inserts(), 40);
        assert_eq!(c.evictions(), 39);
        assert_eq!(c.admit_rejected(), 0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes_peak(), ENTRY_BYTES);
    }

    #[test]
    fn admission_gate_shields_hot_pairs_from_scans() {
        let m = Metrics::new();
        let c = CachedRelatedness::with_config(
            counting(),
            &m,
            // One entry per shard, default TinyLFU-SLRU.
            CacheConfig::bounded(SHARD_COUNT as u64 * ENTRY_BYTES),
        );
        let keys = colliding_keys(8);
        let Some((&hot, scan)) = keys.split_first() else {
            panic!("colliding_keys returned nothing")
        };
        // Make the resident pair provably hot (sketch frequency 2).
        c.relatedness(hot.0, hot.1); // miss + insert
        c.relatedness(hot.0, hot.1); // hit
        assert_eq!(c.len(), 1);
        // A one-shot scan through the same shard: every candidate has
        // sketch frequency 1 against a victim with frequency 2, so nothing
        // is admitted and the hot pair survives.
        for k in scan {
            c.relatedness(k.0, k.1);
        }
        assert_eq!(c.evictions(), 0, "scan must not flush the hot pair");
        assert_eq!(c.admit_rejected(), scan.len() as u64);
        assert_eq!(c.len(), 1);
        // The hot pair still hits.
        let hits_before = c.hits();
        c.relatedness(hot.0, hot.1);
        assert_eq!(c.hits(), hits_before + 1);
        // Conservation: every miss resolved exactly once.
        assert_eq!(c.misses(), c.inserts() + c.admit_rejected() + c.stale_discards());
        assert_eq!(c.inserts(), c.evictions() + c.len() as u64);
    }

    #[test]
    fn capped_cache_results_match_unbounded() {
        let capped = CachedRelatedness::with_metrics_and_capacity(counting(), &Metrics::new(), 2);
        let unbounded = CachedRelatedness::new(counting());
        for i in 0..20u32 {
            for j in 0..3u32 {
                let (a, b) = (EntityId(i), EntityId(i + j + 1));
                assert_eq!(
                    capped.relatedness(a, b).to_bits(),
                    unbounded.relatedness(a, b).to_bits()
                );
            }
        }
    }

    #[test]
    fn eviction_accounting_is_deterministic_for_a_fixed_sequence() {
        let run = |policy| {
            let m = Metrics::new();
            let c = CachedRelatedness::with_config(
                counting(),
                &m,
                CacheConfig::bounded(7 * ENTRY_BYTES).with_policy(policy),
            );
            for i in 0..60u32 {
                c.relatedness(EntityId(i % 13), EntityId((i * 7) % 17 + 1));
            }
            c.publish_gauges();
            m.snapshot()
        };
        for policy in
            [EvictionPolicy::Lru, EvictionPolicy::SegmentedLru, EvictionPolicy::TinyLfuSlru]
        {
            assert_eq!(run(policy), run(policy), "sequence-determinism broke under {policy:?}");
        }
    }

    #[test]
    fn unbounded_cache_never_rejects_or_evicts() {
        use ned_obs::names;
        let m = Metrics::new();
        let c = CachedRelatedness::with_metrics(counting(), &m);
        assert_eq!(c.capacity(), usize::MAX);
        assert_eq!(c.cache().capacity_bytes(), None);
        for i in 0..100u32 {
            c.relatedness(EntityId(i), EntityId(i + 1));
        }
        assert_eq!(c.admit_rejected(), 0);
        assert_eq!(c.evictions(), 0);
        assert_eq!(m.snapshot().counter(names::RELATEDNESS_CACHE_ADMIT_REJECTED), 0);
    }

    #[test]
    fn zero_capacity_cache_still_answers() {
        let c = CachedRelatedness::with_metrics_and_capacity(counting(), &Metrics::new(), 0);
        assert_eq!(c.relatedness(EntityId(1), EntityId(2)), 3.0);
        assert_eq!(c.relatedness(EntityId(1), EntityId(2)), 3.0);
        assert!(c.is_empty());
        assert_eq!(c.admit_rejected(), 2);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.inner().calls.load(Ordering::Relaxed), 2, "nothing memoized");
    }

    #[test]
    fn advance_generation_drops_entries_only_on_change() {
        let c = CachedRelatedness::new(counting());
        assert_eq!(c.generation(), 0);
        c.relatedness(EntityId(1), EntityId(2));
        // Same generation: nothing dropped.
        assert!(!c.advance_generation(0));
        assert_eq!(c.len(), 1);
        // New generation: cache invalidated, tag advanced, drop counted
        // as an eviction.
        assert!(c.advance_generation(3));
        assert_eq!(c.generation(), 3);
        assert!(c.is_empty());
        assert_eq!(c.evictions(), 1);
        c.relatedness(EntityId(1), EntityId(2));
        assert_eq!(c.inner().calls.load(Ordering::Relaxed), 2, "recomputed");
    }

    #[test]
    fn epoch_swap_yields_fresh_scores_for_promoted_entities() {
        use crate::milne_witten::MilneWitten;
        use ned_kb::{DeltaKb, EntityKind, FrozenKb, KbBuilder, KbEpoch, KbHandle, KbMutation};
        use std::sync::Arc;

        // A measure that always reads the handle's *current* epoch, like a
        // serving worker does between requests.
        struct LiveMw {
            handle: Arc<KbHandle>,
        }
        impl Relatedness for LiveMw {
            fn name(&self) -> &'static str {
                "live-mw"
            }
            fn relatedness(&self, a: EntityId, b: EntityId) -> f64 {
                let (_, epoch) = self.handle.current();
                MilneWitten::new(epoch).relatedness(a, b)
            }
        }

        // a and b share two in-linkers out of 5 entities.
        let mut builder = KbBuilder::new();
        let a = builder.add_entity("A", EntityKind::Other);
        let b = builder.add_entity("B", EntityKind::Other);
        let x = builder.add_entity("X", EntityKind::Other);
        let y = builder.add_entity("Y", EntityKind::Other);
        builder.add_entity("C", EntityKind::Other);
        builder.add_link(x, a);
        builder.add_link(x, b);
        builder.add_link(y, a);
        builder.add_link(y, b);
        let base = Arc::new(FrozenKb::freeze(&builder.build()));

        let handle = Arc::new(KbHandle::new(KbEpoch::Frozen(Arc::clone(&base))));
        let cache = CachedRelatedness::new(LiveMw { handle: Arc::clone(&handle) });
        cache.advance_generation(handle.generation());
        let before = cache.relatedness(a, b);

        // Promote an emerging entity that links to a but not b — the
        // in-link sets stop coinciding (and N grows), so MW(a, b) drops
        // below its maximal 1.0.
        let delta = DeltaKb::build(
            Arc::clone(&base),
            vec![
                KbMutation::AddEntity {
                    canonical_name: "Prism (emerging)".into(),
                    kind: EntityKind::Other,
                },
                KbMutation::AddLink { src: "Prism (emerging)".into(), dst: "A".into() },
            ],
        )
        .unwrap();
        let expected = MilneWitten::new(&delta).relatedness(a, b);
        assert_ne!(expected.to_bits(), before.to_bits(), "promotion changes the score");

        handle.swap(KbEpoch::Delta(Arc::new(delta)));
        assert!(cache.advance_generation(handle.generation()), "swap invalidates");
        // Without the generation tag this would return the stale `before`.
        assert_eq!(cache.relatedness(a, b).to_bits(), expected.to_bits());
        assert_eq!(cache.relatedness(b, a).to_bits(), expected.to_bits());
    }

    #[test]
    fn stale_insert_is_discarded_when_generation_moves_mid_lookup() {
        // The compute callback advances the generation while the lookup is
        // between its probe and its insert — exactly the window a racing
        // epoch swap hits. The insert must be discarded and counted.
        let m = Metrics::new();
        let cache = PairCache::new(CacheConfig::unbounded(), &m);
        let (v, events) = cache.get_or_insert_with(EntityId(1), EntityId(2), || {
            cache.advance_generation(7);
            42.0
        });
        assert_eq!(v, 42.0, "the overlapping lookup still gets its value");
        assert!(events.stale_discarded);
        assert!(!events.inserted);
        assert!(cache.is_empty(), "stale value must not be memoized");
        assert_eq!(cache.stale_discards(), 1);
        assert_eq!(cache.misses(), 1);
        // The next lookup under the new generation memoizes normally.
        let (_, events) = cache.get_or_insert_with(EntityId(1), EntityId(2), || 43.0);
        assert!(events.inserted);
        assert_eq!(cache.contents(), vec![((EntityId(1), EntityId(2)), 43.0)]);
    }

    #[test]
    fn lookup_events_expose_evictions_in_order() {
        let m = Metrics::new();
        // One entry per shard; two keys colliding into one shard.
        let cache = PairCache::new(
            CacheConfig::bounded(SHARD_COUNT as u64 * ENTRY_BYTES)
                .with_policy(EvictionPolicy::Lru),
            &m,
        );
        let keys = colliding_keys(2);
        let (k1, k2) = (keys[0], keys[1]);
        let (_, e1) = cache.get_or_insert_with(k1.0, k1.1, || 1.0);
        assert!(e1.inserted && e1.evicted.is_empty());
        let (_, e2) = cache.get_or_insert_with(k2.0, k2.1, || 2.0);
        assert!(e2.inserted);
        assert_eq!(e2.evicted, vec![k1], "the cap-1 shard evicts the resident pair");
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn fresh_cache_has_zero_hit_rate() {
        let c = CachedRelatedness::new(counting());
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
        assert_eq!(c.inserts(), 0);
        assert_eq!(c.hit_rate(), 0.0);
    }

    #[test]
    fn config_accessors_round_trip() {
        let cfg = CacheConfig::bounded(1024).with_policy(EvictionPolicy::SegmentedLru);
        let cache = PairCache::new(cfg, &Metrics::disabled());
        assert_eq!(cache.config(), cfg);
        assert_eq!(cache.capacity_bytes(), Some(1024));
    }
}
