#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! Entity semantic-relatedness measures (Chapter 4 of the thesis).
//!
//! Implements the link-based Milne–Witten measure (Eq. 3.7), the
//! keyterm-cosine baselines KWCS/KPCS (Eq. 4.2), the keyphrase-overlap
//! relatedness KORE (Eqs. 4.3–4.4), and the two-stage min-hash/LSH
//! acceleration of §4.4.2 (KORE-LSH-G and KORE-LSH-F).
//!
//! All measures implement the [`Relatedness`] trait so the AIDA coherence
//! graph can be parameterized over them.

pub mod cache;
pub mod jaccard;
pub mod keyterm_cosine;
pub mod kore;
pub mod lsh;
pub mod milne_witten;
pub mod minhash;
pub mod pair_selection;
pub mod traits;
pub mod two_stage;

pub use cache::{
    canonical_key, shard_index, CacheConfig, CachedRelatedness, EvictionPolicy, LookupEvents,
    PairCache, PairKey, ENTRY_BYTES, SHARD_COUNT,
};
pub use keyterm_cosine::{KeyphraseCosine, KeywordCosine};
pub use jaccard::InlinkJaccard;
pub use kore::Kore;
pub use milne_witten::MilneWitten;
pub use traits::Relatedness;
pub use two_stage::{KoreLsh, TwoStageConfig};
