//! Selection of entity pairs needing coherence computation (§4.6.4).
//!
//! AIDA computes coherence weights only between candidate entities that can
//! co-occur in a solution: entities that are candidates of *different*
//! mentions. Two entities that share only a single common mention are
//! mutually exclusive alternatives and never need a coherence edge. The
//! number of selected pairs is the "comparisons" column of Table 4.4.

use ned_kb::fx::FxHashSet;
use ned_kb::EntityId;
use rayon::prelude::*;

/// Computes the unordered entity pairs that require a relatedness value,
/// given the candidate list of every mention. Pairs are deduplicated and
/// returned with `a < b`.
///
/// Mentions are enumerated in parallel (each worker crosses one mention's
/// candidates with all later mentions'); the per-mention pair lists are
/// merged and sorted afterwards, so the output is independent of the thread
/// count.
pub fn coherence_pairs(candidates_per_mention: &[Vec<EntityId>]) -> Vec<(EntityId, EntityId)> {
    let per_mention: Vec<Vec<(EntityId, EntityId)>> = (0..candidates_per_mention.len())
        .into_par_iter()
        .map(|mi| {
            let cands = &candidates_per_mention[mi];
            let mut local = Vec::new();
            for other_cands in &candidates_per_mention[mi + 1..] {
                for &a in cands {
                    for &b in other_cands {
                        if a != b {
                            local.push(if a < b { (a, b) } else { (b, a) });
                        }
                    }
                }
            }
            local
        })
        .collect();
    let mut pairs: FxHashSet<(EntityId, EntityId)> = FxHashSet::default();
    for local in per_mention {
        pairs.extend(local);
    }
    let mut out: Vec<(EntityId, EntityId)> = pairs.into_iter().collect();
    out.sort_unstable();
    out
}

/// Number of coherence pairs without materializing them (cheap counting for
/// large candidate spaces).
pub fn coherence_pair_count(candidates_per_mention: &[Vec<EntityId>]) -> usize {
    coherence_pairs(candidates_per_mention).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn pairs_span_different_mentions_only() {
        // Mention 0: {1, 2}; mention 1: {3}.
        let pairs = coherence_pairs(&[vec![e(1), e(2)], vec![e(3)]]);
        assert_eq!(pairs, vec![(e(1), e(3)), (e(2), e(3))]);
    }

    #[test]
    fn mutually_exclusive_candidates_have_no_pair() {
        // Entities 1 and 2 are candidates of the same single mention.
        let pairs = coherence_pairs(&[vec![e(1), e(2)]]);
        assert!(pairs.is_empty());
    }

    #[test]
    fn shared_candidate_across_mentions() {
        // Entity 1 is a candidate of both mentions: pairs with the other
        // mention's candidates exist, but never a self pair.
        let pairs = coherence_pairs(&[vec![e(1), e(2)], vec![e(1), e(3)]]);
        assert!(pairs.contains(&(e(1), e(3))));
        assert!(pairs.contains(&(e(1), e(2))));
        assert!(pairs.contains(&(e(2), e(3))));
        assert!(!pairs.iter().any(|&(a, b)| a == b));
        assert_eq!(pairs.len(), 3);
    }

    #[test]
    fn count_matches_pairs() {
        let cands = vec![vec![e(1), e(2), e(3)], vec![e(4), e(5)], vec![e(6)]];
        assert_eq!(coherence_pair_count(&cands), coherence_pairs(&cands).len());
        // 3·2 + 3·1 + 2·1 = 11 distinct cross-mention pairs.
        assert_eq!(coherence_pair_count(&cands), 11);
    }

    #[test]
    fn empty_input() {
        assert!(coherence_pairs(&[]).is_empty());
        assert!(coherence_pairs(&[vec![]]).is_empty());
    }
}
