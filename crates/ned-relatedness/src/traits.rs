//! The common interface of all relatedness measures.

use ned_kb::EntityId;

/// A symmetric semantic-relatedness measure between knowledge-base entities.
///
/// Implementations must be symmetric (`relatedness(a, b) ==
/// relatedness(b, a)`) and non-negative; most measures are bounded by 1.
///
/// `Sync` is a supertrait because coherence-edge construction queries the
/// measure from rayon worker threads; all measures are immutable views over
/// the knowledge base (or internally synchronized, like the pair cache).
pub trait Relatedness: Sync {
    /// Short identifier used in experiment tables ("MW", "KORE", ...).
    fn name(&self) -> &'static str;

    /// Relatedness of entities `a` and `b`.
    fn relatedness(&self, a: EntityId, b: EntityId) -> f64;
}

impl<T: Relatedness + ?Sized> Relatedness for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn relatedness(&self, a: EntityId, b: EntityId) -> f64 {
        (**self).relatedness(a, b)
    }
}

impl<T: Relatedness + Send + ?Sized> Relatedness for std::sync::Arc<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn relatedness(&self, a: EntityId, b: EntityId) -> f64 {
        (**self).relatedness(a, b)
    }
}

impl<T: Relatedness + ?Sized> Relatedness for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn relatedness(&self, a: EntityId, b: EntityId) -> f64 {
        (**self).relatedness(a, b)
    }
}
