//! The robustness tests of §3.5.
//!
//! - **Prior test** (§3.5.1): the popularity prior only participates in the
//!   mention–entity weight when the most likely candidate's prior reaches
//!   the threshold ρ; below it the weight is the similarity alone. The
//!   prior is never used by itself.
//! - **Coherence test** (§3.5.2): the L1 distance between the prior
//!   distribution and the normalized similarity distribution over the
//!   candidates measures their disagreement. Below the threshold λ the two
//!   features agree, coherence is risky rather than helpful, and the mention
//!   is fixed to its best local candidate before the graph algorithm runs.

use crate::candidates::CandidateFeatures;
use crate::config::AidaConfig;

/// Combined local mention–entity weights after the prior test.
///
/// Returns `(weights, prior_used)` where `weights[i]` corresponds to
/// `features[i]`. With the prior active:
/// `w = prior_share · prior + sim_share · sim_normalized` (§3.6.1 uses
/// 0.566 / 0.433); otherwise `w = sim_normalized`.
pub fn local_weights(features: &[CandidateFeatures], config: &AidaConfig) -> (Vec<f64>, bool) {
    let max_prior = features.iter().map(|f| f.prior).fold(0.0f64, f64::max);
    let prior_active = config.use_prior
        && (!config.use_prior_robustness || max_prior >= config.prior_threshold);
    let weights = features
        .iter()
        .map(|f| {
            if prior_active {
                config.prior_share() * f.prior + config.sim_share() * f.sim_normalized
            } else {
                f.sim_normalized
            }
        })
        .collect();
    (weights, prior_active)
}

/// L1 distance between the prior distribution and the similarity
/// distribution over a mention's candidates (§3.5.2); always in [0, 2].
///
/// Both vectors are normalized to sum to 1 (a zero vector stays zero).
pub fn prior_sim_l1_distance(features: &[CandidateFeatures]) -> f64 {
    let prior_sum: f64 = features.iter().map(|f| f.prior).sum();
    let sim_sum: f64 = features.iter().map(|f| f.sim).sum();
    features
        .iter()
        .map(|f| {
            let p = if prior_sum > 0.0 { f.prior / prior_sum } else { 0.0 };
            let s = if sim_sum > 0.0 { f.sim / sim_sum } else { 0.0 };
            (p - s).abs()
        })
        .sum()
}

/// The coherence robustness decision: true when the mention should be fixed
/// to its best local candidate (agreement below λ), false when coherence
/// should arbitrate.
pub fn should_fix_mention(features: &[CandidateFeatures], config: &AidaConfig) -> bool {
    if !config.use_coherence_robustness {
        return false;
    }
    if features.len() <= 1 {
        return true;
    }
    prior_sim_l1_distance(features) < config.coherence_threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use ned_kb::EntityId;

    fn feat(entity: u32, prior: f64, sim: f64, sim_normalized: f64) -> CandidateFeatures {
        CandidateFeatures { entity: EntityId(entity), prior, sim, sim_normalized }
    }

    #[test]
    fn prior_test_gates_the_prior() {
        let config = AidaConfig::default();
        // Dominant prior (0.95 ≥ ρ = 0.9): prior participates.
        let dominant = vec![feat(0, 0.95, 2.0, 1.0), feat(1, 0.05, 1.0, 0.5)];
        let (w, used) = local_weights(&dominant, &config);
        assert!(used);
        assert!((w[0] - (config.prior_share() * 0.95 + config.sim_share())).abs() < 1e-12);
        // Spread prior: similarity only.
        let spread = vec![feat(0, 0.6, 2.0, 1.0), feat(1, 0.4, 1.0, 0.5)];
        let (w, used) = local_weights(&spread, &config);
        assert!(!used);
        assert_eq!(w, vec![1.0, 0.5]);
    }

    #[test]
    fn disabling_robustness_always_combines() {
        let config = AidaConfig::prior_sim();
        let spread = vec![feat(0, 0.6, 2.0, 1.0), feat(1, 0.4, 1.0, 0.5)];
        let (_, used) = local_weights(&spread, &config);
        assert!(used);
    }

    #[test]
    fn disabling_prior_never_combines() {
        let config = AidaConfig::sim_only();
        let dominant = vec![feat(0, 0.99, 2.0, 1.0)];
        let (w, used) = local_weights(&dominant, &config);
        assert!(!used);
        assert_eq!(w, vec![1.0]);
    }

    #[test]
    fn l1_distance_bounds() {
        // Perfect agreement → 0.
        let agree = vec![feat(0, 0.8, 8.0, 1.0), feat(1, 0.2, 2.0, 0.25)];
        assert!(prior_sim_l1_distance(&agree) < 1e-12);
        // Total disagreement → 2.
        let disagree = vec![feat(0, 1.0, 0.0, 0.0), feat(1, 0.0, 5.0, 1.0)];
        assert!((prior_sim_l1_distance(&disagree) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_similarity_mass_compares_against_zero_vector() {
        let feats = vec![feat(0, 0.7, 0.0, 0.0), feat(1, 0.3, 0.0, 0.0)];
        // |0.7−0| + |0.3−0| = 1.
        assert!((prior_sim_l1_distance(&feats) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coherence_test_fixes_agreeing_mentions() {
        let config = AidaConfig::default();
        let agree = vec![feat(0, 0.8, 8.0, 1.0), feat(1, 0.2, 2.0, 0.25)];
        assert!(should_fix_mention(&agree, &config));
        let disagree = vec![feat(0, 1.0, 0.0, 0.0), feat(1, 0.0, 5.0, 1.0)];
        assert!(!should_fix_mention(&disagree, &config));
    }

    #[test]
    fn single_candidate_is_always_fixed() {
        let config = AidaConfig::default();
        assert!(should_fix_mention(&[feat(0, 0.2, 0.0, 0.0)], &config));
    }

    #[test]
    fn disabled_coherence_test_never_fixes() {
        let config = AidaConfig::r_prior_sim_coh();
        let agree = vec![feat(0, 0.8, 8.0, 1.0), feat(1, 0.2, 2.0, 0.25)];
        assert!(!should_fix_mention(&agree, &config));
    }
}
