//! The AIDA disambiguation pipeline (§3.2–§3.5), tying together candidate
//! retrieval, local features, robustness tests, graph construction, and the
//! greedy solver.

use ned_core::{DegradationLevel, NedError};
use ned_kb::{EntityId, KbView};
use ned_obs::{names, Clock, Metrics};
use ned_relatedness::Relatedness;
use ned_text::{Mention, Token};
use rayon::prelude::*;

use crate::algorithm::{solve_budgeted_observed, SolverConfig};
use crate::candidates::{candidate_features_observed, CandidateFeatures};
use crate::expansion::expansion_targets;
use crate::config::AidaConfig;
use crate::context::DocumentContext;
use crate::graph::MentionEntityGraph;
use crate::method::NedMethod;
use crate::obs::PipelineObs;
use crate::result::{DisambiguationResult, MentionAssignment};
use crate::robustness::{local_weights, should_fix_mention};

/// Minimum number of mentions before the feature stage fans out over rayon.
///
/// Below this, a document is scored sequentially on the calling worker: the
/// per-mention work is small enough that nested fan-out costs more in
/// range/chunk bookkeeping than it wins, and it would split the per-worker
/// scratch-arena reuse across short-lived scoped threads. Parallelism
/// splits at the document level; this gate only affects *where* mentions
/// run, never their order or values, so outputs stay bit-identical.
const MENTION_PAR_THRESHOLD: usize = 64;

/// The AIDA joint disambiguator, parameterized over the KB representation
/// and the coherence measure.
///
/// The KB handle is held *by value*: pass `&KnowledgeBase` for the classic
/// borrowed style, or (a clone of) an `Arc<FrozenKb>` for a fully owned
/// disambiguator that can be moved across threads and shared by rayon
/// workers without any borrow tying it to a KB binding.
pub struct Disambiguator<K, R> {
    kb: K,
    relatedness: R,
    config: AidaConfig,
    obs: PipelineObs,
    clock: Clock,
}

// Manual Debug: `R` need not be Debug and the KB handle would dump the
// whole store.
impl<K, R> std::fmt::Debug for Disambiguator<K, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Disambiguator")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl<K: KbView, R: Relatedness> Disambiguator<K, R> {
    /// Creates a disambiguator.
    ///
    /// # Panics
    /// Panics when the configuration is invalid (see
    /// [`AidaConfig::validate`]). Use [`Disambiguator::try_new`] to handle
    /// configuration faults gracefully.
    pub fn new(kb: K, relatedness: R, config: AidaConfig) -> Self {
        match Self::try_new(kb, relatedness, config) {
            Ok(d) => d,
            // Documented panicking convenience wrapper over `try_new`.
            // ned-lint: allow(p1)
            Err(err) => panic!("invalid AIDA configuration: {err}"),
        }
    }

    /// Creates a disambiguator, returning a typed error when the
    /// configuration is invalid.
    pub fn try_new(kb: K, relatedness: R, config: AidaConfig) -> Result<Self, NedError> {
        config
            .validate()
            .map_err(|message| NedError::Config { what: "AidaConfig", message })?;
        Ok(Disambiguator {
            kb,
            relatedness,
            config,
            // Metrics are opt-in; the solver's wall budget defaults to the
            // system clock so `solver_wall_budget_ms` keeps firing without
            // any observability setup.
            obs: PipelineObs::default(),
            clock: Clock::system(),
        })
    }

    /// Records pipeline counters and stage spans into `metrics` (builder
    /// style). Counters are deterministic; span durations follow the
    /// registry's own clock.
    #[must_use]
    pub fn with_metrics(mut self, metrics: &Metrics) -> Self {
        self.obs = PipelineObs::new(metrics);
        self
    }

    /// Overrides the clock used by the solver's wall-budget guard (builder
    /// style). Tests pass a manual or null clock to make deadline behavior
    /// reproducible.
    #[must_use]
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// The knowledge base handle in use.
    pub fn kb(&self) -> &K {
        &self.kb
    }

    /// The configuration in use.
    pub fn config(&self) -> &AidaConfig {
        &self.config
    }

    /// The coherence measure in use.
    pub fn relatedness(&self) -> &R {
        &self.relatedness
    }

    /// Computes the per-mention candidate features (exposed for the
    /// confidence assessors of Chapter 5, which perturb these inputs).
    pub fn features(
        &self,
        tokens: &[Token],
        mentions: &[Mention],
    ) -> Vec<Vec<CandidateFeatures>> {
        if mentions.is_empty() {
            // Empty and mention-free documents short-circuit: no context,
            // no candidate lookups, a well-formed empty feature set.
            return Vec::new();
        }
        let _span = self.obs.span(names::STAGE_FEATURES_NS);
        self.obs.mentions.add(mentions.len() as u64);
        let ctx = DocumentContext::build(&self.kb, tokens);
        let targets: Vec<usize> = if self.config.use_mention_expansion {
            expansion_targets(mentions)
        } else {
            (0..mentions.len()).collect()
        };
        let score_mention = |i: usize| {
            let m = &mentions[i]; // ned-lint: allow(p1) — i < mentions.len() by construction
            let mut features = candidate_features_observed(
                &self.kb,
                &mentions[targets[i]].surface, // ned-lint: allow(p1) — targets is index-aligned with mentions
                &ctx.for_mention(m),
                self.config.keyword_weighting,
                &self.obs,
            );
            if features.is_empty() && targets[i] != i { // ned-lint: allow(p1) — i < targets.len() by construction
                // The expanded surface is unknown to the dictionary:
                // fall back to the mention's own surface.
                features = candidate_features_observed(
                    &self.kb,
                    &m.surface,
                    &ctx.for_mention(m),
                    self.config.keyword_weighting,
                    &self.obs,
                );
            }
            features
        };
        // Mentions are scored independently. Typical documents run
        // sequentially on the calling worker (reusing its scratch arena);
        // only unusually mention-heavy documents fan out over rayon, whose
        // collect preserves mention order — both paths produce identical
        // output.
        if mentions.len() < MENTION_PAR_THRESHOLD {
            (0..mentions.len()).map(score_mention).collect()
        } else {
            (0..mentions.len()).into_par_iter().map(score_mention).collect()
        }
    }

    /// Disambiguates pre-computed features (the entry point used by the
    /// perturbation-based confidence assessors, which alter the feature
    /// lists directly).
    ///
    /// Runs the degradation ladder: the full joint model first; if the
    /// graph solver exhausts its iteration or wall budget, the best *local*
    /// candidate per mention ([`DegradationLevel::NoCoherence`]); if the
    /// local weights themselves are poisoned (non-finite), the popularity
    /// prior alone ([`DegradationLevel::PriorOnly`]). The level actually
    /// used is recorded on the result.
    // ned-lint: entry
    pub fn disambiguate_features(
        &self,
        features: &[Vec<CandidateFeatures>],
    ) -> DisambiguationResult {
        if features.is_empty() {
            return DisambiguationResult::default();
        }
        self.obs.docs.inc();
        let mut degradation = DegradationLevel::None;
        // Local combined weights per mention (prior robustness applied).
        let mut locals: Vec<Vec<(EntityId, f64)>> = features
            .iter()
            .map(|f| {
                let (w, _) = local_weights(f, &self.config);
                f.iter().zip(w).map(|(cf, w)| (cf.entity, w)).collect()
            })
            .collect();

        // Bottom rung: a non-finite local weight means the similarity
        // feature is poisoned (corrupt counts, NaN propagation). The prior
        // is a plain occurrence ratio and survives, so retreat to it.
        if locals.iter().flatten().any(|&(_, w)| !w.is_finite()) {
            degradation = DegradationLevel::PriorOnly;
            locals = features
                .iter()
                .map(|f| {
                    f.iter()
                        .map(|cf| {
                            (cf.entity, if cf.prior.is_finite() { cf.prior } else { 0.0 })
                        })
                        .collect()
                })
                .collect();
        }

        let chosen: Vec<Option<EntityId>> =
            if self.config.use_coherence && degradation == DegradationLevel::None {
                match self.solve_with_coherence(features, &locals) {
                    Ok(chosen) => chosen,
                    // Middle rung: the solver ran out of budget (or
                    // otherwise faulted); drop the coherence feature and
                    // keep the best local candidate per mention.
                    Err(err) => {
                        debug_assert!(err.is_degradable(), "unexpected solver fault: {err}");
                        degradation = DegradationLevel::NoCoherence;
                        locals.iter().map(|cands| argmax_entity(cands)).collect()
                    }
                }
            } else {
                locals.iter().map(|cands| argmax_entity(cands)).collect()
            };

        match degradation {
            DegradationLevel::None => self.obs.degradation_joint.inc(),
            DegradationLevel::NoCoherence => self.obs.degradation_no_coherence.inc(),
            DegradationLevel::PriorOnly => self.obs.degradation_prior_only.inc(),
        }
        let degraded = degradation.is_degraded();
        let assignments = features
            .iter()
            .zip(&locals)
            .zip(&chosen)
            .enumerate()
            .map(|(mi, ((_f, local), &entity))| {
                self.make_assignment(mi, local, entity, &chosen, degraded)
            })
            .collect();
        DisambiguationResult { assignments, degradation }
    }

    fn solve_with_coherence(
        &self,
        features: &[Vec<CandidateFeatures>],
        locals: &[Vec<(EntityId, f64)>],
    ) -> Result<Vec<Option<EntityId>>, NedError> {
        // Coherence robustness: fix agreeing mentions to their best local
        // candidate, keeping only that candidate in the graph (§3.5.2).
        let graph_locals: Vec<Vec<(EntityId, f64)>> = features
            .iter()
            .zip(locals)
            .map(|(f, local)| {
                if should_fix_mention(f, &self.config) {
                    self.obs.mentions_fixed.inc();
                    match argmax_index(local) {
                        Some(i) => vec![local[i]],
                        None => Vec::new(),
                    }
                } else {
                    local.clone()
                }
            })
            .collect();
        let graph = {
            let _span = self.obs.span(names::STAGE_GRAPH_NS);
            MentionEntityGraph::build(
                &graph_locals,
                &self.relatedness,
                self.config.gamma,
                true,
            )
        };
        self.obs.graph_entity_nodes.add(graph.entity_count() as u64);
        self.obs.coherence_edges_built.add(graph.coherence_edge_count() as u64);
        let solver = SolverConfig {
            graph_size_factor: self.config.graph_size_factor,
            exhaustive_limit: self.config.exhaustive_limit,
            local_search_iterations: self.config.local_search_iterations,
            seed: self.config.seed,
            max_iterations: self.config.solver_max_iterations,
            wall_budget_ms: self.config.solver_wall_budget_ms,
        };
        let _span = self.obs.span(names::STAGE_SOLVER_NS);
        Ok(solve_budgeted_observed(&graph, &solver, &self.clock, &self.obs.solver)?
            .into_iter()
            .map(|s| s.map(|ni| graph.nodes[ni].entity))
            .collect())
    }

    /// Builds the final assignment for mention `mi`, scoring every candidate
    /// by its local weight blended with its coherence to the *other*
    /// mentions' chosen entities — the candidate's weighted degree in the
    /// solution graph, which Chapter 5 uses as the confidence basis.
    fn make_assignment(
        &self,
        mi: usize,
        local: &[(EntityId, f64)],
        entity: Option<EntityId>,
        chosen: &[Option<EntityId>],
        degraded: bool,
    ) -> MentionAssignment {
        if local.is_empty() {
            return MentionAssignment::unmapped(mi);
        }
        // A degraded document dropped the coherence feature, so its scores
        // must not consult the relatedness measure either (which may be the
        // faulty component that forced the degradation).
        let gamma = if self.config.use_coherence && !degraded { self.config.gamma } else { 0.0 };
        let others: Vec<EntityId> = chosen
            .iter()
            .enumerate()
            .filter(|&(mj, _)| mj != mi)
            .filter_map(|(_, &e)| e)
            .collect();
        let mut scores: Vec<(EntityId, f64)> = local
            .iter()
            .map(|&(e, w)| {
                let coh = if gamma > 0.0 && !others.is_empty() {
                    others.iter().map(|&o| self.relatedness.relatedness(e, o)).sum::<f64>()
                        / others.len() as f64
                } else {
                    0.0
                };
                (e, (1.0 - gamma) * w + gamma * coh)
            })
            .collect();
        scores.sort_by(|a, b| b.1.total_cmp(&a.1));
        let entity = entity.or_else(|| scores.first().map(|&(e, _)| e));
        let score = entity
            .and_then(|e| scores.iter().find(|&&(c, _)| c == e).map(|&(_, s)| s))
            .unwrap_or(0.0);
        MentionAssignment { mention_index: mi, entity, score, candidate_scores: scores }
    }
}

fn argmax_index(cands: &[(EntityId, f64)]) -> Option<usize> {
    (0..cands.len()).max_by(|&a, &b| {
        cands[a]
            .1
            .total_cmp(&cands[b].1)
            // Deterministic tie-break on entity id.
            .then(cands[b].0.cmp(&cands[a].0))
    })
}

fn argmax_entity(cands: &[(EntityId, f64)]) -> Option<EntityId> {
    argmax_index(cands).map(|i| cands[i].0)
}

impl<K: KbView, R: Relatedness> NedMethod for Disambiguator<K, R> {
    fn name(&self) -> String {
        let mut parts: Vec<&str> = Vec::new();
        if self.config.use_prior {
            parts.push(if self.config.use_prior_robustness { "r-prior" } else { "prior" });
        }
        parts.push("sim-k");
        if self.config.use_coherence {
            parts.push(if self.config.use_coherence_robustness { "r-coh" } else { "coh" });
        }
        format!("AIDA[{} | {}]", parts.join(" "), self.relatedness.name())
    }

    fn disambiguate(&self, tokens: &[Token], mentions: &[Mention]) -> DisambiguationResult {
        let features = self.features(tokens, mentions);
        self.disambiguate_features(&features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ned_kb::{EntityKind, KbBuilder, KnowledgeBase};
    use ned_relatedness::MilneWitten;
    use ned_text::tokenize;

    /// The running example of Chapter 3: "They performed Kashmir, written by
    /// Page and Plant. Page played unusual chords on his Gibson."
    fn kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        let song = b.add_entity("Kashmir (song)", EntityKind::Work);
        let region = b.add_entity("Kashmir (region)", EntityKind::Location);
        let jimmy = b.add_entity("Jimmy Page", EntityKind::Person);
        let larry = b.add_entity("Larry Page", EntityKind::Person);
        let plant = b.add_entity("Robert Plant", EntityKind::Person);
        let gibson = b.add_entity("Gibson Les Paul", EntityKind::Other);
        let zeppelin = b.add_entity("Led Zeppelin", EntityKind::Organization);

        b.add_name(song, "Kashmir", 6);
        b.add_name(region, "Kashmir", 94);
        b.add_name(jimmy, "Page", 40);
        b.add_name(larry, "Page", 55);
        b.add_name(plant, "Plant", 70);
        b.add_name(gibson, "Gibson", 60);

        b.add_keyphrase(song, "hard rock", 2);
        b.add_keyphrase(song, "unusual chords", 2);
        b.add_keyphrase(region, "Himalaya mountains", 4);
        b.add_keyphrase(region, "disputed territory", 3);
        b.add_keyphrase(jimmy, "hard rock", 3);
        b.add_keyphrase(jimmy, "session guitarist", 2);
        b.add_keyphrase(jimmy, "Gibson signature model", 2);
        b.add_keyphrase(larry, "search engine", 3);
        b.add_keyphrase(larry, "internet company", 2);
        b.add_keyphrase(plant, "rock singer", 3);
        b.add_keyphrase(gibson, "electric guitar", 3);

        // Link structure: the music cluster is interlinked.
        for (a, b_) in [
            (jimmy, song),
            (song, jimmy),
            (plant, song),
            (song, plant),
            (jimmy, plant),
            (plant, jimmy),
            (gibson, jimmy),
            (zeppelin, jimmy),
            (zeppelin, plant),
            (zeppelin, song),
            (zeppelin, gibson),
            (jimmy, gibson),
            (song, gibson),
        ] {
            b.add_link(a, b_);
        }
        b.build()
    }

    fn doc() -> (Vec<Token>, Vec<Mention>) {
        let tokens =
            tokenize("They performed Kashmir, written by Page and Plant. Page played unusual chords on his Gibson.");
        // Token positions: They(0) performed(1) Kashmir(2) ,(3) written(4)
        // by(5) Page(6) and(7) Plant(8) .(9) Page(10) played(11) unusual(12)
        // chords(13) on(14) his(15) Gibson(16) .(17)
        let mentions = vec![
            Mention::new("Kashmir", 2, 3),
            Mention::new("Page", 6, 7),
            Mention::new("Plant", 8, 9),
            Mention::new("Gibson", 16, 17),
        ];
        (tokens, mentions)
    }

    #[test]
    fn full_aida_resolves_the_running_example() {
        let kb = kb();
        let aida = Disambiguator::new(&kb, MilneWitten::new(&kb), AidaConfig::full());
        let (tokens, mentions) = doc();
        let result = aida.disambiguate(&tokens, &mentions);
        let labels = result.labels();
        assert_eq!(labels[0], kb.entity_by_name("Kashmir (song)"), "Kashmir → song");
        assert_eq!(labels[1], kb.entity_by_name("Jimmy Page"), "Page → Jimmy Page");
        assert_eq!(labels[2], kb.entity_by_name("Robert Plant"));
        assert_eq!(labels[3], kb.entity_by_name("Gibson Les Paul"));
    }

    #[test]
    fn prior_only_would_choose_the_region() {
        // Sanity check that the example is actually hard: the prior prefers
        // the Himalaya region for "Kashmir".
        let kb = kb();
        let region = kb.entity_by_name("Kashmir (region)").unwrap();
        assert!(kb.prior("Kashmir", region) > 0.9);
    }

    #[test]
    fn sim_only_configuration_still_resolves_contextful_mentions() {
        let kb = kb();
        let aida = Disambiguator::new(&kb, MilneWitten::new(&kb), AidaConfig::sim_only());
        let (tokens, mentions) = doc();
        let labels = aida.disambiguate(&tokens, &mentions).labels();
        // "Kashmir" has matching context ("unusual chords", "hard rock").
        assert_eq!(labels[0], kb.entity_by_name("Kashmir (song)"));
    }

    #[test]
    fn mentions_without_candidates_stay_unmapped() {
        let kb = kb();
        let aida = Disambiguator::new(&kb, MilneWitten::new(&kb), AidaConfig::full());
        let tokens = tokenize("Snowden met Page.");
        let mentions = vec![Mention::new("Snowden", 0, 1), Mention::new("Page", 2, 3)];
        let result = aida.disambiguate(&tokens, &mentions);
        assert_eq!(result.assignments[0].entity, None);
        assert!(result.assignments[1].entity.is_some());
    }

    #[test]
    fn assignments_are_parallel_to_input() {
        let kb = kb();
        let aida = Disambiguator::new(&kb, MilneWitten::new(&kb), AidaConfig::full());
        let (tokens, mentions) = doc();
        let result = aida.disambiguate(&tokens, &mentions);
        assert_eq!(result.assignments.len(), mentions.len());
        for (i, a) in result.assignments.iter().enumerate() {
            assert_eq!(a.mention_index, i);
        }
    }

    #[test]
    fn candidate_scores_are_sorted_descending() {
        let kb = kb();
        let aida = Disambiguator::new(&kb, MilneWitten::new(&kb), AidaConfig::full());
        let (tokens, mentions) = doc();
        let result = aida.disambiguate(&tokens, &mentions);
        for a in &result.assignments {
            for w in a.candidate_scores.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
        }
    }

    #[test]
    fn empty_document() {
        let kb = kb();
        let aida = Disambiguator::new(&kb, MilneWitten::new(&kb), AidaConfig::full());
        let result = aida.disambiguate(&[], &[]);
        assert!(result.assignments.is_empty());
        assert_eq!(result.degradation, DegradationLevel::None);
    }

    #[test]
    fn try_new_reports_invalid_configuration() {
        let kb = kb();
        let bad = AidaConfig { alpha: 0.9, ..AidaConfig::default() };
        let Err(err) = Disambiguator::try_new(&kb, MilneWitten::new(&kb), bad) else {
            panic!("invalid config must be rejected");
        };
        assert!(matches!(err, NedError::Config { what: "AidaConfig", .. }));
    }

    #[test]
    fn exhausted_solver_budget_degrades_to_local_features() {
        let kb = kb();
        let config = AidaConfig { solver_max_iterations: 1, ..AidaConfig::full() };
        let aida = Disambiguator::new(&kb, MilneWitten::new(&kb), config);
        let (tokens, mentions) = doc();
        let result = aida.disambiguate(&tokens, &mentions);
        assert_eq!(result.degradation, DegradationLevel::NoCoherence);
        assert_eq!(result.assignments.len(), mentions.len());
        assert!(result.assignments.iter().all(|a| a.entity.is_some()));
        // The degraded output matches an explicitly coherence-free run.
        let no_coh = Disambiguator::new(&kb, MilneWitten::new(&kb), AidaConfig::r_prior_sim());
        assert_eq!(result.labels(), no_coh.disambiguate(&tokens, &mentions).labels());
    }

    #[test]
    fn generous_budget_leaves_output_unchanged() {
        let kb = kb();
        let (tokens, mentions) = doc();
        let unbudgeted = Disambiguator::new(&kb, MilneWitten::new(&kb), AidaConfig::full())
            .disambiguate(&tokens, &mentions);
        assert_eq!(unbudgeted.degradation, DegradationLevel::None);
    }

    #[test]
    fn poisoned_similarity_degrades_to_prior_only() {
        let kb = kb();
        let aida = Disambiguator::new(&kb, MilneWitten::new(&kb), AidaConfig::full());
        let jimmy = kb.entity_by_name("Jimmy Page").unwrap();
        let larry = kb.entity_by_name("Larry Page").unwrap();
        let nan = f64::NAN;
        let features = vec![vec![
            CandidateFeatures { entity: jimmy, prior: 0.4, sim: nan, sim_normalized: nan },
            CandidateFeatures { entity: larry, prior: 0.6, sim: nan, sim_normalized: nan },
        ]];
        let result = aida.disambiguate_features(&features);
        assert_eq!(result.degradation, DegradationLevel::PriorOnly);
        // The prior survives: Larry Page wins on popularity.
        assert_eq!(result.assignments[0].entity, Some(larry));
        assert!(result.assignments[0].score.is_finite());
    }

    #[test]
    fn method_name_reflects_configuration() {
        let kb = kb();
        let full = Disambiguator::new(&kb, MilneWitten::new(&kb), AidaConfig::full());
        assert_eq!(full.name(), "AIDA[r-prior sim-k r-coh | MW]");
        let sim = Disambiguator::new(&kb, MilneWitten::new(&kb), AidaConfig::sim_only());
        assert_eq!(sim.name(), "AIDA[sim-k | MW]");
    }

    #[test]
    fn metrics_record_pipeline_counters() {
        use ned_obs::{names, Metrics};
        let kb = kb();
        let metrics = Metrics::new();
        let aida = Disambiguator::new(&kb, MilneWitten::new(&kb), AidaConfig::full())
            .with_metrics(&metrics);
        let (tokens, mentions) = doc();
        aida.disambiguate(&tokens, &mentions);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter(names::AIDA_DOCS), 1);
        assert_eq!(snap.counter(names::AIDA_MENTIONS), 4);
        assert!(snap.counter(names::AIDA_CANDIDATES_CONSIDERED) >= 4);
        assert_eq!(
            snap.counter(names::AIDA_SIMILARITY_EVALUATIONS),
            snap.counter(names::AIDA_SIM_PLAN_ENTITY_SIDE)
                + snap.counter(names::AIDA_SIM_PLAN_WORD_SIDE),
            "every evaluation picks exactly one plan"
        );
        assert_eq!(snap.counter(names::AIDA_DEGRADATION_JOINT), 1);
        assert_eq!(snap.counter(names::AIDA_SOLVER_INVOCATIONS), 1);
        assert!(snap.counter(names::AIDA_SOLVER_ITERATIONS) > 0);
        assert_eq!(snap.counter(names::AIDA_SOLVER_BUDGET_EXHAUSTED), 0);
        // The null clock freezes spans at zero duration but still counts.
        let span_count = snap
            .histograms
            .iter()
            .find(|(n, _)| n == names::STAGE_FEATURES_NS)
            .map(|(_, h)| h.count)
            .unwrap();
        assert_eq!(span_count, 1);
    }

    #[test]
    fn metrics_are_identical_across_repeat_runs() {
        use ned_obs::Metrics;
        let kb = kb();
        let (tokens, mentions) = doc();
        let snapshots: Vec<_> = (0..2)
            .map(|_| {
                let metrics = Metrics::new();
                let aida =
                    Disambiguator::new(&kb, MilneWitten::new(&kb), AidaConfig::full())
                        .with_metrics(&metrics);
                aida.disambiguate(&tokens, &mentions);
                metrics.snapshot()
            })
            .collect();
        assert_eq!(snapshots[0], snapshots[1]);
    }

    #[test]
    fn exhausted_budget_is_counted() {
        use ned_obs::{names, Metrics};
        let kb = kb();
        let metrics = Metrics::new();
        let config = AidaConfig { solver_max_iterations: 1, ..AidaConfig::full() };
        let aida = Disambiguator::new(&kb, MilneWitten::new(&kb), config)
            .with_metrics(&metrics);
        let (tokens, mentions) = doc();
        let result = aida.disambiguate(&tokens, &mentions);
        assert_eq!(result.degradation, DegradationLevel::NoCoherence);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter(names::AIDA_SOLVER_BUDGET_EXHAUSTED), 1);
        assert_eq!(snap.counter(names::AIDA_DEGRADATION_NO_COHERENCE), 1);
        assert_eq!(snap.counter(names::AIDA_DEGRADATION_JOINT), 0);
    }

    #[test]
    fn null_clock_never_trips_the_wall_budget() {
        use ned_obs::Clock;
        let kb = kb();
        // A wall budget under a frozen clock: elapsed time is always zero,
        // so the deadline can never fire and the run stays reproducible.
        let config = AidaConfig { solver_wall_budget_ms: Some(1), ..AidaConfig::full() };
        let aida = Disambiguator::new(&kb, MilneWitten::new(&kb), config)
            .with_clock(Clock::null());
        let (tokens, mentions) = doc();
        let result = aida.disambiguate(&tokens, &mentions);
        assert_eq!(result.degradation, DegradationLevel::None);
    }

    #[test]
    fn deterministic_output() {
        let kb = kb();
        let aida = Disambiguator::new(&kb, MilneWitten::new(&kb), AidaConfig::full());
        let (tokens, mentions) = doc();
        let a = aida.disambiguate(&tokens, &mentions);
        let b = aida.disambiguate(&tokens, &mentions);
        assert_eq!(a, b);
    }
}
