//! Candidate retrieval and local feature computation.
//!
//! For each mention the dictionary provides candidate entities (§3.3.2; the
//! case rules live in the dictionary itself). Every candidate gets the two
//! local features: popularity prior (§3.3.3) and keyphrase similarity
//! (§3.3.4).

use ned_kb::{EntityId, KbView, WordId};
use ned_text::Mention;

use crate::config::KeywordWeighting;
use crate::obs::PipelineObs;
use crate::scratch::with_scratch;
use crate::similarity::simscores_batch_arena;

/// Local (per-mention) features of one candidate entity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateFeatures {
    /// The candidate.
    pub entity: EntityId,
    /// Popularity prior p(e | mention).
    pub prior: f64,
    /// Raw keyphrase similarity `simscore(m, e)`.
    pub sim: f64,
    /// Similarity normalized to [0, 1] by the best candidate of this
    /// mention (0 when no candidate matches any context).
    pub sim_normalized: f64,
}

/// Retrieves candidates for `mention` and computes their local features
/// against `context` (the mention's context words, position-sorted).
pub fn candidate_features<K: KbView + ?Sized>(
    kb: &K,
    mention: &Mention,
    context: &[(usize, WordId)],
    weighting: KeywordWeighting,
) -> Vec<CandidateFeatures> {
    candidate_features_for_surface(kb, &mention.surface, context, weighting)
}

/// Like [`candidate_features`], but with an explicit lookup surface — used
/// by document-internal mention expansion, where a short mention borrows a
/// longer co-occurring mention's surface for candidate retrieval.
pub fn candidate_features_for_surface<K: KbView + ?Sized>(
    kb: &K,
    surface: &str,
    context: &[(usize, WordId)],
    weighting: KeywordWeighting,
) -> Vec<CandidateFeatures> {
    candidate_features_observed(kb, surface, context, weighting, &PipelineObs::default())
}

/// [`candidate_features_for_surface`] with pipeline work counters
/// (candidates considered, similarity plan/scan accounting).
///
/// All candidates of the mention are scored in one batched pass over the
/// keyphrase inverted index, against one worker-local scratch arena — no
/// per-candidate allocation and no nested parallel fan-out (parallelism
/// splits at the document level, where chunks are coarse enough to pay for
/// themselves). The batched pass is verified bit-identical to per-candidate
/// scoring, so features are the same as a sequential scan.
pub fn candidate_features_observed<K: KbView + ?Sized>(
    kb: &K,
    surface: &str,
    context: &[(usize, WordId)],
    weighting: KeywordWeighting,
    obs: &PipelineObs,
) -> Vec<CandidateFeatures> {
    let cands = kb.candidates(surface);
    obs.candidates_considered.add(cands.len() as u64);
    if cands.is_empty() {
        return Vec::new();
    }
    with_scratch(|scratch| {
        // One index query set for all candidates of this mention, built in
        // the arena (same sort+dedup as `context_word_set`).
        scratch.context_words.clear();
        scratch.context_words.extend(context.iter().map(|&(_, w)| w));
        scratch.context_words.sort_unstable();
        scratch.context_words.dedup();
        simscores_batch_arena(
            kb,
            cands.len(),
            |i| cands[i].entity, // ned-lint: allow(p1) — i < cands.len() by construction
            context,
            weighting,
            &obs.sim,
            scratch,
        );
        let mut features: Vec<CandidateFeatures> = cands
            .iter()
            .zip(scratch.sims.iter())
            .map(|(c, &sim)| CandidateFeatures {
                entity: c.entity,
                prior: kb.prior(surface, c.entity),
                sim,
                sim_normalized: 0.0,
            })
            .collect();
        let max_sim = features.iter().map(|f| f.sim).fold(0.0f64, f64::max);
        if max_sim > 0.0 {
            for f in &mut features {
                f.sim_normalized = f.sim / max_sim;
            }
        }
        features
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::DocumentContext;
    use ned_kb::{EntityKind, KbBuilder, KnowledgeBase};
    use ned_text::tokenize;

    fn kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        let song = b.add_entity("Kashmir (song)", EntityKind::Work);
        let region = b.add_entity("Kashmir (region)", EntityKind::Location);
        b.add_name(song, "Kashmir", 6);
        b.add_name(region, "Kashmir", 94);
        b.add_keyphrase(song, "unusual chords", 2);
        b.add_keyphrase(song, "rock performance", 3);
        b.add_keyphrase(region, "Himalaya mountains", 4);
        b.build()
    }

    #[test]
    fn features_for_ambiguous_mention() {
        let kb = kb();
        let tokens = tokenize("They performed Kashmir with unusual chords.");
        let ctx = DocumentContext::build(&kb, &tokens);
        let m = Mention::new("Kashmir", 2, 3);
        let feats = candidate_features(&kb, &m, &ctx.for_mention(&m), KeywordWeighting::Npmi);
        assert_eq!(feats.len(), 2);
        let song = kb.entity_by_name("Kashmir (song)").unwrap();
        let region = kb.entity_by_name("Kashmir (region)").unwrap();
        let f_song = feats.iter().find(|f| f.entity == song).unwrap();
        let f_region = feats.iter().find(|f| f.entity == region).unwrap();
        // The prior prefers the region; the context prefers the song.
        assert!(f_region.prior > f_song.prior);
        assert!(f_song.sim > f_region.sim);
        assert!((f_song.sim_normalized - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_mention_has_no_candidates() {
        let kb = kb();
        let m = Mention::new("Snowden", 0, 1);
        let feats = candidate_features(&kb, &m, &[], KeywordWeighting::Npmi);
        assert!(feats.is_empty());
    }

    #[test]
    fn zero_context_gives_zero_normalized_sim() {
        let kb = kb();
        let m = Mention::new("Kashmir", 0, 1);
        let feats = candidate_features(&kb, &m, &[], KeywordWeighting::Npmi);
        assert!(feats.iter().all(|f| f.sim == 0.0 && f.sim_normalized == 0.0));
        // Priors still sum to 1 over the candidates.
        let p: f64 = feats.iter().map(|f| f.prior).sum();
        assert!((p - 1.0).abs() < 1e-12);
    }
}
