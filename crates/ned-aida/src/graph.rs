//! The weighted mention–entity graph (§3.4.1).
//!
//! Nodes are the mentions and their candidate entities (one node per
//! distinct entity). Mention–entity edges carry the combined local weight;
//! entity–entity edges carry the coherence (relatedness) and exist only
//! between candidates of *different* mentions (§4.6.4). Weight classes are
//! each scaled to [0, 1], rescaled so their averages match, and finally
//! balanced by γ (entity edges × γ, mention edges × (1 − γ)).

use ned_kb::fx::FxHashMap;
use ned_kb::EntityId;
use ned_relatedness::pair_selection::coherence_pairs;
use ned_relatedness::Relatedness;
use rayon::prelude::*;

/// An entity node with its incident edges.
#[derive(Debug, Clone)]
pub struct EntityNode {
    /// The knowledge-base entity.
    pub entity: EntityId,
    /// Incident mention edges `(mention index, weight)`.
    pub mention_edges: Vec<(usize, f64)>,
    /// Incident entity edges `(entity node index, weight)`.
    pub entity_edges: Vec<(usize, f64)>,
}

/// The assembled disambiguation graph.
#[derive(Debug, Clone, Default)]
pub struct MentionEntityGraph {
    /// Number of mention nodes.
    pub mention_count: usize,
    /// Entity nodes.
    pub nodes: Vec<EntityNode>,
    /// Candidate entity node indexes per mention.
    pub mention_candidates: Vec<Vec<usize>>,
}

impl MentionEntityGraph {
    /// Builds the graph from per-mention local candidate weights and a
    /// relatedness measure.
    ///
    /// `local[i]` holds `(entity, local weight)` for mention `i`. When
    /// `use_coherence` is false no entity edges are created (the graph
    /// degenerates to independent local decisions).
    pub fn build<R: Relatedness>(
        local: &[Vec<(EntityId, f64)>],
        relatedness: &R,
        gamma: f64,
        use_coherence: bool,
    ) -> Self {
        let mention_count = local.len();
        let mut nodes: Vec<EntityNode> = Vec::new();
        let mut node_of: FxHashMap<EntityId, usize> = FxHashMap::default();
        let mut mention_candidates: Vec<Vec<usize>> = Vec::with_capacity(mention_count);

        for (mi, cands) in local.iter().enumerate() {
            let mut idxs = Vec::with_capacity(cands.len());
            for &(e, w) in cands {
                let ni = *node_of.entry(e).or_insert_with(|| {
                    nodes.push(EntityNode {
                        entity: e,
                        mention_edges: Vec::new(),
                        entity_edges: Vec::new(),
                    });
                    nodes.len() - 1
                });
                nodes[ni].mention_edges.push((mi, w));
                idxs.push(ni);
            }
            mention_candidates.push(idxs);
        }

        // Scale mention-entity weights to [0, 1].
        let me_max = nodes
            .iter()
            .flat_map(|n| n.mention_edges.iter().map(|&(_, w)| w))
            .fold(0.0f64, f64::max);
        if me_max > 0.0 {
            for n in &mut nodes {
                for e in &mut n.mention_edges {
                    e.1 /= me_max;
                }
            }
        }

        let mut graph = MentionEntityGraph { mention_count, nodes, mention_candidates };

        // Without coherence the local weights are used as-is and the graph
        // reduces to independent per-mention decisions.
        if use_coherence && gamma > 0.0 {
            graph.add_coherence_edges(local, relatedness, node_of, gamma);
        }
        graph
    }

    fn add_coherence_edges<R: Relatedness>(
        &mut self,
        local: &[Vec<(EntityId, f64)>],
        relatedness: &R,
        node_of: FxHashMap<EntityId, usize>,
        gamma: f64,
    ) {
        let candidate_lists: Vec<Vec<EntityId>> =
            local.iter().map(|c| c.iter().map(|&(e, _)| e).collect()).collect();
        let pairs = coherence_pairs(&candidate_lists);
        // Relatedness is the expensive part: fan the pair evaluations out
        // over rayon, collect in pair order, then scatter into the adjacency
        // lists sequentially — edge insertion order (and thus the solver's
        // input) is identical to a sequential build.
        let mut weighted: Vec<(usize, usize, f64)> = pairs
            .par_iter()
            .map(|&(a, b)| (node_of[&a], node_of[&b], relatedness.relatedness(a, b)))
            .collect();
        // Scale entity-entity weights to [0, 1].
        let ee_max = weighted.iter().map(|&(_, _, w)| w).fold(0.0f64, f64::max);
        if ee_max > 0.0 {
            for e in &mut weighted {
                e.2 /= ee_max;
            }
        }
        // Rescale so the average entity-entity weight equals the average
        // mention-entity weight.
        let me_weights: Vec<f64> = self
            .nodes
            .iter()
            .flat_map(|n| n.mention_edges.iter().map(|&(_, w)| w))
            .collect();
        let me_avg = mean(&me_weights);
        let ee_avg = mean(&weighted.iter().map(|&(_, _, w)| w).collect::<Vec<_>>());
        let rescale = if ee_avg > 0.0 && me_avg > 0.0 { me_avg / ee_avg } else { 1.0 };

        for (a, b, w) in weighted {
            let w = w * rescale * gamma;
            if w <= 0.0 {
                continue;
            }
            self.nodes[a].entity_edges.push((b, w));
            self.nodes[b].entity_edges.push((a, w));
        }
        // Balance mention edges by (1 − γ).
        for n in &mut self.nodes {
            for e in &mut n.mention_edges {
                e.1 *= 1.0 - gamma;
            }
        }
    }

    /// Number of entity nodes.
    pub fn entity_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of entity–entity edges (undirected).
    pub fn coherence_edge_count(&self) -> usize {
        self.nodes.iter().map(|n| n.entity_edges.len()).sum::<usize>() / 2
    }

    /// Weighted degree of entity node `ni` restricted to `active` nodes:
    /// all incident mention edges plus entity edges to active neighbours.
    pub fn weighted_degree(&self, ni: usize, active: &[bool]) -> f64 {
        let n = &self.nodes[ni];
        let me: f64 = n.mention_edges.iter().map(|&(_, w)| w).sum();
        let ee: f64 =
            n.entity_edges.iter().filter(|&&(nj, _)| active[nj]).map(|&(_, w)| w).sum();
        me + ee
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fixed-table relatedness for tests.
    struct TableRel(Vec<(EntityId, EntityId, f64)>);

    impl Relatedness for TableRel {
        fn name(&self) -> &'static str {
            "table"
        }
        fn relatedness(&self, a: EntityId, b: EntityId) -> f64 {
            self.0
                .iter()
                .find(|&&(x, y, _)| (x == a && y == b) || (x == b && y == a))
                .map_or(0.0, |&(_, _, w)| w)
        }
    }

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn builds_nodes_and_edges() {
        let local = vec![vec![(e(1), 0.8), (e(2), 0.4)], vec![(e(3), 0.6)]];
        let rel = TableRel(vec![(e(1), e(3), 0.9)]);
        let g = MentionEntityGraph::build(&local, &rel, 0.4, true);
        assert_eq!(g.mention_count, 2);
        assert_eq!(g.entity_count(), 3);
        assert_eq!(g.coherence_edge_count(), 1);
        assert_eq!(g.mention_candidates[0].len(), 2);
    }

    #[test]
    fn shared_candidate_becomes_one_node() {
        let local = vec![vec![(e(1), 0.8)], vec![(e(1), 0.5)]];
        let rel = TableRel(vec![]);
        let g = MentionEntityGraph::build(&local, &rel, 0.4, true);
        assert_eq!(g.entity_count(), 1);
        assert_eq!(g.nodes[0].mention_edges.len(), 2);
    }

    #[test]
    fn weights_are_scaled_and_balanced() {
        let local = vec![vec![(e(1), 2.0)], vec![(e(2), 1.0)]];
        let rel = TableRel(vec![(e(1), e(2), 0.5)]);
        let gamma = 0.4;
        let g = MentionEntityGraph::build(&local, &rel, gamma, true);
        // Max local weight 2.0 → scaled to 1.0, then × (1 − γ) = 0.6.
        let w_max: f64 = g
            .nodes
            .iter()
            .flat_map(|n| n.mention_edges.iter().map(|&(_, w)| w))
            .fold(0.0, f64::max);
        assert!((w_max - 0.6).abs() < 1e-12);
        // One entity edge: scaled to 1.0 (it is the max), average-matched to
        // the mention average (0.75), then × γ.
        let ee = g.nodes[0].entity_edges[0].1;
        assert!((ee - 0.75 * gamma).abs() < 1e-12, "{ee}");
    }

    #[test]
    fn no_coherence_edges_when_disabled() {
        let local = vec![vec![(e(1), 1.0)], vec![(e(2), 1.0)]];
        let rel = TableRel(vec![(e(1), e(2), 0.9)]);
        let g = MentionEntityGraph::build(&local, &rel, 0.4, false);
        assert_eq!(g.coherence_edge_count(), 0);
    }

    #[test]
    fn weighted_degree_respects_active_set() {
        let local = vec![vec![(e(1), 1.0)], vec![(e(2), 1.0)], vec![(e(3), 1.0)]];
        let rel = TableRel(vec![(e(1), e(2), 1.0), (e(1), e(3), 1.0)]);
        let g = MentionEntityGraph::build(&local, &rel, 0.5, true);
        let all_active = vec![true; 3];
        let d_full = g.weighted_degree(0, &all_active);
        let partial = vec![true, true, false];
        let d_partial = g.weighted_degree(0, &partial);
        assert!(d_full > d_partial);
        assert!(d_partial > 0.0);
    }

    #[test]
    fn zero_weight_edges_are_skipped() {
        let local = vec![vec![(e(1), 1.0)], vec![(e(2), 1.0)]];
        let rel = TableRel(vec![]); // relatedness 0 everywhere
        let g = MentionEntityGraph::build(&local, &rel, 0.4, true);
        assert_eq!(g.coherence_edge_count(), 0);
    }
}
