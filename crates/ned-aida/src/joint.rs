//! Joint entity recognition and disambiguation (the §7.2.1 outlook, in the
//! spirit of Milne & Witten's "disambiguation confidence decides whether a
//! phrase is a mention", §2.2.2).
//!
//! The plain pipeline recognizes mentions first and disambiguates second —
//! so a spurious NER span ("Record" at sentence start) gets force-mapped to
//! some entity. The joint annotator instead treats recognition as
//! *tentative*: candidate spans come from the rule NER plus a
//! dictionary-driven gazetteer, everything is disambiguated jointly, and
//! spans whose best assignment is weak are dropped again.

use ned_kb::{EntityId, KbView};
use ned_relatedness::Relatedness;
use ned_text::{tokenize, Mention, NerConfig, Recognizer, Token};

use crate::disambiguator::Disambiguator;
use crate::method::NedMethod;
use crate::result::MentionAssignment;

/// One accepted annotation: a mention span, its entity, and the
/// annotator's confidence.
#[derive(Debug, Clone, PartialEq)]
pub struct Annotation {
    /// The recognized mention.
    pub mention: Mention,
    /// The linked entity (annotations are only emitted for linkable spans).
    pub entity: EntityId,
    /// Normalized confidence of the assignment.
    pub confidence: f64,
}

/// Configuration of the joint annotator.
#[derive(Debug, Clone)]
pub struct JointConfig {
    /// Recognition rules.
    pub ner: NerConfig,
    /// Minimum normalized confidence for a span to survive.
    pub min_confidence: f64,
    /// Also propose spans found only via the dictionary gazetteer.
    pub use_gazetteer: bool,
}

impl Default for JointConfig {
    fn default() -> Self {
        JointConfig { ner: NerConfig::default(), min_confidence: 0.35, use_gazetteer: true }
    }
}

impl JointConfig {
    /// Builds the tentative-span recognizer this config describes: the rule
    /// NER plus (when `use_gazetteer` is set) every dictionary surface as a
    /// recognition hint.
    ///
    /// Building the gazetteer walks the whole dictionary, so callers that
    /// serve many requests (the `ned-serve` worker loop) build one
    /// recognizer up front and reuse it across requests.
    pub fn build_recognizer<K: KbView>(&self, kb: &K) -> Recognizer {
        let mut recognizer = Recognizer::new(self.ner.clone());
        if self.use_gazetteer {
            for (surface, _) in kb.dictionary().iter() {
                recognizer.add_gazetteer_entry(surface);
            }
        }
        recognizer
    }

    /// The acceptance filter: keeps a span when it is linkable and either
    /// unambiguous or confident enough (§2.2.2's recognize-via-
    /// disambiguation idea).
    pub fn accept(
        &self,
        mention: Mention,
        assignment: MentionAssignment,
    ) -> Option<Annotation> {
        let entity = assignment.entity?;
        let confidence = assignment.normalized_score();
        if assignment.candidate_scores.len() > 1 && confidence < self.min_confidence {
            return None;
        }
        Some(Annotation { mention, entity, confidence })
    }
}

/// End-to-end annotator: raw text in, linked entity annotations out.
pub struct JointAnnotator<'a, K, R> {
    disambiguator: &'a Disambiguator<K, R>,
    recognizer: Recognizer,
    config: JointConfig,
}

// Manual Debug: `R` need not be Debug.
impl<K, R> std::fmt::Debug for JointAnnotator<'_, K, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JointAnnotator")
            .field("recognizer", &self.recognizer)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl<'a, K: KbView, R: Relatedness> JointAnnotator<'a, K, R> {
    /// Creates an annotator; when `use_gazetteer` is set, every dictionary
    /// surface becomes a recognition hint.
    pub fn new(disambiguator: &'a Disambiguator<K, R>, config: JointConfig) -> Self {
        let recognizer = config.build_recognizer(disambiguator.kb());
        JointAnnotator { disambiguator, recognizer, config }
    }

    /// The knowledge base handle in use.
    pub fn kb(&self) -> &K {
        self.disambiguator.kb()
    }

    /// Annotates raw text: tokenize → recognize tentative spans →
    /// disambiguate jointly → keep confident, linkable spans.
    pub fn annotate(&self, text: &str) -> (Vec<Token>, Vec<Annotation>) {
        let tokens = tokenize(text);
        let annotations = self.annotate_tokens(&tokens);
        (tokens, annotations)
    }

    /// Annotates a pre-tokenized document.
    pub fn annotate_tokens(&self, tokens: &[Token]) -> Vec<Annotation> {
        self.annotate_tokens_using(self.disambiguator, tokens)
    }

    /// Annotates a pre-tokenized document through a *caller-supplied*
    /// disambiguator, reusing this annotator's recognizer and acceptance
    /// config.
    ///
    /// The serving layer uses this to apply per-request deadline plans: the
    /// gazetteer-backed recognizer is expensive to build and shared across
    /// requests, while the disambiguator (cheap to construct over `Arc`
    /// handles) is rebuilt per request with a plan-adjusted configuration.
    pub fn annotate_tokens_using(
        &self,
        disambiguator: &Disambiguator<K, R>,
        tokens: &[Token],
    ) -> Vec<Annotation> {
        let mentions = self.recognizer.recognize(tokens);
        if mentions.is_empty() {
            return Vec::new();
        }
        let result = disambiguator.disambiguate(tokens, &mentions);
        mentions
            .into_iter()
            .zip(result.assignments)
            .filter_map(|(mention, assignment)| self.config.accept(mention, assignment))
            .collect()
    }

    /// Like [`JointAnnotator::annotate_tokens_using`], but also reports the
    /// degradation level the disambiguator used (the serving layer surfaces
    /// it per response).
    pub fn annotate_tokens_observed(
        &self,
        disambiguator: &Disambiguator<K, R>,
        tokens: &[Token],
    ) -> (Vec<Annotation>, ned_core::DegradationLevel) {
        let mentions = self.recognizer.recognize(tokens);
        if mentions.is_empty() {
            return (Vec::new(), ned_core::DegradationLevel::None);
        }
        let result = disambiguator.disambiguate(tokens, &mentions);
        let degradation = result.degradation;
        let annotations = mentions
            .into_iter()
            .zip(result.assignments)
            .filter_map(|(mention, assignment)| self.config.accept(mention, assignment))
            .collect();
        (annotations, degradation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AidaConfig;
    use ned_kb::{EntityKind, KbBuilder, KnowledgeBase};
    use ned_relatedness::MilneWitten;

    fn kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        let song = b.add_entity("Kashmir (song)", EntityKind::Work);
        let jimmy = b.add_entity("Jimmy Page", EntityKind::Person);
        let larry = b.add_entity("Larry Page", EntityKind::Person);
        b.add_name(song, "Kashmir", 10);
        b.add_name(jimmy, "Page", 50);
        b.add_name(larry, "Page", 50);
        b.add_keyphrase(song, "unusual chords", 3);
        b.add_keyphrase(jimmy, "unusual chords", 2);
        b.add_keyphrase(jimmy, "session guitarist", 2);
        b.add_keyphrase(larry, "search engine", 3);
        b.add_link(jimmy, song);
        b.add_link(song, jimmy);
        b.build()
    }

    #[test]
    fn annotates_linkable_spans_end_to_end() {
        let kb = kb();
        let aida = Disambiguator::new(&kb, MilneWitten::new(&kb), AidaConfig::sim_only());
        let annotator = JointAnnotator::new(&aida, JointConfig::default());
        let (_tokens, annotations) =
            annotator.annotate("They performed Kashmir with unusual chords, said Page.");
        let surfaces: Vec<&str> =
            annotations.iter().map(|a| a.mention.surface.as_str()).collect();
        assert!(surfaces.contains(&"Kashmir"), "{surfaces:?}");
        assert!(surfaces.contains(&"Page"), "{surfaces:?}");
        let page = annotations.iter().find(|a| a.mention.surface == "Page").unwrap();
        assert_eq!(kb.entity(page.entity).canonical_name, "Jimmy Page");
    }

    #[test]
    fn unlinkable_spans_are_dropped() {
        let kb = kb();
        let aida = Disambiguator::new(&kb, MilneWitten::new(&kb), AidaConfig::sim_only());
        let annotator = JointAnnotator::new(&aida, JointConfig::default());
        // "Snowden" is recognized by the NER but has no dictionary entry.
        let (_t, annotations) = annotator.annotate("Kashmir was revealed by Wulkor Snowden.");
        assert!(annotations.iter().all(|a| a.mention.surface != "Wulkor Snowden"));
    }

    #[test]
    fn weak_ambiguous_spans_are_dropped_by_confidence() {
        let kb = kb();
        let aida = Disambiguator::new(&kb, MilneWitten::new(&kb), AidaConfig::sim_only());
        let strict = JointConfig { min_confidence: 0.99, ..JointConfig::default() };
        let annotator = JointAnnotator::new(&aida, strict);
        // No context at all: "Page" is a 50/50 coin flip → dropped.
        let (_t, annotations) = annotator.annotate("We met Page yesterday.");
        assert!(annotations.iter().all(|a| a.mention.surface != "Page"), "{annotations:?}");
    }

    #[test]
    fn gazetteer_recovers_uncapitalized_context_spans() {
        let kb = kb();
        let aida = Disambiguator::new(&kb, MilneWitten::new(&kb), AidaConfig::sim_only());
        let annotator = JointAnnotator::new(&aida, JointConfig::default());
        // Sentence-initial "Kashmir" would need NER evidence; the gazetteer
        // proposes it and disambiguation confirms it.
        let (_t, annotations) = annotator.annotate("Kashmir has unusual chords throughout.");
        assert!(annotations.iter().any(|a| a.mention.surface == "Kashmir"));
    }

    #[test]
    fn empty_text() {
        let kb = kb();
        let aida = Disambiguator::new(&kb, MilneWitten::new(&kb), AidaConfig::sim_only());
        let annotator = JointAnnotator::new(&aida, JointConfig::default());
        let (tokens, annotations) = annotator.annotate("");
        assert!(tokens.is_empty());
        assert!(annotations.is_empty());
    }
}
