//! Shortest-cover computation for partial keyphrase matches (§3.3.4).
//!
//! A keyphrase may occur only partially in the input ("Grammy Award winner"
//! matched by "winner of many prizes including the Grammy"). The *cover* of
//! a phrase is the shortest token window containing a maximal number of the
//! phrase's distinct words. `score(q)` (Eq. 3.4) then rewards proximity via
//! `z = #matching words / cover length` and weight mass via the squared
//! weight ratio.

use ned_kb::fx::FxHashMap;
use ned_kb::WordId;

/// The cover of a phrase in a document context.
#[derive(Debug, Clone, PartialEq)]
pub struct Cover {
    /// Number of distinct phrase words inside the cover (the maximum
    /// achievable in the context).
    pub matched_words: usize,
    /// Window length in tokens (last position − first position + 1).
    pub length: usize,
    /// The distinct matched word ids.
    pub words: Vec<WordId>,
}

impl Cover {
    /// The proximity factor `z = matched words / cover length`.
    pub fn z(&self) -> f64 {
        if self.length == 0 {
            return 0.0;
        }
        self.matched_words as f64 / self.length as f64
    }
}

/// The shape of a cover without its word list: enough to compute `z`.
///
/// Produced by the scratch-based cover functions, which leave the distinct
/// matched words in the [`CoverScratch`] instead of allocating a fresh
/// vector per call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverShape {
    /// Number of distinct phrase words inside the cover.
    pub matched_words: usize,
    /// Window length in tokens.
    pub length: usize,
}

impl CoverShape {
    /// The proximity factor `z = matched words / cover length`.
    pub fn z(&self) -> f64 {
        if self.length == 0 {
            return 0.0;
        }
        self.matched_words as f64 / self.length as f64
    }
}

/// Reusable buffers for the scratch-based shortest-cover computation.
///
/// One scratch serves any number of calls; every buffer is cleared (not
/// freed) per call, so steady-state cover computation performs zero heap
/// allocations. The scratch never influences results — only where the
/// intermediates live.
#[derive(Debug, Default)]
pub struct CoverScratch {
    /// Phrase-word occurrences in the context, position order.
    occurrences: Vec<(usize, WordId)>,
    /// Sliding-window multiplicity of each phrase word.
    counts: FxHashMap<WordId, u32>,
    /// Distinct words of the last cover found (sorted, deduplicated).
    words: Vec<WordId>,
    /// Sorted-deduplicated membership set for unsorted phrase word lists.
    phrase_set: Vec<WordId>,
}

impl CoverScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The sorted, deduplicated word ids of the most recent cover — valid
    /// after a [`shortest_cover_into`] / [`shortest_cover_unsorted_into`]
    /// call that returned `Some`.
    pub fn cover_words(&self) -> &[WordId] {
        &self.words
    }
}

/// Scratch-based [`shortest_cover`]: identical result, zero steady-state
/// allocations. `phrase_words` must be sorted and deduplicated (e.g. a
/// precomputed phrase run) — membership via binary search over the sorted
/// set is equivalent to the reference's linear `contains` scan, so the
/// occurrence list, the window scan, and the final cover are the same. On
/// success the cover's distinct words are left in the scratch
/// ([`CoverScratch::cover_words`]).
// ned-lint: hot
pub fn shortest_cover_into(
    context: &[(usize, WordId)],
    phrase_words: &[WordId],
    scratch: &mut CoverScratch,
) -> Option<CoverShape> {
    debug_assert!(
        phrase_words.windows(2).all(|p| p[0] < p[1]), // ned-lint: allow(p1) — windows(2) pairs
        "phrase_words must be sorted and deduplicated"
    );
    let CoverScratch { occurrences, counts, words, .. } = scratch;
    cover_core(context, occurrences, counts, words, |w| {
        phrase_words.binary_search(&w).is_ok()
    })
}

/// [`shortest_cover_into`] for unsorted phrase word lists (e.g. the raw word
/// sequence of an emerging-entity keyphrase): sorts a scratch-resident copy
/// for the membership tests, then runs the same window scan.
// ned-lint: hot
pub fn shortest_cover_unsorted_into(
    context: &[(usize, WordId)],
    phrase_words: &[WordId],
    scratch: &mut CoverScratch,
) -> Option<CoverShape> {
    let CoverScratch { occurrences, counts, words, phrase_set } = scratch;
    phrase_set.clear();
    phrase_set.extend_from_slice(phrase_words);
    phrase_set.sort_unstable();
    phrase_set.dedup();
    cover_core(context, occurrences, counts, words, |w| phrase_set.binary_search(&w).is_ok())
}

/// The sliding-window scan shared by the scratch-based entry points.
///
/// Bit-identical to [`shortest_cover`]: the window logic is the same; the
/// only difference is that improving windows are recorded as `(left, right,
/// length)` indices and the word list is materialized once, for the final
/// best window, instead of on every improvement.
fn cover_core(
    context: &[(usize, WordId)],
    occurrences: &mut Vec<(usize, WordId)>,
    counts: &mut FxHashMap<WordId, u32>,
    words: &mut Vec<WordId>,
    is_phrase_word: impl Fn(WordId) -> bool,
) -> Option<CoverShape> {
    occurrences.clear();
    occurrences.extend(context.iter().copied().filter(|&(_, w)| is_phrase_word(w)));
    if occurrences.is_empty() {
        return None;
    }
    // Distinct occurrence words via the reusable counts map (the reference
    // sorts a fresh vector; the count of distinct keys is the same).
    counts.clear();
    for &(_, w) in occurrences.iter() {
        *counts.entry(w).or_insert(0) += 1;
    }
    let distinct_total = counts.len();
    counts.clear();

    let mut distinct = 0usize;
    let mut best: Option<(usize, usize, usize)> = None; // (left, right, length)
    let mut left = 0usize;
    for right in 0..occurrences.len() {
        let (_, w) = occurrences[right]; // ned-lint: allow(p1) — right < len by loop bound
        let c = counts.entry(w).or_insert(0);
        if *c == 0 {
            distinct += 1;
        }
        *c += 1;
        while distinct == distinct_total {
            let (lpos, lw) = occurrences[left]; // ned-lint: allow(p1) — left ≤ right < len
            let (rpos, _) = occurrences[right]; // ned-lint: allow(p1) — right < len by loop bound
            let length = rpos - lpos + 1;
            let better = match best {
                None => true,
                Some((_, _, b)) => length < b,
            };
            if better {
                best = Some((left, right, length));
            }
            // Shrink from the left.
            if let Some(lc) = counts.get_mut(&lw) {
                *lc -= 1;
                if *lc == 0 {
                    distinct -= 1;
                }
            }
            left += 1;
        }
    }
    let (bl, br, length) = best?;
    words.clear();
    words.extend(occurrences[bl..=br].iter().map(|&(_, w)| w)); // ned-lint: allow(p1) — window bounds from the scan
    words.sort_unstable();
    words.dedup();
    Some(CoverShape { matched_words: distinct_total, length })
}

/// Finds the shortest window over `context` (position-sorted `(pos, word)`
/// pairs) containing a maximal number of distinct words of `phrase_words`.
///
/// Returns `None` when no phrase word occurs in the context.
///
/// This is the reference implementation, allocating its buffers per call;
/// the hot path uses [`shortest_cover_into`] with a reusable
/// [`CoverScratch`] and is verified bit-identical against it.
pub fn shortest_cover(context: &[(usize, WordId)], phrase_words: &[WordId]) -> Option<Cover> {
    // Occurrences of phrase words in the context, in position order.
    let occurrences: Vec<(usize, WordId)> = context
        .iter()
        .copied()
        .filter(|(_, w)| phrase_words.contains(w))
        .collect();
    if occurrences.is_empty() {
        return None;
    }
    let distinct_total = {
        let mut ws: Vec<WordId> = occurrences.iter().map(|&(_, w)| w).collect();
        ws.sort_unstable();
        ws.dedup();
        ws.len()
    };

    // Two-pointer sliding window over the occurrence list, maximizing the
    // distinct count (which is `distinct_total`, always achievable) and
    // minimizing window length in token positions.
    let mut counts: FxHashMap<WordId, u32> = FxHashMap::default();
    let mut distinct = 0usize;
    let mut best: Option<Cover> = None;
    let mut left = 0usize;
    for right in 0..occurrences.len() {
        let (_, w) = occurrences[right];
        let c = counts.entry(w).or_insert(0);
        if *c == 0 {
            distinct += 1;
        }
        *c += 1;
        while distinct == distinct_total {
            let (lpos, lw) = occurrences[left];
            let (rpos, _) = occurrences[right];
            let length = rpos - lpos + 1;
            let better = match &best {
                None => true,
                Some(b) => length < b.length,
            };
            if better {
                let mut words: Vec<WordId> =
                    occurrences[left..=right].iter().map(|&(_, w)| w).collect();
                words.sort_unstable();
                words.dedup();
                best = Some(Cover { matched_words: distinct_total, length, words });
            }
            // Shrink from the left.
            if let Some(lc) = counts.get_mut(&lw) {
                *lc -= 1;
                if *lc == 0 {
                    distinct -= 1;
                }
            }
            left += 1;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: u32) -> WordId {
        WordId(i)
    }

    /// Context "winner of many prizes including the Grammy" with phrase
    /// {grammy, award, winner}: positions of winner=0, grammy=6.
    #[test]
    fn partial_match_cover() {
        let context = vec![(0, w(1)), (3, w(10)), (6, w(2))];
        let phrase = vec![w(2), w(3), w(1)]; // grammy, award, winner
        let cover = shortest_cover(&context, &phrase).unwrap();
        assert_eq!(cover.matched_words, 2);
        assert_eq!(cover.length, 7); // positions 0..=6
        assert!((cover.z() - 2.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn adjacent_full_match_has_z_one() {
        let context = vec![(4, w(1)), (5, w(2)), (6, w(3))];
        let phrase = vec![w(1), w(2), w(3)];
        let cover = shortest_cover(&context, &phrase).unwrap();
        assert_eq!(cover.matched_words, 3);
        assert_eq!(cover.length, 3);
        assert!((cover.z() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn picks_shortest_among_maximal_windows() {
        // Word 1 at 0 and 10, word 2 at 12: best window is [10, 12].
        let context = vec![(0, w(1)), (10, w(1)), (12, w(2))];
        let phrase = vec![w(1), w(2)];
        let cover = shortest_cover(&context, &phrase).unwrap();
        assert_eq!(cover.length, 3);
        assert_eq!(cover.matched_words, 2);
    }

    #[test]
    fn no_match_returns_none() {
        let context = vec![(0, w(5)), (1, w(6))];
        assert!(shortest_cover(&context, &[w(1)]).is_none());
        assert!(shortest_cover(&[], &[w(1)]).is_none());
    }

    #[test]
    fn single_word_match() {
        let context = vec![(7, w(3))];
        let cover = shortest_cover(&context, &[w(3), w(4)]).unwrap();
        assert_eq!(cover.matched_words, 1);
        assert_eq!(cover.length, 1);
        assert_eq!(cover.words, vec![w(3)]);
    }

    #[test]
    fn repeated_words_do_not_inflate_distinct_count() {
        let context = vec![(0, w(1)), (1, w(1)), (2, w(1))];
        let cover = shortest_cover(&context, &[w(1), w(2)]).unwrap();
        assert_eq!(cover.matched_words, 1);
        assert_eq!(cover.length, 1);
    }

    /// One scratch reused across every case must reproduce the reference
    /// exactly — shape, words, and the `z` bits.
    #[test]
    fn scratch_cover_matches_reference_across_reuse() {
        type Case = (Vec<(usize, WordId)>, Vec<WordId>);
        let cases: Vec<Case> = vec![
            (vec![(0, w(1)), (3, w(10)), (6, w(2))], vec![w(2), w(3), w(1)]),
            (vec![(4, w(1)), (5, w(2)), (6, w(3))], vec![w(1), w(2), w(3)]),
            (vec![(0, w(1)), (10, w(1)), (12, w(2))], vec![w(1), w(2)]),
            (vec![(0, w(5)), (1, w(6))], vec![w(1)]),
            (vec![], vec![w(1)]),
            (vec![(7, w(3))], vec![w(3), w(4)]),
            (vec![(0, w(1)), (1, w(1)), (2, w(1))], vec![w(1), w(2)]),
            (vec![(0, w(2)), (1, w(9)), (2, w(2)), (3, w(4)), (9, w(4))], vec![w(4), w(2)]),
        ];
        let mut scratch = CoverScratch::new();
        for (context, phrase) in &cases {
            let reference = shortest_cover(context, phrase);
            // Unsorted entry point takes the raw phrase word list.
            let via_unsorted = shortest_cover_unsorted_into(context, phrase, &mut scratch);
            match (&reference, &via_unsorted) {
                (None, None) => {}
                (Some(c), Some(s)) => {
                    assert_eq!(c.matched_words, s.matched_words);
                    assert_eq!(c.length, s.length);
                    assert_eq!(c.words, scratch.cover_words());
                    assert_eq!(c.z().to_bits(), s.z().to_bits());
                }
                other => panic!("reference and scratch disagree: {other:?}"),
            }
            // Sorted entry point takes the deduplicated sorted set.
            let mut sorted = phrase.clone();
            sorted.sort_unstable();
            sorted.dedup();
            let via_sorted = shortest_cover_into(context, &sorted, &mut scratch);
            assert_eq!(via_unsorted, via_sorted);
            if let Some(c) = &reference {
                assert_eq!(c.words, scratch.cover_words());
            }
        }
    }
}
