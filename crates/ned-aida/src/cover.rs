//! Shortest-cover computation for partial keyphrase matches (§3.3.4).
//!
//! A keyphrase may occur only partially in the input ("Grammy Award winner"
//! matched by "winner of many prizes including the Grammy"). The *cover* of
//! a phrase is the shortest token window containing a maximal number of the
//! phrase's distinct words. `score(q)` (Eq. 3.4) then rewards proximity via
//! `z = #matching words / cover length` and weight mass via the squared
//! weight ratio.

use ned_kb::fx::FxHashMap;
use ned_kb::WordId;

/// The cover of a phrase in a document context.
#[derive(Debug, Clone, PartialEq)]
pub struct Cover {
    /// Number of distinct phrase words inside the cover (the maximum
    /// achievable in the context).
    pub matched_words: usize,
    /// Window length in tokens (last position − first position + 1).
    pub length: usize,
    /// The distinct matched word ids.
    pub words: Vec<WordId>,
}

impl Cover {
    /// The proximity factor `z = matched words / cover length`.
    pub fn z(&self) -> f64 {
        if self.length == 0 {
            return 0.0;
        }
        self.matched_words as f64 / self.length as f64
    }
}

/// Finds the shortest window over `context` (position-sorted `(pos, word)`
/// pairs) containing a maximal number of distinct words of `phrase_words`.
///
/// Returns `None` when no phrase word occurs in the context.
pub fn shortest_cover(context: &[(usize, WordId)], phrase_words: &[WordId]) -> Option<Cover> {
    // Occurrences of phrase words in the context, in position order.
    let occurrences: Vec<(usize, WordId)> = context
        .iter()
        .copied()
        .filter(|(_, w)| phrase_words.contains(w))
        .collect();
    if occurrences.is_empty() {
        return None;
    }
    let distinct_total = {
        let mut ws: Vec<WordId> = occurrences.iter().map(|&(_, w)| w).collect();
        ws.sort_unstable();
        ws.dedup();
        ws.len()
    };

    // Two-pointer sliding window over the occurrence list, maximizing the
    // distinct count (which is `distinct_total`, always achievable) and
    // minimizing window length in token positions.
    let mut counts: FxHashMap<WordId, u32> = FxHashMap::default();
    let mut distinct = 0usize;
    let mut best: Option<Cover> = None;
    let mut left = 0usize;
    for right in 0..occurrences.len() {
        let (_, w) = occurrences[right];
        let c = counts.entry(w).or_insert(0);
        if *c == 0 {
            distinct += 1;
        }
        *c += 1;
        while distinct == distinct_total {
            let (lpos, lw) = occurrences[left];
            let (rpos, _) = occurrences[right];
            let length = rpos - lpos + 1;
            let better = match &best {
                None => true,
                Some(b) => length < b.length,
            };
            if better {
                let mut words: Vec<WordId> =
                    occurrences[left..=right].iter().map(|&(_, w)| w).collect();
                words.sort_unstable();
                words.dedup();
                best = Some(Cover { matched_words: distinct_total, length, words });
            }
            // Shrink from the left.
            if let Some(lc) = counts.get_mut(&lw) {
                *lc -= 1;
                if *lc == 0 {
                    distinct -= 1;
                }
            }
            left += 1;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: u32) -> WordId {
        WordId(i)
    }

    /// Context "winner of many prizes including the Grammy" with phrase
    /// {grammy, award, winner}: positions of winner=0, grammy=6.
    #[test]
    fn partial_match_cover() {
        let context = vec![(0, w(1)), (3, w(10)), (6, w(2))];
        let phrase = vec![w(2), w(3), w(1)]; // grammy, award, winner
        let cover = shortest_cover(&context, &phrase).unwrap();
        assert_eq!(cover.matched_words, 2);
        assert_eq!(cover.length, 7); // positions 0..=6
        assert!((cover.z() - 2.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn adjacent_full_match_has_z_one() {
        let context = vec![(4, w(1)), (5, w(2)), (6, w(3))];
        let phrase = vec![w(1), w(2), w(3)];
        let cover = shortest_cover(&context, &phrase).unwrap();
        assert_eq!(cover.matched_words, 3);
        assert_eq!(cover.length, 3);
        assert!((cover.z() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn picks_shortest_among_maximal_windows() {
        // Word 1 at 0 and 10, word 2 at 12: best window is [10, 12].
        let context = vec![(0, w(1)), (10, w(1)), (12, w(2))];
        let phrase = vec![w(1), w(2)];
        let cover = shortest_cover(&context, &phrase).unwrap();
        assert_eq!(cover.length, 3);
        assert_eq!(cover.matched_words, 2);
    }

    #[test]
    fn no_match_returns_none() {
        let context = vec![(0, w(5)), (1, w(6))];
        assert!(shortest_cover(&context, &[w(1)]).is_none());
        assert!(shortest_cover(&[], &[w(1)]).is_none());
    }

    #[test]
    fn single_word_match() {
        let context = vec![(7, w(3))];
        let cover = shortest_cover(&context, &[w(3), w(4)]).unwrap();
        assert_eq!(cover.matched_words, 1);
        assert_eq!(cover.length, 1);
        assert_eq!(cover.words, vec![w(3)]);
    }

    #[test]
    fn repeated_words_do_not_inflate_distinct_count() {
        let context = vec![(0, w(1)), (1, w(1)), (2, w(1))];
        let cover = shortest_cover(&context, &[w(1), w(2)]).unwrap();
        assert_eq!(cover.matched_words, 1);
        assert_eq!(cover.length, 1);
    }
}
