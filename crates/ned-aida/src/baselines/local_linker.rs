//! A per-mention local linker: linear combination of the popularity prior
//! and the token-based context cosine.
//!
//! Stands in for the Illinois Wikifier linker score in the Chapter-5
//! comparisons (the Wikifier itself is a trained ranker over similar local
//! features); used both as a plain method and as the score ranked/
//! thresholded by the emerging-entity experiments.

use ned_kb::KbView;
use ned_text::{Mention, Token};

use crate::baselines::{context_bag, entity_context_cosine};
use crate::context::DocumentContext;
use crate::method::NedMethod;
use crate::result::{DisambiguationResult, MentionAssignment};

/// Local linker baseline ("IW" in the experiment tables).
pub struct LocalLinker<K> {
    kb: K,
    /// Weight of the prior in the linker score (the rest is cosine).
    prior_weight: f64,
}

// Manual Debug: the KB handle would dump the whole store.
impl<K> std::fmt::Debug for LocalLinker<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalLinker")
            .field("prior_weight", &self.prior_weight)
            .finish_non_exhaustive()
    }
}

impl<K: KbView> LocalLinker<K> {
    /// Creates the linker with the default prior weight of 0.5.
    pub fn new(kb: K) -> Self {
        LocalLinker { kb, prior_weight: 0.5 }
    }

    /// Overrides the prior weight (must be in [0, 1]).
    pub fn with_prior_weight(mut self, w: f64) -> Self {
        assert!((0.0..=1.0).contains(&w), "prior weight must be in [0,1]");
        self.prior_weight = w;
        self
    }
}

impl<K: KbView> NedMethod for LocalLinker<K> {
    fn name(&self) -> String {
        "IW".to_string()
    }

    fn disambiguate(&self, tokens: &[Token], mentions: &[Mention]) -> DisambiguationResult {
        let ctx = DocumentContext::build(&self.kb, tokens);
        let assignments = mentions
            .iter()
            .enumerate()
            .map(|(mi, m)| {
                let bag = context_bag(&ctx.for_mention(m));
                let mut scores: Vec<_> = self
                    .kb
                    .candidates(&m.surface)
                    .iter()
                    .map(|c| {
                        let prior = self.kb.prior(&m.surface, c.entity);
                        let cos = entity_context_cosine(&self.kb, c.entity, &bag);
                        (c.entity, self.prior_weight * prior + (1.0 - self.prior_weight) * cos)
                    })
                    .collect();
                scores.sort_by(|a, b| b.1.total_cmp(&a.1));
                match scores.first().copied() {
                    Some((e, s)) => MentionAssignment {
                        mention_index: mi,
                        entity: Some(e),
                        score: s,
                        candidate_scores: scores,
                    },
                    None => MentionAssignment::unmapped(mi),
                }
            })
            .collect();
        DisambiguationResult::full_fidelity(assignments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::test_support;

    #[test]
    fn context_can_override_prior() {
        let kb = test_support::kb();
        let (tokens, mentions) = test_support::doc();
        // Pure cosine (no prior): context decides.
        let linker = LocalLinker::new(&kb).with_prior_weight(0.0);
        let labels = linker.disambiguate(&tokens, &mentions).labels();
        assert_eq!(labels[0], kb.entity_by_name("Kashmir (song)"));
    }

    #[test]
    fn prior_dominates_at_weight_one() {
        let kb = test_support::kb();
        let (tokens, mentions) = test_support::doc();
        let linker = LocalLinker::new(&kb).with_prior_weight(1.0);
        let labels = linker.disambiguate(&tokens, &mentions).labels();
        assert_eq!(labels[0], kb.entity_by_name("Kashmir (region)"));
    }

    #[test]
    fn scores_bounded_by_unit_interval() {
        let kb = test_support::kb();
        let (tokens, mentions) = test_support::doc();
        let result = LocalLinker::new(&kb).disambiguate(&tokens, &mentions);
        for a in &result.assignments {
            for &(_, s) in &a.candidate_scores {
                assert!((0.0..=1.0).contains(&s));
            }
        }
    }

    #[test]
    #[should_panic(expected = "prior weight")]
    fn invalid_weight_panics() {
        let kb = test_support::kb();
        let _ = LocalLinker::new(&kb).with_prior_weight(1.5);
    }
}
