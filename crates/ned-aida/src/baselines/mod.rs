//! Re-implementations of the baseline NED methods compared against in the
//! thesis (§3.6.1: "Since neither source code nor executables for this
//! method are available, we re-implemented it").
//!
//! - [`PriorOnly`]: the most-frequent-sense baseline (§3.3.3).
//! - [`Cucerzan`]: iterative context-expansion disambiguation \[Cuc07\].
//! - [`Kulkarni`]: the collective-inference method of \[KSRC09\], in its
//!   `s` (similarity), `sp` (similarity + prior), and `CI` (collective)
//!   variants.
//! - [`LocalLinker`]: a per-mention linker combining prior and context
//!   cosine, standing in for the Illinois Wikifier's linker score used in
//!   the Chapter-5 comparisons.

mod cucerzan;
mod kulkarni;
mod local_linker;
mod prior_only;

pub use cucerzan::Cucerzan;
pub use kulkarni::{Kulkarni, KulkarniVariant};
pub use local_linker::LocalLinker;
pub use prior_only::PriorOnly;

use ned_core::det::{det_dot, det_l2_norm};
use ned_kb::fx::FxHashMap;
use ned_kb::{EntityId, KbView, WordId};

/// Bag-of-words of a document context with term counts.
pub(crate) fn context_bag(context: &[(usize, WordId)]) -> FxHashMap<WordId, f64> {
    let mut bag: FxHashMap<WordId, f64> = FxHashMap::default();
    for &(_, w) in context {
        *bag.entry(w).or_insert(0.0) += 1.0;
    }
    bag
}

/// Plain (unweighted) cosine between two keyword bags — the 2007-era
/// scalar-product matching of Cucerzan's system, which lacks IDF weighting
/// and is therefore dominated by common topical words.
pub(crate) fn bag_cosine_unweighted(
    entity_bag: &FxHashMap<WordId, f64>,
    doc_bag: &FxHashMap<WordId, f64>,
) -> f64 {
    if entity_bag.is_empty() || doc_bag.is_empty() {
        return 0.0;
    }
    let dot = det_dot(
        entity_bag
            .iter()
            .filter_map(|(w, &ev)| doc_bag.get(w).map(|&tf| ev * tf)),
    );
    if dot == 0.0 {
        return 0.0;
    }
    let norm_e = det_l2_norm(entity_bag.values().copied());
    let norm_d = det_l2_norm(doc_bag.values().copied());
    if norm_e == 0.0 || norm_d == 0.0 {
        return 0.0;
    }
    (dot / (norm_e * norm_d)).clamp(0.0, 1.0)
}

/// IDF-weighted cosine between a document bag-of-words and the keyword set
/// of an entity's keyphrases — the classic token-based context similarity
/// used by the baseline systems (as opposed to AIDA's cover-based phrase
/// matching).
pub(crate) fn entity_context_cosine<K: KbView + ?Sized>(
    kb: &K,
    e: EntityId,
    bag: &FxHashMap<WordId, f64>,
) -> f64 {
    let weights = kb.weights();
    // Entity vector: keyword → idf × (occurrences across keyphrases).
    let mut entity_vec: FxHashMap<WordId, f64> = FxHashMap::default();
    for ep in kb.keyphrases(e) {
        for &w in kb.phrase_words(ep.phrase) {
            *entity_vec.entry(w).or_insert(0.0) += weights.word_idf(w);
        }
    }
    if entity_vec.is_empty() || bag.is_empty() {
        return 0.0;
    }
    let dot = det_dot(
        entity_vec
            .iter()
            .filter_map(|(w, &ev)| bag.get(w).map(|&tf| ev * tf * weights.word_idf(*w))),
    );
    if dot == 0.0 {
        return 0.0;
    }
    let norm_e = det_l2_norm(entity_vec.values().copied());
    let norm_d = det_l2_norm(bag.iter().map(|(&w, &tf)| tf * weights.word_idf(w)));
    if norm_e == 0.0 || norm_d == 0.0 {
        return 0.0;
    }
    (dot / (norm_e * norm_d)).clamp(0.0, 1.0)
}

#[cfg(test)]
pub(crate) mod test_support {
    use ned_kb::{EntityKind, KbBuilder, KnowledgeBase};
    use ned_text::{tokenize, Mention, Token};

    /// Shared baseline test fixture: ambiguous "Kashmir" and "Page".
    pub fn kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        let song = b.add_entity("Kashmir (song)", EntityKind::Work);
        let region = b.add_entity("Kashmir (region)", EntityKind::Location);
        let jimmy = b.add_entity("Jimmy Page", EntityKind::Person);
        let larry = b.add_entity("Larry Page", EntityKind::Person);
        b.add_name(song, "Kashmir", 10);
        b.add_name(region, "Kashmir", 90);
        b.add_name(jimmy, "Page", 40);
        b.add_name(larry, "Page", 60);
        b.add_keyphrase(song, "rock song", 3);
        b.add_keyphrase(song, "unusual chords", 2);
        b.add_keyphrase(region, "Himalaya territory", 4);
        b.add_keyphrase(jimmy, "rock guitarist", 3);
        b.add_keyphrase(jimmy, "unusual chords", 1);
        b.add_keyphrase(larry, "search engine", 3);
        b.add_link(jimmy, song);
        b.add_link(song, jimmy);
        let x = b.add_entity("Linker X", EntityKind::Other);
        b.add_link(x, jimmy);
        b.add_link(x, song);
        b.build()
    }

    /// A music-context document mentioning "Kashmir" and "Page".
    pub fn doc() -> (Vec<Token>, Vec<Mention>) {
        let tokens = tokenize("They performed Kashmir with unusual chords, said Page.");
        // They(0) performed(1) Kashmir(2) with(3) unusual(4) chords(5) ,(6)
        // said(7) Page(8) .(9)
        let mentions = vec![Mention::new("Kashmir", 2, 3), Mention::new("Page", 8, 9)];
        (tokens, mentions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ned_kb::fx::FxHashMap;

    #[test]
    fn cosine_prefers_matching_context() {
        let kb = test_support::kb();
        let song = kb.entity_by_name("Kashmir (song)").unwrap();
        let region = kb.entity_by_name("Kashmir (region)").unwrap();
        let mut bag: FxHashMap<WordId, f64> = FxHashMap::default();
        for w in ["unusual", "chords", "rock"] {
            if let Some(id) = kb.word_id(w) {
                bag.insert(id, 1.0);
            }
        }
        let s_song = entity_context_cosine(&kb, song, &bag);
        let s_region = entity_context_cosine(&kb, region, &bag);
        assert!(s_song > s_region);
        assert_eq!(s_region, 0.0);
    }

    #[test]
    fn cosine_is_bounded() {
        let kb = test_support::kb();
        let song = kb.entity_by_name("Kashmir (song)").unwrap();
        let mut bag: FxHashMap<WordId, f64> = FxHashMap::default();
        for w in ["rock", "song", "unusual", "chords"] {
            if let Some(id) = kb.word_id(w) {
                bag.insert(id, 5.0);
            }
        }
        let s = entity_context_cosine(&kb, song, &bag);
        assert!((0.0..=1.0).contains(&s));
        assert!(s > 0.5);
    }

    #[test]
    fn empty_bag_scores_zero() {
        let kb = test_support::kb();
        let song = kb.entity_by_name("Kashmir (song)").unwrap();
        assert_eq!(entity_context_cosine(&kb, song, &FxHashMap::default()), 0.0);
    }
}
