//! The most-frequent-sense baseline: always pick the candidate with the
//! highest popularity prior (§3.3.3), ignoring all context.

use ned_kb::KbView;
use ned_text::{Mention, Token};

use crate::method::NedMethod;
use crate::result::{DisambiguationResult, MentionAssignment};

/// Prior-only disambiguation.
pub struct PriorOnly<K> {
    kb: K,
}

// Manual Debug: the KB handle would dump the whole store.
impl<K> std::fmt::Debug for PriorOnly<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PriorOnly").finish_non_exhaustive()
    }
}

impl<K: KbView> PriorOnly<K> {
    /// Creates the baseline over `kb`.
    pub fn new(kb: K) -> Self {
        PriorOnly { kb }
    }
}

impl<K: KbView> NedMethod for PriorOnly<K> {
    fn name(&self) -> String {
        "prior".to_string()
    }

    fn disambiguate(&self, _tokens: &[Token], mentions: &[Mention]) -> DisambiguationResult {
        let assignments = mentions
            .iter()
            .enumerate()
            .map(|(mi, m)| {
                let mut scores: Vec<_> = self.kb.prior_distribution_for(m);
                scores.sort_by(|a, b| b.1.total_cmp(&a.1));
                match scores.first().copied() {
                    Some((e, p)) => MentionAssignment {
                        mention_index: mi,
                        entity: Some(e),
                        score: p,
                        candidate_scores: scores,
                    },
                    None => MentionAssignment::unmapped(mi),
                }
            })
            .collect();
        DisambiguationResult::full_fidelity(assignments)
    }
}

/// Small extension trait so the baseline reads naturally.
trait PriorLookup {
    fn prior_distribution_for(&self, m: &Mention) -> Vec<(ned_kb::EntityId, f64)>;
}

impl<K: KbView> PriorLookup for K {
    fn prior_distribution_for(&self, m: &Mention) -> Vec<(ned_kb::EntityId, f64)> {
        KbView::dictionary(self).prior_distribution(&m.surface)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::test_support;

    #[test]
    fn picks_most_popular_candidate() {
        let kb = test_support::kb();
        let (tokens, mentions) = test_support::doc();
        let result = PriorOnly::new(&kb).disambiguate(&tokens, &mentions);
        // Context says song/guitarist, but the prior says region/Larry.
        assert_eq!(result.labels()[0], kb.entity_by_name("Kashmir (region)"));
        assert_eq!(result.labels()[1], kb.entity_by_name("Larry Page"));
    }

    #[test]
    fn unknown_mention_is_unmapped() {
        let kb = test_support::kb();
        let tokens = ned_text::tokenize("Zorp arrived.");
        let mentions = vec![ned_text::Mention::new("Zorp", 0, 1)];
        let result = PriorOnly::new(&kb).disambiguate(&tokens, &mentions);
        assert_eq!(result.labels(), vec![None]);
    }

    #[test]
    fn scores_are_the_priors() {
        let kb = test_support::kb();
        let (tokens, mentions) = test_support::doc();
        let result = PriorOnly::new(&kb).disambiguate(&tokens, &mentions);
        let a = &result.assignments[0];
        assert!((a.score - 0.9).abs() < 1e-12);
        let total: f64 = a.candidate_scores.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
