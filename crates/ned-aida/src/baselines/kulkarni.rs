//! Re-implementation of Kulkarni et al.'s collective inference \[KSRC09\]
//! (§2.2.2, §3.2).
//!
//! The original models pairwise coherence as a probabilistic factor graph
//! whose MAP inference is NP-hard; the authors fall back to LP-relaxation or
//! **hill-climbing**, which is the variant implemented here. Three
//! configurations match the columns of Table 3.2:
//!
//! - `Kul s`: token-based context similarity only.
//! - `Kul sp`: similarity linearly combined with the popularity prior.
//! - `Kul CI`: `sp` plus collective inference with Milne–Witten coherence,
//!   maximizing `Σ local(m, e_m) + λ Σ MW(e_m, e_m')` by hill climbing.

use ned_kb::{EntityId, KbView};
use ned_relatedness::{MilneWitten, Relatedness};
use ned_text::{Mention, Token};

use crate::baselines::{context_bag, entity_context_cosine};
use crate::context::DocumentContext;
use crate::method::NedMethod;
use crate::result::{DisambiguationResult, MentionAssignment};

/// Which Kulkarni configuration to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KulkarniVariant {
    /// Context similarity only ("Kul s").
    Similarity,
    /// Similarity + prior ("Kul sp").
    SimilarityPrior,
    /// Full collective inference ("Kul CI").
    Collective,
}

impl KulkarniVariant {
    fn label(self) -> &'static str {
        match self {
            KulkarniVariant::Similarity => "Kul s",
            KulkarniVariant::SimilarityPrior => "Kul sp",
            KulkarniVariant::Collective => "Kul CI",
        }
    }
}

/// The Kulkarni et al. baseline.
pub struct Kulkarni<K> {
    kb: K,
    variant: KulkarniVariant,
    /// Weight of the prior in the local score for `sp`/`CI`.
    prior_weight: f64,
    /// Weight of the coherence term for `CI`.
    coherence_weight: f64,
    /// Hill-climbing sweep limit.
    max_sweeps: usize,
}

// Manual Debug: the KB handle would dump the whole store.
impl<K> std::fmt::Debug for Kulkarni<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kulkarni")
            .field("variant", &self.variant)
            .field("prior_weight", &self.prior_weight)
            .field("coherence_weight", &self.coherence_weight)
            .field("max_sweeps", &self.max_sweeps)
            .finish_non_exhaustive()
    }
}

impl<K: KbView> Kulkarni<K> {
    /// Creates the baseline in the given variant.
    pub fn new(kb: K, variant: KulkarniVariant) -> Self {
        Kulkarni { kb, variant, prior_weight: 0.4, coherence_weight: 0.6, max_sweeps: 50 }
    }

    fn local_scores(
        &self,
        tokens: &[Token],
        mentions: &[Mention],
    ) -> Vec<Vec<(EntityId, f64)>> {
        let ctx = DocumentContext::build(&self.kb, tokens);
        mentions
            .iter()
            .map(|m| {
                let bag = context_bag(&ctx.for_mention(m));
                self.kb
                    .candidates(&m.surface)
                    .iter()
                    .map(|c| {
                        let sim = entity_context_cosine(&self.kb, c.entity, &bag);
                        let score = match self.variant {
                            KulkarniVariant::Similarity => sim,
                            KulkarniVariant::SimilarityPrior | KulkarniVariant::Collective => {
                                self.prior_weight * self.kb.prior(&m.surface, c.entity)
                                    + (1.0 - self.prior_weight) * sim
                            }
                        };
                        (c.entity, score)
                    })
                    .collect()
            })
            .collect()
    }

    /// Hill climbing over the collective objective.
    fn collective_solve(&self, locals: &[Vec<(EntityId, f64)>]) -> Vec<Option<usize>> {
        let mw = MilneWitten::new(&self.kb);
        // Start from local argmax.
        let mut current: Vec<Option<usize>> =
            locals.iter().map(|c| argmax(c)).collect();
        let objective = |assign: &[Option<usize>]| -> f64 {
            let mut total = 0.0;
            for (mi, &a) in assign.iter().enumerate() {
                if let Some(i) = a {
                    total += locals[mi][i].1;
                }
            }
            for (mi, &a) in assign.iter().enumerate() {
                let Some(i) = a else { continue };
                for (mj, &b) in assign.iter().enumerate().skip(mi + 1) {
                    let Some(j) = b else { continue };
                    let (ea, eb) = (locals[mi][i].0, locals[mj][j].0);
                    if ea != eb {
                        total += self.coherence_weight * mw.relatedness(ea, eb);
                    }
                }
            }
            total
        };
        let mut best = objective(&current);
        for _ in 0..self.max_sweeps {
            let mut improved = false;
            for mi in 0..locals.len() {
                if locals[mi].len() < 2 {
                    continue;
                }
                let original = current[mi];
                for i in 0..locals[mi].len() {
                    if Some(i) == original {
                        continue;
                    }
                    current[mi] = Some(i);
                    let obj = objective(&current);
                    if obj > best {
                        best = obj;
                        improved = true;
                    } else {
                        current[mi] = original;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        current
    }
}

fn argmax(cands: &[(EntityId, f64)]) -> Option<usize> {
    (0..cands.len()).max_by(|&a, &b| cands[a].1.total_cmp(&cands[b].1))
}

impl<K: KbView> NedMethod for Kulkarni<K> {
    fn name(&self) -> String {
        self.variant.label().to_string()
    }

    fn disambiguate(&self, tokens: &[Token], mentions: &[Mention]) -> DisambiguationResult {
        let locals = self.local_scores(tokens, mentions);
        let picks: Vec<Option<usize>> = match self.variant {
            KulkarniVariant::Collective => self.collective_solve(&locals),
            _ => locals.iter().map(|c| argmax(c)).collect(),
        };
        let assignments = locals
            .iter()
            .zip(picks)
            .enumerate()
            .map(|(mi, (cands, pick))| match pick {
                Some(i) => {
                    let mut scores = cands.clone();
                    scores.sort_by(|a, b| b.1.total_cmp(&a.1));
                    MentionAssignment {
                        mention_index: mi,
                        entity: Some(cands[i].0),
                        score: cands[i].1,
                        candidate_scores: scores,
                    }
                }
                None => MentionAssignment::unmapped(mi),
            })
            .collect();
        DisambiguationResult::full_fidelity(assignments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::test_support;

    #[test]
    fn similarity_variant_follows_context() {
        let kb = test_support::kb();
        let (tokens, mentions) = test_support::doc();
        let labels =
            Kulkarni::new(&kb, KulkarniVariant::Similarity).disambiguate(&tokens, &mentions).labels();
        assert_eq!(labels[0], kb.entity_by_name("Kashmir (song)"));
        assert_eq!(labels[1], kb.entity_by_name("Jimmy Page"));
    }

    #[test]
    fn collective_uses_link_coherence() {
        // An unambiguous anchor entity strongly linked to the less popular
        // sense of "Alpha": hill climbing must flip "Alpha" to that sense.
        use ned_kb::{EntityKind, KbBuilder};
        let mut b = KbBuilder::new();
        let song = b.add_entity("Alpha (song)", EntityKind::Work);
        let city = b.add_entity("Alpha (city)", EntityKind::Location);
        let anchor = b.add_entity("Anchor Band", EntityKind::Organization);
        b.add_name(song, "Alpha", 40);
        b.add_name(city, "Alpha", 60);
        // Many shared in-linkers between song and anchor.
        for i in 0..6 {
            let linker = b.add_entity(&format!("Linker {i}"), EntityKind::Other);
            b.add_link(linker, song);
            b.add_link(linker, anchor);
        }
        let kb = b.build();
        let tokens = ned_text::tokenize("Alpha by Anchor Band");
        let mentions = vec![
            ned_text::Mention::new("Alpha", 0, 1),
            ned_text::Mention::new("Anchor Band", 2, 4),
        ];
        let ci = Kulkarni::new(&kb, KulkarniVariant::Collective);
        let labels = ci.disambiguate(&tokens, &mentions).labels();
        assert_eq!(labels[0], kb.entity_by_name("Alpha (song)"));
        assert_eq!(labels[1], kb.entity_by_name("Anchor Band"));
        // Sanity: without coherence the prior would pick the city.
        let sp = Kulkarni::new(&kb, KulkarniVariant::SimilarityPrior);
        let sp_labels = sp.disambiguate(&tokens, &mentions).labels();
        assert_eq!(sp_labels[0], kb.entity_by_name("Alpha (city)"));
    }

    #[test]
    fn sp_variant_blends_prior() {
        let kb = test_support::kb();
        // No context: sp reduces to the prior → region wins.
        let tokens = ned_text::tokenize("Kashmir");
        let mentions = vec![ned_text::Mention::new("Kashmir", 0, 1)];
        let labels = Kulkarni::new(&kb, KulkarniVariant::SimilarityPrior)
            .disambiguate(&tokens, &mentions)
            .labels();
        assert_eq!(labels[0], kb.entity_by_name("Kashmir (region)"));
    }

    #[test]
    fn variant_names() {
        let kb = test_support::kb();
        assert_eq!(Kulkarni::new(&kb, KulkarniVariant::Similarity).name(), "Kul s");
        assert_eq!(Kulkarni::new(&kb, KulkarniVariant::SimilarityPrior).name(), "Kul sp");
        assert_eq!(Kulkarni::new(&kb, KulkarniVariant::Collective).name(), "Kul CI");
    }

    #[test]
    fn handles_empty_documents() {
        let kb = test_support::kb();
        let r = Kulkarni::new(&kb, KulkarniVariant::Collective).disambiguate(&[], &[]);
        assert!(r.assignments.is_empty());
    }
}
