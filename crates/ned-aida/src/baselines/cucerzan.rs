//! Re-implementation of Cucerzan's disambiguation method \[Cuc07\] (§2.2.2).
//!
//! Cucerzan does not perform true joint inference; instead each mention is
//! disambiguated separately against an *expanded* document context: the
//! token context of the document plus the aggregated context of all other
//! mentions' candidate entities ("preferring entities that agree with other
//! candidates' categories — without knowing the correct one yet"). We model
//! an entity's category context by its keyword vector; the document vector
//! is expanded with the candidate keyword vectors of all other mentions.

use ned_kb::fx::FxHashMap;
use ned_kb::{KbView, WordId};
use ned_text::{Mention, Token};

use crate::baselines::{bag_cosine_unweighted, context_bag};
use crate::context::DocumentContext;
use crate::method::NedMethod;
use crate::result::{DisambiguationResult, MentionAssignment};

/// Cucerzan-style context-expansion disambiguation.
pub struct Cucerzan<K> {
    kb: K,
    /// Weight of the expanded (other-candidate) context relative to the
    /// document token context.
    expansion_weight: f64,
    /// Entities are represented by their `top_phrases` most frequent
    /// keyphrases only — Cucerzan's entity context is built from category
    /// names and list pages, a far shallower representation than a full
    /// keyphrase profile.
    top_phrases: usize,
}

// Manual Debug: the KB handle would dump the whole store.
impl<K> std::fmt::Debug for Cucerzan<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cucerzan")
            .field("expansion_weight", &self.expansion_weight)
            .field("top_phrases", &self.top_phrases)
            .finish_non_exhaustive()
    }
}

impl<K: KbView> Cucerzan<K> {
    /// Creates the baseline with the default expansion weight.
    pub fn new(kb: K) -> Self {
        Cucerzan { kb, expansion_weight: 3.0, top_phrases: 5 }
    }

    /// The shallow "category-like" keyword bag of an entity: the words of
    /// its `top_phrases` most frequent keyphrases.
    fn entity_bag(&self, e: ned_kb::EntityId) -> FxHashMap<WordId, f64> {
        let mut phrases: Vec<_> = self.kb.keyphrases(e).to_vec();
        phrases.sort_by(|a, b| b.count.cmp(&a.count).then(a.phrase.cmp(&b.phrase)));
        let mut bag: FxHashMap<WordId, f64> = FxHashMap::default();
        for ep in phrases.iter().take(self.top_phrases) {
            for &w in self.kb.phrase_words(ep.phrase) {
                *bag.entry(w).or_insert(0.0) += 1.0;
            }
        }
        bag
    }
}

impl<K: KbView> NedMethod for Cucerzan<K> {
    fn name(&self) -> String {
        "Cucerzan".to_string()
    }

    fn disambiguate(&self, tokens: &[Token], mentions: &[Mention]) -> DisambiguationResult {
        let ctx = DocumentContext::build(&self.kb, tokens);
        // Aggregated shallow keyword vector of every mention's candidates,
        // used to expand the context of the *other* mentions.
        let candidate_bags: Vec<FxHashMap<WordId, f64>> = mentions
            .iter()
            .map(|m| {
                let mut bag: FxHashMap<WordId, f64> = FxHashMap::default();
                for c in self.kb.candidates(&m.surface) {
                    for (w, v) in self.entity_bag(c.entity) {
                        *bag.entry(w).or_insert(0.0) += v;
                    }
                }
                normalize(&mut bag);
                bag
            })
            .collect();

        let assignments = mentions
            .iter()
            .enumerate()
            .map(|(mi, m)| {
                // Expanded document vector: token context + other mentions'
                // candidate vectors.
                let mut bag = context_bag(&ctx.for_mention(m));
                normalize(&mut bag);
                for (mj, other) in candidate_bags.iter().enumerate() {
                    if mj == mi {
                        continue;
                    }
                    for (&w, &v) in other {
                        *bag.entry(w).or_insert(0.0) += self.expansion_weight * v;
                    }
                }
                let mut scores: Vec<_> = self
                    .kb
                    .candidates(&m.surface)
                    .iter()
                    .map(|c| (c.entity, bag_cosine_unweighted(&self.entity_bag(c.entity), &bag)))
                    .collect();
                scores.sort_by(|a, b| b.1.total_cmp(&a.1));
                match scores.first().copied() {
                    Some((e, s)) => MentionAssignment {
                        mention_index: mi,
                        entity: Some(e),
                        score: s,
                        candidate_scores: scores,
                    },
                    None => MentionAssignment::unmapped(mi),
                }
            })
            .collect();
        DisambiguationResult::full_fidelity(assignments)
    }
}

fn normalize(bag: &mut FxHashMap<WordId, f64>) {
    let norm = ned_core::det::det_l2_norm(bag.values().copied());
    if norm > 0.0 {
        for v in bag.values_mut() {
            *v /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::test_support;

    #[test]
    fn resolves_contextful_mentions() {
        let kb = test_support::kb();
        let (tokens, mentions) = test_support::doc();
        let labels = Cucerzan::new(&kb).disambiguate(&tokens, &mentions).labels();
        // "unusual chords" matches the song and Jimmy Page.
        assert_eq!(labels[0], kb.entity_by_name("Kashmir (song)"));
        assert_eq!(labels[1], kb.entity_by_name("Jimmy Page"));
    }

    #[test]
    fn expansion_uses_other_mentions() {
        // With no document context at all, the candidates of "Page" still
        // pull "Kashmir" toward the musically coherent song via expansion.
        let kb = test_support::kb();
        let tokens = ned_text::tokenize("Kashmir Page");
        let mentions =
            vec![ned_text::Mention::new("Kashmir", 0, 1), ned_text::Mention::new("Page", 1, 2)];
        let result = Cucerzan::new(&kb).disambiguate(&tokens, &mentions);
        // The candidate set of "Page" contains "rock guitarist" and
        // "unusual chords" keywords that overlap the song's context.
        let song = kb.entity_by_name("Kashmir (song)").unwrap();
        let a = &result.assignments[0];
        let song_score =
            a.candidate_scores.iter().find(|&&(e, _)| e == song).map(|&(_, s)| s).unwrap();
        assert!(song_score > 0.0);
    }

    #[test]
    fn unknown_mentions_unmapped() {
        let kb = test_support::kb();
        let tokens = ned_text::tokenize("Zorp");
        let mentions = vec![ned_text::Mention::new("Zorp", 0, 1)];
        let labels = Cucerzan::new(&kb).disambiguate(&tokens, &mentions).labels();
        assert_eq!(labels, vec![None]);
    }
}
